//! # simbench
//!
//! Facade crate for **SimBench-rs**, a from-scratch Rust reproduction of
//! *"SimBench: A Portable Benchmarking Methodology for Full-System
//! Simulators"* (Wagstaff, Bodin, Spink & Franke — ISPASS 2017).
//!
//! This crate re-exports the whole workspace:
//!
//! * [`core`] — guest micro-op IR, CPU state, MMU/TLB abstractions,
//!   event counters, engine traits, portable assembler interface.
//! * [`armlet`] / [`petix`] — the two guest ISAs (ARM-like and x86-like).
//! * [`platform`] — RAM + UART / INTC / timer / safe-device board model.
//! * [`interp`] / [`detailed`] / [`dbt`] / [`virt`] — the four
//!   full-system engines (SimIt-ARM, Gem5, QEMU and QEMU-KVM analogues).
//! * [`suite`] — the eighteen SimBench micro-benchmarks.
//! * [`apps`] — synthetic SPEC-like application workloads.
//! * [`obs`] — zero-cost-when-off telemetry: spans/events on lock-free
//!   rings (Chrome trace export), named engine metrics, a leveled
//!   stderr logger and streaming per-cell campaign progress.
//! * [`campaign`] — the parallel measurement-campaign subsystem: a
//!   declarative guests × engines × workloads matrix expanded into jobs,
//!   executed on a work-stealing worker pool, aggregated into per-cell
//!   statistics (including the deterministic event profile), persisted
//!   as versioned `simbench-campaign/v2` JSON (with a `v1` reader-side
//!   migration), and compared against stored baselines — on noisy
//!   wall-clock with a threshold, or counter-exactly on event profiles.
//! * [`harness`] — experiment drivers regenerating every paper table
//!   and figure, now thin renderers over campaign results, the
//!   app-performance cost model calibrated from stored campaigns, plus
//!   the `simbench-harness campaign run|compare|list` and
//!   `model calibrate|predict|validate` CLI.
//!
//! ## Quickstart
//!
//! ```
//! use simbench::prelude::*;
//!
//! // Assemble the System Call benchmark for the armlet guest and run it
//! // on the DBT engine.
//! let image = simbench::suite::build(&ArmletSupport::new(), Benchmark::Syscall, 1000).unwrap();
//! let mut machine = Machine::<Armlet, _>::boot(&image, Platform::new());
//! let mut engine = Dbt::<Armlet>::new();
//! let out = engine.run(&mut machine, &RunLimits::default());
//! assert_eq!(out.exit, ExitReason::Halted);
//! assert!(out.counters.syscalls >= 1000);
//! ```

pub use simbench_apps as apps;
pub use simbench_campaign as campaign;
pub use simbench_core as core;
pub use simbench_dbt as dbt;
pub use simbench_detailed as detailed;
pub use simbench_harness as harness;
pub use simbench_interp as interp;
pub use simbench_isa_armlet as armlet;
pub use simbench_isa_petix as petix;
pub use simbench_obs as obs;
pub use simbench_platform as platform;
pub use simbench_suite as suite;
pub use simbench_virt as virt;

/// Commonly used items, one `use` away.
pub mod prelude {
    pub use simbench_campaign::{CampaignResult, CampaignSpec, RunnerOpts, Workload};
    pub use simbench_core::asm::{PReg, PortableAsm};
    pub use simbench_core::engine::{Engine, ExitReason, RunLimits, RunOutcome};
    pub use simbench_core::machine::Machine;
    pub use simbench_dbt::{Dbt, VersionProfile};
    pub use simbench_detailed::Detailed;
    pub use simbench_interp::Interp;
    pub use simbench_isa_armlet::{Armlet, ArmletAsm};
    pub use simbench_isa_petix::{Petix, PetixAsm};
    pub use simbench_platform::Platform;
    pub use simbench_suite::{ArmletSupport, Benchmark, Category, PetixSupport};
    pub use simbench_virt::Virt;
}

//! Portability demonstration: the same benchmark source runs on both
//! guest architectures through their support packages (the paper's
//! §II-C porting story), and the architectural event counts agree while
//! the ISAs differ in instruction count and encoding.
//!
//! ```sh
//! cargo run --release --example cross_isa
//! ```

use simbench::prelude::*;
use simbench_suite::{build, ArmletSupport, Benchmark, PetixSupport};

fn main() {
    let iters = 10_000;
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>12}",
        "benchmark", "guest", "insns", "tested ops", "image bytes"
    );
    for bench in [
        Benchmark::Syscall,
        Benchmark::MemHot,
        Benchmark::IntraPageIndirect,
    ] {
        // armlet build + run
        let image = build(&ArmletSupport::new(), bench, iters).unwrap();
        let mut m = Machine::<Armlet, _>::boot(&image, Platform::new());
        let out = Interp::<Armlet>::new().run(&mut m, &RunLimits::default());
        assert_eq!(out.exit, ExitReason::Halted);
        let k = out.kernel_counters();
        println!(
            "{:<28} {:>10} {:>12} {:>12} {:>12}",
            bench.name(),
            "armlet",
            k.instructions,
            bench.tested_ops(&k),
            image.size()
        );
        let armlet_ops = bench.tested_ops(&k);

        // petix build + run — identical benchmark source, different
        // support package.
        let image = build(&PetixSupport::new(), bench, iters).unwrap();
        let mut m = Machine::<Petix, _>::boot(&image, Platform::new());
        let out = Interp::<Petix>::new().run(&mut m, &RunLimits::default());
        assert_eq!(out.exit, ExitReason::Halted);
        let k = out.kernel_counters();
        println!(
            "{:<28} {:>10} {:>12} {:>12} {:>12}",
            "",
            "petix",
            k.instructions,
            bench.tested_ops(&k),
            image.size()
        );

        assert_eq!(
            armlet_ops,
            bench.tested_ops(&k),
            "the tested operation count is ISA-independent"
        );
    }
    println!("\nThe tested-operation counts match exactly across ISAs: the benchmarks");
    println!("are portable, only the support packages differ — 0 lines of benchmark");
    println!("code changed between the two ports.");
}

//! Reproduce the paper's motivating example end to end: an aggregate
//! application score drifts across simulator versions, and SimBench's
//! per-category kernels pinpoint which mechanism moved.
//!
//! ```sh
//! cargo run --release --example regression_hunt
//! ```

use simbench_apps::App;
use simbench_dbt::QEMU_VERSIONS;
use simbench_harness::{geomean, run_app, run_suite_bench, Config, EngineKind, Guest};
use simbench_suite::{Benchmark, Category};

fn main() {
    let cfg = Config::with_scale(10_000);
    let old = QEMU_VERSIONS[0];
    let new = *QEMU_VERSIONS.last().unwrap();

    // Step 1: the application view — one aggregate number per version.
    let mut per_version = Vec::new();
    for v in [old, new] {
        let times: Vec<f64> = App::ALL
            .iter()
            .map(|&a| {
                run_app(Guest::Armlet, EngineKind::Dbt(v), a, &cfg)
                    .seconds
                    .max(1e-9)
            })
            .collect();
        per_version.push(times);
    }
    let speedups: Vec<f64> = (0..App::ALL.len())
        .map(|i| per_version[0][i] / per_version[1][i])
        .collect();
    println!(
        "application view: {} → {} overall speedup {:.3} (aggregate of {} apps)",
        old.name,
        new.name,
        geomean(&speedups),
        App::ALL.len()
    );
    for (app, s) in App::ALL.iter().zip(&speedups) {
        println!("  {:<18} {:.3}", app.name(), s);
    }
    println!("  -> individual apps diverge, but nothing here says WHY.\n");

    // Step 2: the SimBench view — per-category attribution.
    println!("SimBench view ({} → {}):", old.name, new.name);
    for cat in Category::ALL {
        let mut ratios = Vec::new();
        for bench in Benchmark::ALL.iter().filter(|b| b.category() == cat) {
            let t_old = run_suite_bench(Guest::Armlet, EngineKind::Dbt(old), *bench, &cfg)
                .unwrap()
                .seconds
                .max(1e-9);
            let t_new = run_suite_bench(Guest::Armlet, EngineKind::Dbt(new), *bench, &cfg)
                .unwrap()
                .seconds
                .max(1e-9);
            ratios.push(t_old / t_new);
        }
        let g = geomean(&ratios);
        let verdict = if g < 0.9 {
            "REGRESSED"
        } else if g > 1.1 {
            "improved"
        } else {
            "flat"
        };
        println!("  {:<20} speedup {:.3}  [{verdict}]", cat.name(), g);
    }
    println!("\n  -> the regression localises to specific mechanisms (control flow and");
    println!("     exception side-exits gained per-dispatch guards and eager sync across");
    println!("     versions), which no application aggregate could tell you.");
}

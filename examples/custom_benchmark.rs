//! Write a *new* SimBench-style micro-benchmark against the portable
//! interfaces and run it on two engines — the workflow a simulator
//! developer uses to test a mechanism the suite does not cover yet.
//!
//! The example benchmark measures flag-heavy ALU dependency chains
//! (a stand-in for "how well does the engine handle condition codes").
//!
//! ```sh
//! cargo run --release --example custom_benchmark
//! ```

use simbench::prelude::*;
use simbench_core::ir::{AluOp, Cond};
use simbench_suite::support::{emit_counted_loop, emit_phase_mark, Support};
use simbench_suite::{ArmletSupport, BootSpec};

fn main() {
    let iterations = 200_000;
    let support = ArmletSupport::new();

    // A benchmark is just a closure over the portable assembler: the
    // support package supplies boot code, MMU setup and handlers.
    let image = support.build(BootSpec::default(), |a, _s, layout| {
        a.mov_imm(PReg::A, 0x1234_5678);
        a.mov_imm(PReg::B, 0);
        emit_phase_mark(a, layout, 1);
        emit_counted_loop(a, iterations, |a| {
            // A chain of flag-setting ops feeding conditional branches.
            for _ in 0..4 {
                a.alu_ri_s(AluOp::Add, PReg::A, PReg::A, 0x311);
                let skip = a.new_label();
                a.b_cond(Cond::Pl, skip);
                a.alu_ri(AluOp::Eor, PReg::A, PReg::A, 0xFF);
                a.bind(skip);
                a.alu_ri_s(AluOp::Ror, PReg::A, PReg::A, 3);
                let skip = a.new_label();
                a.b_cond(Cond::Cc, skip);
                a.alu_ri(AluOp::Add, PReg::B, PReg::B, 1);
                a.bind(skip);
            }
        });
        emit_phase_mark(a, layout, 2);
        a.halt();
    });

    for (name, run) in [
        ("dbt", run_on_dbt(&image)),
        ("interp", run_on_interp(&image)),
    ] {
        println!(
            "{name:>7}: kernel {:?}, {} insns, {} taken branches",
            run.kernel_wall(),
            run.kernel_counters().instructions,
            run.kernel_counters().branches(),
        );
        assert_eq!(run.exit, ExitReason::Halted);
    }
    println!("\nBoth engines executed the identical guest image — any timing gap is an");
    println!("engine-mechanism difference, which is the whole SimBench methodology.");
}

fn run_on_dbt(image: &simbench_core::image::GuestImage) -> RunOutcome {
    let mut m = Machine::<Armlet, _>::boot(image, Platform::new());
    Dbt::<Armlet>::new().run(&mut m, &RunLimits::default())
}

fn run_on_interp(image: &simbench_core::image::GuestImage) -> RunOutcome {
    let mut m = Machine::<Armlet, _>::boot(image, Platform::new());
    Interp::<Armlet>::new().run(&mut m, &RunLimits::default())
}

//! The campaign workflow end to end, programmatically: declare a
//! measurement matrix, run it on a worker pool, persist the JSON
//! result, and detect a regression against a baseline.
//!
//! The CLI equivalent is:
//!
//! ```sh
//! simbench-harness campaign run --scale 20000 --jobs 4 --reps 3 --out current.json
//! simbench-harness campaign compare current.json --baseline baseline.json --threshold 0.25
//! ```
//!
//! ```sh
//! cargo run --release --example campaign_workflow
//! ```

use simbench_campaign::measure::{EngineKind, Guest};
use simbench_campaign::{compare, run, CampaignSpec, RunnerOpts, Workload};
use simbench_suite::Benchmark;

fn main() {
    // 1. Declare the matrix: two guests × three engines × four
    //    benchmarks, three repetitions per cell.
    let spec = CampaignSpec {
        name: "example".to_string(),
        guests: Guest::ALL.to_vec(),
        engines: vec![
            EngineKind::Dbt(simbench_dbt::VersionProfile::latest()),
            EngineKind::Interp,
            EngineKind::Native,
        ],
        workloads: vec![
            Workload::Suite(Benchmark::Syscall),
            Workload::Suite(Benchmark::MemHot),
            Workload::Suite(Benchmark::DataFault),
            Workload::Suite(Benchmark::IntraPageDirect),
        ],
        scale: 50_000,
        reps: 3,
        precision: None,
        wall_limit: Some(std::time::Duration::from_secs(60)),
    };

    // 2. Run it in parallel. Each job owns its Machine and engine, so
    //    any worker count yields the same counters.
    let current = run(&spec, &RunnerOpts::with_jobs(4));
    println!(
        "campaign '{}': {} cells in {:.2}s on 4 workers",
        current.name,
        current.cells.len(),
        current.wall_secs
    );
    for cell in current.cells.iter().take(3) {
        let stats = cell.stats.as_ref().unwrap();
        println!(
            "  {}/{} {}: median {:.6}s over {} reps (±{:.6} ci95)",
            cell.guest, cell.engine, cell.workload, stats.median, stats.n, stats.ci95
        );
    }

    // 3. Persist — the versioned JSON schema is what CI stores as
    //    BENCH_campaign.json and what `campaign compare` consumes.
    let path = std::env::temp_dir().join("simbench_example_campaign.json");
    current.save(&path).expect("write campaign result");
    println!("wrote {}", path.display());

    // 4. Regression detection: pretend a historical baseline ran the
    //    syscall cell 5× faster, then compare.
    let mut baseline = current.clone();
    for cell in &mut baseline.cells {
        if cell.workload == "suite:System Call" && cell.guest == "armlet" {
            cell.seconds.iter_mut().for_each(|s| *s /= 5.0);
            cell.stats = simbench_campaign::stats(&cell.seconds);
        }
    }
    let report = compare(&baseline, &current, 0.25);
    println!("\n{}", report.render());
    assert!(!report.clean(), "the slowed cell must be flagged");

    // 5. Counter-exact comparison: event profiles are architectural and
    //    deterministic, so the doctored wall-clock above is invisible to
    //    `compare_counters` — the CLI equivalent is
    //    `campaign compare ... --counters`.
    let exact = simbench_campaign::compare_counters(&baseline, &current, 0.0);
    println!("{}", exact.render());
    assert!(exact.clean(), "timing edits must not move event profiles");
    std::fs::remove_file(&path).ok();
}

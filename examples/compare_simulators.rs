//! Compare the four simulator archetypes (plus the native stand-in) on a
//! few SimBench kernels — a miniature of the paper's Fig 7.
//!
//! ```sh
//! cargo run --release --example compare_simulators
//! ```

use simbench_harness::{run_suite_bench, Config, EngineKind, Guest};
use simbench_suite::Benchmark;

fn main() {
    let cfg = Config::with_scale(10_000);
    let benches = [
        Benchmark::SmallBlocks,     // DBTs pay translation here
        Benchmark::IntraPageDirect, // ...and win here via chaining
        Benchmark::MmioDevice,      // virtualization pays trap costs here
        Benchmark::MemHot,          // everyone's fast path
    ];

    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "dbt", "interp", "detailed", "virt", "native"
    );
    for bench in benches {
        print!("{:<28}", bench.name());
        for engine in EngineKind::fig7_columns() {
            match run_suite_bench(Guest::Armlet, engine, bench, &cfg) {
                Some(s) if s.ok() => {
                    print!(" {:>11.2?}", std::time::Duration::from_secs_f64(s.seconds))
                }
                Some(_) => print!(" {:>12}", "-†"),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
    println!("\nWhat to look for (the paper's Fig 7 shapes):");
    println!(" * Small Blocks: the interpreter beats the DBT — translations are wasted on code that is rewritten every iteration.");
    println!(" * Intra-Page Direct: the DBT wins via block chaining.");
    println!(" * Memory Mapped Device: the virt engine collapses — every access is a VM exit.");
    println!(" * Hot Memory: direct execution and the DBT lead; the detailed engine pays for its timing model everywhere.");
}

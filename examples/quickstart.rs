//! Quickstart: assemble a tiny bare-metal guest program, run it on the
//! DBT engine, and inspect the outcome.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use simbench::prelude::*;
use simbench_core::ir::{AluOp, Cond};

fn main() {
    // 1. Write a guest program with the portable assembler: sum the
    //    integers 1..=100 into register A, then halt.
    let mut asm = ArmletAsm::new();
    asm.org(0x8000);
    asm.mov_imm(PReg::A, 0);
    asm.mov_imm(PReg::B, 100);
    let top = asm.new_label();
    asm.bind(top);
    asm.alu_rr(AluOp::Add, PReg::A, PReg::A, PReg::B);
    asm.alu_ri(AluOp::Sub, PReg::B, PReg::B, 1);
    asm.cmp_ri(PReg::B, 0);
    asm.b_cond(Cond::Ne, top);
    asm.halt();
    let image = asm.finish(0x8000);
    println!("assembled image:\n{image}");

    // 2. Boot it on the platform and run it under the DBT engine.
    let mut machine = Machine::<Armlet, _>::boot(&image, Platform::new());
    let mut engine = Dbt::<Armlet>::new();
    let out = engine.run(&mut machine, &RunLimits::default());

    // 3. Inspect the results.
    assert_eq!(out.exit, ExitReason::Halted);
    println!("guest says: 1 + 2 + ... + 100 = {}", machine.cpu.regs[0]);
    println!(
        "retired {} instructions ({} µops) in {:?}",
        out.counters.instructions, out.counters.uops, out.wall
    );
    println!(
        "translated {} blocks, {} block-cache hits, {} chained dispatches",
        out.counters.blocks_translated,
        out.counters.block_cache_hits,
        out.counters.block_chain_follows
    );
    assert_eq!(machine.cpu.regs[0], 5050);
}

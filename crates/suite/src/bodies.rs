//! The eighteen benchmark kernels, written once against the portable
//! assembler + support-package interface (the analogue of the paper's
//! portable C benchmark bodies).
//!
//! Register conventions inside kernels: `C` is the iteration counter
//! (counts down), `A`/`B`/`E` are benchmark state, `D`/`E` may be
//! clobbered by exception handlers, and `F` is reserved as the landing
//! register for self-modifying-code rewrites.

use simbench_core::asm::{PReg, PortableAsm};
use simbench_core::ir::{AluOp, Cond};
use simbench_core::PAGE_SIZE;

use crate::support::{emit_counted_loop, emit_phase_mark, Layout, Support};

/// Number of small functions in the code-generation and control-flow
/// chain benchmarks.
pub const CHAIN_FUNCS: usize = 8;

/// Arithmetic instructions in the Large Blocks benchmark's single block.
pub const LARGE_BLOCK_INSNS: usize = 256;

/// Unroll factor of the Hot Memory Access benchmark.
pub const HOT_UNROLL: usize = 8;

fn wrap_kernel<S: Support>(
    a: &mut S::Asm,
    layout: &Layout,
    setup: impl FnOnce(&mut S::Asm),
    iterations: u32,
    kernel: impl FnOnce(&mut S::Asm),
    cleanup: impl FnOnce(&mut S::Asm),
) {
    // Phase 1: benchmark-specific setup (untimed).
    setup(a);
    emit_phase_mark(a, layout, 1);
    emit_counted_loop(a, iterations, kernel);
    emit_phase_mark(a, layout, 2);
    // Phase 3: cleanup (untimed).
    cleanup(a);
    a.halt();
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

/// Small Blocks: several short functions that tail-call each other
/// through function pointers; the first word of every function is
/// rewritten at the start of each iteration, forcing any DBT to
/// retranslate (and exercising indirect control flow).
pub fn small_blocks<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    let funcs: Vec<_> = (0..CHAIN_FUNCS).map(|_| a.new_label()).collect();
    let table = a.new_label();
    let body_start = a.new_label();
    a.b(body_start);

    // The rewritable functions, each beginning with the SMC filler word.
    // Each loads the next function pointer from the table and jumps;
    // the last returns to the caller.
    for (k, f) in funcs.iter().enumerate() {
        a.align(16);
        a.bind(*f);
        a.word(a.smc_nop_word());
        if k + 1 < CHAIN_FUNCS {
            a.load(PReg::D, PReg::B, 4 * (k as i32 + 1));
            a.br_reg(PReg::D);
        } else {
            a.ret();
        }
    }

    // Function-pointer table (filled during setup).
    a.align(16);
    a.bind(table);
    a.skip(4 * CHAIN_FUNCS as u32);

    a.align(16);
    a.bind(body_start);
    let funcs2 = funcs.clone();
    wrap_kernel::<S>(
        a,
        layout,
        |a| {
            // Fill the pointer table.
            a.mov_label(PReg::B, table);
            for (k, f) in funcs2.iter().enumerate() {
                a.mov_label(PReg::D, *f);
                a.store(PReg::D, PReg::B, 4 * k as i32);
            }
        },
        iterations,
        |a| {
            // Rewrite the first word of every function with a fresh
            // (iteration-dependent) valid encoding...
            for f in &funcs {
                a.emit_smc_word(PReg::E, PReg::C);
                a.mov_label(PReg::D, *f);
                a.store(PReg::E, PReg::D, 0);
            }
            // ...then run the chain.
            a.load(PReg::D, PReg::B, 0);
            a.call_reg(PReg::D);
        },
        |_| {},
    );
}

/// Large Blocks: one very large straight-line block whose first word is
/// rewritten before every execution; inputs come from memory and the
/// result is stored back (the "volatile variables" of the paper).
pub fn large_blocks<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    let block = a.new_label();
    let body_start = a.new_label();
    a.b(body_start);

    a.align(16);
    a.bind(block);
    a.word(a.smc_nop_word());
    // A long dependency chain over A and B.
    for i in 0..LARGE_BLOCK_INSNS {
        match i % 4 {
            0 => a.alu_ri(AluOp::Add, PReg::A, PReg::A, 7),
            1 => a.alu_ri(AluOp::Eor, PReg::A, PReg::A, 0x35),
            2 => a.alu_rr(AluOp::Add, PReg::B, PReg::B, PReg::A),
            _ => a.alu_ri(AluOp::Ror, PReg::A, PReg::A, 3),
        }
    }
    a.ret();

    a.align(16);
    a.bind(body_start);
    wrap_kernel::<S>(
        a,
        layout,
        |a| {
            a.mov_imm(PReg::A, 0x1234_5678);
            a.mov_imm(PReg::B, 0);
        },
        iterations,
        |a| {
            a.emit_smc_word(PReg::E, PReg::C);
            a.mov_label(PReg::D, block);
            a.store(PReg::E, PReg::D, 0);
            // Volatile input/output: exchange state through memory.
            a.mov_imm(PReg::D, layout.data);
            a.load(PReg::A, PReg::D, 0);
            a.mov_label(PReg::D, block);
            a.call_reg(PReg::D);
            a.mov_imm(PReg::D, layout.data);
            a.store(PReg::B, PReg::D, 0);
        },
        |_| {},
    );
}

// ---------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------

fn control_flow_chain<S: Support>(
    a: &mut S::Asm,
    layout: &Layout,
    iterations: u32,
    inter_page: bool,
    indirect: bool,
) {
    let funcs: Vec<_> = (0..CHAIN_FUNCS).map(|_| a.new_label()).collect();
    let table = a.new_label();
    let body_start = a.new_label();
    a.b(body_start);

    for (k, f) in funcs.iter().enumerate() {
        if inter_page {
            a.align(PAGE_SIZE);
        } else {
            a.align(16);
        }
        a.bind(*f);
        if k + 1 < CHAIN_FUNCS {
            if indirect {
                a.load(PReg::D, PReg::B, 4 * (k as i32 + 1));
                a.br_reg(PReg::D);
            } else {
                a.b(funcs[k + 1]);
            }
        } else {
            a.ret();
        }
    }

    // For the intra-page variants the whole chain must share a page:
    // eight two-instruction functions at 16-byte alignment fit easily.
    a.align(16);
    a.bind(table);
    a.skip(4 * CHAIN_FUNCS as u32);

    if inter_page {
        a.align(PAGE_SIZE);
    } else {
        a.align(16);
    }
    a.bind(body_start);
    let funcs2 = funcs.clone();
    wrap_kernel::<S>(
        a,
        layout,
        |a| {
            a.mov_label(PReg::B, table);
            for (k, f) in funcs2.iter().enumerate() {
                a.mov_label(PReg::D, *f);
                a.store(PReg::D, PReg::B, 4 * k as i32);
            }
            a.mov_label(PReg::E, funcs2[0]);
        },
        iterations,
        |a| {
            if indirect {
                a.call_reg(PReg::E);
            } else {
                a.call(funcs[0]);
            }
        },
        |_| {},
    );
}

/// Inter-Page Direct: tail-calling functions on separate pages, direct
/// branches.
pub fn inter_page_direct<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    control_flow_chain::<S>(a, layout, iterations, true, false);
}

/// Inter-Page Indirect: separate pages, function-pointer jumps.
pub fn inter_page_indirect<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    control_flow_chain::<S>(a, layout, iterations, true, true);
}

/// Intra-Page Direct: the whole chain within one page, direct branches.
pub fn intra_page_direct<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    control_flow_chain::<S>(a, layout, iterations, false, false);
}

/// Intra-Page Indirect: one page, function-pointer jumps.
pub fn intra_page_indirect<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    control_flow_chain::<S>(a, layout, iterations, false, true);
}

// ---------------------------------------------------------------------
// Exception handling
// ---------------------------------------------------------------------

/// Data Access Fault: repeatedly load from an unmapped address; the
/// handler returns to the next instruction.
pub fn data_fault<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    let unmapped = layout.unmapped;
    wrap_kernel::<S>(
        a,
        layout,
        |a| a.mov_imm(PReg::A, unmapped),
        iterations,
        |a| a.load(PReg::B, PReg::A, 0),
        |_| {},
    );
}

/// Instruction Access Fault: repeatedly call into unmapped memory; the
/// handler resumes at the call's return address (LR on armlet, stack
/// unwinding on petix).
pub fn insn_fault<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    let unmapped = layout.unmapped;
    wrap_kernel::<S>(
        a,
        layout,
        |a| a.mov_imm(PReg::A, unmapped),
        iterations,
        |a| a.call_reg(PReg::A),
        |_| {},
    );
}

/// Undefined Instruction: execute the architecturally undefined
/// instruction; the handler returns past it.
pub fn undef_insn<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    wrap_kernel::<S>(a, layout, |_| {}, iterations, |a| a.udf(), |_| {});
}

/// System Call: execute the syscall instruction; the handler returns.
pub fn syscall<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    wrap_kernel::<S>(a, layout, |_| {}, iterations, |a| a.svc(0), |_| {});
}

/// External Software Interrupt: trigger line 0 through the interrupt
/// controller; the IRQ handler acknowledges it.
pub fn ext_swi<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    let intc = layout.intc;
    wrap_kernel::<S>(
        a,
        layout,
        |a| {
            a.mov_imm(PReg::A, intc);
            a.mov_imm(PReg::B, 1);
        },
        iterations,
        |a| {
            a.store(
                PReg::B,
                PReg::A,
                simbench_platform::devices::INTC_TRIGGER as i32,
            );
            // Give block-boundary engines a boundary to deliver at.
            a.nop();
            a.nop();
        },
        |_| {},
    );
}

// ---------------------------------------------------------------------
// I/O
// ---------------------------------------------------------------------

/// Memory Mapped Device: repeatedly read the safe device's ID register.
pub fn mmio_device<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    let dev = layout.safedev;
    wrap_kernel::<S>(
        a,
        layout,
        |a| a.mov_imm(PReg::A, dev),
        iterations,
        |a| a.load(PReg::B, PReg::A, 0),
        |_| {},
    );
}

/// Coprocessor Access: repeatedly perform the architecture's designated
/// side-effect-free coprocessor read.
pub fn coproc_access<S: Support>(a: &mut S::Asm, s: &S, layout: &Layout, iterations: u32) {
    wrap_kernel::<S>(
        a,
        layout,
        |_| {},
        iterations,
        |a| s.emit_safe_coproc_read(a, PReg::B),
        |_| {},
    );
}

// ---------------------------------------------------------------------
// Memory system
// ---------------------------------------------------------------------

fn cold_walk_kernel<S: Support>(a: &mut S::Asm, layout: &Layout, extra: impl Fn(&mut S::Asm)) {
    // One read at the top of each page; wrap at the end of the region.
    a.load(PReg::B, PReg::A, 0);
    extra(a);
    // PAGE_SIZE exceeds the portable 12-bit ALU-immediate contract, so
    // advance in two halves.
    a.alu_ri(AluOp::Add, PReg::A, PReg::A, PAGE_SIZE / 2);
    a.alu_ri(AluOp::Add, PReg::A, PReg::A, PAGE_SIZE / 2);
    a.cmp_rr(PReg::A, PReg::E);
    let no_wrap = a.new_label();
    a.b_cond(Cond::Ne, no_wrap);
    a.mov_imm(PReg::A, layout.cold);
    a.bind(no_wrap);
}

/// Cold Memory Access: one read per page over a large region — every
/// access misses the translation cache.
pub fn mem_cold<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    let (cold, cold_end) = (layout.cold, layout.cold + layout.cold_len);
    wrap_kernel::<S>(
        a,
        layout,
        |a| {
            a.mov_imm(PReg::A, cold);
            a.mov_imm(PReg::E, cold_end);
        },
        iterations,
        |a| cold_walk_kernel::<S>(a, layout, |_| {}),
        |_| {},
    );
}

/// Hot Memory Access: load + store on the same page, manually unrolled.
/// Each *iteration* of the counted loop performs [`HOT_UNROLL`]
/// load/store pairs, so callers divide the paper's count by the unroll.
pub fn mem_hot<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    let data = layout.data;
    wrap_kernel::<S>(
        a,
        layout,
        |a| a.mov_imm(PReg::A, data),
        iterations,
        |a| {
            for k in 0..HOT_UNROLL {
                let off = (k as i32 % 4) * 8;
                a.load(PReg::B, PReg::A, off);
                a.store(PReg::B, PReg::A, off + 4);
            }
        },
        |_| {},
    );
}

/// Nonprivileged Access: the hot-memory kernel with non-privileged
/// loads/stores. Returns `false` (no kernel emitted beyond an immediate
/// halt) on architectures without the feature.
pub fn nonpriv_access<S: Support>(a: &mut S::Asm, s: &S, layout: &Layout, iterations: u32) -> bool {
    if !S::HAS_NONPRIV {
        a.halt();
        return false;
    }
    let data = layout.data;
    wrap_kernel::<S>(
        a,
        layout,
        |a| a.mov_imm(PReg::A, data),
        iterations,
        |a| {
            for k in 0..HOT_UNROLL {
                let off = (k as i32 % 4) * 8;
                s.emit_nonpriv_load(a, PReg::B, PReg::A, off);
                s.emit_nonpriv_store(a, PReg::B, PReg::A, off + 4);
            }
        },
        |_| {},
    );
    true
}

/// TLB Eviction: the cold walk, evicting each accessed page's entry
/// immediately after the access.
pub fn tlb_evict<S: Support>(a: &mut S::Asm, s: &S, layout: &Layout, iterations: u32) {
    let (cold, cold_end) = (layout.cold, layout.cold + layout.cold_len);
    wrap_kernel::<S>(
        a,
        layout,
        |a| {
            a.mov_imm(PReg::A, cold);
            a.mov_imm(PReg::E, cold_end);
        },
        iterations,
        |a| cold_walk_kernel::<S>(a, layout, |a| s.emit_tlb_inv_page(a, PReg::A)),
        |_| {},
    );
}

/// TLB Flush: the cold walk with a full TLB flush after each access.
pub fn tlb_flush<S: Support>(a: &mut S::Asm, s: &S, layout: &Layout, iterations: u32) {
    let (cold, cold_end) = (layout.cold, layout.cold + layout.cold_len);
    wrap_kernel::<S>(
        a,
        layout,
        |a| {
            a.mov_imm(PReg::A, cold);
            a.mov_imm(PReg::E, cold_end);
        },
        iterations,
        |a| cold_walk_kernel::<S>(a, layout, |a| s.emit_tlb_flush(a, PReg::B)),
        |_| {},
    );
}

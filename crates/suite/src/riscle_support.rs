//! The riscle architecture + platform support package.

use simbench_core::asm::{PReg, PortableAsm};
use simbench_core::fault::ExceptionKind;
use simbench_core::image::GuestImage;
use simbench_isa_riscle::sys::{csr, VECTOR_STRIDE};
use simbench_isa_riscle::{PtFlags, RiscleAsm, TableBuilder};

use crate::support::{BootSpec, HandlerKind, Layout, Support};

/// riscle support package.
#[derive(Debug, Clone, Copy, Default)]
pub struct RiscleSupport;

impl RiscleSupport {
    /// New support package.
    pub fn new() -> Self {
        RiscleSupport
    }

    fn emit_handler(&self, a: &mut RiscleAsm, kind: HandlerKind, layout: &Layout) {
        match kind {
            HandlerKind::Eret => a.eret(),
            HandlerKind::ResumeFromLink => {
                // The faulted `c.jalr` linked its return address into the
                // LR GPR, which is not banked across exceptions — copy it
                // into the resume CSR, as on armlet.
                a.csrw(csr::SAVED_PC, PReg::Lr);
                a.eret();
            }
            HandlerKind::AckIrqEret => {
                // Clobbers D and E, as on the other guests.
                a.mov_imm(PReg::D, layout.intc);
                a.mov_imm(PReg::E, 1);
                a.store(
                    PReg::E,
                    PReg::D,
                    simbench_platform::devices::INTC_ACK as i32,
                );
                a.eret();
            }
        }
    }
}

impl Support for RiscleSupport {
    type Asm = RiscleAsm;
    const ISA_NAME: &'static str = "riscle";
    const HAS_NONPRIV: bool = false;

    fn build(
        &self,
        spec: BootSpec,
        body: impl FnOnce(&mut Self::Asm, &Self, &Layout),
    ) -> GuestImage {
        let layout = self.layout();
        let mut a = RiscleAsm::new();

        // Static sv32-style two-level page tables, identity mapped.
        let mut tb = TableBuilder::new(layout.tables);
        tb.map_range(0, 0, 0x0060_0000, PtFlags::KERNEL);
        tb.map_range(layout.data, layout.data, 0x0020_0000, PtFlags::USER_FULL);
        tb.map_range(layout.cold, layout.cold, layout.cold_len, PtFlags::KERNEL);
        tb.map_range(
            simbench_platform::DEVICE_BASE,
            simbench_platform::DEVICE_BASE,
            0x5000,
            PtFlags::KERNEL_DEVICE,
        );
        let (ttb, blob) = tb.into_blob();

        // Vector table: a branch per exception kind, 0x20 apart. The
        // 2-byte `c.nop` filler keeps every entry halfword aligned.
        a.org(layout.vectors);
        let mut handler_labels = Vec::new();
        for kind in ExceptionKind::ALL {
            let l = a.new_label();
            let entry = layout.vectors + VECTOR_STRIDE * kind.vector_index() as u32;
            while a.here() < entry {
                a.nop();
            }
            a.b(l);
            handler_labels.push((kind, l));
        }

        // Handlers.
        a.org(layout.handlers);
        for (kind, l) in handler_labels {
            a.bind(l);
            self.emit_handler(&mut a, spec.handlers.for_kind(kind), &layout);
        }

        // Boot: stack, TTB, TLB flush, paging on, optional IRQ unmask,
        // then jump into the benchmark body.
        a.org(layout.boot);
        let code_entry = a.new_label();
        a.mov_imm(PReg::Sp, layout.stack_top);
        a.mov_imm(PReg::A, ttb);
        a.csrw(csr::TTB, PReg::A);
        a.csrw(csr::TLB_FLUSH, PReg::A);
        a.mov_imm(PReg::A, 1);
        a.csrw(csr::CTRL, PReg::A);
        if spec.enable_irqs {
            a.mov_imm(PReg::A, layout.intc);
            a.mov_imm(PReg::B, 1);
            a.store(
                PReg::B,
                PReg::A,
                simbench_platform::devices::INTC_ENABLE as i32,
            );
            a.mov_imm(PReg::A, 1);
            a.csrw(csr::IRQ_CTL, PReg::A);
        }
        a.b(code_entry);

        // Benchmark body.
        a.org(layout.code);
        a.bind(code_entry);
        body(&mut a, self, &layout);

        // Page-table blob.
        a.org(layout.tables);
        a.bytes(&blob);

        a.finish(layout.boot)
    }

    fn emit_safe_coproc_read(&self, a: &mut Self::Asm, rd: PReg) {
        // MISA: a read-only constant, the designated side-effect-free
        // system-register read.
        a.csrr(rd, csr::MISA);
    }

    fn emit_nonpriv_load(&self, _a: &mut Self::Asm, _rd: PReg, _base: PReg, _off: i32) -> bool {
        false // no ldrt equivalent: base RISC-V has no non-privileged forms
    }

    fn emit_nonpriv_store(&self, _a: &mut Self::Asm, _rs: PReg, _base: PReg, _off: i32) -> bool {
        false
    }

    fn emit_tlb_inv_page(&self, a: &mut Self::Asm, rva: PReg) {
        a.csrw(csr::TLB_INV, rva);
    }

    fn emit_tlb_flush(&self, a: &mut Self::Asm, scratch: PReg) {
        a.csrw(csr::TLB_FLUSH, scratch);
    }
}

//! # simbench-suite
//!
//! The SimBench micro-benchmark suite: eighteen bare-metal guest
//! benchmarks in five categories (Fig 3 of the paper), written once
//! against the portable assembler interface and assembled per
//! architecture by a [`support::Support`] package.
//!
//! Each benchmark image runs in three phases (paper §II): untimed setup,
//! the timed kernel (bracketed by phase marks the engines turn into
//! [`simbench_core::engine::PhaseStats`]), and untimed cleanup ending in
//! `halt`.
//!
//! ## Example
//!
//! ```
//! use simbench_suite::{build, ArmletSupport, Benchmark};
//!
//! let image = build(&ArmletSupport::new(), Benchmark::Syscall, 100).unwrap();
//! assert!(image.size() > 0);
//! ```

pub mod bodies;
pub mod support;

mod armlet_support;
mod petix_support;
mod riscle_support;

pub use armlet_support::ArmletSupport;
pub use petix_support::PetixSupport;
pub use riscle_support::RiscleSupport;
pub use support::{BootSpec, HandlerKind, Handlers, Layout, Support};

use simbench_core::events::Counters;
use simbench_core::image::GuestImage;

/// Benchmark categories (Fig 3 groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// DBT code-generation speed and self-modifying code.
    CodeGeneration,
    /// Branch handling by page locality and target kind.
    ControlFlow,
    /// Exception and interrupt delivery.
    ExceptionHandling,
    /// Memory-mapped and coprocessor I/O.
    Io,
    /// Address translation and TLB behaviour.
    MemorySystem,
}

impl Category {
    /// All categories in paper order.
    pub const ALL: [Category; 5] = [
        Category::CodeGeneration,
        Category::ControlFlow,
        Category::ExceptionHandling,
        Category::Io,
        Category::MemorySystem,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Category::CodeGeneration => "Code Generation",
            Category::ControlFlow => "Control Flow",
            Category::ExceptionHandling => "Exception Handling",
            Category::Io => "I/O",
            Category::MemorySystem => "Memory System",
        }
    }
}

/// The eighteen SimBench benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Many small rewritten blocks (code generation).
    SmallBlocks,
    /// One huge rewritten block (code generation).
    LargeBlocks,
    /// Direct tail calls across pages.
    InterPageDirect,
    /// Indirect tail calls across pages.
    InterPageIndirect,
    /// Direct tail calls within a page.
    IntraPageDirect,
    /// Indirect tail calls within a page.
    IntraPageIndirect,
    /// Loads from unmapped memory.
    DataFault,
    /// Calls into unmapped memory.
    InsnFault,
    /// Architecturally undefined instructions.
    UndefInsn,
    /// System calls.
    Syscall,
    /// Software-generated external interrupts.
    ExtSwi,
    /// Safe memory-mapped device reads.
    MmioDevice,
    /// Safe coprocessor reads.
    CoprocAccess,
    /// One read per page over a large region.
    MemCold,
    /// Load/store pairs on one hot page.
    MemHot,
    /// Non-privileged accesses (armlet only).
    NonprivAccess,
    /// Cold walk with per-page TLB eviction.
    TlbEvict,
    /// Cold walk with full TLB flushes.
    TlbFlush,
}

impl Benchmark {
    /// All benchmarks in Fig 3 order.
    pub const ALL: [Benchmark; 18] = [
        Benchmark::SmallBlocks,
        Benchmark::LargeBlocks,
        Benchmark::InterPageDirect,
        Benchmark::InterPageIndirect,
        Benchmark::IntraPageDirect,
        Benchmark::IntraPageIndirect,
        Benchmark::DataFault,
        Benchmark::InsnFault,
        Benchmark::UndefInsn,
        Benchmark::Syscall,
        Benchmark::ExtSwi,
        Benchmark::MmioDevice,
        Benchmark::CoprocAccess,
        Benchmark::MemCold,
        Benchmark::MemHot,
        Benchmark::NonprivAccess,
        Benchmark::TlbEvict,
        Benchmark::TlbFlush,
    ];

    /// Display name (matches Fig 3 / Fig 7 rows).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::SmallBlocks => "Small Blocks",
            Benchmark::LargeBlocks => "Large Blocks",
            Benchmark::InterPageDirect => "Inter-Page Direct",
            Benchmark::InterPageIndirect => "Inter-Page Indirect",
            Benchmark::IntraPageDirect => "Intra-Page Direct",
            Benchmark::IntraPageIndirect => "Intra-Page Indirect",
            Benchmark::DataFault => "Data Access Fault",
            Benchmark::InsnFault => "Instruction Access Fault",
            Benchmark::UndefInsn => "Undefined Instruction",
            Benchmark::Syscall => "System Call",
            Benchmark::ExtSwi => "External Software Interrupt",
            Benchmark::MmioDevice => "Memory Mapped Device",
            Benchmark::CoprocAccess => "Coprocessor Access",
            Benchmark::MemCold => "Cold Memory Access",
            Benchmark::MemHot => "Hot Memory Access",
            Benchmark::NonprivAccess => "Nonprivileged Access",
            Benchmark::TlbEvict => "TLB Eviction",
            Benchmark::TlbFlush => "TLB Flush",
        }
    }

    /// The benchmark's category.
    pub fn category(self) -> Category {
        match self {
            Benchmark::SmallBlocks | Benchmark::LargeBlocks => Category::CodeGeneration,
            Benchmark::InterPageDirect
            | Benchmark::InterPageIndirect
            | Benchmark::IntraPageDirect
            | Benchmark::IntraPageIndirect => Category::ControlFlow,
            Benchmark::DataFault
            | Benchmark::InsnFault
            | Benchmark::UndefInsn
            | Benchmark::Syscall
            | Benchmark::ExtSwi => Category::ExceptionHandling,
            Benchmark::MmioDevice | Benchmark::CoprocAccess => Category::Io,
            Benchmark::MemCold
            | Benchmark::MemHot
            | Benchmark::NonprivAccess
            | Benchmark::TlbEvict
            | Benchmark::TlbFlush => Category::MemorySystem,
        }
    }

    /// The paper's default iteration count (Fig 3).
    pub fn paper_iterations(self) -> u64 {
        match self {
            Benchmark::SmallBlocks => 100_000,
            Benchmark::LargeBlocks => 500_000,
            Benchmark::InterPageDirect => 100_000_000,
            Benchmark::InterPageIndirect => 250_000,
            Benchmark::IntraPageDirect => 500_000_000,
            Benchmark::IntraPageIndirect => 200_000,
            Benchmark::DataFault => 25_000_000,
            Benchmark::InsnFault => 25_000_000,
            Benchmark::UndefInsn => 50_000_000,
            Benchmark::Syscall => 50_000_000,
            Benchmark::ExtSwi => 20_000_000,
            Benchmark::MmioDevice => 400_000_000,
            Benchmark::CoprocAccess => 250_000_000,
            Benchmark::MemCold => 50_000_000,
            Benchmark::MemHot => 500_000_000,
            Benchmark::NonprivAccess => 300_000_000,
            Benchmark::TlbEvict => 4_000_000,
            Benchmark::TlbFlush => 4_000_000,
        }
    }

    /// Iterations at a given divisor, floored to keep kernels non-trivial.
    pub fn scaled_iterations(self, scale: u64) -> u32 {
        (self.paper_iterations() / scale.max(1)).clamp(16, u32::MAX as u64) as u32
    }

    /// Benchmarks with significant platform-specific portions (Fig 3's
    /// `†` marks).
    pub fn platform_specific(self) -> bool {
        matches!(self, Benchmark::ExtSwi | Benchmark::MmioDevice)
    }

    /// Whether the benchmark exists on an architecture (the
    /// non-privileged access benchmark is armlet-only; the paper's x86
    /// port makes it a no-op). Driven by each support package's
    /// [`Support::HAS_NONPRIV`] capability, not a hand-kept name list.
    pub fn supported_on(self, isa_name: &str) -> bool {
        !matches!(self, Benchmark::NonprivAccess) || has_nonpriv(isa_name)
    }

    /// Count of the benchmark's *tested operation* in a counter delta —
    /// the numerator of Fig 3's operation density.
    pub fn tested_ops(self, c: &Counters) -> u64 {
        match self {
            // Code modifications are only observable on engines that
            // track translations (the DBT); Fig 3 measures there.
            Benchmark::SmallBlocks | Benchmark::LargeBlocks => c.code_invalidations,
            Benchmark::InterPageDirect => c.branch_inter_direct,
            Benchmark::InterPageIndirect => c.branch_inter_indirect,
            Benchmark::IntraPageDirect => c.branch_intra_direct,
            Benchmark::IntraPageIndirect => c.branch_intra_indirect,
            Benchmark::DataFault => c.data_faults,
            Benchmark::InsnFault => c.insn_faults,
            Benchmark::UndefInsn => c.undef_insns,
            Benchmark::Syscall => c.syscalls,
            Benchmark::ExtSwi => c.irqs_delivered,
            Benchmark::MmioDevice => c.mmio_accesses,
            Benchmark::CoprocAccess => c.coproc_accesses,
            Benchmark::MemCold => c.tlb_misses,
            Benchmark::MemHot => c.mem_accesses(),
            Benchmark::NonprivAccess => c.nonpriv_accesses,
            Benchmark::TlbEvict => c.tlb_invalidate_page,
            Benchmark::TlbFlush => c.tlb_flushes,
        }
    }

    /// The boot specification the benchmark needs.
    pub fn boot_spec(self) -> BootSpec {
        let mut spec = BootSpec::default();
        match self {
            Benchmark::InsnFault => spec.handlers.prefetch_abort = HandlerKind::ResumeFromLink,
            Benchmark::ExtSwi => {
                spec.handlers.irq = HandlerKind::AckIrqEret;
                spec.enable_irqs = true;
            }
            _ => {}
        }
        spec
    }
}

/// Whether the named architecture has non-privileged load/store forms,
/// read from the support packages' capability constants.
fn has_nonpriv(isa_name: &str) -> bool {
    const CAPS: [(&str, bool); 3] = [
        (ArmletSupport::ISA_NAME, ArmletSupport::HAS_NONPRIV),
        (PetixSupport::ISA_NAME, PetixSupport::HAS_NONPRIV),
        (RiscleSupport::ISA_NAME, RiscleSupport::HAS_NONPRIV),
    ];
    CAPS.iter().any(|&(name, cap)| name == isa_name && cap)
}

/// Assemble a benchmark image for a support package at an explicit
/// iteration count. Returns `None` when the benchmark does not exist on
/// the architecture.
pub fn build<S: Support>(s: &S, bench: Benchmark, iterations: u32) -> Option<GuestImage> {
    if !bench.supported_on(S::ISA_NAME) {
        return None;
    }
    let spec = bench.boot_spec();
    let img = s.build(spec, |a, s, layout| match bench {
        Benchmark::SmallBlocks => bodies::small_blocks(a, s, layout, iterations),
        Benchmark::LargeBlocks => bodies::large_blocks(a, s, layout, iterations),
        Benchmark::InterPageDirect => bodies::inter_page_direct(a, s, layout, iterations),
        Benchmark::InterPageIndirect => bodies::inter_page_indirect(a, s, layout, iterations),
        Benchmark::IntraPageDirect => bodies::intra_page_direct(a, s, layout, iterations),
        Benchmark::IntraPageIndirect => bodies::intra_page_indirect(a, s, layout, iterations),
        Benchmark::DataFault => bodies::data_fault(a, s, layout, iterations),
        Benchmark::InsnFault => bodies::insn_fault(a, s, layout, iterations),
        Benchmark::UndefInsn => bodies::undef_insn(a, s, layout, iterations),
        Benchmark::Syscall => bodies::syscall(a, s, layout, iterations),
        Benchmark::ExtSwi => bodies::ext_swi(a, s, layout, iterations),
        Benchmark::MmioDevice => bodies::mmio_device(a, s, layout, iterations),
        Benchmark::CoprocAccess => bodies::coproc_access(a, s, layout, iterations),
        Benchmark::MemCold => bodies::mem_cold(a, s, layout, iterations),
        Benchmark::MemHot => bodies::mem_hot(a, s, layout, iterations),
        Benchmark::NonprivAccess => {
            bodies::nonpriv_access(a, s, layout, iterations);
        }
        Benchmark::TlbEvict => bodies::tlb_evict(a, s, layout, iterations),
        Benchmark::TlbFlush => bodies::tlb_flush(a, s, layout, iterations),
    });
    Some(img)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_benchmarks_five_categories() {
        assert_eq!(Benchmark::ALL.len(), 18);
        for cat in Category::ALL {
            assert!(Benchmark::ALL.iter().any(|b| b.category() == cat));
        }
    }

    #[test]
    fn paper_iteration_counts_match_fig3() {
        assert_eq!(Benchmark::IntraPageDirect.paper_iterations(), 500_000_000);
        assert_eq!(Benchmark::TlbFlush.paper_iterations(), 4_000_000);
        assert_eq!(Benchmark::MmioDevice.paper_iterations(), 400_000_000);
    }

    #[test]
    fn scaling_floors() {
        assert_eq!(Benchmark::TlbFlush.scaled_iterations(u64::MAX), 16);
        assert_eq!(Benchmark::MemHot.scaled_iterations(1000), 500_000);
    }

    #[test]
    fn nonpriv_unsupported_on_petix() {
        assert!(Benchmark::NonprivAccess.supported_on("armlet"));
        assert!(!Benchmark::NonprivAccess.supported_on("petix"));
        assert!(!Benchmark::NonprivAccess.supported_on("riscle"));
        assert!(build(&PetixSupport::new(), Benchmark::NonprivAccess, 10).is_none());
        assert!(build(&RiscleSupport::new(), Benchmark::NonprivAccess, 10).is_none());
    }

    #[test]
    fn platform_specific_marks() {
        assert!(Benchmark::ExtSwi.platform_specific());
        assert!(Benchmark::MmioDevice.platform_specific());
        assert!(!Benchmark::Syscall.platform_specific());
    }

    #[test]
    fn all_images_assemble_on_every_isa() {
        fn check<S: Support>(s: &S) {
            for bench in Benchmark::ALL {
                if bench.supported_on(S::ISA_NAME) {
                    let img = build(s, bench, 32).unwrap();
                    assert!(img.size() > 0, "{bench:?} {} image empty", S::ISA_NAME);
                }
            }
        }
        check(&ArmletSupport::new());
        check(&PetixSupport::new());
        check(&RiscleSupport::new());
    }
}

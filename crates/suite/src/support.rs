//! Architecture/platform support packages.
//!
//! The paper's benchmarks contain no architecture- or platform-specific
//! code: everything of that kind lives in *support packages* (§II-C).
//! [`Support`] is that boundary here. A support package owns:
//!
//! * the memory [`Layout`] and static page tables,
//! * boot code (stack, TTBR/CR3, MMU enable, vector base),
//! * the exception vector table and the three canonical handler shapes,
//! * the architecture-specific operations benchmarks request (safe
//!   coprocessor read, non-privileged access, TLB maintenance, interrupt
//!   trigger plumbing).
//!
//! Porting SimBench-rs to a new architecture means implementing this
//! trait (plus an [`PortableAsm`] assembler) — no benchmark changes.

use simbench_core::asm::{PReg, PortableAsm};
use simbench_core::fault::ExceptionKind;
use simbench_core::image::GuestImage;

/// Guest-visible memory layout shared by both support packages.
///
/// All code/data regions are identity-mapped (VA == PA) so the paper's
/// bare-metal structure — boot with MMU off, enable it, keep running —
/// works without relocation.
#[derive(Debug, Clone, Copy)]
pub struct Layout {
    /// Vector table base (VA 0).
    pub vectors: u32,
    /// Exception handlers.
    pub handlers: u32,
    /// Boot code / image entry.
    pub boot: u32,
    /// Benchmark code.
    pub code: u32,
    /// Read-write data.
    pub data: u32,
    /// Top of the stack (grows down).
    pub stack_top: u32,
    /// Physical base of the page tables.
    pub tables: u32,
    /// Large cold-access region base.
    pub cold: u32,
    /// Cold region length in bytes.
    pub cold_len: u32,
    /// A virtual address guaranteed unmapped (fault benchmarks).
    pub unmapped: u32,
    /// Identity-mapped UART.
    pub uart: u32,
    /// Identity-mapped interrupt controller.
    pub intc: u32,
    /// Identity-mapped safe device.
    pub safedev: u32,
    /// Identity-mapped control device.
    pub ctl: u32,
}

impl Default for Layout {
    fn default() -> Self {
        Layout {
            vectors: 0x0000_0000,
            handlers: 0x0000_1000,
            boot: 0x0000_8000,
            code: 0x0001_0000,
            data: 0x0200_0000,
            stack_top: 0x0210_0000,
            tables: 0x0300_0000,
            cold: 0x0400_0000,
            cold_len: 16 << 20,
            unmapped: 0x7000_0000,
            uart: simbench_platform::UART_BASE,
            intc: simbench_platform::INTC_BASE,
            safedev: simbench_platform::SAFEDEV_BASE,
            ctl: simbench_platform::CTL_BASE,
        }
    }
}

/// The three handler shapes the suite needs (paper §II-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HandlerKind {
    /// Return to the banked resume address (which both ISAs set to the
    /// *next* instruction for synchronous exceptions).
    #[default]
    Eret,
    /// Recover the caller's return address — from the link register on
    /// armlet, by unwinding the stack on petix — and resume there. Used
    /// by the Instruction Access Fault benchmark.
    ResumeFromLink,
    /// Acknowledge the interrupt controller, then return. Used by the
    /// External Software Interrupt benchmark.
    AckIrqEret,
}

/// Handler selection for all five vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct Handlers {
    /// Undefined instruction.
    pub undef: HandlerKind,
    /// System call.
    pub syscall: HandlerKind,
    /// Data abort.
    pub data_abort: HandlerKind,
    /// Prefetch abort.
    pub prefetch_abort: HandlerKind,
    /// External interrupt.
    pub irq: HandlerKind,
}

impl Handlers {
    /// The handler for a given exception kind.
    pub fn for_kind(&self, kind: ExceptionKind) -> HandlerKind {
        match kind {
            ExceptionKind::Undef => self.undef,
            ExceptionKind::Syscall => self.syscall,
            ExceptionKind::DataAbort => self.data_abort,
            ExceptionKind::PrefetchAbort => self.prefetch_abort,
            ExceptionKind::Irq => self.irq,
        }
    }
}

/// Boot-time options.
#[derive(Debug, Clone, Copy, Default)]
pub struct BootSpec {
    /// Handler shapes to install.
    pub handlers: Handlers,
    /// Enable IRQ delivery and unmask INTC line 0 before entering the
    /// benchmark body.
    pub enable_irqs: bool,
}

/// An architecture + platform support package.
pub trait Support {
    /// The architecture's assembler.
    type Asm: PortableAsm;

    /// Architecture name (matches `Isa::NAME`).
    const ISA_NAME: &'static str;

    /// Whether the architecture has non-privileged load/store
    /// instructions (armlet yes, petix no — paper §II-A).
    const HAS_NONPRIV: bool;

    /// The memory layout.
    fn layout(&self) -> Layout {
        Layout::default()
    }

    /// Assemble a complete bootable benchmark image: vector table,
    /// handlers, page tables, boot code, then the benchmark `body`
    /// emitted at `layout().code`. The body receives the assembler, the
    /// support package (for arch-specific operations) and the layout; it
    /// must end with `halt`.
    fn build(
        &self,
        spec: BootSpec,
        body: impl FnOnce(&mut Self::Asm, &Self, &Layout),
    ) -> GuestImage;

    /// Emit the designated side-effect-free coprocessor read (armlet:
    /// CP15 DACR; petix: FPU control word).
    fn emit_safe_coproc_read(&self, a: &mut Self::Asm, rd: PReg);

    /// Emit a non-privileged load `rd = [base + off]` if the
    /// architecture supports one. Returns `false` (emitting nothing) on
    /// architectures without the feature.
    fn emit_nonpriv_load(&self, a: &mut Self::Asm, rd: PReg, base: PReg, off: i32) -> bool;

    /// Emit a non-privileged store, mirroring [`Support::emit_nonpriv_load`].
    fn emit_nonpriv_store(&self, a: &mut Self::Asm, rs: PReg, base: PReg, off: i32) -> bool;

    /// Emit a single-page TLB invalidation for the virtual address held
    /// in `rva`.
    fn emit_tlb_inv_page(&self, a: &mut Self::Asm, rva: PReg);

    /// Emit a full TLB flush. May clobber `scratch`.
    fn emit_tlb_flush(&self, a: &mut Self::Asm, scratch: PReg);
}

/// Emit a benchmark-phase mark (1 = kernel start, 2 = kernel end).
/// Clobbers `PReg::D` and `PReg::Lr` only — benchmark state in
/// `A`/`B`/`E` survives across marks.
pub fn emit_phase_mark<A: PortableAsm>(a: &mut A, layout: &Layout, mark: u32) {
    a.mov_imm(PReg::D, layout.ctl);
    a.mov_imm(PReg::Lr, mark);
    a.store(PReg::Lr, PReg::D, 0);
}

/// Emit a counted loop: `C = iterations; do { body } while (--C != 0)`.
/// The body must preserve `PReg::C`.
pub fn emit_counted_loop<A: PortableAsm>(a: &mut A, iterations: u32, body: impl FnOnce(&mut A)) {
    use simbench_core::ir::{AluOp, Cond};
    a.mov_imm(PReg::C, iterations);
    let top = a.new_label();
    a.bind(top);
    body(a);
    a.alu_ri(AluOp::Sub, PReg::C, PReg::C, 1);
    a.cmp_ri(PReg::C, 0);
    a.b_cond(Cond::Ne, top);
}

//! The armlet architecture + platform support package.

use simbench_core::asm::{PReg, PortableAsm};
use simbench_core::fault::ExceptionKind;
use simbench_core::image::GuestImage;
use simbench_isa_armlet::sys::{cp14, cp15, CP_BANK, CP_SYS, VECTOR_STRIDE};
use simbench_isa_armlet::{Access, ArmletAsm, TableBuilder};

use crate::support::{BootSpec, HandlerKind, Layout, Support};

/// armlet support package.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArmletSupport;

impl ArmletSupport {
    /// New support package.
    pub fn new() -> Self {
        ArmletSupport
    }

    fn emit_handler(&self, a: &mut ArmletAsm, kind: HandlerKind, layout: &Layout) {
        match kind {
            HandlerKind::Eret => a.eret(),
            HandlerKind::ResumeFromLink => {
                // The faulted call left its return address in LR.
                a.mcr(CP_BANK, cp14::SAVED_PC, PReg::Lr);
                a.eret();
            }
            HandlerKind::AckIrqEret => {
                // Clobbers D and E (documented: IRQ-driven benchmarks
                // keep D/E dead in their kernels).
                a.mov_imm(PReg::D, layout.intc);
                a.mov_imm(PReg::E, 1);
                a.store(
                    PReg::E,
                    PReg::D,
                    simbench_platform::devices::INTC_ACK as i32,
                );
                a.eret();
            }
        }
    }
}

impl Support for ArmletSupport {
    type Asm = ArmletAsm;
    const ISA_NAME: &'static str = "armlet";
    const HAS_NONPRIV: bool = true;

    fn build(
        &self,
        spec: BootSpec,
        body: impl FnOnce(&mut Self::Asm, &Self, &Layout),
    ) -> GuestImage {
        let layout = self.layout();
        let mut a = ArmletAsm::new();

        // Static page tables: identity maps for code, data, cold region,
        // and the device pages. ARM-style sections where aligned.
        let mut tb = TableBuilder::new(layout.tables);
        tb.map_range(0, 0, 0x0060_0000, Access::KernelOnly);
        tb.map_range(layout.data, layout.data, 0x0020_0000, Access::UserFull);
        tb.map_range(
            layout.cold,
            layout.cold,
            layout.cold_len,
            Access::KernelOnly,
        );
        tb.map_range(
            simbench_platform::DEVICE_BASE,
            simbench_platform::DEVICE_BASE,
            0x5000,
            Access::KernelDevice,
        );
        let (tbase, blob) = tb.into_blob();

        // Vector table: a branch per exception kind, 0x20 apart.
        a.org(layout.vectors);
        let mut handler_labels = Vec::new();
        for kind in ExceptionKind::ALL {
            let l = a.new_label();
            let entry = layout.vectors + VECTOR_STRIDE * kind.vector_index() as u32;
            while a.here() < entry {
                a.word(0);
            }
            a.b(l);
            handler_labels.push((kind, l));
        }

        // Handlers.
        a.org(layout.handlers);
        for (kind, l) in handler_labels {
            a.bind(l);
            self.emit_handler(&mut a, spec.handlers.for_kind(kind), &layout);
        }

        // Boot: stack, TTBR, TLB flush, MMU on, optional IRQ unmask,
        // then jump into the benchmark body.
        a.org(layout.boot);
        let code_entry = a.new_label();
        a.mov_imm(PReg::Sp, layout.stack_top);
        a.mov_imm(PReg::A, tbase);
        a.mcr(CP_SYS, cp15::TTBR, PReg::A);
        a.mcr(CP_SYS, cp15::TLBIALL, PReg::A);
        a.mov_imm(PReg::A, 1);
        a.mcr(CP_SYS, cp15::SCTLR, PReg::A);
        if spec.enable_irqs {
            a.mov_imm(PReg::A, layout.intc);
            a.mov_imm(PReg::B, 1);
            a.store(
                PReg::B,
                PReg::A,
                simbench_platform::devices::INTC_ENABLE as i32,
            );
            a.mov_imm(PReg::A, 1);
            a.mcr(CP_BANK, cp14::IRQ_CTL, PReg::A);
        }
        a.b(code_entry);

        // Benchmark body.
        a.org(layout.code);
        a.bind(code_entry);
        body(&mut a, self, &layout);

        // Page-table blob.
        a.org(layout.tables);
        a.bytes(&blob);

        a.finish(layout.boot)
    }

    fn emit_safe_coproc_read(&self, a: &mut Self::Asm, rd: PReg) {
        // The paper's chosen ARM safe read: the Domain Access Control
        // register.
        a.mrc(CP_SYS, cp15::DACR, rd);
    }

    fn emit_nonpriv_load(&self, a: &mut Self::Asm, rd: PReg, base: PReg, off: i32) -> bool {
        a.ldrt(rd, base, off);
        true
    }

    fn emit_nonpriv_store(&self, a: &mut Self::Asm, rs: PReg, base: PReg, off: i32) -> bool {
        a.strt(rs, base, off);
        true
    }

    fn emit_tlb_inv_page(&self, a: &mut Self::Asm, rva: PReg) {
        a.mcr(CP_SYS, cp15::TLBIMVA, rva);
    }

    fn emit_tlb_flush(&self, a: &mut Self::Asm, scratch: PReg) {
        a.mcr(CP_SYS, cp15::TLBIALL, scratch);
    }
}

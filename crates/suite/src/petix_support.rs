//! The petix architecture + platform support package.

use simbench_core::asm::{PReg, PortableAsm};
use simbench_core::fault::ExceptionKind;
use simbench_core::image::GuestImage;
use simbench_isa_petix::sys::{cr, VECTOR_STRIDE};
use simbench_isa_petix::{PetixAsm, PtFlags, TableBuilder};

use crate::support::{BootSpec, HandlerKind, Layout, Support};

/// petix support package.
#[derive(Debug, Clone, Copy, Default)]
pub struct PetixSupport;

impl PetixSupport {
    /// New support package.
    pub fn new() -> Self {
        PetixSupport
    }

    fn emit_handler(&self, a: &mut PetixAsm, kind: HandlerKind, layout: &Layout) {
        match kind {
            HandlerKind::Eret => a.eret(),
            HandlerKind::ResumeFromLink => {
                // The faulted call pushed its return address: unwind the
                // stack into the banked resume register (the paper notes
                // this unwinding is required on x86). Clobbers D.
                a.pop(PReg::D);
                a.mov_to_cr(cr::SAVED_PC, PReg::D);
                a.eret();
            }
            HandlerKind::AckIrqEret => {
                // Clobbers D and E, as on armlet.
                a.mov_imm(PReg::D, layout.intc);
                a.mov_imm(PReg::E, 1);
                a.store(
                    PReg::E,
                    PReg::D,
                    simbench_platform::devices::INTC_ACK as i32,
                );
                a.eret();
            }
        }
    }
}

impl Support for PetixSupport {
    type Asm = PetixAsm;
    const ISA_NAME: &'static str = "petix";
    const HAS_NONPRIV: bool = false;

    fn build(
        &self,
        spec: BootSpec,
        body: impl FnOnce(&mut Self::Asm, &Self, &Layout),
    ) -> GuestImage {
        let layout = self.layout();
        let mut a = PetixAsm::new();

        // Static x86-style two-level page tables, identity mapped.
        let mut tb = TableBuilder::new(layout.tables);
        tb.map_range(0, 0, 0x0060_0000, PtFlags::KERNEL);
        tb.map_range(layout.data, layout.data, 0x0020_0000, PtFlags::USER_FULL);
        tb.map_range(layout.cold, layout.cold, layout.cold_len, PtFlags::KERNEL);
        tb.map_range(
            simbench_platform::DEVICE_BASE,
            simbench_platform::DEVICE_BASE,
            0x5000,
            PtFlags::KERNEL_DEVICE,
        );
        let (cr3, blob) = tb.into_blob();

        // Vector table.
        a.org(layout.vectors);
        let mut handler_labels = Vec::new();
        for kind in ExceptionKind::ALL {
            let l = a.new_label();
            let entry = layout.vectors + VECTOR_STRIDE * kind.vector_index() as u32;
            while a.here() < entry {
                a.nop();
            }
            a.b(l);
            handler_labels.push((kind, l));
        }

        // Handlers.
        a.org(layout.handlers);
        for (kind, l) in handler_labels {
            a.bind(l);
            self.emit_handler(&mut a, spec.handlers.for_kind(kind), &layout);
        }

        // Boot.
        a.org(layout.boot);
        let code_entry = a.new_label();
        a.mov_imm(PReg::Sp, layout.stack_top);
        a.mov_imm(PReg::A, cr3);
        a.mov_to_cr(cr::CR3, PReg::A);
        a.mov_to_cr(cr::TLB_FLUSH, PReg::A);
        a.mov_imm(PReg::A, 1);
        a.mov_to_cr(cr::CR0, PReg::A);
        if spec.enable_irqs {
            a.mov_imm(PReg::A, layout.intc);
            a.mov_imm(PReg::B, 1);
            a.store(
                PReg::B,
                PReg::A,
                simbench_platform::devices::INTC_ENABLE as i32,
            );
            a.mov_imm(PReg::A, 1);
            a.mov_to_cr(cr::IRQ_CTL, PReg::A);
        }
        a.b(code_entry);

        // Benchmark body.
        a.org(layout.code);
        a.bind(code_entry);
        body(&mut a, self, &layout);

        // Page tables.
        a.org(layout.tables);
        a.bytes(&blob);

        a.finish(layout.boot)
    }

    fn emit_safe_coproc_read(&self, a: &mut Self::Asm, rd: PReg) {
        // The FPU control word: side-effect-free, not constant-foldable
        // without device knowledge (the x86 analogue the paper uses is a
        // repeated FPU reset; a FCW read exercises the same trap path).
        a.mov_from_cr(rd, cr::FPCW);
    }

    fn emit_nonpriv_load(&self, _a: &mut Self::Asm, _rd: PReg, _base: PReg, _off: i32) -> bool {
        false // no ldrt equivalent on x86-style ISAs (paper §II-A)
    }

    fn emit_nonpriv_store(&self, _a: &mut Self::Asm, _rs: PReg, _base: PReg, _off: i32) -> bool {
        false
    }

    fn emit_tlb_inv_page(&self, a: &mut Self::Asm, rva: PReg) {
        a.mov_to_cr(cr::INVLPG, rva);
    }

    fn emit_tlb_flush(&self, a: &mut Self::Asm, scratch: PReg) {
        a.mov_to_cr(cr::TLB_FLUSH, scratch);
    }
}

//! # simbench-interp
//!
//! A *fast interpreter* full-system engine, the SimIt-ARM analogue of the
//! paper's evaluation: no code generation, per-instruction decode, a
//! single-entry translation cache per access class ("Single Level Cache"
//! in Fig 4), and interrupt checks at instruction boundaries.
//!
//! Because nothing is cached across executions of the same address, this
//! engine is fast on fresh / self-modifying code (it wins the Code
//! Generation benchmarks, as SimIt-ARM does) and comparatively slow on
//! hot loops (it loses Hot Memory Access and Intra-Page Direct, as
//! SimIt-ARM does).

use std::marker::PhantomData;
use std::time::Instant;

use simbench_core::bus::{Bus, BusEvent};
use simbench_core::cpu::{CpuState, Flags};
use simbench_core::engine::{Engine, EngineInfo, ExitReason, PhaseTracker, RunLimits, RunOutcome};
use simbench_core::events::Counters;
use simbench_core::exec::{step_op, BranchFlavor, ExecCtx, OpOutcome, Trap};
use simbench_core::fault::{AccessKind, CopFault, ExcInfo, ExceptionKind, FaultKind, MemFault};
use simbench_core::ir::{Decoded, MemSize, Op};
use simbench_core::isa::{CopEffect, Isa};
use simbench_core::machine::Machine;
use simbench_core::page_of;
use simbench_core::tlb::SingleEntryCache;

/// How many main-loop iterations between wall-clock limit checks.
/// Iterations, not retired instructions: IRQ-delivery and
/// prefetch-abort iterations retire nothing, and a storm of them must
/// still honor `--wall-limit`.
const WALL_CHECK_PERIOD: u64 = 0x1_0000;

/// The fast interpreter engine.
#[derive(Debug, Default)]
pub struct Interp<I: Isa> {
    icache: SingleEntryCache,
    dcache: SingleEntryCache,
    _isa: PhantomData<I>,
}

impl<I: Isa> Interp<I> {
    /// A fresh interpreter.
    pub fn new() -> Self {
        Interp {
            icache: SingleEntryCache::new(),
            dcache: SingleEntryCache::new(),
            _isa: PhantomData,
        }
    }
}

/// Per-run execution context: machine borrows plus the engine's caches.
struct Ctx<'a, I: Isa, B: Bus> {
    cpu: &'a mut CpuState,
    sys: &'a mut I::Sys,
    bus: &'a mut B,
    dcache: &'a mut SingleEntryCache,
    icache: &'a mut SingleEntryCache,
    counters: &'a mut Counters,
    phase_mark: Option<u8>,
}

impl<I: Isa, B: Bus> Ctx<'_, I, B> {
    fn translate_data(
        &mut self,
        va: u32,
        size: MemSize,
        access: AccessKind,
        nonpriv: bool,
    ) -> Result<u32, MemFault> {
        if !size.aligned(va) {
            return Err(MemFault {
                addr: va,
                access,
                kind: FaultKind::Unaligned,
            });
        }
        if !I::mmu_enabled(self.sys) {
            return Ok(va);
        }
        let vpage = page_of(va);
        let entry = match self.dcache.lookup(vpage) {
            Some(e) => {
                self.counters.tlb_hits += 1;
                e
            }
            None => {
                self.counters.tlb_misses += 1;
                static OBS_TLB_REFILLS: simbench_obs::Counter =
                    simbench_obs::Counter::new("interp.tlb_refills");
                OBS_TLB_REFILLS.add(1);
                let e = I::walk(self.sys, self.bus, va).map_err(|mut f| {
                    f.access = access;
                    f
                })?;
                self.dcache.insert(e);
                e
            }
        };
        entry.check(va, access, self.cpu.level.is_kernel(), nonpriv)
    }

    fn apply_cop_effect(&mut self, effect: CopEffect) {
        match effect {
            CopEffect::None => {}
            CopEffect::TlbInvPage(va) => {
                self.counters.tlb_invalidate_page += 1;
                let vpage = page_of(va);
                self.dcache.invalidate_page(vpage);
                self.icache.invalidate_page(vpage);
            }
            CopEffect::TlbFlush => {
                self.counters.tlb_flushes += 1;
                self.dcache.flush();
                self.icache.flush();
            }
            CopEffect::ContextChanged => {
                self.dcache.flush();
                self.icache.flush();
            }
        }
    }
}

impl<I: Isa, B: Bus> ExecCtx for Ctx<'_, I, B> {
    fn reg(&self, r: u8) -> u32 {
        self.cpu.regs[r as usize]
    }
    fn set_reg(&mut self, r: u8, v: u32) {
        self.cpu.regs[r as usize] = v;
    }
    fn flags(&self) -> Flags {
        self.cpu.flags
    }
    fn set_flags(&mut self, f: Flags) {
        self.cpu.flags = f;
    }
    fn privileged(&self) -> bool {
        self.cpu.level.is_kernel()
    }

    fn read(&mut self, va: u32, size: MemSize, nonpriv: bool) -> Result<u32, MemFault> {
        self.counters.mem_reads += 1;
        if nonpriv {
            self.counters.nonpriv_accesses += 1;
        }
        let pa = self.translate_data(va, size, AccessKind::Read, nonpriv)?;
        if self.bus.is_mmio(pa) {
            self.counters.mmio_accesses += 1;
        }
        self.bus.read(pa, size).map_err(|mut f| {
            f.addr = va;
            f
        })
    }

    fn write(&mut self, va: u32, val: u32, size: MemSize, nonpriv: bool) -> Result<(), MemFault> {
        self.counters.mem_writes += 1;
        if nonpriv {
            self.counters.nonpriv_accesses += 1;
        }
        let pa = self.translate_data(va, size, AccessKind::Write, nonpriv)?;
        if self.bus.is_mmio(pa) {
            self.counters.mmio_accesses += 1;
        }
        match self.bus.write(pa, val, size) {
            Ok(Some(BusEvent::PhaseMark(m))) => {
                self.phase_mark = Some(m);
                Ok(())
            }
            Ok(_) => Ok(()),
            Err(mut f) => {
                f.addr = va;
                Err(f)
            }
        }
    }

    fn cop_read(&mut self, cp: u8, reg: u8) -> Result<u32, CopFault> {
        self.counters.coproc_accesses += 1;
        I::cop_read(self.cpu, self.sys, cp, reg)
    }

    fn cop_write(&mut self, cp: u8, reg: u8, val: u32) -> Result<(), CopFault> {
        self.counters.coproc_accesses += 1;
        let effect = I::cop_write(self.cpu, self.sys, cp, reg, val)?;
        self.apply_cop_effect(effect);
        Ok(())
    }
}

/// Fetch outcome: decoded instruction or the prefetch abort to take.
enum Fetch {
    Ok(Decoded),
    Abort(MemFault),
}

impl<I: Isa> Interp<I> {
    /// Translate for execute and read raw instruction bytes at `pc`.
    fn fetch<B: Bus>(
        &mut self,
        cpu: &CpuState,
        sys: &mut I::Sys,
        bus: &mut B,
        counters: &mut Counters,
        pc: u32,
    ) -> Fetch {
        let mut bytes = [0u8; 8];
        let mut have = 0usize;
        let want = I::MAX_INSN_BYTES;
        let mut va = pc;
        while have < want {
            let pa = if !I::mmu_enabled(sys) {
                va
            } else {
                let vpage = page_of(va);
                let entry = match self.icache.lookup(vpage) {
                    Some(e) => {
                        counters.tlb_hits += 1;
                        e
                    }
                    None => {
                        counters.tlb_misses += 1;
                        match I::walk(sys, bus, va) {
                            Ok(e) => {
                                self.icache.insert(e);
                                e
                            }
                            Err(mut f) => {
                                f.access = AccessKind::Execute;
                                // A truncated tail fetch only aborts if the
                                // decoder actually needs those bytes.
                                if have > 0 {
                                    break;
                                }
                                return Fetch::Abort(f);
                            }
                        }
                    }
                };
                match entry.check(va, AccessKind::Execute, cpu.level.is_kernel(), false) {
                    Ok(pa) => pa,
                    Err(f) => {
                        if have > 0 {
                            break;
                        }
                        return Fetch::Abort(f);
                    }
                }
            };
            // Read up to the end of this page.
            let page_left = (0x1000 - (va & 0xFFF)) as usize;
            let n = page_left.min(want - have);
            let ram = bus.ram();
            if (pa as usize) + n <= ram.len() {
                bytes[have..have + n].copy_from_slice(&ram[pa as usize..pa as usize + n]);
            } else {
                // Executing from MMIO or beyond RAM: architectural abort.
                if have == 0 {
                    return Fetch::Abort(MemFault {
                        addr: pc,
                        access: AccessKind::Execute,
                        kind: FaultKind::BusError,
                    });
                }
                break;
            }
            have += n;
            va = va.wrapping_add(n as u32);
        }
        match I::decode(&bytes[..have], pc) {
            Ok(d) => Fetch::Ok(d),
            // Undecodable: raise Undef via an explicit op so the main loop
            // handles it uniformly. Length is nominal.
            Err(_) => Fetch::Ok(Decoded::new(
                I::MAX_INSN_BYTES as u8,
                [Op::Udf],
                simbench_core::ir::InsnClass::System,
            )),
        }
    }
}

/// Classify and count a taken branch. Shared helper used verbatim by the
/// other interpreter-structured engines.
pub fn count_branch(counters: &mut Counters, from_pc: u32, target: u32, flavor: BranchFlavor) {
    let same_page = page_of(from_pc) == page_of(target);
    match (flavor, same_page) {
        (BranchFlavor::Direct, true) => counters.branch_intra_direct += 1,
        (BranchFlavor::Direct, false) => counters.branch_inter_direct += 1,
        (BranchFlavor::Indirect, true) => counters.branch_intra_indirect += 1,
        (BranchFlavor::Indirect, false) => counters.branch_inter_indirect += 1,
    }
}

impl<I: Isa, B: Bus> Engine<I, B> for Interp<I> {
    fn info(&self) -> EngineInfo {
        EngineInfo {
            name: "interp",
            execution_model: "Fast Interpreter",
            memory_access: "Single Level Cache",
            code_generation: "None",
            control_flow_inter: "Interpreted",
            control_flow_intra: "Interpreted",
            interrupts: "Insn. Boundaries",
            sync_exceptions: "Interpreted",
            undef_insn: "Interpreted",
        }
    }

    fn run(&mut self, m: &mut Machine<I, B>, limits: &RunLimits) -> RunOutcome {
        let t0 = Instant::now();
        let mut counters = Counters::default();
        let mut phase = PhaseTracker::new();
        self.icache.flush();
        self.dcache.flush();

        let mut iters: u64 = 0;
        let exit = 'outer: loop {
            if counters.instructions >= limits.max_insns {
                break ExitReason::InsnLimit;
            }
            if iters.is_multiple_of(WALL_CHECK_PERIOD) {
                static OBS_DISPATCH_BATCHES: simbench_obs::Counter =
                    simbench_obs::Counter::new("interp.dispatch_batches");
                OBS_DISPATCH_BATCHES.add(1);
                if let Some(wall) = limits.wall_limit {
                    if t0.elapsed() >= wall {
                        break ExitReason::WallLimit;
                    }
                }
            }
            iters += 1;

            // Interrupt check at every instruction boundary.
            if m.cpu.irq_enabled && m.bus.irq_pending() {
                counters.irqs_delivered += 1;
                let resume = m.cpu.pc;
                let vec = I::enter_exception(
                    &mut m.cpu,
                    &mut m.sys,
                    ExceptionKind::Irq,
                    ExcInfo::default(),
                    resume,
                );
                m.cpu.pc = vec;
                continue;
            }

            let pc = m.cpu.pc;
            let decoded = match self.fetch(&m.cpu, &mut m.sys, &mut m.bus, &mut counters, pc) {
                Fetch::Ok(d) => d,
                Fetch::Abort(f) => {
                    counters.insn_faults += 1;
                    let vec = I::enter_exception(
                        &mut m.cpu,
                        &mut m.sys,
                        ExceptionKind::PrefetchAbort,
                        ExcInfo::from_fault(f),
                        pc,
                    );
                    m.cpu.pc = vec;
                    continue;
                }
            };

            counters.instructions += 1;
            let next_pc = pc.wrapping_add(decoded.len as u32);
            let mut ctx = Ctx::<I, B> {
                cpu: &mut m.cpu,
                sys: &mut m.sys,
                bus: &mut m.bus,
                dcache: &mut self.dcache,
                icache: &mut self.icache,
                counters: &mut counters,
                phase_mark: None,
            };

            let mut new_pc = next_pc;
            let mut trap: Option<Trap> = None;
            for op in &decoded.ops {
                ctx.counters.uops += 1;
                match step_op(&mut ctx, op) {
                    OpOutcome::Next => {}
                    OpOutcome::Jump { target, flavor } => {
                        count_branch(ctx.counters, pc, target, flavor);
                        new_pc = target;
                        break;
                    }
                    OpOutcome::Trap(t) => {
                        trap = Some(t);
                        break;
                    }
                    OpOutcome::Halt => break 'outer ExitReason::Halted,
                }
            }
            let mark = ctx.phase_mark.take();

            match trap {
                None => m.cpu.pc = new_pc,
                Some(Trap::Eret) => {
                    m.cpu.pc = I::leave_exception(&mut m.cpu, &mut m.sys);
                }
                Some(Trap::Syscall(n)) => {
                    counters.syscalls += 1;
                    let vec = I::enter_exception(
                        &mut m.cpu,
                        &mut m.sys,
                        ExceptionKind::Syscall,
                        ExcInfo::syscall(n),
                        next_pc,
                    );
                    m.cpu.pc = vec;
                }
                Some(Trap::Undef) => {
                    counters.undef_insns += 1;
                    let vec = I::enter_exception(
                        &mut m.cpu,
                        &mut m.sys,
                        ExceptionKind::Undef,
                        ExcInfo::default(),
                        next_pc,
                    );
                    m.cpu.pc = vec;
                }
                Some(Trap::DataFault(f)) => {
                    counters.data_faults += 1;
                    let vec = I::enter_exception(
                        &mut m.cpu,
                        &mut m.sys,
                        ExceptionKind::DataAbort,
                        ExcInfo::from_fault(f),
                        next_pc,
                    );
                    m.cpu.pc = vec;
                }
            }

            if let Some(mark) = mark {
                phase.on_mark(mark, &counters);
            }
        };

        RunOutcome {
            exit,
            wall: t0.elapsed(),
            counters,
            kernel: phase.into_kernel(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_core::asm::{PReg, PortableAsm};
    use simbench_core::bus::FlatRam;
    use simbench_core::ir::AluOp;
    use simbench_isa_armlet::{Armlet, ArmletAsm};

    fn run_flat(asm: ArmletAsm, entry: u32) -> (Machine<Armlet, FlatRam>, RunOutcome) {
        let img = asm.finish(entry);
        let mut m = Machine::<Armlet, _>::boot(&img, FlatRam::new(1 << 20));
        let mut e = Interp::<Armlet>::new();
        let out = e.run(&mut m, &RunLimits::insns(1_000_000));
        (m, out)
    }

    #[test]
    fn arithmetic_loop() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, 0);
        a.mov_imm(PReg::B, 10);
        let top = a.new_label();
        a.bind(top);
        a.alu_ri(AluOp::Add, PReg::A, PReg::A, 3);
        a.alu_ri(AluOp::Sub, PReg::B, PReg::B, 1);
        a.cmp_ri(PReg::B, 0);
        a.b_cond(simbench_core::ir::Cond::Ne, top);
        a.halt();
        let (m, out) = run_flat(a, 0x8000);
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(m.cpu.regs[0], 30);
        assert!(out.counters.instructions > 30);
        assert!(out.counters.branch_intra_direct >= 9);
    }

    #[test]
    fn memory_round_trip() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, 0x4000);
        a.mov_imm(PReg::B, 0xCAFE);
        a.store(PReg::B, PReg::A, 8);
        a.load(PReg::C, PReg::A, 8);
        a.halt();
        let (m, out) = run_flat(a, 0x8000);
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(m.cpu.regs[2], 0xCAFE);
        assert_eq!(out.counters.mem_reads, 1);
        assert_eq!(out.counters.mem_writes, 1);
    }

    #[test]
    fn call_and_return() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        let f = a.new_label();
        a.mov_imm(PReg::A, 1);
        a.call(f);
        a.alu_ri(AluOp::Add, PReg::A, PReg::A, 100);
        a.halt();
        a.bind(f);
        a.alu_ri(AluOp::Add, PReg::A, PReg::A, 10);
        a.ret();
        let (m, out) = run_flat(a, 0x8000);
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(m.cpu.regs[0], 111);
    }

    #[test]
    fn insn_limit_respected() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        let top = a.new_label();
        a.bind(top);
        a.b(top);
        let img = a.finish(0x8000);
        let mut m = Machine::<Armlet, _>::boot(&img, FlatRam::new(1 << 16));
        let mut e = Interp::<Armlet>::new();
        let out = e.run(&mut m, &RunLimits::insns(500));
        assert_eq!(out.exit, ExitReason::InsnLimit);
        assert_eq!(out.counters.instructions, 500);
    }

    #[test]
    fn undef_vectors_to_handler() {
        let mut a = ArmletAsm::new();
        // Vector table at 0: undef vector (index 0) jumps to handler.
        a.org(0);
        let handler = a.new_label();
        a.b(handler);
        a.org(0x200);
        a.bind(handler);
        a.mov_imm(PReg::D, 0x77);
        a.eret();
        a.org(0x8000);
        a.mov_imm(PReg::D, 0);
        a.udf();
        a.mov_imm(PReg::E, 0x88); // executed after handler returns
        a.halt();
        let (m, out) = run_flat(a, 0x8000);
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(m.cpu.regs[3], 0x77, "handler ran");
        assert_eq!(m.cpu.regs[4], 0x88, "resumed after udf");
        assert_eq!(out.counters.undef_insns, 1);
    }

    #[test]
    fn data_fault_vectors_and_resumes() {
        let mut a = ArmletAsm::new();
        a.org(0);
        // Vector index 2 (data abort) at 0x40.
        a.skip(0x40);
        let handler = a.new_label();
        a.b(handler);
        a.org(0x200);
        a.bind(handler);
        a.mov_imm(PReg::D, 1);
        a.eret();
        a.org(0x8000);
        // Load from beyond RAM (1 MB flat): bus error → data abort.
        a.mov_imm(PReg::A, 0x0800_0000);
        a.load(PReg::B, PReg::A, 0);
        a.halt();
        let (m, out) = run_flat(a, 0x8000);
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(m.cpu.regs[3], 1);
        assert_eq!(out.counters.data_faults, 1);
    }

    #[test]
    fn non_retiring_storm_honors_wall_limit() {
        use simbench_isa_armlet::sys::{cp14, cp15, CP_BANK, CP_SYS};
        use simbench_platform::devices::{INTC_ENABLE, INTC_TRIGGER};
        use simbench_platform::{Platform, INTC_BASE};
        use std::time::Duration;
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        // Unmask and raise INTC line 0.
        a.mov_imm(PReg::A, INTC_BASE + INTC_ENABLE);
        a.mov_imm(PReg::B, 1);
        a.store(PReg::B, PReg::A, 0);
        a.mov_imm(PReg::A, INTC_BASE + INTC_TRIGGER);
        a.store(PReg::B, PReg::A, 0);
        // Vector table beyond RAM: the IRQ handler can never fetch, so
        // delivery degenerates into a prefetch-abort storm in which no
        // iteration retires an instruction.
        a.mov_imm(PReg::C, 0x0800_0000);
        a.mcr(CP_SYS, cp15::VBAR, PReg::C);
        a.mcr(CP_BANK, cp14::IRQ_CTL, PReg::B);
        a.nop();
        a.halt();
        let img = a.finish(0x8000);
        let mut m = Machine::<Armlet, _>::boot(&img, Platform::with_ram(1 << 20));
        let mut e = Interp::<Armlet>::new();
        let out = e.run(
            &mut m,
            &RunLimits {
                max_insns: u64::MAX,
                wall_limit: Some(Duration::from_millis(30)),
            },
        );
        assert_eq!(out.exit, ExitReason::WallLimit);
        assert_eq!(out.counters.irqs_delivered, 1);
        assert!(out.counters.insn_faults > 0, "abort storm was spinning");
    }

    #[test]
    fn fetch_path_counts_tlb_probes() {
        use simbench_isa_armlet::sys::{cp15, CP_SYS};
        use simbench_isa_armlet::{Access, TableBuilder};
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, 0x0010_0000);
        a.mcr(CP_SYS, cp15::TTBR, PReg::A);
        a.mov_imm(PReg::B, 1);
        a.mcr(CP_SYS, cp15::SCTLR, PReg::B); // MMU on
        a.nop();
        a.nop();
        a.nop();
        a.halt();
        let mut img = a.finish(0x8000);
        let mut tb = TableBuilder::new(0x0010_0000);
        tb.map_section(0, 0, Access::KernelOnly); // identity map code
        let (load_at, blob) = tb.into_blob();
        img.push_section(load_at, blob);
        let mut m = Machine::<Armlet, _>::boot(&img, FlatRam::new(1 << 21));
        let mut e = Interp::<Armlet>::new();
        let out = e.run(&mut m, &RunLimits::insns(1000));
        assert_eq!(out.exit, ExitReason::Halted);
        // No loads or stores after the MMU comes on, so every TLB probe
        // below comes from the fetch path.
        assert_eq!(out.counters.mem_reads, 0);
        assert_eq!(out.counters.mem_writes, 0);
        assert!(out.counters.tlb_misses >= 1, "first fetch walks");
        assert!(out.counters.tlb_hits >= 2, "later fetches hit the icache");
    }

    #[test]
    fn syscall_number_reaches_handler_via_resume() {
        let mut a = ArmletAsm::new();
        a.org(0);
        // Syscall vector index 1 at 0x20.
        a.skip(0x20);
        let handler = a.new_label();
        a.b(handler);
        a.org(0x200);
        a.bind(handler);
        a.alu_ri(AluOp::Add, PReg::C, PReg::C, 1);
        a.eret();
        a.org(0x8000);
        a.mov_imm(PReg::C, 0);
        a.svc(42);
        a.svc(43);
        a.halt();
        let (m, out) = run_flat(a, 0x8000);
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(m.cpu.regs[2], 2);
        assert_eq!(out.counters.syscalls, 2);
    }
}

//! Property test: petix encodings round-trip; the decoder is total.

use proptest::prelude::*;
use simbench_core::ir::{AluOp, Cond, Op, Operand};
use simbench_isa_petix::{decode::decode, encoding as enc};

fn any_reg() -> impl Strategy<Value = u8> {
    0u8..8
}

proptest! {
    #[test]
    fn alu_rr_roundtrip(code in 0u8..16, rd in any_reg(), rm in any_reg()) {
        let op = AluOp::from_code(code).unwrap();
        let b = enc::alu_rr(op, rd, rm);
        let d = decode(&b, 0).unwrap();
        prop_assert_eq!(d.len as usize, b.len());
        prop_assert_eq!(d.ops, vec![Op::Alu { op, rd, rn: rd, src: Operand::Reg(rm), set_flags: false }]);
    }

    #[test]
    fn alu_imm_roundtrips(code in 0u8..16, rd in any_reg(), imm: u32) {
        let op = AluOp::from_code(code).unwrap();
        let d = decode(&enc::alu_ri32(op, rd, imm), 0).unwrap();
        prop_assert_eq!(d.ops, vec![Op::Alu { op, rd, rn: rd, src: Operand::Imm(imm), set_flags: false }]);
        let d = decode(&enc::alu_ri16(op, rd, imm as u16), 0).unwrap();
        prop_assert_eq!(d.ops, vec![Op::Alu { op, rd, rn: rd, src: Operand::Imm((imm as u16) as u32), set_flags: false }]);
    }

    #[test]
    fn ldst_roundtrip(load: bool, rd in any_reg(), base in any_reg(), disp in -32768i32..=32767) {
        let b = enc::ldst(load, enc::Width::Word, rd, base, disp);
        let d = decode(&b, 0).unwrap();
        match d.ops[0] {
            Op::Load { rd: r, base: bb, off, .. } => {
                prop_assert!(load);
                prop_assert_eq!((r, bb, off), (rd, base, disp));
            }
            Op::Store { rs, base: bb, off, .. } => {
                prop_assert!(!load);
                prop_assert_eq!((rs, bb, off), (rd, base, disp));
            }
            ref other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn control_flow_roundtrip(pc: u32, delta in -1_000_000i32..1_000_000, c in 0u8..15) {
        let target = pc.wrapping_add(5).wrapping_add(delta as u32);
        let d = decode(&enc::jmp(pc, target), pc).unwrap();
        prop_assert_eq!(d.ops, vec![Op::Branch { target }]);
        let cond = Cond::from_code(c).unwrap();
        let target6 = pc.wrapping_add(6).wrapping_add(delta as u32);
        let d = decode(&enc::jcc(cond, pc, target6), pc).unwrap();
        prop_assert_eq!(d.ops, vec![Op::BranchCond { cond, target: target6 }]);
    }

    #[test]
    fn decoder_never_panics_and_len_is_bounded(bytes in prop::collection::vec(any::<u8>(), 0..8)) {
        if let Ok(d) = decode(&bytes, 0x1234) {
            prop_assert!(d.len as usize <= bytes.len());
            prop_assert!(d.len >= 1 && d.len <= 6);
        }
    }

    #[test]
    fn variable_lengths_self_consistent(bytes in prop::collection::vec(any::<u8>(), 6..12)) {
        // If a prefix decodes, the full buffer decodes identically: extra
        // trailing bytes never change an instruction.
        if let Ok(d) = decode(&bytes[..6], 0) {
            let d2 = decode(&bytes, 0).unwrap();
            prop_assert_eq!(d.ops, d2.ops);
            prop_assert_eq!(d.len, d2.len);
        }
    }
}

//! Property test: IR invariants for the variable-length petix decoder
//! over random instruction bytes — checked in release builds too, not
//! just under `debug_assert`.
//!
//! * the lowered op count fits the fixed-capacity inline [`OpList`]
//!   (`MAX_OPS_PER_INSN`);
//! * control-flow ops only appear as the final op of an instruction;
//! * the decoded length never exceeds the bytes offered (a decoder
//!   that "consumed" bytes it never saw would desync the fetch loop).

use proptest::prelude::*;
use simbench_core::ir::MAX_OPS_PER_INSN;
use simbench_isa_petix::decode::decode;

proptest! {
    #[test]
    fn decoded_ops_fit_oplist_and_control_flow_is_last(
        opc: u8,
        tail in prop::collection::vec(any::<u8>(), 0..8),
        pc: u32,
    ) {
        let mut bytes = vec![opc];
        bytes.extend_from_slice(&tail);
        if let Ok(d) = decode(&bytes, pc) {
            prop_assert!(!d.ops.is_empty(), "decoded to zero ops: {bytes:02x?}");
            prop_assert!(
                d.ops.len() <= MAX_OPS_PER_INSN,
                "{bytes:02x?} lowered to {} ops", d.ops.len()
            );
            for op in &d.ops[..d.ops.len() - 1] {
                prop_assert!(
                    !op.is_control_flow(),
                    "{bytes:02x?}: control flow op {op:?} not last in {:?}", d.ops
                );
            }
            prop_assert!(
                d.len as usize <= bytes.len(),
                "{bytes:02x?}: decoded length {} exceeds the {} bytes offered",
                d.len, bytes.len()
            );
        }
    }
}

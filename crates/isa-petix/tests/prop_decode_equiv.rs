//! Differential property test: the spec-generated petix decoder and its
//! length table agree with the hand-written reference on random buffers,
//! including truncated ones (the deterministic opcode × fill sweep runs
//! in `crates/analyzer/tests/decode_sweep.rs`).

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn generated_matches_reference(
        opc in any::<u8>(),
        rest in prop::collection::vec(any::<u8>(), 0..8),
        pc in any::<u32>(),
    ) {
        let mut bytes = vec![opc];
        bytes.extend_from_slice(&rest);
        let generated = simbench_isa_petix::decode::decode(&bytes, pc);
        let reference = simbench_isa_petix::decode_ref::decode(&bytes, pc);
        prop_assert_eq!(generated, reference, "bytes {:02x?} pc {:#010x}", bytes, pc);
    }
}

#[test]
fn length_tables_agree_exactly() {
    for opc in 0..=255u8 {
        assert_eq!(
            simbench_isa_petix::decode::insn_len(opc),
            simbench_isa_petix::decode_ref::insn_len(opc),
            "opcode {opc:#04x}"
        );
    }
}

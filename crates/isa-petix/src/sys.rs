//! petix system state: control registers and exception entry/exit.

use simbench_core::cpu::{CpuState, Flags, Privilege, Status};
use simbench_core::fault::{CopFault, ExcInfo, ExceptionKind};
use simbench_core::isa::CopEffect;

/// Control-register indices (accessed via `mov cr` forms; petix has a
/// single "coprocessor", number 0).
pub mod cr {
    /// System control: bit 0 enables paging.
    pub const CR0: u8 = 0;
    /// Fault address (set on aborts, like x86 CR2).
    pub const CR2: u8 = 2;
    /// Page-table base.
    pub const CR3: u8 = 3;
    /// Vector table base.
    pub const CR4: u8 = 4;
    /// FPU control word — the designated side-effect-free "safe"
    /// control-register read for the Coprocessor Access benchmark.
    pub const FPCW: u8 = 5;
    /// Write: flush the entire TLB.
    pub const TLB_FLUSH: u8 = 7;
    /// Write: invalidate the TLB entry covering the written address
    /// (`invlpg`).
    pub const INVLPG: u8 = 8;
    /// Banked return address.
    pub const SAVED_PC: u8 = 10;
    /// Banked status word.
    pub const SAVED_STATUS: u8 = 11;
    /// Bit 0: IRQ enable for the current status (`sti`/`cli`).
    pub const IRQ_CTL: u8 = 12;
    /// Handler scratch register.
    pub const SCRATCH: u8 = 13;
}

/// Reset value of the FPU control word (mirrors the x87 default).
pub const FPCW_RESET: u32 = 0x037F;

/// Spacing of vector table entries in bytes.
pub const VECTOR_STRIDE: u32 = 0x20;

/// petix system-register file.
#[derive(Debug, Clone)]
pub struct PetixSys {
    /// System control (bit 0: paging enable).
    pub cr0: u32,
    /// Fault address.
    pub cr2: u32,
    /// Page-table base (4 KB aligned).
    pub cr3: u32,
    /// Vector base.
    pub cr4: u32,
    /// FPU control word.
    pub fpcw: u32,
    /// Banked return address.
    pub saved_pc: u32,
    /// Banked status.
    pub saved_status: Status,
    /// Handler scratch.
    pub scratch: u32,
}

impl Default for PetixSys {
    fn default() -> Self {
        PetixSys {
            cr0: 0,
            cr2: 0,
            cr3: 0,
            cr4: 0,
            fpcw: FPCW_RESET,
            saved_pc: 0,
            saved_status: Status::default(),
            scratch: 0,
        }
    }
}

impl PetixSys {
    /// True when paging is enabled.
    pub fn paging_enabled(&self) -> bool {
        self.cr0 & 1 != 0
    }

    /// Encode a [`Status`] into the control-register word format (same
    /// layout as armlet's cp14 status word).
    pub fn encode_status(s: Status) -> u32 {
        (s.flags.n as u32) << 31
            | (s.flags.z as u32) << 30
            | (s.flags.c as u32) << 29
            | (s.flags.v as u32) << 28
            | (s.irq_enabled as u32) << 7
            | ((s.level == Privilege::User) as u32) << 4
    }

    fn decode_status(w: u32) -> Status {
        Status {
            flags: Flags {
                n: w & (1 << 31) != 0,
                z: w & (1 << 30) != 0,
                c: w & (1 << 29) != 0,
                v: w & (1 << 28) != 0,
            },
            irq_enabled: w & (1 << 7) != 0,
            level: if w & (1 << 4) != 0 {
                Privilege::User
            } else {
                Privilege::Kernel
            },
        }
    }

    /// Control-register read.
    ///
    /// # Errors
    ///
    /// [`CopFault`] for nonexistent registers.
    pub fn cop_read(&mut self, cp: u8, reg: u8) -> Result<u32, CopFault> {
        if cp != 0 {
            return Err(CopFault);
        }
        match reg {
            cr::CR0 => Ok(self.cr0),
            cr::CR2 => Ok(self.cr2),
            cr::CR3 => Ok(self.cr3),
            cr::CR4 => Ok(self.cr4),
            cr::FPCW => Ok(self.fpcw),
            cr::SAVED_PC => Ok(self.saved_pc),
            cr::SAVED_STATUS => Ok(Self::encode_status(self.saved_status)),
            cr::SCRATCH => Ok(self.scratch),
            _ => Err(CopFault),
        }
    }

    /// Control-register write.
    ///
    /// # Errors
    ///
    /// [`CopFault`] for nonexistent or read-only registers.
    pub fn cop_write(
        &mut self,
        cpu: &mut CpuState,
        cp: u8,
        reg: u8,
        val: u32,
    ) -> Result<CopEffect, CopFault> {
        if cp != 0 {
            return Err(CopFault);
        }
        match reg {
            cr::CR0 => {
                let was = self.cr0;
                self.cr0 = val;
                Ok(if (was ^ val) & 1 != 0 {
                    CopEffect::ContextChanged
                } else {
                    CopEffect::None
                })
            }
            cr::CR3 => {
                self.cr3 = val;
                // x86 semantics: a CR3 load flushes non-global TLB entries.
                Ok(CopEffect::ContextChanged)
            }
            cr::CR4 => {
                self.cr4 = val;
                Ok(CopEffect::None)
            }
            cr::FPCW => {
                self.fpcw = val & 0xFFFF;
                Ok(CopEffect::None)
            }
            cr::TLB_FLUSH => Ok(CopEffect::TlbFlush),
            cr::INVLPG => Ok(CopEffect::TlbInvPage(val)),
            cr::SAVED_PC => {
                self.saved_pc = val;
                Ok(CopEffect::None)
            }
            cr::SAVED_STATUS => {
                self.saved_status = Self::decode_status(val);
                Ok(CopEffect::None)
            }
            cr::IRQ_CTL => {
                cpu.irq_enabled = val & 1 != 0;
                Ok(CopEffect::None)
            }
            cr::SCRATCH => {
                self.scratch = val;
                Ok(CopEffect::None)
            }
            _ => Err(CopFault),
        }
    }

    /// Take an exception (see the armlet counterpart; petix differs in
    /// that return addresses for calls live on the stack, so handlers
    /// that unwind — the Instruction Access Fault benchmark — pop the
    /// stack and write `cr10`).
    pub fn enter_exception(
        &mut self,
        cpu: &mut CpuState,
        kind: ExceptionKind,
        info: ExcInfo,
        return_pc: u32,
    ) -> u32 {
        self.saved_pc = return_pc;
        self.saved_status = cpu.status();
        if matches!(
            kind,
            ExceptionKind::DataAbort | ExceptionKind::PrefetchAbort
        ) {
            self.cr2 = info.fault_addr;
        }
        cpu.level = Privilege::Kernel;
        cpu.irq_enabled = false;
        self.cr4 + VECTOR_STRIDE * kind.vector_index() as u32
    }

    /// Return from exception.
    pub fn leave_exception(&mut self, cpu: &mut CpuState) -> u32 {
        cpu.restore_status(self.saved_status);
        self.saved_pc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpcw_reset_and_masking() {
        let mut sys = PetixSys::default();
        let mut cpu = CpuState::at_reset(0);
        assert_eq!(sys.cop_read(0, cr::FPCW).unwrap(), 0x037F);
        sys.cop_write(&mut cpu, 0, cr::FPCW, 0xFFFF_1234).unwrap();
        assert_eq!(sys.cop_read(0, cr::FPCW).unwrap(), 0x1234);
    }

    #[test]
    fn cr3_flushes_context() {
        let mut sys = PetixSys::default();
        let mut cpu = CpuState::at_reset(0);
        assert_eq!(
            sys.cop_write(&mut cpu, 0, cr::CR3, 0x8000).unwrap(),
            CopEffect::ContextChanged
        );
        assert_eq!(
            sys.cop_write(&mut cpu, 0, cr::INVLPG, 0x1234).unwrap(),
            CopEffect::TlbInvPage(0x1234)
        );
        assert_eq!(
            sys.cop_write(&mut cpu, 0, cr::TLB_FLUSH, 0).unwrap(),
            CopEffect::TlbFlush
        );
    }

    #[test]
    fn wrong_coprocessor_faults() {
        let mut sys = PetixSys::default();
        assert!(sys.cop_read(1, cr::CR0).is_err());
        assert!(sys.cop_read(0, 15).is_err());
    }

    #[test]
    fn exception_cycle() {
        let mut sys = PetixSys {
            cr4: 0x1000,
            ..Default::default()
        };
        let mut cpu = CpuState::at_reset(0x8000);
        cpu.irq_enabled = true;
        let vec = sys.enter_exception(
            &mut cpu,
            ExceptionKind::PrefetchAbort,
            ExcInfo {
                fault_addr: 0xBAD0_0000,
                syscall_no: 0,
            },
            0xBAD0_0000,
        );
        assert_eq!(vec, 0x1000 + VECTOR_STRIDE * 3);
        assert_eq!(sys.cr2, 0xBAD0_0000);
        assert!(!cpu.irq_enabled);
        // Handler redirects the resume point (stack unwinding analogue).
        sys.cop_write(&mut cpu, 0, cr::SAVED_PC, 0x8004).unwrap();
        assert_eq!(sys.leave_exception(&mut cpu), 0x8004);
        assert!(cpu.irq_enabled);
    }

    #[test]
    fn irq_ctl_is_sti_cli() {
        let mut sys = PetixSys::default();
        let mut cpu = CpuState::at_reset(0);
        sys.cop_write(&mut cpu, 0, cr::IRQ_CTL, 1).unwrap();
        assert!(cpu.irq_enabled);
        sys.cop_write(&mut cpu, 0, cr::IRQ_CTL, 0).unwrap();
        assert!(!cpu.irq_enabled);
    }
}

//! Hand-written petix reference decoder.
//!
//! The production decoder is generated from `spec/petix.isa` (see
//! [`crate::decode_gen`]). This module keeps the original hand-written
//! implementation as an independently-derived oracle: differential
//! proptests and the opcode × fill sweep in
//! `crates/analyzer/tests/decode_sweep.rs` prove the generated decoder
//! agrees with it on every buffer. It is not part of any engine's hot
//! path.

use simbench_core::ir::{
    AluOp, Cond, DecodeError, Decoded, InsnClass, LinkKind, MemSize, Op, Operand, RetKind,
};

use crate::encoding::SP;

/// Total byte length of the instruction whose first byte is `opc`
/// (reference implementation).
pub const fn insn_len(opc: u8) -> Option<usize> {
    match opc {
        0x00..=0x03 => Some(1),
        0x0F => Some(2),
        0x10..=0x1F => Some(2),
        0x30..=0x3F => Some(6),
        0x50..=0x5F => Some(4),
        0x70..=0x75 => Some(4),
        0x80 => Some(5),
        0x81 => Some(6),
        0x82 => Some(5),
        0x83..=0x88 => Some(2),
        0x89 => Some(6),
        0x8A => Some(2),
        0x8B => Some(6),
        0x90 | 0x91 => Some(2),
        0xA0 => Some(6),
        _ => None,
    }
}

fn need(bytes: &[u8], n: usize, pc: u32) -> Result<(), DecodeError> {
    if bytes.len() < n {
        Err(DecodeError { pc })
    } else {
        Ok(())
    }
}

fn imm32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn imm16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([bytes[at], bytes[at + 1]])
}

/// Decode one instruction starting at `bytes[0]` (reference
/// implementation).
///
/// # Errors
///
/// [`DecodeError`] for invalid opcodes or truncated buffers.
pub fn decode(bytes: &[u8], pc: u32) -> Result<Decoded, DecodeError> {
    need(bytes, 1, pc)?;
    let opc = bytes[0];
    fn d(
        len: u8,
        ops: impl Into<simbench_core::ir::OpList>,
        class: InsnClass,
    ) -> Result<Decoded, DecodeError> {
        Ok(Decoded::new(len, ops, class))
    }
    match opc {
        0x00 => d(1, [Op::Nop], InsnClass::Nop),
        0x01 => d(1, [Op::Halt], InsnClass::System),
        0x02 => d(1, [Op::Ret(RetKind::Pop(SP))], InsnClass::Branch),
        0x03 => d(1, [Op::Eret], InsnClass::System),
        0x0F => {
            need(bytes, 2, pc)?;
            if bytes[1] == 0x0B {
                d(2, [Op::Udf], InsnClass::System)
            } else {
                Err(DecodeError { pc })
            }
        }
        0x10..=0x1F => {
            need(bytes, 2, pc)?;
            let op = AluOp::from_code(opc - 0x10).ok_or(DecodeError { pc })?;
            let rd = (bytes[1] >> 4) & 0x7;
            let rm = bytes[1] & 0x7;
            d(
                2,
                [Op::Alu {
                    op,
                    rd,
                    rn: rd,
                    src: Operand::Reg(rm),
                    set_flags: false,
                }],
                InsnClass::Alu,
            )
        }
        0x30..=0x3F => {
            need(bytes, 6, pc)?;
            let op = AluOp::from_code(opc - 0x30).ok_or(DecodeError { pc })?;
            let rd = (bytes[1] >> 4) & 0x7;
            d(
                6,
                [Op::Alu {
                    op,
                    rd,
                    rn: rd,
                    src: Operand::Imm(imm32(bytes, 2)),
                    set_flags: false,
                }],
                InsnClass::Alu,
            )
        }
        0x50..=0x5F => {
            need(bytes, 4, pc)?;
            let op = AluOp::from_code(opc - 0x50).ok_or(DecodeError { pc })?;
            let rd = (bytes[1] >> 4) & 0x7;
            d(
                4,
                [Op::Alu {
                    op,
                    rd,
                    rn: rd,
                    src: Operand::Imm(imm16(bytes, 2) as u32),
                    set_flags: false,
                }],
                InsnClass::Alu,
            )
        }
        0x70..=0x75 => {
            need(bytes, 4, pc)?;
            let r = (bytes[1] >> 4) & 0x7;
            let base = bytes[1] & 0x7;
            let off = imm16(bytes, 2) as i16 as i32;
            let (size, load) = match opc {
                0x70 => (MemSize::B4, true),
                0x71 => (MemSize::B4, false),
                0x72 => (MemSize::B1, true),
                0x73 => (MemSize::B1, false),
                0x74 => (MemSize::B2, true),
                _ => (MemSize::B2, false),
            };
            let op = if load {
                Op::Load {
                    rd: r,
                    base,
                    off,
                    size,
                    nonpriv: false,
                }
            } else {
                Op::Store {
                    rs: r,
                    base,
                    off,
                    size,
                    nonpriv: false,
                }
            };
            d(4, [op], InsnClass::Mem)
        }
        0x80 => {
            need(bytes, 5, pc)?;
            let target = pc.wrapping_add(5).wrapping_add(imm32(bytes, 1));
            d(5, [Op::Branch { target }], InsnClass::Branch)
        }
        0x81 => {
            need(bytes, 6, pc)?;
            let cond = Cond::from_code(bytes[1]).ok_or(DecodeError { pc })?;
            let target = pc.wrapping_add(6).wrapping_add(imm32(bytes, 2));
            d(6, [Op::BranchCond { cond, target }], InsnClass::Branch)
        }
        0x82 => {
            need(bytes, 5, pc)?;
            let target = pc.wrapping_add(5).wrapping_add(imm32(bytes, 1));
            let ret = pc.wrapping_add(5);
            d(
                5,
                [Op::Call {
                    target,
                    ret,
                    link: LinkKind::Push(SP),
                }],
                InsnClass::Branch,
            )
        }
        0x83 => {
            need(bytes, 2, pc)?;
            d(2, [Op::BranchReg { rm: bytes[1] & 0x7 }], InsnClass::Branch)
        }
        0x84 => {
            need(bytes, 2, pc)?;
            let ret = pc.wrapping_add(2);
            d(
                2,
                [Op::CallReg {
                    rm: bytes[1] & 0x7,
                    ret,
                    link: LinkKind::Push(SP),
                }],
                InsnClass::Branch,
            )
        }
        0x85 => {
            need(bytes, 2, pc)?;
            let r = bytes[1] & 0x7;
            d(
                2,
                [
                    Op::Alu {
                        op: AluOp::Sub,
                        rd: SP,
                        rn: SP,
                        src: Operand::Imm(4),
                        set_flags: false,
                    },
                    Op::Store {
                        rs: r,
                        base: SP,
                        off: 0,
                        size: MemSize::B4,
                        nonpriv: false,
                    },
                ],
                InsnClass::Mem,
            )
        }
        0x86 => {
            need(bytes, 2, pc)?;
            let r = bytes[1] & 0x7;
            d(
                2,
                [
                    Op::Load {
                        rd: r,
                        base: SP,
                        off: 0,
                        size: MemSize::B4,
                        nonpriv: false,
                    },
                    Op::Alu {
                        op: AluOp::Add,
                        rd: SP,
                        rn: SP,
                        src: Operand::Imm(4),
                        set_flags: false,
                    },
                ],
                InsnClass::Mem,
            )
        }
        0x87 => {
            need(bytes, 2, pc)?;
            d(2, [Op::Svc(bytes[1] as u16)], InsnClass::System)
        }
        0x88 => {
            need(bytes, 2, pc)?;
            let rn = (bytes[1] >> 4) & 0x7;
            let rm = bytes[1] & 0x7;
            d(
                2,
                [Op::Cmp {
                    rn,
                    src: Operand::Reg(rm),
                    is_tst: false,
                }],
                InsnClass::Alu,
            )
        }
        0x89 => {
            need(bytes, 6, pc)?;
            let rn = (bytes[1] >> 4) & 0x7;
            d(
                6,
                [Op::Cmp {
                    rn,
                    src: Operand::Imm(imm32(bytes, 2)),
                    is_tst: false,
                }],
                InsnClass::Alu,
            )
        }
        0x8A => {
            need(bytes, 2, pc)?;
            let rn = (bytes[1] >> 4) & 0x7;
            let rm = bytes[1] & 0x7;
            d(
                2,
                [Op::Cmp {
                    rn,
                    src: Operand::Reg(rm),
                    is_tst: true,
                }],
                InsnClass::Alu,
            )
        }
        0x8B => {
            need(bytes, 6, pc)?;
            let rn = (bytes[1] >> 4) & 0x7;
            d(
                6,
                [Op::Cmp {
                    rn,
                    src: Operand::Imm(imm32(bytes, 2)),
                    is_tst: true,
                }],
                InsnClass::Alu,
            )
        }
        0x90 => {
            need(bytes, 2, pc)?;
            let r = (bytes[1] >> 4) & 0x7;
            let cr = bytes[1] & 0xF;
            d(
                2,
                [Op::CopRead {
                    cp: 0,
                    reg: cr,
                    rd: r,
                }],
                InsnClass::System,
            )
        }
        0x91 => {
            need(bytes, 2, pc)?;
            let r = (bytes[1] >> 4) & 0x7;
            let cr = bytes[1] & 0xF;
            d(
                2,
                [Op::CopWrite {
                    cp: 0,
                    reg: cr,
                    rs: r,
                }],
                InsnClass::System,
            )
        }
        0xA0 => {
            need(bytes, 6, pc)?;
            let rd = (bytes[1] >> 4) & 0x7;
            d(
                6,
                [Op::Alu {
                    op: AluOp::Mov,
                    rd,
                    rn: 0,
                    src: Operand::Imm(imm32(bytes, 2)),
                    set_flags: false,
                }],
                InsnClass::Alu,
            )
        }
        _ => Err(DecodeError { pc }),
    }
}

//! petix assembler: implements the portable interface plus
//! architecture-specific extensions used by the petix support package.
//!
//! petix ALU instructions are two-address (`rd = rd op src`), so the
//! three-address portable forms may expand to a move plus an operation —
//! exactly the kind of per-architecture lowering a real support package
//! performs.

use simbench_core::asm::{AsmBuffer, Label, PReg, PortableAsm};
use simbench_core::image::GuestImage;
use simbench_core::ir::{AluOp, Cond};

use crate::encoding as enc;

/// Map a portable register onto a petix GPR: `A`–`F` → r0–r5, `Sp` → r6,
/// `Lr` → r7 (software-managed; hardware calls push to the stack).
pub fn reg(r: PReg) -> u8 {
    match r {
        PReg::A => 0,
        PReg::B => 1,
        PReg::C => 2,
        PReg::D => 3,
        PReg::E => 4,
        PReg::F => 5,
        PReg::Sp => enc::SP,
        PReg::Lr => enc::LR,
    }
}

#[derive(Debug, Clone, Copy)]
enum Fix {
    /// rel32 at `at + imm_off` for an instruction of `len` bytes.
    Rel { imm_off: u32, len: u32 },
    /// Absolute 32-bit at `at + imm_off`.
    Abs { imm_off: u32 },
}

/// The petix assembler.
#[derive(Debug, Default)]
pub struct PetixAsm {
    buf: AsmBuffer,
    fixups: Vec<(u32, Label, Fix)>,
}

impl PetixAsm {
    /// A fresh assembler; call [`PortableAsm::org`] before emitting.
    pub fn new() -> Self {
        Self::default()
    }

    fn emit(&mut self, bytes: Vec<u8>) {
        self.buf.emit(&bytes);
    }

    /// Two-address ALU with a raw register number.
    pub fn alu2(&mut self, op: AluOp, rd: u8, rm: u8) {
        self.emit(enc::alu_rr(op, rd, rm));
    }

    /// `rd = rn` (register move).
    pub fn mov_rr(&mut self, rd: PReg, rn: PReg) {
        self.emit(enc::alu_rr(AluOp::Mov, reg(rd), reg(rn)));
    }

    /// Two-address ALU immediate: `rd = rd op imm` (full 32-bit range).
    pub fn alu2_imm(&mut self, op: AluOp, rd: PReg, imm: u32) {
        self.emit(enc::alu_ri32(op, reg(rd), imm));
    }

    /// Push a register on the hardware stack.
    pub fn push(&mut self, r: PReg) {
        self.emit(enc::push(reg(r)));
    }

    /// Pop a register from the hardware stack.
    pub fn pop(&mut self, r: PReg) {
        self.emit(enc::pop(reg(r)));
    }

    /// Read a control register.
    pub fn mov_from_cr(&mut self, rd: PReg, cr: u8) {
        self.emit(enc::mov_from_cr(reg(rd), cr));
    }

    /// Write a control register.
    pub fn mov_to_cr(&mut self, cr: u8, rs: PReg) {
        self.emit(enc::mov_to_cr(cr, reg(rs)));
    }

    /// Halfword load.
    pub fn load16(&mut self, rd: PReg, base: PReg, off: i32) {
        self.emit(enc::ldst(true, enc::Width::Half, reg(rd), reg(base), off));
    }

    /// Halfword store.
    pub fn store16(&mut self, rs: PReg, base: PReg, off: i32) {
        self.emit(enc::ldst(false, enc::Width::Half, reg(rs), reg(base), off));
    }

    fn three_address(&mut self, op: AluOp, rd: u8, rn: u8, rm: u8) {
        if rd == rn {
            self.emit(enc::alu_rr(op, rd, rm));
        } else if rd == rm {
            match op {
                AluOp::Add | AluOp::And | AluOp::Orr | AluOp::Eor | AluOp::Mul => {
                    // Commutative: rd = rd op rn.
                    self.emit(enc::alu_rr(op, rd, rn));
                }
                AluOp::Mov => self.emit(enc::alu_rr(AluOp::Mov, rd, rm)),
                _ => panic!(
                    "petix three-address lowering: rd == rm with non-commutative {op:?}; \
                     use a different destination register"
                ),
            }
        } else {
            self.emit(enc::alu_rr(AluOp::Mov, rd, rn));
            self.emit(enc::alu_rr(op, rd, rm));
        }
    }
}

impl PortableAsm for PetixAsm {
    fn here(&self) -> u32 {
        self.buf.here()
    }
    fn org(&mut self, addr: u32) {
        self.buf.org(addr);
    }
    fn align(&mut self, align: u32) {
        self.buf.align(align);
    }
    fn skip(&mut self, n: u32) {
        self.buf.skip(n);
    }
    fn word(&mut self, w: u32) {
        self.buf.emit_u32(w);
    }
    fn bytes(&mut self, data: &[u8]) {
        self.buf.emit(data);
    }
    fn new_label(&mut self) -> Label {
        self.buf.new_label()
    }
    fn bind(&mut self, l: Label) {
        self.buf.bind(l);
    }
    fn label_addr(&self, l: Label) -> Option<u32> {
        self.buf.label_addr(l)
    }

    fn mov_imm(&mut self, rd: PReg, imm: u32) {
        self.emit(enc::mov_imm32(reg(rd), imm));
    }

    fn mov_label(&mut self, rd: PReg, l: Label) {
        let at = self.here();
        self.emit(enc::mov_imm32(reg(rd), 0));
        self.fixups.push((at, l, Fix::Abs { imm_off: 2 }));
    }

    fn alu_rr(&mut self, op: AluOp, rd: PReg, rn: PReg, rm: PReg) {
        self.three_address(op, reg(rd), reg(rn), reg(rm));
    }

    fn alu_ri(&mut self, op: AluOp, rd: PReg, rn: PReg, imm: u32) {
        let (rd, rn) = (reg(rd), reg(rn));
        if matches!(op, AluOp::Mov | AluOp::Mvn) {
            // rn is irrelevant for moves.
            self.emit(enc::alu_ri32(op, rd, imm));
            return;
        }
        if rd != rn {
            self.emit(enc::alu_rr(AluOp::Mov, rd, rn));
        }
        self.emit(enc::alu_ri32(op, rd, imm));
    }

    fn cmp_ri(&mut self, rn: PReg, imm: u32) {
        self.emit(enc::cmp_ri(reg(rn), imm));
    }

    fn cmp_rr(&mut self, rn: PReg, rm: PReg) {
        self.emit(enc::cmp_rr(reg(rn), reg(rm)));
    }

    fn load(&mut self, rd: PReg, base: PReg, off: i32) {
        self.emit(enc::ldst(true, enc::Width::Word, reg(rd), reg(base), off));
    }

    fn store(&mut self, rs: PReg, base: PReg, off: i32) {
        self.emit(enc::ldst(false, enc::Width::Word, reg(rs), reg(base), off));
    }

    fn load8(&mut self, rd: PReg, base: PReg, off: i32) {
        self.emit(enc::ldst(true, enc::Width::Byte, reg(rd), reg(base), off));
    }

    fn store8(&mut self, rs: PReg, base: PReg, off: i32) {
        self.emit(enc::ldst(false, enc::Width::Byte, reg(rs), reg(base), off));
    }

    fn b(&mut self, l: Label) {
        let at = self.here();
        self.emit(enc::jmp(at, at.wrapping_add(5)));
        self.fixups.push((at, l, Fix::Rel { imm_off: 1, len: 5 }));
    }

    fn b_cond(&mut self, c: Cond, l: Label) {
        let at = self.here();
        self.emit(enc::jcc(c, at, at.wrapping_add(6)));
        self.fixups.push((at, l, Fix::Rel { imm_off: 2, len: 6 }));
    }

    fn br_reg(&mut self, r: PReg) {
        self.emit(enc::jmp_reg(reg(r)));
    }

    fn call(&mut self, l: Label) {
        let at = self.here();
        self.emit(enc::call(at, at.wrapping_add(5)));
        self.fixups.push((at, l, Fix::Rel { imm_off: 1, len: 5 }));
    }

    fn call_reg(&mut self, r: PReg) {
        self.emit(enc::call_reg(reg(r)));
    }

    fn ret(&mut self) {
        self.emit(enc::ret());
    }

    fn svc(&mut self, imm: u16) {
        self.emit(enc::int(imm as u8));
    }

    fn udf(&mut self) {
        self.emit(enc::ud2());
    }

    fn eret(&mut self) {
        self.emit(enc::iret());
    }

    fn halt(&mut self) {
        self.emit(enc::halt());
    }

    fn nop(&mut self) {
        self.emit(enc::nop());
    }

    fn emit_smc_word(&mut self, rd: PReg, riter: PReg) {
        // rd = (riter << 16) | low-half of the `mov r5, imm16` encoding.
        if rd != riter {
            self.mov_rr(rd, riter);
        }
        self.alu2_imm(AluOp::Lsl, rd, 16);
        self.alu2_imm(AluOp::Orr, rd, enc::SMC_NOP_WORD);
    }

    fn smc_nop_word(&self) -> u32 {
        enc::SMC_NOP_WORD
    }

    fn finish(mut self, entry: u32) -> GuestImage {
        for (at, label, fix) in std::mem::take(&mut self.fixups) {
            let target = self
                .buf
                .label_addr(label)
                .unwrap_or_else(|| panic!("unbound label {label:?} referenced at {at:#x}"));
            match fix {
                Fix::Rel { imm_off, len } => {
                    let rel = target.wrapping_sub(at.wrapping_add(len));
                    self.buf.write_u32_at(at + imm_off, rel);
                }
                Fix::Abs { imm_off } => {
                    self.buf.write_u32_at(at + imm_off, target);
                }
            }
        }
        self.buf.into_image(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use simbench_core::ir::Op;

    fn section_bytes(img: &GuestImage, addr: u32) -> &[u8] {
        let s = img
            .sections
            .iter()
            .find(|s| s.addr <= addr && addr < s.end())
            .unwrap();
        &s.bytes[(addr - s.addr) as usize..]
    }

    #[test]
    fn forward_jump_fixup() {
        let mut a = PetixAsm::new();
        a.org(0x8000);
        let l = a.new_label();
        a.b(l);
        a.nop();
        a.bind(l);
        a.halt();
        let img = a.finish(0x8000);
        let d = decode(section_bytes(&img, 0x8000), 0x8000).unwrap();
        assert_eq!(d.ops, vec![Op::Branch { target: 0x8006 }]);
    }

    #[test]
    fn call_and_label_fixups() {
        let mut a = PetixAsm::new();
        a.org(0x8000);
        let f = a.new_label();
        let data = a.new_label();
        a.call(f);
        a.mov_label(PReg::A, data);
        a.halt();
        a.bind(f);
        a.ret();
        a.align(4);
        a.bind(data);
        a.word(0x1234);
        let img = a.finish(0x8000);
        let d = decode(section_bytes(&img, 0x8000), 0x8000).unwrap();
        assert!(matches!(d.ops[0], Op::Call { ret: 0x8005, .. }));
        // The mov imm32 at 0x8005 carries the bound address of `data`.
        let d = decode(section_bytes(&img, 0x8005), 0x8005).unwrap();
        let expect = img.sections[0].bytes.len() as u32; // data is last in section
        let _ = expect;
        if let Op::Alu {
            src: simbench_core::ir::Operand::Imm(v),
            ..
        } = d.ops[0]
        {
            assert_eq!(v & 3, 0, "aligned data address");
            assert!(v > 0x8005);
        } else {
            panic!("expected mov imm");
        }
    }

    #[test]
    fn three_address_expansion() {
        let mut a = PetixAsm::new();
        a.org(0);
        // rd == rn: single instruction.
        a.alu_rr(AluOp::Add, PReg::A, PReg::A, PReg::B);
        // rd != rn: mov + op.
        a.alu_rr(AluOp::Sub, PReg::C, PReg::A, PReg::B);
        // rd == rm commutative: single instruction, swapped.
        a.alu_rr(AluOp::Add, PReg::B, PReg::A, PReg::B);
        let img = a.finish(0);
        let b = &img.sections[0].bytes;
        assert_eq!(b.len(), 2 + 4 + 2);
    }

    #[test]
    #[should_panic(expected = "non-commutative")]
    fn impossible_lowering_panics() {
        let mut a = PetixAsm::new();
        a.org(0);
        a.alu_rr(AluOp::Sub, PReg::B, PReg::A, PReg::B);
    }

    #[test]
    fn smc_sequence_decodes() {
        let mut a = PetixAsm::new();
        a.org(0);
        a.emit_smc_word(PReg::A, PReg::B);
        let img = a.finish(0);
        let bytes = &img.sections[0].bytes;
        // mov(2) + lsl imm32(6) + orr imm32(6).
        assert_eq!(bytes.len(), 14);
        let mut pc = 0usize;
        while pc < bytes.len() {
            let d = decode(&bytes[pc..], pc as u32).unwrap();
            pc += d.len as usize;
        }
    }
}

//! # simbench-isa-petix
//!
//! The `petix` guest architecture: a variable-length (1–6 byte)
//! CISC-flavoured ISA modelled on x86. Eight GPRs with a hardware stack
//! pointer (calls push their return address — handlers that redirect the
//! resume point must unwind the stack, the behaviour the paper notes for
//! the x86 Instruction Access Fault benchmark), x86-style two-level page
//! tables, control registers (`cr0`/`cr3`/`invlpg`/FPU control word),
//! `int`-style system calls and a `ud2` undefined instruction. There are
//! no non-privileged loads/stores: the corresponding SimBench benchmark
//! is a no-op on this architecture, exactly as the paper describes for
//! its x86 port.
//!
//! ## Example
//!
//! ```
//! use simbench_core::asm::{PReg, PortableAsm};
//! use simbench_core::isa::Isa;
//! use simbench_isa_petix::{Petix, PetixAsm};
//!
//! let mut a = PetixAsm::new();
//! a.org(0x8000);
//! a.mov_imm(PReg::A, 41);
//! a.alu_ri(simbench_core::ir::AluOp::Add, PReg::A, PReg::A, 1);
//! a.halt();
//! let image = a.finish(0x8000);
//! let first = Petix::decode(&image.sections[0].bytes, 0x8000).unwrap();
//! assert_eq!(first.len, 6); // mov imm32
//! ```

pub mod asm;
pub mod decode;
pub mod encoding;
pub mod mmu;
pub mod sys;

pub use asm::PetixAsm;
pub use mmu::{PtFlags, TableBuilder};
pub use sys::PetixSys;

use simbench_core::bus::Bus;
use simbench_core::cpu::CpuState;
use simbench_core::fault::{CopFault, ExcInfo, ExceptionKind};
use simbench_core::ir::{DecodeError, Decoded};
use simbench_core::isa::{CopEffect, Isa};
use simbench_core::mmu::WalkResult;

/// The petix architecture (implements [`Isa`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Petix;

impl Isa for Petix {
    const NAME: &'static str = "petix";
    const MAX_INSN_BYTES: usize = 6;
    const GPRS: usize = 8;
    type Sys = PetixSys;

    fn decode(bytes: &[u8], pc: u32) -> Result<Decoded, DecodeError> {
        decode::decode(bytes, pc)
    }

    fn mmu_enabled(sys: &Self::Sys) -> bool {
        sys.paging_enabled()
    }

    fn walk<B: Bus>(sys: &Self::Sys, bus: &mut B, va: u32) -> WalkResult {
        mmu::walk(sys, bus, va)
    }

    fn cop_read(_cpu: &CpuState, sys: &mut Self::Sys, cp: u8, reg: u8) -> Result<u32, CopFault> {
        sys.cop_read(cp, reg)
    }

    fn cop_write(
        cpu: &mut CpuState,
        sys: &mut Self::Sys,
        cp: u8,
        reg: u8,
        val: u32,
    ) -> Result<CopEffect, CopFault> {
        sys.cop_write(cpu, cp, reg, val)
    }

    fn enter_exception(
        cpu: &mut CpuState,
        sys: &mut Self::Sys,
        kind: ExceptionKind,
        info: ExcInfo,
        return_pc: u32,
    ) -> u32 {
        sys.enter_exception(cpu, kind, info, return_pc)
    }

    fn leave_exception(cpu: &mut CpuState, sys: &mut Self::Sys) -> u32 {
        sys.leave_exception(cpu)
    }

    fn sys_regs(sys: &Self::Sys, visit: &mut dyn FnMut(&'static str, u32)) {
        visit("cr0", sys.cr0);
        visit("cr2", sys.cr2);
        visit("cr3", sys.cr3);
        visit("cr4", sys.cr4);
        visit("fpcw", sys.fpcw);
        visit("saved_pc", sys.saved_pc);
        visit("saved_status", PetixSys::encode_status(sys.saved_status));
        visit("scratch", sys.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_constants() {
        assert_eq!(Petix::NAME, "petix");
        assert_eq!(Petix::MAX_INSN_BYTES, 6);
        assert_eq!(Petix::GPRS, 8);
    }
}

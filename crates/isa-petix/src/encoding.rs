//! petix instruction encodings.
//!
//! petix is a variable-length (1–6 byte) CISC-flavoured ISA modelled on
//! x86: eight GPRs (r6 is the stack pointer by hardware convention —
//! calls push their return address), a two-level x86-style page-table
//! format, an `int`-style system call, a two-byte `ud2` equivalent, and
//! control registers accessed through `mov cr` forms. There is **no**
//! non-privileged load/store — the paper notes the corresponding
//! SimBench benchmark is a no-op on x86, and petix reproduces that.
//!
//! Encodings (all little-endian):
//!
//! | Opcode | Form | Length |
//! |--------|------|--------|
//! | `00` | nop | 1 |
//! | `01` | halt | 1 |
//! | `02` | ret (pop target) | 1 |
//! | `03` | iret | 1 |
//! | `0F 0B` | ud2 | 2 |
//! | `10+op` | alu rr: `[mod: rd<<4\|rm]`, `rd = rd op rm` | 2 |
//! | `30+op` | alu imm32: `[mod: rd<<4][imm32]` | 6 |
//! | `50+op` | alu imm16: `[mod: rd<<4][imm16]` | 4 |
//! | `70/71` | load/store word: `[mod: rd<<4\|base][disp16]` | 4 |
//! | `72/73` | load/store byte | 4 |
//! | `74/75` | load/store half | 4 |
//! | `80` | jmp rel32 | 5 |
//! | `81` | jcc: `[cond][rel32]` | 6 |
//! | `82` | call rel32 (pushes return) | 5 |
//! | `83/84` | jmp/call reg: `[rm]` | 2 |
//! | `85/86` | push/pop reg: `[r]` | 2 |
//! | `87` | int imm8 | 2 |
//! | `88/89` | cmp rr / cmp imm32 | 2/6 |
//! | `8A/8B` | tst rr / tst imm32 | 2/6 |
//! | `90/91` | mov r←cr / mov cr←r: `[r<<4\|cr]` | 2 |
//! | `A0` | mov imm32: `[mod: rd<<4][imm32]` | 6 |

use simbench_core::ir::{AluOp, Cond};

/// Longest petix instruction in bytes.
pub const MAX_INSN_BYTES: usize = 6;

/// Stack-pointer register (hardware pushes through it).
pub const SP: u8 = 6;
/// Conventional link register (software-managed scratch).
pub const LR: u8 = 7;

/// The canonical undefined instruction (`ud2`).
pub const UD2: [u8; 2] = [0x0F, 0x0B];

/// The 4-byte self-modifying-code filler, as a little-endian word:
/// `mov r5, #imm16` (alu-imm16 Mov with rd = 5). OR the iteration count's
/// low 16 bits into the top half for a fresh valid encoding each time.
pub const SMC_NOP_WORD: u32 = 0x0000_5059;

fn r2(a: u8, b: u8) -> u8 {
    debug_assert!(a < 8 && b < 8);
    a << 4 | b
}

/// ALU register form: `rd = rd <op> rm`.
pub fn alu_rr(op: AluOp, rd: u8, rm: u8) -> Vec<u8> {
    vec![0x10 + op.code(), r2(rd, rm)]
}

/// ALU 32-bit-immediate form: `rd = rd <op> imm`.
pub fn alu_ri32(op: AluOp, rd: u8, imm: u32) -> Vec<u8> {
    let mut v = vec![0x30 + op.code(), r2(rd, 0)];
    v.extend_from_slice(&imm.to_le_bytes());
    v
}

/// ALU 16-bit-immediate form: `rd = rd <op> imm16` (zero-extended).
pub fn alu_ri16(op: AluOp, rd: u8, imm: u16) -> Vec<u8> {
    let mut v = vec![0x50 + op.code(), r2(rd, 0)];
    v.extend_from_slice(&imm.to_le_bytes());
    v
}

/// Memory access width selector for [`ldst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// 32-bit.
    Word,
    /// 8-bit.
    Byte,
    /// 16-bit.
    Half,
}

/// Load/store with a signed 16-bit displacement.
///
/// # Panics
///
/// Panics if `disp` exceeds ±32767.
pub fn ldst(load: bool, width: Width, r: u8, base: u8, disp: i32) -> Vec<u8> {
    assert!(
        (-32768..=32767).contains(&disp),
        "petix displacement {disp} exceeds 16 bits"
    );
    let op = match (width, load) {
        (Width::Word, true) => 0x70,
        (Width::Word, false) => 0x71,
        (Width::Byte, true) => 0x72,
        (Width::Byte, false) => 0x73,
        (Width::Half, true) => 0x74,
        (Width::Half, false) => 0x75,
    };
    let mut v = vec![op, r2(r, base)];
    v.extend_from_slice(&(disp as i16).to_le_bytes());
    v
}

/// Relative displacement from the end of an instruction of `len` bytes at
/// `pc` to `target`.
fn rel32(pc: u32, len: u32, target: u32) -> [u8; 4] {
    (target.wrapping_sub(pc.wrapping_add(len)) as i32).to_le_bytes()
}

/// Unconditional direct jump.
pub fn jmp(pc: u32, target: u32) -> Vec<u8> {
    let mut v = vec![0x80];
    v.extend_from_slice(&rel32(pc, 5, target));
    v
}

/// Conditional jump.
pub fn jcc(cond: Cond, pc: u32, target: u32) -> Vec<u8> {
    let mut v = vec![0x81, cond.code()];
    v.extend_from_slice(&rel32(pc, 6, target));
    v
}

/// Direct call (pushes the return address).
pub fn call(pc: u32, target: u32) -> Vec<u8> {
    let mut v = vec![0x82];
    v.extend_from_slice(&rel32(pc, 5, target));
    v
}

/// Indirect jump through a register.
pub fn jmp_reg(rm: u8) -> Vec<u8> {
    vec![0x83, rm & 0x7]
}

/// Indirect call through a register.
pub fn call_reg(rm: u8) -> Vec<u8> {
    vec![0x84, rm & 0x7]
}

/// Push a register.
pub fn push(r: u8) -> Vec<u8> {
    vec![0x85, r & 0x7]
}

/// Pop into a register.
pub fn pop(r: u8) -> Vec<u8> {
    vec![0x86, r & 0x7]
}

/// Software interrupt (system call).
pub fn int(n: u8) -> Vec<u8> {
    vec![0x87, n]
}

/// Compare registers.
pub fn cmp_rr(rn: u8, rm: u8) -> Vec<u8> {
    vec![0x88, r2(rn, rm)]
}

/// Compare with a 32-bit immediate.
pub fn cmp_ri(rn: u8, imm: u32) -> Vec<u8> {
    let mut v = vec![0x89, r2(rn, 0)];
    v.extend_from_slice(&imm.to_le_bytes());
    v
}

/// Bit-test registers.
pub fn tst_rr(rn: u8, rm: u8) -> Vec<u8> {
    vec![0x8A, r2(rn, rm)]
}

/// Bit-test with a 32-bit immediate.
pub fn tst_ri(rn: u8, imm: u32) -> Vec<u8> {
    let mut v = vec![0x8B, r2(rn, 0)];
    v.extend_from_slice(&imm.to_le_bytes());
    v
}

/// Read a control register: `r = cr`.
pub fn mov_from_cr(r: u8, cr: u8) -> Vec<u8> {
    vec![0x90, r << 4 | (cr & 0xF)]
}

/// Write a control register: `cr = r`.
pub fn mov_to_cr(cr: u8, r: u8) -> Vec<u8> {
    vec![0x91, r << 4 | (cr & 0xF)]
}

/// Load a 32-bit immediate.
pub fn mov_imm32(rd: u8, imm: u32) -> Vec<u8> {
    let mut v = vec![0xA0, r2(rd, 0)];
    v.extend_from_slice(&imm.to_le_bytes());
    v
}

/// Single-byte forms.
pub fn nop() -> Vec<u8> {
    vec![0x00]
}
/// `halt`.
pub fn halt() -> Vec<u8> {
    vec![0x01]
}
/// `ret`.
pub fn ret() -> Vec<u8> {
    vec![0x02]
}
/// `iret`.
pub fn iret() -> Vec<u8> {
    vec![0x03]
}
/// `ud2`.
pub fn ud2() -> Vec<u8> {
    UD2.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths() {
        assert_eq!(nop().len(), 1);
        assert_eq!(ud2().len(), 2);
        assert_eq!(alu_rr(AluOp::Add, 1, 2).len(), 2);
        assert_eq!(alu_ri16(AluOp::Mov, 5, 0).len(), 4);
        assert_eq!(alu_ri32(AluOp::Add, 1, 0xDEAD_BEEF).len(), 6);
        assert_eq!(jmp(0, 100).len(), 5);
        assert_eq!(jcc(Cond::Eq, 0, 100).len(), 6);
        assert_eq!(ldst(true, Width::Word, 1, 2, -4).len(), 4);
    }

    #[test]
    fn smc_word_matches_alu_ri16_mov_r5() {
        let bytes = alu_ri16(AluOp::Mov, 5, 0);
        let word = u32::from_le_bytes(bytes.try_into().unwrap());
        assert_eq!(word, SMC_NOP_WORD);
    }

    #[test]
    fn rel32_round() {
        // jmp at pc=100 to 100 → rel = -5.
        let b = jmp(100, 100);
        assert_eq!(i32::from_le_bytes(b[1..5].try_into().unwrap()), -5);
    }

    #[test]
    #[should_panic(expected = "exceeds 16 bits")]
    fn huge_displacement_rejected() {
        ldst(true, Width::Word, 0, 0, 40000);
    }
}

//! petix decoder: variable-length instruction bytes → micro-op IR.
//!
//! The decoder body and the length table are generated from the
//! declarative encoding spec in `spec/petix.isa` by `simbench-isa-spec`
//! (committed as `src/decode_gen.rs`); this module is the stable public
//! surface. The original hand-written decoder survives as
//! [`crate::decode_ref`], the oracle for the differential proptests and
//! the opcode × fill sweep proving the two agree.

use simbench_core::ir::{DecodeError, Decoded};

/// Total byte length of the instruction whose first byte is `opc`, or
/// `None` if no instruction starts with that byte.
///
/// This is the decode length table exposed for static sweeps: whenever
/// [`decode`] succeeds on a buffer starting with `opc`, the decoded
/// `len` equals this value, and `decode` never reads past it. (A
/// `Some` here does not promise the full instruction decodes — e.g.
/// `0x0F` escapes and `0x81` condition codes can still reject on later
/// bytes — only that the length is determined by the first byte.)
pub const fn insn_len(opc: u8) -> Option<usize> {
    crate::decode_gen::insn_len(opc)
}

/// Decode one instruction starting at `bytes[0]` (the byte at `pc`).
///
/// # Errors
///
/// [`DecodeError`] for invalid opcodes *or* when `bytes` is too short to
/// hold the full instruction (engines retry with more bytes across page
/// boundaries before treating the error as undefined).
#[inline]
pub fn decode(bytes: &[u8], pc: u32) -> Result<Decoded, DecodeError> {
    crate::decode_gen::decode(bytes, pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding as enc;
    use crate::encoding::SP;
    use simbench_core::ir::{AluOp, Cond, LinkKind, MemSize, Op, Operand, RetKind};

    fn dec(bytes: &[u8]) -> Decoded {
        decode(bytes, 0x8000).unwrap()
    }

    #[test]
    fn one_byte_forms() {
        assert_eq!(dec(&enc::nop()).ops, vec![Op::Nop]);
        assert_eq!(dec(&enc::halt()).ops, vec![Op::Halt]);
        assert_eq!(dec(&enc::ret()).ops, vec![Op::Ret(RetKind::Pop(SP))]);
        assert_eq!(dec(&enc::iret()).ops, vec![Op::Eret]);
    }

    #[test]
    fn ud2_and_bad_escape() {
        assert_eq!(dec(&enc::ud2()).ops, vec![Op::Udf]);
        assert!(decode(&[0x0F, 0x0C], 0).is_err());
    }

    #[test]
    fn alu_forms() {
        let d = dec(&enc::alu_rr(AluOp::Add, 1, 2));
        assert_eq!(
            d.ops,
            vec![Op::Alu {
                op: AluOp::Add,
                rd: 1,
                rn: 1,
                src: Operand::Reg(2),
                set_flags: false
            }]
        );
        let d = dec(&enc::alu_ri32(AluOp::Eor, 3, 0xDEAD_BEEF));
        assert_eq!(d.len, 6);
        assert_eq!(
            d.ops,
            vec![Op::Alu {
                op: AluOp::Eor,
                rd: 3,
                rn: 3,
                src: Operand::Imm(0xDEAD_BEEF),
                set_flags: false
            }]
        );
        let d = dec(&enc::alu_ri16(AluOp::Mov, 5, 0x1234));
        assert_eq!(d.len, 4);
        assert_eq!(
            d.ops,
            vec![Op::Alu {
                op: AluOp::Mov,
                rd: 5,
                rn: 5,
                src: Operand::Imm(0x1234),
                set_flags: false
            }]
        );
    }

    #[test]
    fn memory_forms() {
        let d = dec(&enc::ldst(true, enc::Width::Word, 1, 2, -8));
        assert_eq!(
            d.ops,
            vec![Op::Load {
                rd: 1,
                base: 2,
                off: -8,
                size: MemSize::B4,
                nonpriv: false
            }]
        );
        let d = dec(&enc::ldst(false, enc::Width::Byte, 3, 4, 7));
        assert_eq!(
            d.ops,
            vec![Op::Store {
                rs: 3,
                base: 4,
                off: 7,
                size: MemSize::B1,
                nonpriv: false
            }]
        );
    }

    #[test]
    fn branch_targets() {
        let b = enc::jmp(0x8000, 0x8100);
        assert_eq!(dec(&b).ops, vec![Op::Branch { target: 0x8100 }]);
        let b = enc::jcc(Cond::Lt, 0x8000, 0x7F00);
        assert_eq!(
            dec(&b).ops,
            vec![Op::BranchCond {
                cond: Cond::Lt,
                target: 0x7F00
            }]
        );
        let b = enc::call(0x8000, 0x9000);
        assert_eq!(
            dec(&b).ops,
            vec![Op::Call {
                target: 0x9000,
                ret: 0x8005,
                link: LinkKind::Push(SP)
            }]
        );
    }

    #[test]
    fn push_pop_sequences() {
        let d = dec(&enc::push(3));
        assert_eq!(d.ops.len(), 2);
        assert!(matches!(d.ops[0], Op::Alu { op: AluOp::Sub, rd, .. } if rd == SP));
        assert!(matches!(d.ops[1], Op::Store { rs: 3, .. }));
        let d = dec(&enc::pop(3));
        assert!(matches!(d.ops[0], Op::Load { rd: 3, .. }));
        assert!(matches!(d.ops[1], Op::Alu { op: AluOp::Add, rd, .. } if rd == SP));
    }

    #[test]
    fn system_forms() {
        assert_eq!(dec(&enc::int(42)).ops, vec![Op::Svc(42)]);
        assert_eq!(
            dec(&enc::mov_from_cr(2, 5)).ops,
            vec![Op::CopRead {
                cp: 0,
                reg: 5,
                rd: 2
            }]
        );
        assert_eq!(
            dec(&enc::mov_to_cr(3, 1)).ops,
            vec![Op::CopWrite {
                cp: 0,
                reg: 3,
                rs: 1
            }]
        );
    }

    #[test]
    fn truncated_buffers_error() {
        let full = enc::alu_ri32(AluOp::Add, 1, 0x12345678);
        for n in 0..full.len() {
            assert!(decode(&full[..n], 0).is_err(), "truncated to {n} bytes");
        }
        assert!(decode(&full, 0).is_ok());
    }

    #[test]
    fn smc_word_is_harmless_mov_r5() {
        for imm in [0u32, 0xBEEF] {
            let word = enc::SMC_NOP_WORD | (imm << 16);
            let bytes = word.to_le_bytes();
            let d = decode(&bytes, 0).unwrap();
            assert_eq!(d.len, 4);
            assert_eq!(
                d.ops,
                vec![Op::Alu {
                    op: AluOp::Mov,
                    rd: 5,
                    rn: 5,
                    src: Operand::Imm(imm),
                    set_flags: false
                }]
            );
        }
    }

    #[test]
    fn length_table_matches_decoder() {
        // Operand fills that exercise every later-byte validity path
        // (second-byte escapes, condition codes, register fields).
        let fills: [[u8; 5]; 4] = [
            [0x00; 5],
            [0xFF; 5],
            [0x0B, 0x0B, 0x0B, 0x0B, 0x0B],
            [0x07, 0x80, 0x7F, 0x01, 0xFE],
        ];
        for opc in 0..=255u8 {
            for fill in &fills {
                let mut bytes = [0u8; 6];
                bytes[0] = opc;
                bytes[1..].copy_from_slice(fill);
                match (decode(&bytes, 0), insn_len(opc)) {
                    (Ok(d), Some(len)) => assert_eq!(d.len as usize, len, "opcode {opc:#x}"),
                    (Ok(_), None) => panic!("opcode {opc:#x} decodes but has no table length"),
                    (Err(_), _) => {}
                }
            }
            if insn_len(opc).is_none() {
                let bytes = [opc, 0, 0, 0, 0, 0];
                assert!(decode(&bytes, 0).is_err(), "opcode {opc:#x}");
            }
        }
    }

    #[test]
    fn invalid_opcodes_error() {
        for opc in [0x04u8, 0x20, 0x60, 0x76, 0x8C, 0x92, 0xA1, 0xFF] {
            assert!(decode(&[opc, 0, 0, 0, 0, 0], 0).is_err(), "opcode {opc:#x}");
        }
    }

    #[test]
    fn generated_decoder_matches_reference_on_canonical_buffers() {
        // Spot-check the generated ≡ hand-written contract across every
        // opcode with a representative operand fill (the exhaustive
        // proof lives in the analyzer's opcode × fill sweep and the
        // proptest in tests/prop_decode_equiv.rs).
        for opc in 0..=255u8 {
            let bytes = [opc, 0x53, 0x21, 0x43, 0x65, 0x87];
            let (a, b) = (
                decode(&bytes, 0x8000),
                crate::decode_ref::decode(&bytes, 0x8000),
            );
            assert_eq!(a, b, "opcode {opc:#04x}");
            assert_eq!(insn_len(opc), crate::decode_ref::insn_len(opc));
        }
    }
}

//! petix decoder: variable-length instruction bytes → micro-op IR.

use simbench_core::ir::{
    AluOp, Cond, DecodeError, Decoded, InsnClass, LinkKind, MemSize, Op, Operand, RetKind,
};

use crate::encoding::SP;

/// Total byte length of the instruction whose first byte is `opc`, or
/// `None` if no instruction starts with that byte.
///
/// This is the decode length table exposed for static sweeps: whenever
/// [`decode`] succeeds on a buffer starting with `opc`, the decoded
/// `len` equals this value, and `decode` never reads past it. (A
/// `Some` here does not promise the full instruction decodes — e.g.
/// `0x0F` escapes and `0x81` condition codes can still reject on later
/// bytes — only that the length is determined by the first byte.)
pub const fn insn_len(opc: u8) -> Option<usize> {
    match opc {
        0x00..=0x03 => Some(1),
        0x0F => Some(2),
        0x10..=0x1F => Some(2),
        0x30..=0x3F => Some(6),
        0x50..=0x5F => Some(4),
        0x70..=0x75 => Some(4),
        0x80 => Some(5),
        0x81 => Some(6),
        0x82 => Some(5),
        0x83..=0x88 => Some(2),
        0x89 => Some(6),
        0x8A => Some(2),
        0x8B => Some(6),
        0x90 | 0x91 => Some(2),
        0xA0 => Some(6),
        _ => None,
    }
}

fn need(bytes: &[u8], n: usize, pc: u32) -> Result<(), DecodeError> {
    if bytes.len() < n {
        Err(DecodeError { pc })
    } else {
        Ok(())
    }
}

fn imm32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn imm16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([bytes[at], bytes[at + 1]])
}

/// Decode one instruction starting at `bytes[0]` (the byte at `pc`).
///
/// # Errors
///
/// [`DecodeError`] for invalid opcodes *or* when `bytes` is too short to
/// hold the full instruction (engines retry with more bytes across page
/// boundaries before treating the error as undefined).
pub fn decode(bytes: &[u8], pc: u32) -> Result<Decoded, DecodeError> {
    need(bytes, 1, pc)?;
    let opc = bytes[0];
    fn d(
        len: u8,
        ops: impl Into<simbench_core::ir::OpList>,
        class: InsnClass,
    ) -> Result<Decoded, DecodeError> {
        Ok(Decoded::new(len, ops, class))
    }
    match opc {
        0x00 => d(1, [Op::Nop], InsnClass::Nop),
        0x01 => d(1, [Op::Halt], InsnClass::System),
        0x02 => d(1, [Op::Ret(RetKind::Pop(SP))], InsnClass::Branch),
        0x03 => d(1, [Op::Eret], InsnClass::System),
        0x0F => {
            need(bytes, 2, pc)?;
            if bytes[1] == 0x0B {
                d(2, [Op::Udf], InsnClass::System)
            } else {
                Err(DecodeError { pc })
            }
        }
        0x10..=0x1F => {
            need(bytes, 2, pc)?;
            let op = AluOp::from_code(opc - 0x10).ok_or(DecodeError { pc })?;
            let rd = (bytes[1] >> 4) & 0x7;
            let rm = bytes[1] & 0x7;
            d(
                2,
                [Op::Alu {
                    op,
                    rd,
                    rn: rd,
                    src: Operand::Reg(rm),
                    set_flags: false,
                }],
                InsnClass::Alu,
            )
        }
        0x30..=0x3F => {
            need(bytes, 6, pc)?;
            let op = AluOp::from_code(opc - 0x30).ok_or(DecodeError { pc })?;
            let rd = (bytes[1] >> 4) & 0x7;
            d(
                6,
                [Op::Alu {
                    op,
                    rd,
                    rn: rd,
                    src: Operand::Imm(imm32(bytes, 2)),
                    set_flags: false,
                }],
                InsnClass::Alu,
            )
        }
        0x50..=0x5F => {
            need(bytes, 4, pc)?;
            let op = AluOp::from_code(opc - 0x50).ok_or(DecodeError { pc })?;
            let rd = (bytes[1] >> 4) & 0x7;
            d(
                4,
                [Op::Alu {
                    op,
                    rd,
                    rn: rd,
                    src: Operand::Imm(imm16(bytes, 2) as u32),
                    set_flags: false,
                }],
                InsnClass::Alu,
            )
        }
        0x70..=0x75 => {
            need(bytes, 4, pc)?;
            let r = (bytes[1] >> 4) & 0x7;
            let base = bytes[1] & 0x7;
            let off = imm16(bytes, 2) as i16 as i32;
            let (size, load) = match opc {
                0x70 => (MemSize::B4, true),
                0x71 => (MemSize::B4, false),
                0x72 => (MemSize::B1, true),
                0x73 => (MemSize::B1, false),
                0x74 => (MemSize::B2, true),
                _ => (MemSize::B2, false),
            };
            let op = if load {
                Op::Load {
                    rd: r,
                    base,
                    off,
                    size,
                    nonpriv: false,
                }
            } else {
                Op::Store {
                    rs: r,
                    base,
                    off,
                    size,
                    nonpriv: false,
                }
            };
            d(4, [op], InsnClass::Mem)
        }
        0x80 => {
            need(bytes, 5, pc)?;
            let target = pc.wrapping_add(5).wrapping_add(imm32(bytes, 1));
            d(5, [Op::Branch { target }], InsnClass::Branch)
        }
        0x81 => {
            need(bytes, 6, pc)?;
            let cond = Cond::from_code(bytes[1]).ok_or(DecodeError { pc })?;
            let target = pc.wrapping_add(6).wrapping_add(imm32(bytes, 2));
            d(6, [Op::BranchCond { cond, target }], InsnClass::Branch)
        }
        0x82 => {
            need(bytes, 5, pc)?;
            let target = pc.wrapping_add(5).wrapping_add(imm32(bytes, 1));
            let ret = pc.wrapping_add(5);
            d(
                5,
                [Op::Call {
                    target,
                    ret,
                    link: LinkKind::Push(SP),
                }],
                InsnClass::Branch,
            )
        }
        0x83 => {
            need(bytes, 2, pc)?;
            d(2, [Op::BranchReg { rm: bytes[1] & 0x7 }], InsnClass::Branch)
        }
        0x84 => {
            need(bytes, 2, pc)?;
            let ret = pc.wrapping_add(2);
            d(
                2,
                [Op::CallReg {
                    rm: bytes[1] & 0x7,
                    ret,
                    link: LinkKind::Push(SP),
                }],
                InsnClass::Branch,
            )
        }
        0x85 => {
            need(bytes, 2, pc)?;
            let r = bytes[1] & 0x7;
            d(
                2,
                [
                    Op::Alu {
                        op: AluOp::Sub,
                        rd: SP,
                        rn: SP,
                        src: Operand::Imm(4),
                        set_flags: false,
                    },
                    Op::Store {
                        rs: r,
                        base: SP,
                        off: 0,
                        size: MemSize::B4,
                        nonpriv: false,
                    },
                ],
                InsnClass::Mem,
            )
        }
        0x86 => {
            need(bytes, 2, pc)?;
            let r = bytes[1] & 0x7;
            d(
                2,
                [
                    Op::Load {
                        rd: r,
                        base: SP,
                        off: 0,
                        size: MemSize::B4,
                        nonpriv: false,
                    },
                    Op::Alu {
                        op: AluOp::Add,
                        rd: SP,
                        rn: SP,
                        src: Operand::Imm(4),
                        set_flags: false,
                    },
                ],
                InsnClass::Mem,
            )
        }
        0x87 => {
            need(bytes, 2, pc)?;
            d(2, [Op::Svc(bytes[1] as u16)], InsnClass::System)
        }
        0x88 => {
            need(bytes, 2, pc)?;
            let rn = (bytes[1] >> 4) & 0x7;
            let rm = bytes[1] & 0x7;
            d(
                2,
                [Op::Cmp {
                    rn,
                    src: Operand::Reg(rm),
                    is_tst: false,
                }],
                InsnClass::Alu,
            )
        }
        0x89 => {
            need(bytes, 6, pc)?;
            let rn = (bytes[1] >> 4) & 0x7;
            d(
                6,
                [Op::Cmp {
                    rn,
                    src: Operand::Imm(imm32(bytes, 2)),
                    is_tst: false,
                }],
                InsnClass::Alu,
            )
        }
        0x8A => {
            need(bytes, 2, pc)?;
            let rn = (bytes[1] >> 4) & 0x7;
            let rm = bytes[1] & 0x7;
            d(
                2,
                [Op::Cmp {
                    rn,
                    src: Operand::Reg(rm),
                    is_tst: true,
                }],
                InsnClass::Alu,
            )
        }
        0x8B => {
            need(bytes, 6, pc)?;
            let rn = (bytes[1] >> 4) & 0x7;
            d(
                6,
                [Op::Cmp {
                    rn,
                    src: Operand::Imm(imm32(bytes, 2)),
                    is_tst: true,
                }],
                InsnClass::Alu,
            )
        }
        0x90 => {
            need(bytes, 2, pc)?;
            let r = (bytes[1] >> 4) & 0x7;
            let cr = bytes[1] & 0xF;
            d(
                2,
                [Op::CopRead {
                    cp: 0,
                    reg: cr,
                    rd: r,
                }],
                InsnClass::System,
            )
        }
        0x91 => {
            need(bytes, 2, pc)?;
            let r = (bytes[1] >> 4) & 0x7;
            let cr = bytes[1] & 0xF;
            d(
                2,
                [Op::CopWrite {
                    cp: 0,
                    reg: cr,
                    rs: r,
                }],
                InsnClass::System,
            )
        }
        0xA0 => {
            need(bytes, 6, pc)?;
            let rd = (bytes[1] >> 4) & 0x7;
            d(
                6,
                [Op::Alu {
                    op: AluOp::Mov,
                    rd,
                    rn: 0,
                    src: Operand::Imm(imm32(bytes, 2)),
                    set_flags: false,
                }],
                InsnClass::Alu,
            )
        }
        _ => Err(DecodeError { pc }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding as enc;

    fn dec(bytes: &[u8]) -> Decoded {
        decode(bytes, 0x8000).unwrap()
    }

    #[test]
    fn one_byte_forms() {
        assert_eq!(dec(&enc::nop()).ops, vec![Op::Nop]);
        assert_eq!(dec(&enc::halt()).ops, vec![Op::Halt]);
        assert_eq!(dec(&enc::ret()).ops, vec![Op::Ret(RetKind::Pop(SP))]);
        assert_eq!(dec(&enc::iret()).ops, vec![Op::Eret]);
    }

    #[test]
    fn ud2_and_bad_escape() {
        assert_eq!(dec(&enc::ud2()).ops, vec![Op::Udf]);
        assert!(decode(&[0x0F, 0x0C], 0).is_err());
    }

    #[test]
    fn alu_forms() {
        let d = dec(&enc::alu_rr(AluOp::Add, 1, 2));
        assert_eq!(
            d.ops,
            vec![Op::Alu {
                op: AluOp::Add,
                rd: 1,
                rn: 1,
                src: Operand::Reg(2),
                set_flags: false
            }]
        );
        let d = dec(&enc::alu_ri32(AluOp::Eor, 3, 0xDEAD_BEEF));
        assert_eq!(d.len, 6);
        assert_eq!(
            d.ops,
            vec![Op::Alu {
                op: AluOp::Eor,
                rd: 3,
                rn: 3,
                src: Operand::Imm(0xDEAD_BEEF),
                set_flags: false
            }]
        );
        let d = dec(&enc::alu_ri16(AluOp::Mov, 5, 0x1234));
        assert_eq!(d.len, 4);
        assert_eq!(
            d.ops,
            vec![Op::Alu {
                op: AluOp::Mov,
                rd: 5,
                rn: 5,
                src: Operand::Imm(0x1234),
                set_flags: false
            }]
        );
    }

    #[test]
    fn memory_forms() {
        let d = dec(&enc::ldst(true, enc::Width::Word, 1, 2, -8));
        assert_eq!(
            d.ops,
            vec![Op::Load {
                rd: 1,
                base: 2,
                off: -8,
                size: MemSize::B4,
                nonpriv: false
            }]
        );
        let d = dec(&enc::ldst(false, enc::Width::Byte, 3, 4, 7));
        assert_eq!(
            d.ops,
            vec![Op::Store {
                rs: 3,
                base: 4,
                off: 7,
                size: MemSize::B1,
                nonpriv: false
            }]
        );
    }

    #[test]
    fn branch_targets() {
        let b = enc::jmp(0x8000, 0x8100);
        assert_eq!(dec(&b).ops, vec![Op::Branch { target: 0x8100 }]);
        let b = enc::jcc(Cond::Lt, 0x8000, 0x7F00);
        assert_eq!(
            dec(&b).ops,
            vec![Op::BranchCond {
                cond: Cond::Lt,
                target: 0x7F00
            }]
        );
        let b = enc::call(0x8000, 0x9000);
        assert_eq!(
            dec(&b).ops,
            vec![Op::Call {
                target: 0x9000,
                ret: 0x8005,
                link: LinkKind::Push(SP)
            }]
        );
    }

    #[test]
    fn push_pop_sequences() {
        let d = dec(&enc::push(3));
        assert_eq!(d.ops.len(), 2);
        assert!(matches!(d.ops[0], Op::Alu { op: AluOp::Sub, rd, .. } if rd == SP));
        assert!(matches!(d.ops[1], Op::Store { rs: 3, .. }));
        let d = dec(&enc::pop(3));
        assert!(matches!(d.ops[0], Op::Load { rd: 3, .. }));
        assert!(matches!(d.ops[1], Op::Alu { op: AluOp::Add, rd, .. } if rd == SP));
    }

    #[test]
    fn system_forms() {
        assert_eq!(dec(&enc::int(42)).ops, vec![Op::Svc(42)]);
        assert_eq!(
            dec(&enc::mov_from_cr(2, 5)).ops,
            vec![Op::CopRead {
                cp: 0,
                reg: 5,
                rd: 2
            }]
        );
        assert_eq!(
            dec(&enc::mov_to_cr(3, 1)).ops,
            vec![Op::CopWrite {
                cp: 0,
                reg: 3,
                rs: 1
            }]
        );
    }

    #[test]
    fn truncated_buffers_error() {
        let full = enc::alu_ri32(AluOp::Add, 1, 0x12345678);
        for n in 0..full.len() {
            assert!(decode(&full[..n], 0).is_err(), "truncated to {n} bytes");
        }
        assert!(decode(&full, 0).is_ok());
    }

    #[test]
    fn smc_word_is_harmless_mov_r5() {
        for imm in [0u32, 0xBEEF] {
            let word = enc::SMC_NOP_WORD | (imm << 16);
            let bytes = word.to_le_bytes();
            let d = decode(&bytes, 0).unwrap();
            assert_eq!(d.len, 4);
            assert_eq!(
                d.ops,
                vec![Op::Alu {
                    op: AluOp::Mov,
                    rd: 5,
                    rn: 5,
                    src: Operand::Imm(imm),
                    set_flags: false
                }]
            );
        }
    }

    #[test]
    fn length_table_matches_decoder() {
        // Operand fills that exercise every later-byte validity path
        // (second-byte escapes, condition codes, register fields).
        let fills: [[u8; 5]; 4] = [
            [0x00; 5],
            [0xFF; 5],
            [0x0B, 0x0B, 0x0B, 0x0B, 0x0B],
            [0x07, 0x80, 0x7F, 0x01, 0xFE],
        ];
        for opc in 0..=255u8 {
            for fill in &fills {
                let mut bytes = [0u8; 6];
                bytes[0] = opc;
                bytes[1..].copy_from_slice(fill);
                match (decode(&bytes, 0), insn_len(opc)) {
                    (Ok(d), Some(len)) => assert_eq!(d.len as usize, len, "opcode {opc:#x}"),
                    (Ok(_), None) => panic!("opcode {opc:#x} decodes but has no table length"),
                    (Err(_), _) => {}
                }
            }
            if insn_len(opc).is_none() {
                let bytes = [opc, 0, 0, 0, 0, 0];
                assert!(decode(&bytes, 0).is_err(), "opcode {opc:#x}");
            }
        }
    }

    #[test]
    fn invalid_opcodes_error() {
        for opc in [0x04u8, 0x20, 0x60, 0x76, 0x8C, 0x92, 0xA1, 0xFF] {
            assert!(decode(&[opc, 0, 0, 0, 0, 0], 0).is_err(), "opcode {opc:#x}");
        }
    }
}

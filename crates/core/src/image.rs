//! Bootable guest images.

use std::fmt;

/// A chunk of bytes to be loaded at a fixed physical address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Load address (physical; boot code runs MMU-off with an identity
    /// view, so link addresses equal load addresses).
    pub addr: u32,
    /// Raw contents.
    pub bytes: Vec<u8>,
}

impl Section {
    /// One-past-the-end address of the section.
    pub fn end(&self) -> u32 {
        self.addr + self.bytes.len() as u32
    }
}

/// A bare-metal bootable guest image: what the assembler/linker produces
/// and what a [`crate::machine::Machine`] boots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GuestImage {
    /// Reset vector: the first instruction executed.
    pub entry: u32,
    /// Sections, non-overlapping, in any order.
    pub sections: Vec<Section>,
}

impl GuestImage {
    /// Create an empty image entering at `entry`.
    pub fn new(entry: u32) -> Self {
        GuestImage {
            entry,
            sections: Vec::new(),
        }
    }

    /// Append a section.
    ///
    /// # Panics
    ///
    /// Panics if the new section overlaps an existing one — overlapping
    /// sections are always an assembler bug.
    pub fn push_section(&mut self, addr: u32, bytes: Vec<u8>) {
        let end = addr + bytes.len() as u32;
        for s in &self.sections {
            assert!(
                end <= s.addr || addr >= s.end(),
                "section {addr:#x}..{end:#x} overlaps {:#x}..{:#x}",
                s.addr,
                s.end()
            );
        }
        self.sections.push(Section { addr, bytes });
    }

    /// Total payload bytes.
    pub fn size(&self) -> usize {
        self.sections.iter().map(|s| s.bytes.len()).sum()
    }

    /// Highest address written by any section.
    pub fn limit(&self) -> u32 {
        self.sections.iter().map(Section::end).max().unwrap_or(0)
    }

    /// Copy all sections into `ram`.
    ///
    /// # Panics
    ///
    /// Panics if any section lies outside `ram`.
    pub fn load_into(&self, ram: &mut [u8]) {
        for s in &self.sections {
            let start = s.addr as usize;
            let end = start + s.bytes.len();
            assert!(
                end <= ram.len(),
                "image section {:#x}..{end:#x} exceeds RAM",
                s.addr
            );
            ram[start..end].copy_from_slice(&s.bytes);
        }
    }
}

impl fmt::Display for GuestImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "entry {:#010x}, {} sections, {} bytes",
            self.entry,
            self.sections.len(),
            self.size()
        )?;
        let mut sections: Vec<_> = self.sections.iter().collect();
        sections.sort_by_key(|s| s.addr);
        for s in sections {
            writeln!(
                f,
                "  {:#010x}..{:#010x} ({} bytes)",
                s.addr,
                s.end(),
                s.bytes.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_limits() {
        let mut img = GuestImage::new(0x8000);
        img.push_section(0x10, vec![1, 2, 3, 4]);
        img.push_section(0x20, vec![9]);
        assert_eq!(img.size(), 5);
        assert_eq!(img.limit(), 0x21);
        let mut ram = vec![0u8; 0x40];
        img.load_into(&mut ram);
        assert_eq!(&ram[0x10..0x14], &[1, 2, 3, 4]);
        assert_eq!(ram[0x20], 9);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlap_detected() {
        let mut img = GuestImage::new(0);
        img.push_section(0x10, vec![0; 8]);
        img.push_section(0x14, vec![0; 8]);
    }

    #[test]
    fn adjacent_sections_allowed() {
        let mut img = GuestImage::new(0);
        img.push_section(0x10, vec![0; 8]);
        img.push_section(0x18, vec![0; 8]);
        assert_eq!(img.sections.len(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds RAM")]
    fn load_out_of_bounds() {
        let mut img = GuestImage::new(0);
        img.push_section(0x100, vec![0; 8]);
        let mut ram = vec![0u8; 0x100];
        img.load_into(&mut ram);
    }
}

//! # simbench-core
//!
//! Core abstractions shared by every SimBench-rs component: the guest
//! micro-op IR, CPU state, memory faults, bus/device interfaces, MMU and
//! TLB machinery, event counters, the execution-engine trait, and the
//! portable assembler interface used to author guest programs.
//!
//! The design mirrors the structure of the ISPASS'17 SimBench paper:
//! guest *benchmarks* are written once against the portable interfaces
//! ([`asm::PortableAsm`]), *architecture support* lives in the ISA crates
//! (which implement [`isa::Isa`]), and *simulators* (the engine crates)
//! implement [`engine::Engine`] over the shared IR so that cross-engine
//! performance differences reflect engine mechanisms, not front-end
//! differences.
//!
//! ## Example
//!
//! ```
//! use simbench_core::ir::{AluOp, Cond, Op, Operand};
//!
//! // A two-op snippet of the shared micro-op IR: r0 = r0 + 1; branch.
//! let ops = [
//!     Op::Alu { op: AluOp::Add, rd: 0, rn: 0, src: Operand::Imm(1), set_flags: false },
//!     Op::Branch { target: 0x8000 },
//! ];
//! assert_eq!(ops.len(), 2);
//! ```

pub mod alu;
pub mod asm;
pub mod bus;
pub mod cfg;
pub mod cpu;
pub mod digest;
pub mod engine;
pub mod events;
pub mod exec;
pub mod fault;
pub mod image;
pub mod ir;
pub mod isa;
pub mod machine;
pub mod mmu;
pub mod tlb;

pub use cpu::{CpuState, Flags, Privilege, Status};
pub use digest::{StateDelta, StateDigest};
pub use engine::{Engine, EngineInfo, ExitReason, PhaseStats, RunLimits, RunOutcome};
pub use events::Counters;
pub use fault::{AccessKind, ExcInfo, ExceptionKind, FaultKind, MemFault};
pub use image::GuestImage;
pub use isa::Isa;
pub use machine::Machine;

/// Size of the smallest translatable page, in bytes, shared by both guest
/// ISAs (the paper notes all its targets use a 4 KB minimum granule).
pub const PAGE_SIZE: u32 = 4096;

/// Shift corresponding to [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// Returns the page number of a virtual or physical address.
#[inline]
pub fn page_of(addr: u32) -> u32 {
    addr >> PAGE_SHIFT
}

/// Returns the page-aligned base of an address.
#[inline]
pub fn page_base(addr: u32) -> u32 {
    addr & !(PAGE_SIZE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_helpers() {
        assert_eq!(page_of(0x1234), 1);
        assert_eq!(page_of(0x0fff), 0);
        assert_eq!(page_base(0x1234), 0x1000);
        assert_eq!(page_base(0x1000), 0x1000);
        assert_eq!(page_base(0xffff_ffff), 0xffff_f000);
    }
}

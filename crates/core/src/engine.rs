//! The execution-engine interface and run bookkeeping.

use std::fmt;
use std::time::{Duration, Instant};

use crate::bus::Bus;
use crate::events::Counters;
use crate::isa::Isa;
use crate::machine::Machine;

/// Self-description of an engine's mechanism choices.
///
/// These strings populate the reproduction of the paper's Fig 4 ("how
/// certain features are implemented on different evaluated platforms"),
/// so they are generated from the engines rather than hand-written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineInfo {
    /// Short engine name, e.g. `"dbt"`.
    pub name: &'static str,
    /// Execution model row (DBT / Fast Interpreter / Interpreter / Direct).
    pub execution_model: &'static str,
    /// Memory access row (page-cache flavour).
    pub memory_access: &'static str,
    /// Code generation row.
    pub code_generation: &'static str,
    /// Inter-page control flow row.
    pub control_flow_inter: &'static str,
    /// Intra-page control flow row.
    pub control_flow_intra: &'static str,
    /// Interrupt-delivery granularity row.
    pub interrupts: &'static str,
    /// Synchronous exception row.
    pub sync_exceptions: &'static str,
    /// Undefined-instruction handling row.
    pub undef_insn: &'static str,
}

/// Limits for a run.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Stop after this many retired guest instructions.
    pub max_insns: u64,
    /// Stop after this much wall-clock time (checked periodically).
    pub wall_limit: Option<Duration>,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_insns: u64::MAX,
            wall_limit: None,
        }
    }
}

impl RunLimits {
    /// Limit only the retired-instruction count.
    pub fn insns(max_insns: u64) -> Self {
        RunLimits {
            max_insns,
            ..Default::default()
        }
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The guest executed `halt`.
    Halted,
    /// The instruction limit was reached.
    InsnLimit,
    /// The wall-clock limit was reached.
    WallLimit,
    /// The engine does not implement a required feature (mirrors the
    /// paper's "† functionality not implemented in Gem5").
    Unsupported(&'static str),
}

impl fmt::Display for ExitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitReason::Halted => f.write_str("halted"),
            ExitReason::InsnLimit => f.write_str("instruction limit reached"),
            ExitReason::WallLimit => f.write_str("wall-clock limit reached"),
            ExitReason::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

/// Wall time and counters attributed to one benchmark phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStats {
    /// Wall-clock duration of the phase.
    pub wall: Duration,
    /// Events retired during the phase.
    pub counters: Counters,
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Why execution stopped.
    pub exit: ExitReason,
    /// Total wall-clock time.
    pub wall: Duration,
    /// Events over the whole run.
    pub counters: Counters,
    /// Stats for the timed kernel phase (between the guest's phase marks),
    /// when the guest emitted them.
    pub kernel: Option<PhaseStats>,
}

impl RunOutcome {
    /// The kernel-phase wall time if marked, else the whole run's.
    pub fn kernel_wall(&self) -> Duration {
        self.kernel.as_ref().map_or(self.wall, |k| k.wall)
    }

    /// The kernel-phase counters if marked, else the whole run's.
    pub fn kernel_counters(&self) -> Counters {
        self.kernel.as_ref().map_or(self.counters, |k| k.counters)
    }
}

/// A full-system simulation engine for ISA `I` over bus `B`.
pub trait Engine<I: Isa, B: Bus> {
    /// Mechanism self-description (Fig 4 row).
    fn info(&self) -> EngineInfo;

    /// Run the machine until halt or a limit.
    fn run(&mut self, m: &mut Machine<I, B>, limits: &RunLimits) -> RunOutcome;
}

/// Tracks guest phase marks (see `BusEvent::PhaseMark`) during a run and
/// produces the kernel-phase [`PhaseStats`]. Shared by all engines.
#[derive(Debug, Clone, Default)]
pub struct PhaseTracker {
    start: Option<(Instant, Counters)>,
    kernel: Option<PhaseStats>,
}

impl PhaseTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a phase mark emitted by the guest with the engine's current
    /// counters.
    pub fn on_mark(&mut self, mark: u8, counters: &Counters) {
        match mark {
            1 => self.start = Some((Instant::now(), *counters)),
            2 => {
                if let Some((t0, c0)) = self.start.take() {
                    self.kernel = Some(PhaseStats {
                        wall: t0.elapsed(),
                        counters: counters.since(&c0),
                    });
                }
            }
            _ => {}
        }
    }

    /// The kernel phase stats, if both marks were seen.
    pub fn into_kernel(self) -> Option<PhaseStats> {
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_tracker_pairs_marks() {
        let mut t = PhaseTracker::new();
        let mut c = Counters {
            instructions: 100,
            ..Default::default()
        };
        t.on_mark(1, &c);
        c.instructions = 350;
        t.on_mark(2, &c);
        let k = t.into_kernel().unwrap();
        assert_eq!(k.counters.instructions, 250);
    }

    #[test]
    fn phase_tracker_ignores_unpaired_end() {
        let mut t = PhaseTracker::new();
        let c = Counters::default();
        t.on_mark(2, &c);
        assert!(t.into_kernel().is_none());
    }

    #[test]
    fn phase_tracker_ignores_unknown_marks() {
        let mut t = PhaseTracker::new();
        let c = Counters::default();
        t.on_mark(1, &c);
        t.on_mark(7, &c);
        t.on_mark(2, &c);
        assert!(t.into_kernel().is_some());
    }

    #[test]
    fn outcome_fallbacks() {
        let out = RunOutcome {
            exit: ExitReason::Halted,
            wall: Duration::from_millis(5),
            counters: Counters {
                instructions: 10,
                ..Default::default()
            },
            kernel: None,
        };
        assert_eq!(out.kernel_wall(), Duration::from_millis(5));
        assert_eq!(out.kernel_counters().instructions, 10);
    }

    #[test]
    fn exit_reason_display() {
        assert_eq!(ExitReason::Halted.to_string(), "halted");
        assert_eq!(
            ExitReason::Unsupported("mmio").to_string(),
            "unsupported: mmio"
        );
    }
}

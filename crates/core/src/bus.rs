//! Physical memory bus abstraction.
//!
//! A [`Bus`] decodes physical addresses into RAM or memory-mapped devices.
//! The concrete implementation lives in `simbench-platform`; this trait
//! keeps the engines testable against trivial flat-memory fixtures.

use crate::fault::{AccessKind, FaultKind, MemFault};
use crate::ir::MemSize;

/// Side effects a store can raise that the executing engine must observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusEvent {
    /// The guest marked a benchmark phase transition (see the `ctl`
    /// device): 1 = timed kernel begins, 2 = timed kernel ends.
    PhaseMark(u8),
    /// The interrupt controller's output line may have changed; the
    /// engine should re-sample [`Bus::irq_pending`].
    IrqLine,
}

/// A physical address decoder with byte-addressable RAM at the bottom of
/// the address space and devices above it.
pub trait Bus {
    /// Bytes of RAM, mapped at physical address zero.
    fn ram(&self) -> &[u8];

    /// Mutable view of RAM.
    fn ram_mut(&mut self) -> &mut [u8];

    /// RAM size in bytes. Physical addresses at or above this decode to
    /// devices (or nothing).
    fn ram_size(&self) -> u32 {
        self.ram().len() as u32
    }

    /// True if the physical address decodes to a device rather than RAM.
    fn is_mmio(&self, pa: u32) -> bool {
        pa >= self.ram_size()
    }

    /// Read `size` bytes at physical address `pa` (little-endian,
    /// zero-extended).
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] with [`FaultKind::BusError`] if nothing
    /// decodes at `pa`.
    fn read(&mut self, pa: u32, size: MemSize) -> Result<u32, MemFault>;

    /// Write the low `size` bytes of `val` at physical address `pa`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] with [`FaultKind::BusError`] if nothing
    /// decodes at `pa`.
    fn write(&mut self, pa: u32, val: u32, size: MemSize) -> Result<Option<BusEvent>, MemFault>;

    /// Level of the external interrupt line.
    fn irq_pending(&self) -> bool;
}

/// Construct the bus-error fault for an undecodable physical access.
pub fn bus_error(pa: u32, access: AccessKind) -> MemFault {
    MemFault {
        addr: pa,
        access,
        kind: FaultKind::BusError,
    }
}

/// Read little-endian from a RAM slice. Caller guarantees bounds.
#[inline]
pub fn ram_read(ram: &[u8], pa: u32, size: MemSize) -> u32 {
    let i = pa as usize;
    match size {
        MemSize::B1 => ram[i] as u32,
        MemSize::B2 => u16::from_le_bytes([ram[i], ram[i + 1]]) as u32,
        MemSize::B4 => u32::from_le_bytes([ram[i], ram[i + 1], ram[i + 2], ram[i + 3]]),
    }
}

/// Write little-endian into a RAM slice. Caller guarantees bounds.
#[inline]
pub fn ram_write(ram: &mut [u8], pa: u32, val: u32, size: MemSize) {
    let i = pa as usize;
    match size {
        MemSize::B1 => ram[i] = val as u8,
        MemSize::B2 => ram[i..i + 2].copy_from_slice(&(val as u16).to_le_bytes()),
        MemSize::B4 => ram[i..i + 4].copy_from_slice(&val.to_le_bytes()),
    }
}

/// A trivial RAM-only bus for unit tests and the MMU walkers' doctests.
#[derive(Debug, Clone)]
pub struct FlatRam {
    mem: Vec<u8>,
}

impl FlatRam {
    /// A flat RAM of `size` zeroed bytes.
    pub fn new(size: usize) -> Self {
        FlatRam { mem: vec![0; size] }
    }
}

impl Bus for FlatRam {
    fn ram(&self) -> &[u8] {
        &self.mem
    }

    fn ram_mut(&mut self) -> &mut [u8] {
        &mut self.mem
    }

    fn read(&mut self, pa: u32, size: MemSize) -> Result<u32, MemFault> {
        if pa
            .checked_add(size.bytes())
            .is_none_or(|end| end > self.ram_size())
        {
            return Err(bus_error(pa, AccessKind::Read));
        }
        Ok(ram_read(&self.mem, pa, size))
    }

    fn write(&mut self, pa: u32, val: u32, size: MemSize) -> Result<Option<BusEvent>, MemFault> {
        if pa
            .checked_add(size.bytes())
            .is_none_or(|end| end > self.ram_size())
        {
            return Err(bus_error(pa, AccessKind::Write));
        }
        ram_write(&mut self.mem, pa, val, size);
        Ok(None)
    }

    fn irq_pending(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_ram_rw() {
        let mut b = FlatRam::new(64);
        b.write(0, 0xdead_beef, MemSize::B4).unwrap();
        assert_eq!(b.read(0, MemSize::B4).unwrap(), 0xdead_beef);
        assert_eq!(b.read(0, MemSize::B1).unwrap(), 0xef, "little endian");
        assert_eq!(b.read(2, MemSize::B2).unwrap(), 0xdead);
    }

    #[test]
    fn flat_ram_bounds() {
        let mut b = FlatRam::new(16);
        assert!(b.read(16, MemSize::B1).is_err());
        assert!(b.read(13, MemSize::B4).is_err());
        assert!(b.write(u32::MAX, 0, MemSize::B4).is_err());
        assert_eq!(b.read(15, MemSize::B1).unwrap(), 0);
    }

    #[test]
    fn mmio_predicate() {
        let b = FlatRam::new(4096);
        assert!(!b.is_mmio(0));
        assert!(b.is_mmio(4096));
    }
}

//! The guest-architecture abstraction.
//!
//! An [`Isa`] implementation is the "architecture support package" of the
//! paper's §II-C: instruction decoding, page-table walking, coprocessor
//! semantics, and exception entry/exit. Engines are generic over it, so a
//! new guest architecture requires only a new ISA crate — no engine
//! changes — mirroring SimBench's porting story.

use crate::bus::Bus;
use crate::cpu::CpuState;
use crate::fault::{CopFault, ExcInfo, ExceptionKind};
use crate::ir::{DecodeError, Decoded};
use crate::mmu::WalkResult;

/// Effects of a coprocessor / control-register write that the executing
/// engine must apply to its own cached structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopEffect {
    /// Pure system-register update; nothing for the engine to do.
    None,
    /// Invalidate any cached translation for the page containing the
    /// given virtual address.
    TlbInvPage(u32),
    /// Invalidate all cached translations.
    TlbFlush,
    /// The translation context changed (root table pointer or MMU
    /// enable). Engines must drop every cached translation; this models
    /// the implicit full flush both our ISAs specify on context switch.
    ContextChanged,
}

/// A guest instruction-set architecture plus its system-level support.
///
/// All methods are stateless over `&Sys` / `&mut Sys`; the engines own
/// the [`CpuState`] and system-register block inside a
/// [`crate::machine::Machine`].
pub trait Isa: 'static {
    /// Human-readable architecture name (e.g. `"armlet"`).
    const NAME: &'static str;

    /// Upper bound on instruction length in bytes.
    const MAX_INSN_BYTES: usize;

    /// Number of architectural GPRs.
    const GPRS: usize;

    /// System-register block (MMU controls, banked exception state,
    /// architecture-specific control registers).
    type Sys: Default + Clone + std::fmt::Debug + Send + 'static;

    /// Decode one instruction starting at `bytes[0]` (which is the byte
    /// at virtual address `pc`). `bytes` holds at least
    /// [`Isa::MAX_INSN_BYTES`] bytes unless the instruction ends the
    /// mapped region, in which case it holds what remains of the page.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] if the bytes form no valid instruction; engines
    /// raise an undefined-instruction exception in response.
    fn decode(bytes: &[u8], pc: u32) -> Result<Decoded, DecodeError>;

    /// True if address translation is currently enabled.
    fn mmu_enabled(sys: &Self::Sys) -> bool;

    /// Walk the page tables for `va`, reading table memory through `bus`.
    ///
    /// Returns a page-granule [`crate::mmu::TlbEntry`] carrying the
    /// permissions for both privilege levels, or the architectural
    /// translation fault.
    ///
    /// # Errors
    ///
    /// A [`crate::fault::MemFault`] describing the translation fault; the
    /// `access` field is filled in by the caller's fixup since the walker
    /// does not know the access kind.
    fn walk<B: Bus>(sys: &Self::Sys, bus: &mut B, va: u32) -> WalkResult;

    /// Read a coprocessor / control register (privileged).
    ///
    /// # Errors
    ///
    /// [`CopFault`] for nonexistent registers (raises `Undef`).
    fn cop_read(cpu: &CpuState, sys: &mut Self::Sys, cp: u8, reg: u8) -> Result<u32, CopFault>;

    /// Write a coprocessor / control register (privileged), returning the
    /// effect the engine must apply to its cached state.
    ///
    /// # Errors
    ///
    /// [`CopFault`] for nonexistent registers (raises `Undef`).
    fn cop_write(
        cpu: &mut CpuState,
        sys: &mut Self::Sys,
        cp: u8,
        reg: u8,
        val: u32,
    ) -> Result<CopEffect, CopFault>;

    /// Take an exception: bank `return_pc` and the current status, switch
    /// to kernel mode with IRQs masked, record `info`, and return the
    /// handler vector the engine must jump to.
    fn enter_exception(
        cpu: &mut CpuState,
        sys: &mut Self::Sys,
        kind: ExceptionKind,
        info: ExcInfo,
        return_pc: u32,
    ) -> u32;

    /// Return from an exception (`eret`/`iret`): restore banked status
    /// and return the resume address.
    fn leave_exception(cpu: &mut CpuState, sys: &mut Self::Sys) -> u32;

    /// Visit every architecturally-visible system register as a labeled
    /// word, in a fixed ISA-defined order.
    ///
    /// This is the digest hook behind
    /// [`crate::machine::Machine::state_digest`]: two machines of the
    /// same ISA are architecturally equal only if their visitors emit
    /// identical sequences. Labels are stable names (`"sctlr"`,
    /// `"cr0"`, ...) used verbatim in state diffs.
    fn sys_regs(sys: &Self::Sys, visit: &mut dyn FnMut(&'static str, u32));
}

//! Architectural state digests and diffs for differential testing.
//!
//! A [`StateDigest`] summarises everything two engines must agree on
//! after retiring the same number of instructions from the same image:
//! the CPU register state, the ISA system registers, and physical RAM.
//! Engine-private state (TLBs, decode caches, counters) is deliberately
//! excluded — the paper's premise is that engines share *architectural*
//! semantics while differing in cost profile.
//!
//! Hashing is FNV-1a over 64-bit lanes: dependency-free, deterministic
//! across hosts, and fast enough to digest the platform's full RAM at
//! every lockstep checkpoint.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over 64-bit lanes.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher in its initial state.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Mix one 64-bit lane.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FNV_PRIME);
    }

    /// Mix one 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    /// Mix a byte slice, eight bytes per lane (the tail is zero-padded,
    /// which is fine for fixed-length inputs like RAM).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.write_u64(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.write_u64(u64::from_le_bytes(tail));
        }
        self.write_u64(bytes.len() as u64);
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// A snapshot digest of one machine's architectural state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateDigest {
    /// Hash over GPRs, PC, flags, privilege level, and the IRQ mask.
    pub cpu: u64,
    /// Hash over the ISA system-register file.
    pub sys: u64,
    /// Hash over all of physical RAM.
    pub ram: u64,
}

impl StateDigest {
    /// A single hash combining all three components.
    pub fn combined(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.cpu);
        h.write_u64(self.sys);
        h.write_u64(self.ram);
        h.finish()
    }
}

impl fmt::Display for StateDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu:{:016x} sys:{:016x} ram:{:016x}",
            self.cpu, self.sys, self.ram
        )
    }
}

/// One architectural field that differs between two machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDelta {
    /// Field name: `r0`..`r15`, `pc`, `flags`, `level`, `irq_enabled`,
    /// `sys.<reg>`, or `ram[0x<pa>]` (word granule).
    pub field: String,
    /// Value in the first machine.
    pub a: u32,
    /// Value in the second machine.
    pub b: u32,
}

impl fmt::Display for StateDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {:#010x} != {:#010x}", self.field, self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_inputs() {
        let mut a = Fnv1a::new();
        a.write_bytes(&[1, 2, 3]);
        let mut b = Fnv1a::new();
        b.write_bytes(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fnv_length_matters() {
        // Zero-padding alone must not collide [1] with [1, 0].
        let mut a = Fnv1a::new();
        a.write_bytes(&[1]);
        let mut b = Fnv1a::new();
        b.write_bytes(&[1, 0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn digest_display_is_stable() {
        let d = StateDigest {
            cpu: 1,
            sys: 2,
            ram: 3,
        };
        assert_eq!(
            d.to_string(),
            "cpu:0000000000000001 sys:0000000000000002 ram:0000000000000003"
        );
    }

    #[test]
    fn delta_display() {
        let d = StateDelta {
            field: "r3".into(),
            a: 0x10,
            b: 0x20,
        };
        assert_eq!(d.to_string(), "r3: 0x00000010 != 0x00000020");
    }
}

//! Software TLB structures used by the engines.
//!
//! Three flavours mirror the memory-access rows of the paper's Fig 4:
//!
//! * [`DirectTlb`] — direct-mapped array, the "multi-level page cache"
//!   building block of the DBT engine (QEMU analogue),
//! * [`SingleEntryCache`] — one entry per access class, the fast
//!   interpreter's "single level cache" (SimIt-ARM analogue),
//! * [`SetAssocTlb`] — a small set-associative structure with FIFO
//!   replacement, the detailed engine's "modelled TLB" (Gem5 analogue).

use crate::mmu::TlbEntry;

const INVALID_TAG: u32 = u32::MAX;

/// A direct-mapped software TLB indexed by virtual page number.
#[derive(Debug, Clone)]
pub struct DirectTlb {
    slots: Vec<(u32, TlbEntry)>,
    mask: u32,
    hits: u64,
    misses: u64,
}

impl DirectTlb {
    /// Create with `entries` slots (rounded up to a power of two).
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(1);
        let dummy = TlbEntry {
            vpage: 0,
            ppage: 0,
            user: crate::mmu::Perms::NONE,
            kernel: crate::mmu::Perms::NONE,
        };
        DirectTlb {
            // lint:allow(hot-path): one-time constructor allocation
            slots: vec![(INVALID_TAG, dummy); n],
            mask: n as u32 - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a virtual page.
    #[inline]
    pub fn lookup(&mut self, vpage: u32) -> Option<TlbEntry> {
        let slot = &self.slots[(vpage & self.mask) as usize];
        if slot.0 == vpage {
            self.hits += 1;
            Some(slot.1)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Install a translation (evicting whatever shared its slot).
    #[inline]
    pub fn insert(&mut self, e: TlbEntry) {
        self.slots[(e.vpage & self.mask) as usize] = (e.vpage, e);
    }

    /// Invalidate the entry covering `vpage`, if cached.
    pub fn invalidate_page(&mut self, vpage: u32) {
        let slot = &mut self.slots[(vpage & self.mask) as usize];
        if slot.0 == vpage {
            slot.0 = INVALID_TAG;
        }
    }

    /// Drop every entry.
    pub fn flush(&mut self) {
        for s in &mut self.slots {
            s.0 = INVALID_TAG;
        }
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of currently valid entries (test/diagnostic aid).
    pub fn valid_entries(&self) -> usize {
        self.slots.iter().filter(|s| s.0 != INVALID_TAG).count()
    }
}

/// A single-entry translation cache, one per access class, as used by
/// simple fast interpreters.
#[derive(Debug, Clone, Default)]
pub struct SingleEntryCache {
    entry: Option<TlbEntry>,
}

impl SingleEntryCache {
    /// An empty cache.
    pub fn new() -> Self {
        SingleEntryCache { entry: None }
    }

    /// Return the cached entry if it covers `vpage`.
    #[inline]
    pub fn lookup(&self, vpage: u32) -> Option<TlbEntry> {
        self.entry.filter(|e| e.vpage == vpage)
    }

    /// Replace the cached entry.
    #[inline]
    pub fn insert(&mut self, e: TlbEntry) {
        self.entry = Some(e);
    }

    /// Invalidate if the cached entry covers `vpage`.
    pub fn invalidate_page(&mut self, vpage: u32) {
        if self.entry.is_some_and(|e| e.vpage == vpage) {
            self.entry = None;
        }
    }

    /// Drop the cached entry.
    pub fn flush(&mut self) {
        self.entry = None;
    }
}

/// A modelled set-associative TLB with FIFO replacement and hit/miss
/// accounting, used by the detailed (timing) engine.
#[derive(Debug, Clone)]
pub struct SetAssocTlb {
    sets: Vec<Vec<TlbEntry>>,
    ways: usize,
    set_mask: u32,
    hits: u64,
    misses: u64,
}

impl SetAssocTlb {
    /// Create a TLB with `sets` sets (rounded to a power of two) of
    /// `ways` entries each.
    pub fn new(sets: usize, ways: usize) -> Self {
        let n = sets.next_power_of_two().max(1);
        SetAssocTlb {
            // lint:allow(hot-path): one-time constructor allocation
            sets: vec![Vec::with_capacity(ways); n],
            ways: ways.max(1),
            set_mask: n as u32 - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a virtual page.
    #[inline]
    pub fn lookup(&mut self, vpage: u32) -> Option<TlbEntry> {
        let set = &self.sets[(vpage & self.set_mask) as usize];
        match set.iter().find(|e| e.vpage == vpage) {
            Some(e) => {
                self.hits += 1;
                Some(*e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Install a translation, evicting FIFO within the set if full.
    pub fn insert(&mut self, e: TlbEntry) {
        let ways = self.ways;
        let set = &mut self.sets[(e.vpage & self.set_mask) as usize];
        set.retain(|x| x.vpage != e.vpage);
        if set.len() == ways {
            set.remove(0);
        }
        set.push(e);
    }

    /// Invalidate the entry for `vpage`, if present.
    pub fn invalidate_page(&mut self, vpage: u32) {
        let set = &mut self.sets[(vpage & self.set_mask) as usize];
        set.retain(|x| x.vpage != vpage);
    }

    /// Drop every entry.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmu::Perms;

    fn e(vpage: u32, ppage: u32) -> TlbEntry {
        TlbEntry {
            vpage,
            ppage,
            user: Perms::RWX,
            kernel: Perms::RWX,
        }
    }

    #[test]
    fn direct_tlb_basic() {
        let mut t = DirectTlb::new(16);
        assert!(t.lookup(5).is_none());
        t.insert(e(5, 50));
        assert_eq!(t.lookup(5).unwrap().ppage, 50);
        // Aliasing page evicts.
        t.insert(e(5 + 16, 99));
        assert!(t.lookup(5).is_none());
        assert_eq!(t.lookup(21).unwrap().ppage, 99);
        let (h, m) = t.stats();
        assert_eq!((h, m), (2, 2));
    }

    #[test]
    fn direct_tlb_invalidate_and_flush() {
        let mut t = DirectTlb::new(8);
        t.insert(e(1, 10));
        t.insert(e(2, 20));
        t.invalidate_page(1);
        assert!(t.lookup(1).is_none());
        assert!(t.lookup(2).is_some());
        // Invalidating an absent page must not disturb an alias.
        t.invalidate_page(2 + 8);
        assert!(t.lookup(2).is_some());
        t.flush();
        assert_eq!(t.valid_entries(), 0);
    }

    #[test]
    fn single_entry_cache() {
        let mut c = SingleEntryCache::new();
        assert!(c.lookup(7).is_none());
        c.insert(e(7, 70));
        assert_eq!(c.lookup(7).unwrap().ppage, 70);
        assert!(c.lookup(8).is_none());
        c.insert(e(8, 80));
        assert!(c.lookup(7).is_none(), "single entry: replaced");
        c.invalidate_page(8);
        assert!(c.lookup(8).is_none());
    }

    #[test]
    fn set_assoc_fifo() {
        let mut t = SetAssocTlb::new(1, 2);
        t.insert(e(1, 10));
        t.insert(e(2, 20));
        assert!(t.lookup(1).is_some());
        t.insert(e(3, 30)); // evicts vpage 1 (FIFO)
        assert!(t.lookup(1).is_none());
        assert!(t.lookup(2).is_some());
        assert!(t.lookup(3).is_some());
    }

    #[test]
    fn set_assoc_reinsert_no_duplicate() {
        let mut t = SetAssocTlb::new(1, 2);
        t.insert(e(1, 10));
        t.insert(e(1, 11));
        assert_eq!(t.lookup(1).unwrap().ppage, 11);
        t.insert(e(2, 20));
        t.insert(e(3, 30));
        // vpage 1 (oldest) evicted, not duplicated.
        assert!(t.lookup(1).is_none());
    }
}

//! The portable guest-assembly interface.
//!
//! SimBench's benchmarks are written once against [`PortableAsm`] — the
//! analogue of the paper's "standards-compliant C" benchmark bodies — and
//! each ISA crate supplies a concrete assembler. Architecture-specific
//! operations (MMU setup, coprocessor reads, non-privileged accesses)
//! are *not* part of this trait; they live in the suite's support
//! packages, exactly as the paper splits benchmarks from architecture /
//! platform support.

use crate::image::GuestImage;
use crate::ir::{AluOp, Cond};

/// Portable register names available to benchmark code.
///
/// `A`–`F` are general-purpose scratch registers; `Sp` and `Lr` map to the
/// architecture's stack pointer and link register (petix reserves its
/// stack pointer for hardware-pushed frames but still maps both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PReg {
    /// Scratch register 0.
    A,
    /// Scratch register 1.
    B,
    /// Scratch register 2.
    C,
    /// Scratch register 3.
    D,
    /// Scratch register 4.
    E,
    /// Scratch register 5. Reserved as the self-modifying-code landing
    /// register: rewritten first words target this register.
    F,
    /// Stack pointer.
    Sp,
    /// Link register.
    Lr,
}

impl PReg {
    /// All portable registers.
    pub const ALL: [PReg; 8] = [
        PReg::A,
        PReg::B,
        PReg::C,
        PReg::D,
        PReg::E,
        PReg::F,
        PReg::Sp,
        PReg::Lr,
    ];
}

/// A code label. Created unbound, bound once, referenced freely before or
/// after binding (fixups are resolved at [`PortableAsm::finish`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) usize);

impl Label {
    /// The label's index (stable within one assembler).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Sparse output buffer with label management, shared by both ISA
/// assemblers. ISA crates embed one and layer encoding on top.
#[derive(Debug, Clone, Default)]
pub struct AsmBuffer {
    chunks: Vec<(u32, Vec<u8>)>,
    labels: Vec<Option<u32>>,
}

impl AsmBuffer {
    /// An empty buffer with no cursor; call [`AsmBuffer::org`] first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current emission address.
    ///
    /// # Panics
    ///
    /// Panics if no chunk has been opened with [`AsmBuffer::org`].
    pub fn here(&self) -> u32 {
        let (base, bytes) = self.chunks.last().expect("org() before emitting");
        base + bytes.len() as u32
    }

    /// Start emitting at `addr` (opens a new chunk).
    pub fn org(&mut self, addr: u32) {
        self.chunks.push((addr, Vec::new()));
    }

    /// Pad with zero bytes to an `align`-byte boundary.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn align(&mut self, align: u32) {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        while self.here() & (align - 1) != 0 {
            self.emit(&[0]);
        }
    }

    /// Reserve `n` zero bytes.
    pub fn skip(&mut self, n: u32) {
        let chunk = self.chunks.last_mut().expect("org() before emitting");
        chunk.1.extend(std::iter::repeat_n(0, n as usize));
    }

    /// Append raw bytes at the cursor.
    pub fn emit(&mut self, bytes: &[u8]) {
        let chunk = self.chunks.last_mut().expect("org() before emitting");
        chunk.1.extend_from_slice(bytes);
    }

    /// Append a little-endian 32-bit word.
    pub fn emit_u32(&mut self, w: u32) {
        self.emit(&w.to_le_bytes());
    }

    /// Allocate an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind a label to the cursor.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, l: Label) {
        let addr = self.here();
        let slot = &mut self.labels[l.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(addr);
    }

    /// Address of a bound label.
    pub fn label_addr(&self, l: Label) -> Option<u32> {
        self.labels.get(l.0).copied().flatten()
    }

    /// Read back the 32-bit word previously emitted at `addr` (for fixup
    /// patching).
    ///
    /// # Panics
    ///
    /// Panics if `addr` was never emitted.
    pub fn read_u32_at(&self, addr: u32) -> u32 {
        let (base, bytes) = self
            .chunk_containing(addr, 4)
            .expect("patch address not emitted");
        let i = (addr - base) as usize;
        u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]])
    }

    /// Overwrite the 32-bit word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was never emitted.
    pub fn write_u32_at(&mut self, addr: u32, w: u32) {
        let idx = self
            .chunks
            .iter()
            .position(|(base, bytes)| addr >= *base && addr + 4 <= *base + bytes.len() as u32)
            .expect("patch address not emitted");
        let (base, bytes) = &mut self.chunks[idx];
        let i = (addr - *base) as usize;
        bytes[i..i + 4].copy_from_slice(&w.to_le_bytes());
    }

    fn chunk_containing(&self, addr: u32, len: u32) -> Option<(u32, &[u8])> {
        self.chunks
            .iter()
            .find(|(base, bytes)| addr >= *base && addr + len <= *base + bytes.len() as u32)
            .map(|(base, bytes)| (*base, bytes.as_slice()))
    }

    /// Finish into a bootable image. Empty chunks are dropped.
    pub fn into_image(self, entry: u32) -> GuestImage {
        let mut img = GuestImage::new(entry);
        for (addr, bytes) in self.chunks {
            if !bytes.is_empty() {
                img.push_section(addr, bytes);
            }
        }
        img
    }
}

/// The portable assembler interface benchmarks are written against.
///
/// Immediate-range contract: `alu_ri` and `cmp_ri` accept `imm` up to
/// 4095; `load`/`store` displacements span ±2047 bytes. Both ISA
/// encodings honour at least these ranges; use [`PortableAsm::mov_imm`]
/// (unrestricted) plus register forms beyond them.
pub trait PortableAsm {
    /// Current emission address.
    fn here(&self) -> u32;
    /// Start emitting at an address.
    fn org(&mut self, addr: u32);
    /// Align the cursor.
    fn align(&mut self, align: u32);
    /// Reserve zeroed bytes.
    fn skip(&mut self, n: u32);
    /// Emit a raw data word.
    fn word(&mut self, w: u32);
    /// Emit raw bytes.
    fn bytes(&mut self, data: &[u8]);
    /// Allocate an unbound label.
    fn new_label(&mut self) -> Label;
    /// Bind a label at the cursor.
    fn bind(&mut self, l: Label);
    /// Address of a bound label.
    fn label_addr(&self, l: Label) -> Option<u32>;

    /// `rd = imm` (any 32-bit value).
    fn mov_imm(&mut self, rd: PReg, imm: u32);
    /// `rd = address-of(label)` (fixed up at finish).
    fn mov_label(&mut self, rd: PReg, l: Label);
    /// `rd = rn <op> rm`.
    fn alu_rr(&mut self, op: AluOp, rd: PReg, rn: PReg, rm: PReg);
    /// `rd = rn <op> imm`, `imm <= 4095`.
    fn alu_ri(&mut self, op: AluOp, rd: PReg, rn: PReg, imm: u32);
    /// Compare `rn` with `imm` (sets flags), `imm <= 4095`.
    fn cmp_ri(&mut self, rn: PReg, imm: u32);
    /// Compare `rn` with `rm` (sets flags).
    fn cmp_rr(&mut self, rn: PReg, rm: PReg);
    /// Word load `rd = [base + off]`, `|off| <= 2047`.
    fn load(&mut self, rd: PReg, base: PReg, off: i32);
    /// Word store `[base + off] = rs`.
    fn store(&mut self, rs: PReg, base: PReg, off: i32);
    /// Byte load (zero-extended).
    fn load8(&mut self, rd: PReg, base: PReg, off: i32);
    /// Byte store.
    fn store8(&mut self, rs: PReg, base: PReg, off: i32);
    /// Unconditional branch.
    fn b(&mut self, l: Label);
    /// Conditional branch.
    fn b_cond(&mut self, c: Cond, l: Label);
    /// Indirect branch through a register.
    fn br_reg(&mut self, r: PReg);
    /// Direct call (links per the architecture's discipline).
    fn call(&mut self, l: Label);
    /// Indirect call through a register.
    fn call_reg(&mut self, r: PReg);
    /// Return from a call.
    fn ret(&mut self);
    /// System call.
    fn svc(&mut self, imm: u16);
    /// Architecturally undefined instruction.
    fn udf(&mut self);
    /// Return from exception.
    fn eret(&mut self);
    /// Stop the machine.
    fn halt(&mut self);
    /// No-op.
    fn nop(&mut self);

    /// Emit code computing a *valid, harmless* 4-byte instruction
    /// encoding into `rd`, parameterised by the iteration counter in
    /// `riter` so the stored word differs every iteration. Used by the
    /// self-modifying-code benchmarks; the encoding, when executed, loads
    /// an immediate into [`PReg::F`].
    fn emit_smc_word(&mut self, rd: PReg, riter: PReg);

    /// The static form of the harmless instruction (what functions are
    /// pre-seeded with at their rewrite slot).
    fn smc_nop_word(&self) -> u32;

    /// Resolve fixups and produce the bootable image, entering at `entry`.
    fn finish(self, entry: u32) -> GuestImage
    where
        Self: Sized;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_layout_and_labels() {
        let mut b = AsmBuffer::new();
        b.org(0x1000);
        let l = b.new_label();
        b.emit_u32(0xaaaa_bbbb);
        b.bind(l);
        assert_eq!(b.label_addr(l), Some(0x1004));
        assert_eq!(b.here(), 0x1004);
        b.align(16);
        assert_eq!(b.here(), 0x1010);
        b.skip(4);
        assert_eq!(b.here(), 0x1014);
    }

    #[test]
    fn buffer_patching() {
        let mut b = AsmBuffer::new();
        b.org(0x2000);
        b.emit_u32(0x1111_1111);
        b.emit_u32(0x2222_2222);
        assert_eq!(b.read_u32_at(0x2004), 0x2222_2222);
        b.write_u32_at(0x2004, 0x3333_3333);
        assert_eq!(b.read_u32_at(0x2004), 0x3333_3333);
    }

    #[test]
    fn buffer_to_image() {
        let mut b = AsmBuffer::new();
        b.org(0x100);
        b.emit(&[1, 2, 3]);
        b.org(0x200);
        b.org(0x300); // empty chunk at 0x200 dropped
        b.emit(&[9]);
        let img = b.into_image(0x100);
        assert_eq!(img.sections.len(), 2);
        assert_eq!(img.entry, 0x100);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = AsmBuffer::new();
        b.org(0);
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        let mut b = AsmBuffer::new();
        b.org(0);
        b.align(3);
    }
}

//! The shared micro-op IR.
//!
//! Both guest ISA decoders lower instructions into this small RISC-like
//! vocabulary; all four engines consume it. Cross-engine performance
//! differences measured by the suite are therefore engine-mechanism
//! differences, not front-end differences — the property the paper obtains
//! by running identical guest binaries on every simulator.

use std::fmt;

/// ALU operations. Flag semantics follow the ARM convention (see
/// [`crate::alu`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `rd = rn + src`
    Add,
    /// `rd = rn + src + C`
    Adc,
    /// `rd = rn - src`
    Sub,
    /// `rd = rn - src - !C`
    Sbc,
    /// `rd = src - rn` (reverse subtract)
    Rsb,
    /// `rd = rn & src`
    And,
    /// `rd = rn | src`
    Orr,
    /// `rd = rn ^ src`
    Eor,
    /// `rd = rn & !src` (bit clear)
    Bic,
    /// `rd = src` (rn ignored)
    Mov,
    /// `rd = !src` (rn ignored)
    Mvn,
    /// `rd = rn * src` (low 32 bits)
    Mul,
    /// `rd = rn << (src & 31)`
    Lsl,
    /// `rd = rn >> (src & 31)` (logical)
    Lsr,
    /// `rd = (rn as i32) >> (src & 31)`
    Asr,
    /// `rd = rn.rotate_right(src & 31)`
    Ror,
}

impl AluOp {
    /// All ALU operations (used by property tests and the decoders).
    pub const ALL: [AluOp; 16] = [
        AluOp::Add,
        AluOp::Adc,
        AluOp::Sub,
        AluOp::Sbc,
        AluOp::Rsb,
        AluOp::And,
        AluOp::Orr,
        AluOp::Eor,
        AluOp::Bic,
        AluOp::Mov,
        AluOp::Mvn,
        AluOp::Mul,
        AluOp::Lsl,
        AluOp::Lsr,
        AluOp::Asr,
        AluOp::Ror,
    ];

    /// Stable numeric encoding used by both ISA instruction formats.
    pub fn code(self) -> u8 {
        AluOp::ALL.iter().position(|&o| o == self).unwrap() as u8
    }

    /// Inverse of [`AluOp::code`].
    pub fn from_code(code: u8) -> Option<AluOp> {
        AluOp::ALL.get(code as usize).copied()
    }
}

/// Branch conditions, evaluated against [`crate::cpu::Flags`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Z set.
    Eq,
    /// Z clear.
    Ne,
    /// C set (unsigned ≥).
    Cs,
    /// C clear (unsigned <).
    Cc,
    /// N set.
    Mi,
    /// N clear.
    Pl,
    /// V set.
    Vs,
    /// V clear.
    Vc,
    /// C set and Z clear (unsigned >).
    Hi,
    /// C clear or Z set (unsigned ≤).
    Ls,
    /// N == V (signed ≥).
    Ge,
    /// N != V (signed <).
    Lt,
    /// Z clear and N == V (signed >).
    Gt,
    /// Z set or N != V (signed ≤).
    Le,
    /// Always.
    Al,
}

impl Cond {
    /// All conditions in encoding order.
    pub const ALL: [Cond; 15] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
    ];

    /// Stable numeric encoding shared by both ISAs.
    pub fn code(self) -> u8 {
        Cond::ALL.iter().position(|&c| c == self).unwrap() as u8
    }

    /// Inverse of [`Cond::code`].
    pub fn from_code(code: u8) -> Option<Cond> {
        Cond::ALL.get(code as usize).copied()
    }
}

/// Width of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// One byte.
    B1,
    /// Two bytes (halfword).
    B2,
    /// Four bytes (word).
    B4,
}

impl MemSize {
    /// Size in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
        }
    }

    /// True if `addr` is naturally aligned for this size.
    #[inline]
    pub fn aligned(self, addr: u32) -> bool {
        addr & (self.bytes() - 1) == 0
    }
}

/// How a call instruction records its return address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Write the return address to a link register (ARM style).
    Register(u8),
    /// Push the return address on a full-descending stack whose pointer is
    /// the given register (x86 style).
    Push(u8),
}

/// How a return instruction obtains its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetKind {
    /// Branch to a link register.
    Register(u8),
    /// Pop the target from the stack whose pointer is the given register.
    Pop(u8),
}

/// Second ALU operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register.
    Reg(u8),
    /// An immediate, fully resolved at decode time.
    Imm(u32),
}

/// One micro-operation.
///
/// Control-transfer ops are always the final op of a decoded instruction.
/// PC-relative quantities are resolved to absolute addresses at decode
/// time, so the IR never references the PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// ALU operation: `rd = rn <op> src`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: u8,
        /// First operand register (ignored by `Mov`/`Mvn`).
        rn: u8,
        /// Second operand.
        src: Operand,
        /// Whether NZCV are updated.
        set_flags: bool,
    },
    /// Flag-setting comparison without a destination: `rn - src` (or
    /// `rn & src` when `is_tst`).
    Cmp {
        /// Left operand register.
        rn: u8,
        /// Right operand.
        src: Operand,
        /// `true` for TST (AND-based) semantics.
        is_tst: bool,
    },
    /// Load `size` bytes from `[base + off]`, zero-extended.
    Load {
        /// Destination register.
        rd: u8,
        /// Base register.
        base: u8,
        /// Signed displacement.
        off: i32,
        /// Access width.
        size: MemSize,
        /// Perform the access with user privileges regardless of mode
        /// (ARM `ldrt`; unused by petix).
        nonpriv: bool,
    },
    /// Store `size` bytes of `rs` to `[base + off]`.
    Store {
        /// Source register.
        rs: u8,
        /// Base register.
        base: u8,
        /// Signed displacement.
        off: i32,
        /// Access width.
        size: MemSize,
        /// Perform the access with user privileges regardless of mode.
        nonpriv: bool,
    },
    /// Unconditional direct branch to an absolute address.
    Branch {
        /// Absolute target.
        target: u32,
    },
    /// Conditional direct branch; falls through when untaken.
    BranchCond {
        /// Condition.
        cond: Cond,
        /// Absolute target when taken.
        target: u32,
    },
    /// Indirect branch through a register.
    BranchReg {
        /// Register holding the target.
        rm: u8,
    },
    /// Direct call: link then branch.
    Call {
        /// Absolute target.
        target: u32,
        /// Return address (address of the following instruction).
        ret: u32,
        /// Linking discipline.
        link: LinkKind,
    },
    /// Indirect call through a register.
    CallReg {
        /// Register holding the target.
        rm: u8,
        /// Return address.
        ret: u32,
        /// Linking discipline.
        link: LinkKind,
    },
    /// Return.
    Ret(RetKind),
    /// System call with an immediate service number.
    Svc(u16),
    /// Architecturally undefined instruction: raises `Undef`.
    Udf,
    /// Return from exception: restores banked status and resumes.
    Eret,
    /// Read coprocessor/control register `cp:reg` into `rd` (privileged).
    CopRead {
        /// Coprocessor number.
        cp: u8,
        /// Register within the coprocessor.
        reg: u8,
        /// Destination GPR.
        rd: u8,
    },
    /// Write `rs` to coprocessor/control register `cp:reg` (privileged).
    CopWrite {
        /// Coprocessor number.
        cp: u8,
        /// Register within the coprocessor.
        reg: u8,
        /// Source GPR.
        rs: u8,
    },
    /// Stop the machine (privileged). Used by benchmarks to signal
    /// completion to the harness.
    Halt,
    /// No operation.
    Nop,
}

impl Op {
    /// True if this op can transfer control (and therefore terminates a
    /// translation block).
    #[inline]
    pub fn is_control_flow(self) -> bool {
        matches!(
            self,
            Op::Branch { .. }
                | Op::BranchCond { .. }
                | Op::BranchReg { .. }
                | Op::Call { .. }
                | Op::CallReg { .. }
                | Op::Ret(_)
                | Op::Svc(_)
                | Op::Udf
                | Op::Eret
                | Op::Halt
        )
    }

    /// True for direct (statically-known target) control flow.
    #[inline]
    pub fn is_direct_branch(self) -> bool {
        matches!(
            self,
            Op::Branch { .. } | Op::BranchCond { .. } | Op::Call { .. }
        )
    }
}

/// Maximum micro-ops a single guest instruction may lower to.
///
/// Both decoders emit at most two ops per instruction today (movt and
/// the petix push/pop sequences); the two spare slots are headroom for
/// richer lowerings. Raising this is an IR change: it grows every
/// [`Decoded`] and every engine structure that embeds one.
pub const MAX_OPS_PER_INSN: usize = 4;

/// Fixed-capacity inline op storage for one decoded instruction.
///
/// This is the hot-loop replacement for the old `Vec<Op>`: the ops of
/// an instruction live *inside* the [`Decoded`] value, so decoding —
/// the per-instruction work of every interpreter-class engine — touches
/// no allocator. Overflow is a hard error in every build profile: a
/// lowering that exceeds [`MAX_OPS_PER_INSN`] is a decoder bug that
/// must not survive into release binaries as silent truncation.
#[derive(Clone, Copy)]
pub struct OpList {
    len: u8,
    ops: [Op; MAX_OPS_PER_INSN],
}

impl OpList {
    /// An empty list.
    pub const fn new() -> Self {
        OpList {
            len: 0,
            ops: [Op::Nop; MAX_OPS_PER_INSN],
        }
    }

    /// Append an op.
    ///
    /// # Panics
    ///
    /// Panics when the list already holds [`MAX_OPS_PER_INSN`] ops —
    /// in release builds too, unlike the old debug-only assert.
    #[inline]
    pub fn push(&mut self, op: Op) {
        if self.len as usize >= MAX_OPS_PER_INSN {
            oplist_overflow();
        }
        self.ops[self.len as usize] = op;
        self.len += 1;
    }

    /// The ops as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Op] {
        &self.ops[..self.len as usize]
    }
}

impl Default for OpList {
    fn default() -> Self {
        OpList::new()
    }
}

// The panic paths of the two always-on IR invariants live out of line
// and format nothing: a panic message that interpolates the op list
// would keep it alive across the happy path and spill the hot loop's
// registers to the stack — measurably slowing every decoded
// instruction for a branch that never happens.
#[cold]
#[inline(never)]
fn oplist_overflow() -> ! {
    panic!("instruction lowers to more than {MAX_OPS_PER_INSN} micro-ops");
}

#[cold]
#[inline(never)]
fn control_flow_not_last() -> ! {
    panic!("control flow op not last in decoded instruction");
}

impl std::ops::Deref for OpList {
    type Target = [Op];
    #[inline]
    fn deref(&self) -> &[Op] {
        self.as_slice()
    }
}

impl From<&[Op]> for OpList {
    #[inline]
    fn from(src: &[Op]) -> OpList {
        if src.len() > MAX_OPS_PER_INSN {
            oplist_overflow();
        }
        let mut ops = [Op::Nop; MAX_OPS_PER_INSN];
        ops[..src.len()].copy_from_slice(src);
        OpList {
            len: src.len() as u8,
            ops,
        }
    }
}

// The decoders' conversion: a fixed-size array checks its capacity at
// *compile time* and the copy fully unrolls — constructing a decoded
// instruction costs a handful of register stores, no loops, no
// branches. This is the path every engine's per-instruction decode
// takes, so it must stay free.
impl<const N: usize> From<[Op; N]> for OpList {
    #[inline]
    fn from(src: [Op; N]) -> OpList {
        const {
            assert!(
                N <= MAX_OPS_PER_INSN,
                "instruction lowers to more than MAX_OPS_PER_INSN micro-ops"
            );
        }
        let mut ops = [Op::Nop; MAX_OPS_PER_INSN];
        let mut i = 0;
        while i < N {
            ops[i] = src[i];
            i += 1;
        }
        OpList { len: N as u8, ops }
    }
}

impl From<Vec<Op>> for OpList {
    fn from(ops: Vec<Op>) -> OpList {
        OpList::from(ops.as_slice())
    }
}

impl fmt::Debug for OpList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for OpList {
    fn eq(&self, other: &OpList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for OpList {}

impl PartialEq<Vec<Op>> for OpList {
    fn eq(&self, other: &Vec<Op>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[Op]> for OpList {
    fn eq(&self, other: &[Op]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[Op; N]> for OpList {
    fn eq(&self, other: &[Op; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a OpList {
    type Item = &'a Op;
    type IntoIter = std::slice::Iter<'a, Op>;
    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Classification of a decoded instruction, used for event counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsnClass {
    /// Arithmetic and logic.
    Alu,
    /// Memory access.
    Mem,
    /// Control transfer.
    Branch,
    /// System (svc/udf/eret/cop/halt).
    System,
    /// Nothing.
    Nop,
}

/// A fully decoded guest instruction.
///
/// `Copy`: the ops are stored inline ([`OpList`]), so a `Decoded` moves
/// through fetch/dispatch by value without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// Encoded length in bytes (4 for armlet; 1–6 for petix).
    pub len: u8,
    /// Lowered micro-ops. At most one control-flow op, always last.
    pub ops: OpList,
    /// Coarse class for statistics.
    pub class: InsnClass,
}

impl Decoded {
    /// Construct, asserting the control-flow-last invariant (in every
    /// build profile: a mid-instruction control transfer would corrupt
    /// block translation silently).
    #[inline]
    pub fn new(len: u8, ops: impl Into<OpList>, class: InsnClass) -> Self {
        let ops = ops.into();
        let n = ops.len();
        for i in 0..n.saturating_sub(1) {
            if ops.as_slice()[i].is_control_flow() {
                control_flow_not_last();
            }
        }
        Decoded { len, ops, class }
    }

    /// True if the final op may transfer control.
    #[inline]
    pub fn ends_block(&self) -> bool {
        self.ops.last().is_some_and(|op| op.is_control_flow())
    }
}

/// Error from a decoder: the bytes form no valid instruction. Engines
/// raise `Undef` in response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// Address of the undecodable instruction.
    pub pc: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "undecodable instruction at {:#010x}", self.pc)
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_codes_round_trip() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::from_code(op.code()), Some(op));
        }
        assert_eq!(AluOp::from_code(16), None);
    }

    #[test]
    fn cond_codes_round_trip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_code(c.code()), Some(c));
        }
        assert_eq!(Cond::from_code(15), None);
    }

    #[test]
    fn mem_size() {
        assert!(MemSize::B4.aligned(8));
        assert!(!MemSize::B4.aligned(2));
        assert!(MemSize::B2.aligned(2));
        assert!(MemSize::B1.aligned(3));
        assert_eq!(MemSize::B2.bytes(), 2);
    }

    #[test]
    fn control_flow_classification() {
        assert!(Op::Halt.is_control_flow());
        assert!(Op::Svc(0).is_control_flow());
        assert!(!Op::Nop.is_control_flow());
        assert!(Op::Branch { target: 0 }.is_direct_branch());
        assert!(!Op::BranchReg { rm: 0 }.is_direct_branch());
    }

    #[test]
    fn oplist_push_and_slice() {
        let mut l = OpList::new();
        assert!(l.is_empty());
        l.push(Op::Nop);
        l.push(Op::Halt);
        assert_eq!(l.len(), 2);
        assert_eq!(l, vec![Op::Nop, Op::Halt]);
        assert_eq!(l.last(), Some(&Op::Halt));
        assert_eq!(OpList::from([Op::Udf]), [Op::Udf]);
    }

    #[test]
    #[should_panic(expected = "micro-ops")]
    fn oplist_overflow_is_a_hard_error() {
        let mut l = OpList::new();
        for _ in 0..=MAX_OPS_PER_INSN {
            l.push(Op::Nop);
        }
    }

    #[test]
    #[should_panic(expected = "control flow op not last")]
    fn control_flow_mid_instruction_is_a_hard_error() {
        // A real assert, not debug-only: this must fire in release too.
        let _ = Decoded::new(4, [Op::Branch { target: 0 }, Op::Nop], InsnClass::Branch);
    }

    #[test]
    fn decoded_ends_block() {
        let d = Decoded::new(4, vec![Op::Nop], InsnClass::Nop);
        assert!(!d.ends_block());
        let d = Decoded::new(
            4,
            vec![Op::Nop, Op::Branch { target: 4 }],
            InsnClass::Branch,
        );
        assert!(d.ends_block());
    }
}

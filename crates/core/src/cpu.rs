//! Architectural CPU state shared by both guest ISAs.

use std::fmt;

/// Maximum number of general-purpose registers any supported ISA exposes.
/// `armlet` uses all 16; `petix` uses the first 8.
pub const MAX_GPRS: usize = 16;

/// Condition flags (NZCV), kept out of any status word so engines can
/// manipulate them without bit twiddling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Carry / no-borrow.
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            if self.n { 'N' } else { 'n' },
            if self.z { 'Z' } else { 'z' },
            if self.c { 'C' } else { 'c' },
            if self.v { 'V' } else { 'v' },
        )
    }
}

/// Guest privilege level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Privilege {
    /// Unprivileged (user / ring 3) execution.
    User,
    /// Privileged (supervisor / ring 0) execution. The default out of reset.
    #[default]
    Kernel,
}

impl Privilege {
    /// True for [`Privilege::Kernel`].
    #[inline]
    pub fn is_kernel(self) -> bool {
        matches!(self, Privilege::Kernel)
    }
}

/// The portion of processor status banked on exception entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Status {
    /// Condition flags.
    pub flags: Flags,
    /// Privilege level.
    pub level: Privilege,
    /// Whether asynchronous interrupts are accepted.
    pub irq_enabled: bool,
}

/// Architectural CPU register state.
///
/// The program counter is held separately from the GPR file: neither guest
/// ISA exposes the PC as a general register (this deviates from classic
/// ARM but keeps the IR engine-agnostic, as documented in `DESIGN.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuState {
    /// General-purpose registers. Unused high registers stay zero on ISAs
    /// with fewer than [`MAX_GPRS`] registers.
    pub regs: [u32; MAX_GPRS],
    /// Program counter (virtual address of the next instruction).
    pub pc: u32,
    /// Condition flags.
    pub flags: Flags,
    /// Current privilege level.
    pub level: Privilege,
    /// Whether IRQs are accepted.
    pub irq_enabled: bool,
}

impl CpuState {
    /// A CPU in its post-reset state: kernel mode, IRQs masked, executing
    /// from `entry`.
    pub fn at_reset(entry: u32) -> Self {
        CpuState {
            regs: [0; MAX_GPRS],
            pc: entry,
            flags: Flags::default(),
            level: Privilege::Kernel,
            irq_enabled: false,
        }
    }

    /// Snapshot of the bankable status.
    pub fn status(&self) -> Status {
        Status {
            flags: self.flags,
            level: self.level,
            irq_enabled: self.irq_enabled,
        }
    }

    /// Restore a banked status snapshot.
    pub fn restore_status(&mut self, s: Status) {
        self.flags = s.flags;
        self.level = s.level;
        self.irq_enabled = s.irq_enabled;
    }
}

impl Default for CpuState {
    fn default() -> Self {
        CpuState::at_reset(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state() {
        let c = CpuState::at_reset(0x8000);
        assert_eq!(c.pc, 0x8000);
        assert!(c.level.is_kernel());
        assert!(!c.irq_enabled);
        assert!(c.regs.iter().all(|&r| r == 0));
    }

    #[test]
    fn status_round_trip() {
        let mut c = CpuState::at_reset(0);
        c.flags.z = true;
        c.irq_enabled = true;
        c.level = Privilege::User;
        let s = c.status();
        let mut d = CpuState::at_reset(0);
        d.restore_status(s);
        assert_eq!(d.flags, c.flags);
        assert_eq!(d.level, Privilege::User);
        assert!(d.irq_enabled);
    }

    #[test]
    fn flags_display() {
        let f = Flags {
            n: true,
            z: false,
            c: true,
            v: false,
        };
        assert_eq!(f.to_string(), "NzCv");
    }
}

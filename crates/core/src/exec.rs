//! Shared micro-op execution semantics.
//!
//! [`step_op`] implements the architectural effect of every [`Op`] once;
//! each engine supplies an [`ExecCtx`] that plugs in its own register
//! file access, memory path (TLB flavour, event accounting) and
//! coprocessor routing. Engines therefore differ in *mechanism* — the
//! thing SimBench measures — while sharing semantics, which keeps
//! differential tests honest.

use crate::alu;
use crate::cpu::Flags;
use crate::fault::{CopFault, MemFault};
use crate::ir::{LinkKind, MemSize, Op, Operand, RetKind};

/// Engine-specific execution context for one machine.
pub trait ExecCtx {
    /// Read a GPR.
    fn reg(&self, r: u8) -> u32;
    /// Write a GPR.
    fn set_reg(&mut self, r: u8, v: u32);
    /// Current condition flags.
    fn flags(&self) -> Flags;
    /// Replace the condition flags.
    fn set_flags(&mut self, f: Flags);
    /// True when executing privileged.
    fn privileged(&self) -> bool;
    /// Translated data load.
    ///
    /// # Errors
    ///
    /// The architectural [`MemFault`] (translation, permission,
    /// alignment, or bus error).
    fn read(&mut self, va: u32, size: MemSize, nonpriv: bool) -> Result<u32, MemFault>;
    /// Translated data store.
    ///
    /// # Errors
    ///
    /// The architectural [`MemFault`].
    fn write(&mut self, va: u32, val: u32, size: MemSize, nonpriv: bool) -> Result<(), MemFault>;
    /// Coprocessor read (already privilege-checked by [`step_op`]).
    ///
    /// # Errors
    ///
    /// [`CopFault`] for nonexistent registers.
    fn cop_read(&mut self, cp: u8, reg: u8) -> Result<u32, CopFault>;
    /// Coprocessor write (already privilege-checked by [`step_op`]).
    ///
    /// # Errors
    ///
    /// [`CopFault`] for nonexistent registers.
    fn cop_write(&mut self, cp: u8, reg: u8, val: u32) -> Result<(), CopFault>;
}

/// Whether a control transfer's target was statically encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchFlavor {
    /// Target encoded in the instruction.
    Direct,
    /// Target from a register or the stack.
    Indirect,
}

/// A synchronous event that ends normal sequential execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// `svc`-style system call.
    Syscall(u16),
    /// Undefined instruction (including privileged ops in user mode and
    /// invalid coprocessor accesses).
    Undef,
    /// Faulting data access.
    DataFault(MemFault),
    /// Exception return: the engine must call
    /// [`crate::isa::Isa::leave_exception`].
    Eret,
}

/// Result of executing one micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// Fall through to the next op / instruction.
    Next,
    /// Control transfers to `target`.
    Jump {
        /// Absolute target address.
        target: u32,
        /// Static or dynamic target.
        flavor: BranchFlavor,
    },
    /// A synchronous exception-class event occurred.
    Trap(Trap),
    /// The guest executed `halt`.
    Halt,
}

#[inline]
fn operand<C: ExecCtx>(ctx: &C, src: Operand) -> u32 {
    match src {
        Operand::Reg(r) => ctx.reg(r),
        Operand::Imm(i) => i,
    }
}

#[inline]
fn do_link<C: ExecCtx>(ctx: &mut C, link: LinkKind, ret: u32) -> Result<(), MemFault> {
    match link {
        LinkKind::Register(lr) => {
            ctx.set_reg(lr, ret);
            Ok(())
        }
        LinkKind::Push(sp) => {
            let new_sp = ctx.reg(sp).wrapping_sub(4);
            ctx.write(new_sp, ret, MemSize::B4, false)?;
            ctx.set_reg(sp, new_sp);
            Ok(())
        }
    }
}

/// Execute one micro-op against the context.
///
/// Privilege rules enforced here (identically for every engine):
/// `CopRead`/`CopWrite`/`Halt`/`Eret` are privileged and raise
/// [`Trap::Undef`] from user mode; `Svc` and `Udf` are always available.
#[inline]
pub fn step_op<C: ExecCtx>(ctx: &mut C, op: &Op) -> OpOutcome {
    match *op {
        Op::Nop => OpOutcome::Next,
        Op::Alu {
            op,
            rd,
            rn,
            src,
            set_flags,
        } => {
            let a = ctx.reg(rn);
            let b = operand(ctx, src);
            let r = alu::eval(op, a, b, ctx.flags());
            ctx.set_reg(rd, r.value);
            if set_flags {
                ctx.set_flags(r.flags);
            }
            OpOutcome::Next
        }
        Op::Cmp { rn, src, is_tst } => {
            let a = ctx.reg(rn);
            let b = operand(ctx, src);
            let f = alu::compare(a, b, is_tst, ctx.flags());
            ctx.set_flags(f);
            OpOutcome::Next
        }
        Op::Load {
            rd,
            base,
            off,
            size,
            nonpriv,
        } => {
            let va = ctx.reg(base).wrapping_add(off as u32);
            match ctx.read(va, size, nonpriv) {
                Ok(v) => {
                    ctx.set_reg(rd, v);
                    OpOutcome::Next
                }
                Err(f) => OpOutcome::Trap(Trap::DataFault(f)),
            }
        }
        Op::Store {
            rs,
            base,
            off,
            size,
            nonpriv,
        } => {
            let va = ctx.reg(base).wrapping_add(off as u32);
            let val = ctx.reg(rs);
            match ctx.write(va, val, size, nonpriv) {
                Ok(()) => OpOutcome::Next,
                Err(f) => OpOutcome::Trap(Trap::DataFault(f)),
            }
        }
        Op::Branch { target } => OpOutcome::Jump {
            target,
            flavor: BranchFlavor::Direct,
        },
        Op::BranchCond { cond, target } => {
            if alu::cond_holds(cond, ctx.flags()) {
                OpOutcome::Jump {
                    target,
                    flavor: BranchFlavor::Direct,
                }
            } else {
                OpOutcome::Next
            }
        }
        Op::BranchReg { rm } => OpOutcome::Jump {
            target: ctx.reg(rm),
            flavor: BranchFlavor::Indirect,
        },
        Op::Call { target, ret, link } => match do_link(ctx, link, ret) {
            Ok(()) => OpOutcome::Jump {
                target,
                flavor: BranchFlavor::Direct,
            },
            Err(f) => OpOutcome::Trap(Trap::DataFault(f)),
        },
        Op::CallReg { rm, ret, link } => {
            let target = ctx.reg(rm);
            match do_link(ctx, link, ret) {
                Ok(()) => OpOutcome::Jump {
                    target,
                    flavor: BranchFlavor::Indirect,
                },
                Err(f) => OpOutcome::Trap(Trap::DataFault(f)),
            }
        }
        Op::Ret(kind) => match kind {
            RetKind::Register(r) => OpOutcome::Jump {
                target: ctx.reg(r),
                flavor: BranchFlavor::Indirect,
            },
            RetKind::Pop(sp) => {
                let addr = ctx.reg(sp);
                match ctx.read(addr, MemSize::B4, false) {
                    Ok(target) => {
                        ctx.set_reg(sp, addr.wrapping_add(4));
                        OpOutcome::Jump {
                            target,
                            flavor: BranchFlavor::Indirect,
                        }
                    }
                    Err(f) => OpOutcome::Trap(Trap::DataFault(f)),
                }
            }
        },
        Op::Svc(n) => OpOutcome::Trap(Trap::Syscall(n)),
        Op::Udf => OpOutcome::Trap(Trap::Undef),
        Op::Eret => {
            if ctx.privileged() {
                OpOutcome::Trap(Trap::Eret)
            } else {
                OpOutcome::Trap(Trap::Undef)
            }
        }
        Op::Halt => {
            if ctx.privileged() {
                OpOutcome::Halt
            } else {
                OpOutcome::Trap(Trap::Undef)
            }
        }
        Op::CopRead { cp, reg, rd } => {
            if !ctx.privileged() {
                return OpOutcome::Trap(Trap::Undef);
            }
            match ctx.cop_read(cp, reg) {
                Ok(v) => {
                    ctx.set_reg(rd, v);
                    OpOutcome::Next
                }
                Err(CopFault) => OpOutcome::Trap(Trap::Undef),
            }
        }
        Op::CopWrite { cp, reg, rs } => {
            if !ctx.privileged() {
                return OpOutcome::Trap(Trap::Undef);
            }
            let val = ctx.reg(rs);
            match ctx.cop_write(cp, reg, val) {
                Ok(()) => OpOutcome::Next,
                Err(CopFault) => OpOutcome::Trap(Trap::Undef),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{AccessKind, FaultKind};
    use crate::ir::AluOp;
    use std::collections::HashMap;

    /// Flat-memory test context: 64 KB, user perms everywhere, coprocessor
    /// registers in a map.
    struct TestCtx {
        regs: [u32; 16],
        flags: Flags,
        privileged: bool,
        mem: Vec<u8>,
        cops: HashMap<(u8, u8), u32>,
    }

    impl TestCtx {
        fn new() -> Self {
            TestCtx {
                regs: [0; 16],
                flags: Flags::default(),
                privileged: true,
                mem: vec![0; 0x1_0000],
                cops: HashMap::new(),
            }
        }
    }

    impl ExecCtx for TestCtx {
        fn reg(&self, r: u8) -> u32 {
            self.regs[r as usize]
        }
        fn set_reg(&mut self, r: u8, v: u32) {
            self.regs[r as usize] = v;
        }
        fn flags(&self) -> Flags {
            self.flags
        }
        fn set_flags(&mut self, f: Flags) {
            self.flags = f;
        }
        fn privileged(&self) -> bool {
            self.privileged
        }
        fn read(&mut self, va: u32, size: MemSize, _np: bool) -> Result<u32, MemFault> {
            if !size.aligned(va) {
                return Err(MemFault {
                    addr: va,
                    access: AccessKind::Read,
                    kind: FaultKind::Unaligned,
                });
            }
            if va as usize + size.bytes() as usize > self.mem.len() {
                return Err(MemFault {
                    addr: va,
                    access: AccessKind::Read,
                    kind: FaultKind::Unmapped,
                });
            }
            Ok(crate::bus::ram_read(&self.mem, va, size))
        }
        fn write(&mut self, va: u32, val: u32, size: MemSize, _np: bool) -> Result<(), MemFault> {
            if va as usize + size.bytes() as usize > self.mem.len() {
                return Err(MemFault {
                    addr: va,
                    access: AccessKind::Write,
                    kind: FaultKind::Unmapped,
                });
            }
            crate::bus::ram_write(&mut self.mem, va, val, size);
            Ok(())
        }
        fn cop_read(&mut self, cp: u8, reg: u8) -> Result<u32, CopFault> {
            self.cops.get(&(cp, reg)).copied().ok_or(CopFault)
        }
        fn cop_write(&mut self, cp: u8, reg: u8, val: u32) -> Result<(), CopFault> {
            self.cops.insert((cp, reg), val);
            Ok(())
        }
    }

    #[test]
    fn alu_and_flags() {
        let mut c = TestCtx::new();
        c.regs[1] = 7;
        let out = step_op(
            &mut c,
            &Op::Alu {
                op: AluOp::Add,
                rd: 0,
                rn: 1,
                src: Operand::Imm(3),
                set_flags: false,
            },
        );
        assert_eq!(out, OpOutcome::Next);
        assert_eq!(c.regs[0], 10);
        assert!(!c.flags.z, "flags untouched without S");

        step_op(
            &mut c,
            &Op::Cmp {
                rn: 0,
                src: Operand::Imm(10),
                is_tst: false,
            },
        );
        assert!(c.flags.z);
    }

    #[test]
    fn loads_and_stores() {
        let mut c = TestCtx::new();
        c.regs[2] = 0x100;
        c.regs[3] = 0xabcd_1234;
        let out = step_op(
            &mut c,
            &Op::Store {
                rs: 3,
                base: 2,
                off: 4,
                size: MemSize::B4,
                nonpriv: false,
            },
        );
        assert_eq!(out, OpOutcome::Next);
        let out = step_op(
            &mut c,
            &Op::Load {
                rd: 4,
                base: 2,
                off: 4,
                size: MemSize::B4,
                nonpriv: false,
            },
        );
        assert_eq!(out, OpOutcome::Next);
        assert_eq!(c.regs[4], 0xabcd_1234);
    }

    #[test]
    fn load_fault_traps() {
        let mut c = TestCtx::new();
        c.regs[2] = 0xFFFF_0000;
        let out = step_op(
            &mut c,
            &Op::Load {
                rd: 4,
                base: 2,
                off: 0,
                size: MemSize::B4,
                nonpriv: false,
            },
        );
        match out {
            OpOutcome::Trap(Trap::DataFault(f)) => assert_eq!(f.addr, 0xFFFF_0000),
            other => panic!("expected data fault, got {other:?}"),
        }
    }

    #[test]
    fn branches() {
        let mut c = TestCtx::new();
        assert_eq!(
            step_op(&mut c, &Op::Branch { target: 0x44 }),
            OpOutcome::Jump {
                target: 0x44,
                flavor: BranchFlavor::Direct
            }
        );
        c.regs[5] = 0x88;
        assert_eq!(
            step_op(&mut c, &Op::BranchReg { rm: 5 }),
            OpOutcome::Jump {
                target: 0x88,
                flavor: BranchFlavor::Indirect
            }
        );
        // Conditional fall-through.
        c.flags.z = false;
        assert_eq!(
            step_op(
                &mut c,
                &Op::BranchCond {
                    cond: crate::ir::Cond::Eq,
                    target: 0x44
                }
            ),
            OpOutcome::Next
        );
        c.flags.z = true;
        assert!(matches!(
            step_op(
                &mut c,
                &Op::BranchCond {
                    cond: crate::ir::Cond::Eq,
                    target: 0x44
                }
            ),
            OpOutcome::Jump { target: 0x44, .. }
        ));
    }

    #[test]
    fn call_with_link_register() {
        let mut c = TestCtx::new();
        let out = step_op(
            &mut c,
            &Op::Call {
                target: 0x1000,
                ret: 0x24,
                link: LinkKind::Register(14),
            },
        );
        assert_eq!(
            out,
            OpOutcome::Jump {
                target: 0x1000,
                flavor: BranchFlavor::Direct
            }
        );
        assert_eq!(c.regs[14], 0x24);
        assert_eq!(
            step_op(&mut c, &Op::Ret(RetKind::Register(14))),
            OpOutcome::Jump {
                target: 0x24,
                flavor: BranchFlavor::Indirect
            }
        );
    }

    #[test]
    fn call_with_stack_push() {
        let mut c = TestCtx::new();
        c.regs[6] = 0x200;
        let out = step_op(
            &mut c,
            &Op::Call {
                target: 0x1000,
                ret: 0x55,
                link: LinkKind::Push(6),
            },
        );
        assert!(matches!(out, OpOutcome::Jump { target: 0x1000, .. }));
        assert_eq!(c.regs[6], 0x1FC, "sp decremented");
        assert_eq!(c.read(0x1FC, MemSize::B4, false).unwrap(), 0x55);

        let out = step_op(&mut c, &Op::Ret(RetKind::Pop(6)));
        assert_eq!(
            out,
            OpOutcome::Jump {
                target: 0x55,
                flavor: BranchFlavor::Indirect
            }
        );
        assert_eq!(c.regs[6], 0x200, "sp restored");
    }

    #[test]
    fn privileged_ops_from_user_mode_undef() {
        let mut c = TestCtx::new();
        c.privileged = false;
        assert_eq!(step_op(&mut c, &Op::Halt), OpOutcome::Trap(Trap::Undef));
        assert_eq!(step_op(&mut c, &Op::Eret), OpOutcome::Trap(Trap::Undef));
        assert_eq!(
            step_op(
                &mut c,
                &Op::CopRead {
                    cp: 15,
                    reg: 3,
                    rd: 0
                }
            ),
            OpOutcome::Trap(Trap::Undef)
        );
        assert_eq!(
            step_op(
                &mut c,
                &Op::CopWrite {
                    cp: 15,
                    reg: 3,
                    rs: 0
                }
            ),
            OpOutcome::Trap(Trap::Undef)
        );
        // svc is fine from user mode.
        assert_eq!(
            step_op(&mut c, &Op::Svc(9)),
            OpOutcome::Trap(Trap::Syscall(9))
        );
    }

    #[test]
    fn cop_round_trip_and_fault() {
        let mut c = TestCtx::new();
        c.regs[1] = 0x42;
        assert_eq!(
            step_op(
                &mut c,
                &Op::CopWrite {
                    cp: 15,
                    reg: 2,
                    rs: 1
                }
            ),
            OpOutcome::Next
        );
        assert_eq!(
            step_op(
                &mut c,
                &Op::CopRead {
                    cp: 15,
                    reg: 2,
                    rd: 3
                }
            ),
            OpOutcome::Next
        );
        assert_eq!(c.regs[3], 0x42);
        // Unwritten register faults in this test ctx → undef.
        assert_eq!(
            step_op(
                &mut c,
                &Op::CopRead {
                    cp: 1,
                    reg: 9,
                    rd: 3
                }
            ),
            OpOutcome::Trap(Trap::Undef)
        );
    }

    #[test]
    fn halt_and_udf() {
        let mut c = TestCtx::new();
        assert_eq!(step_op(&mut c, &Op::Halt), OpOutcome::Halt);
        assert_eq!(step_op(&mut c, &Op::Udf), OpOutcome::Trap(Trap::Undef));
    }
}

//! Event counters.
//!
//! Every engine counts the architectural events SimBench's *operation
//! density* metric is defined over (Fig 3 of the paper): the density of a
//! benchmark is `tested operations / kernel instructions`, where the
//! tested operation is benchmark-specific (e.g. TLB misses for Cold
//! Memory Access, syscalls for System Call).

/// Monotonic event counters accumulated during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Guest instructions retired.
    pub instructions: u64,
    /// Micro-ops retired.
    pub uops: u64,
    /// Taken direct branches staying within a page.
    pub branch_intra_direct: u64,
    /// Taken direct branches crossing a page boundary.
    pub branch_inter_direct: u64,
    /// Indirect branches staying within a page.
    pub branch_intra_indirect: u64,
    /// Indirect branches crossing a page boundary.
    pub branch_inter_indirect: u64,
    /// Data aborts taken.
    pub data_faults: u64,
    /// Prefetch aborts taken.
    pub insn_faults: u64,
    /// Undefined-instruction exceptions taken.
    pub undef_insns: u64,
    /// System calls taken.
    pub syscalls: u64,
    /// External interrupts delivered.
    pub irqs_delivered: u64,
    /// Loads + stores that decoded to a device rather than RAM.
    pub mmio_accesses: u64,
    /// Coprocessor / control-register accesses executed.
    pub coproc_accesses: u64,
    /// Data loads retired.
    pub mem_reads: u64,
    /// Data stores retired.
    pub mem_writes: u64,
    /// Data-side translation hits in the engine's TLB structure.
    pub tlb_hits: u64,
    /// Data-side translation misses (page-table walks).
    pub tlb_misses: u64,
    /// Architectural single-page TLB invalidations executed.
    pub tlb_invalidate_page: u64,
    /// Architectural full TLB flushes executed.
    pub tlb_flushes: u64,
    /// Non-privileged (`ldrt`/`strt`) accesses retired.
    pub nonpriv_accesses: u64,
    /// Stores that hit a page holding cached translations (self-modifying
    /// code events).
    pub code_invalidations: u64,
    /// Translation blocks built (DBT only).
    pub blocks_translated: u64,
    /// Translation block cache hits (DBT only).
    pub block_cache_hits: u64,
    /// Chained direct block transitions (DBT only).
    pub block_chain_follows: u64,
    /// Simulated VM exits (virtualization engine only).
    pub vm_exits: u64,
}

macro_rules! counter_rows {
    ($($field:ident),* $(,)?) => {
        /// Names of all counters, aligned with [`Counters::rows`].
        pub const NAMES: &'static [&'static str] = &[$(stringify!($field)),*];

        /// All counters as `(name, value)` rows for reporting.
        pub fn rows(&self) -> Vec<(&'static str, u64)> {
            vec![$((stringify!($field), self.$field)),*]
        }

        /// Field-wise difference `self - earlier` (saturating).
        #[must_use]
        pub fn since(&self, earlier: &Counters) -> Counters {
            Counters { $($field: self.$field.saturating_sub(earlier.$field)),* }
        }

        /// Field-wise sum.
        #[must_use]
        pub fn plus(&self, other: &Counters) -> Counters {
            Counters { $($field: self.$field + other.$field),* }
        }
    };
}

impl Counters {
    counter_rows!(
        instructions,
        uops,
        branch_intra_direct,
        branch_inter_direct,
        branch_intra_indirect,
        branch_inter_indirect,
        data_faults,
        insn_faults,
        undef_insns,
        syscalls,
        irqs_delivered,
        mmio_accesses,
        coproc_accesses,
        mem_reads,
        mem_writes,
        tlb_hits,
        tlb_misses,
        tlb_invalidate_page,
        tlb_flushes,
        nonpriv_accesses,
        code_invalidations,
        blocks_translated,
        block_cache_hits,
        block_chain_follows,
        vm_exits,
    );

    /// Total taken branches of all four classes.
    pub fn branches(&self) -> u64 {
        self.branch_intra_direct
            + self.branch_inter_direct
            + self.branch_intra_indirect
            + self.branch_inter_indirect
    }

    /// Total data memory accesses.
    pub fn mem_accesses(&self) -> u64 {
        self.mem_reads + self.mem_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_fields() {
        let c = Counters {
            instructions: 3,
            vm_exits: 7,
            ..Default::default()
        };
        let rows = c.rows();
        assert_eq!(rows.len(), Counters::NAMES.len());
        assert!(rows.contains(&("instructions", 3)));
        assert!(rows.contains(&("vm_exits", 7)));
        assert!(rows.contains(&("tlb_hits", 0)));
    }

    #[test]
    fn since_and_plus() {
        let a = Counters {
            instructions: 10,
            mem_reads: 4,
            ..Default::default()
        };
        let b = Counters {
            instructions: 25,
            mem_reads: 9,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.instructions, 15);
        assert_eq!(d.mem_reads, 5);
        let s = a.plus(&d);
        assert_eq!(s.instructions, b.instructions);
        // Saturating difference never underflows.
        let z = a.since(&b);
        assert_eq!(z.instructions, 0);
    }

    #[test]
    fn aggregates() {
        let c = Counters {
            branch_intra_direct: 1,
            branch_inter_direct: 2,
            branch_intra_indirect: 3,
            branch_inter_indirect: 4,
            mem_reads: 5,
            mem_writes: 6,
            ..Default::default()
        };
        assert_eq!(c.branches(), 10);
        assert_eq!(c.mem_accesses(), 11);
    }
}

//! Static control-flow-graph recovery over guest images.
//!
//! The recovery walks a [`GuestImage`] the way a simulator's fetch path
//! would — boot code runs MMU-off with an identity view, so link
//! addresses equal load addresses — but without executing anything:
//! recursive descent from a set of roots (the entry point plus, for a
//! whole-image analysis, the exception vectors), decoding through the
//! ISA's real decoder and following every statically-known edge.
//!
//! The result is the block-level structure the DBT engines discover at
//! run time, computed offline: basic blocks with per-block content
//! digests (the same FNV-1a the state digests use, so a block's digest
//! changes exactly when an SMC store would invalidate its translation),
//! direct/indirect edge classification, and loop headers via iterative
//! dominators. Anything the walk cannot prove — an undecodable
//! reachable instruction, a direct branch into the middle of another
//! instruction, control running off the end of the image — is reported
//! as a [`CfgViolation`] rather than silently tolerated: the decoder
//! invariants the engines rely on dynamically become checkable facts.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::digest::Fnv1a;
use crate::image::GuestImage;
use crate::ir::Decoded;
use crate::ir::Op;
use crate::isa::Isa;

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// The next instruction is a leader (branch target); control falls
    /// into the following block.
    FallThrough,
    /// Unconditional direct branch.
    Branch,
    /// Conditional direct branch (taken edge + fall-through edge).
    BranchCond,
    /// Direct call; the return-address continuation is also an edge.
    Call,
    /// Indirect branch through a register: no static successors.
    IndirectBranch,
    /// Indirect call; only the return continuation is statically known.
    IndirectCall,
    /// Return: no static successors.
    Ret,
    /// Synchronous trap (`svc`/`udf`): the handler resumes at the next
    /// instruction, which is therefore a static successor.
    Trap,
    /// Exception return: the resume point is banked state.
    Eret,
    /// Machine halt.
    Halt,
}

/// One recovered basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u32,
    /// One past the last byte of the last instruction.
    pub end: u32,
    /// Index of the block's first instruction in [`Cfg::insns`].
    pub first_insn: usize,
    /// Number of instructions in the block.
    pub n_insns: usize,
    /// How the block ends.
    pub terminator: Terminator,
    /// Start addresses of statically-known successor blocks.
    pub succs: Vec<u32>,
    /// FNV-1a digest of the block's encoded bytes. An SMC store into
    /// the block changes this, which is what makes it the right cache
    /// key for translation invalidation.
    pub digest: u64,
    /// True if some back edge targets this block (dominator-verified).
    pub loop_header: bool,
}

impl Block {
    /// True if the block ends in statically-unresolvable control flow.
    pub fn has_indirect_exit(&self) -> bool {
        matches!(
            self.terminator,
            Terminator::IndirectBranch | Terminator::IndirectCall | Terminator::Ret
        )
    }
}

/// A decoder or control-flow invariant the static walk could not prove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfgViolation {
    /// A reachable instruction failed to decode.
    Undecodable {
        /// Address of the undecodable instruction.
        pc: u32,
    },
    /// A direct branch/call targets an address outside every section.
    TargetOutsideImage {
        /// Address of the branching instruction.
        from: u32,
        /// The out-of-image target.
        target: u32,
    },
    /// Control falls off the end of the image without a terminator.
    FallsOffImage {
        /// Address of the last in-image instruction.
        from: u32,
        /// First out-of-image address control would reach.
        next: u32,
    },
    /// Two reachable instructions overlap: some direct edge lands
    /// inside another decoding path's instruction.
    OverlappingInsns {
        /// Start of the earlier instruction.
        a: u32,
        /// Start of the overlapping later instruction.
        b: u32,
    },
    /// No reachable block contains a `halt` op, so the program cannot
    /// terminate cleanly.
    NoReachableHalt,
}

impl fmt::Display for CfgViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgViolation::Undecodable { pc } => {
                write!(f, "reachable instruction at {pc:#010x} does not decode")
            }
            CfgViolation::TargetOutsideImage { from, target } => write!(
                f,
                "direct branch at {from:#010x} targets {target:#010x}, outside the image"
            ),
            CfgViolation::FallsOffImage { from, next } => write!(
                f,
                "control falls off the image after {from:#010x} (next pc {next:#010x})"
            ),
            CfgViolation::OverlappingInsns { a, b } => write!(
                f,
                "instruction at {b:#010x} overlaps the instruction at {a:#010x}"
            ),
            CfgViolation::NoReachableHalt => f.write_str("no reachable halt instruction"),
        }
    }
}

/// A recovered control-flow graph plus the invariant violations found
/// while recovering it.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Every reachable instruction, sorted by address.
    pub insns: Vec<(u32, Decoded)>,
    /// Basic blocks, sorted by start address.
    pub blocks: Vec<Block>,
    /// Invariant violations encountered during the walk.
    pub violations: Vec<CfgViolation>,
}

impl Cfg {
    /// Recover the CFG of `image` by recursive descent from `roots`
    /// (deduplicated; roots outside the image are ignored — the caller
    /// decides whether an unused vector slot matters).
    pub fn recover<I: Isa>(image: &GuestImage, roots: &[u32]) -> Cfg {
        Recovery::<I>::new(image).run(roots)
    }

    /// The block starting at `addr`, if any.
    pub fn block_at(&self, addr: u32) -> Option<&Block> {
        self.blocks
            .binary_search_by_key(&addr, |b| b.start)
            .ok()
            .map(|i| &self.blocks[i])
    }

    /// The block whose byte range contains `addr`, if any.
    pub fn block_containing(&self, addr: u32) -> Option<&Block> {
        match self.blocks.binary_search_by_key(&addr, |b| b.start) {
            Ok(i) => Some(&self.blocks[i]),
            Err(0) => None,
            Err(i) => {
                let b = &self.blocks[i - 1];
                (addr < b.end).then_some(b)
            }
        }
    }

    /// Instructions of one block.
    pub fn block_insns(&self, b: &Block) -> &[(u32, Decoded)] {
        &self.insns[b.first_insn..b.first_insn + b.n_insns]
    }

    /// True if any reachable block contains a `halt`.
    pub fn halt_reachable(&self) -> bool {
        self.blocks.iter().any(|b| {
            self.block_insns(b)
                .iter()
                .any(|(_, d)| d.ops.iter().any(|op| matches!(op, Op::Halt)))
        })
    }

    /// Total direct edges (for reporting).
    pub fn edge_count(&self) -> usize {
        self.blocks.iter().map(|b| b.succs.len()).sum()
    }

    /// Number of loop headers.
    pub fn loop_headers(&self) -> usize {
        self.blocks.iter().filter(|b| b.loop_header).count()
    }
}

/// Static successor analysis of one decoded instruction.
struct Exits {
    terminator: Terminator,
    /// Direct targets that become leaders (branch/call targets).
    targets: Vec<u32>,
    /// True when the address after the instruction is reachable
    /// (fall-through, call return, trap resume).
    continues: bool,
}

fn exits_of(d: &Decoded) -> Exits {
    match d.ops.last() {
        Some(Op::Branch { target }) => Exits {
            terminator: Terminator::Branch,
            targets: vec![*target],
            continues: false,
        },
        Some(Op::BranchCond { target, .. }) => Exits {
            terminator: Terminator::BranchCond,
            targets: vec![*target],
            continues: true,
        },
        Some(Op::Call { target, .. }) => Exits {
            terminator: Terminator::Call,
            targets: vec![*target],
            continues: true,
        },
        Some(Op::CallReg { .. }) => Exits {
            terminator: Terminator::IndirectCall,
            targets: Vec::new(),
            continues: true,
        },
        Some(Op::BranchReg { .. }) => Exits {
            terminator: Terminator::IndirectBranch,
            targets: Vec::new(),
            continues: false,
        },
        Some(Op::Ret(_)) => Exits {
            terminator: Terminator::Ret,
            targets: Vec::new(),
            continues: false,
        },
        Some(Op::Svc(_)) | Some(Op::Udf) => Exits {
            terminator: Terminator::Trap,
            targets: Vec::new(),
            continues: true,
        },
        Some(Op::Eret) => Exits {
            terminator: Terminator::Eret,
            targets: Vec::new(),
            continues: false,
        },
        Some(Op::Halt) => Exits {
            terminator: Terminator::Halt,
            targets: Vec::new(),
            continues: false,
        },
        _ => Exits {
            terminator: Terminator::FallThrough,
            targets: Vec::new(),
            continues: true,
        },
    }
}

struct Recovery<'a, I: Isa> {
    /// Sections sorted by address for binary-search byte reads.
    sections: Vec<(u32, &'a [u8])>,
    _isa: std::marker::PhantomData<I>,
}

impl<'a, I: Isa> Recovery<'a, I> {
    fn new(image: &'a GuestImage) -> Self {
        let mut sections: Vec<(u32, &[u8])> = image
            .sections
            .iter()
            .map(|s| (s.addr, s.bytes.as_slice()))
            .collect();
        sections.sort_by_key(|(a, _)| *a);
        Recovery {
            sections,
            _isa: std::marker::PhantomData,
        }
    }

    fn in_image(&self, addr: u32) -> bool {
        match self.sections.binary_search_by_key(&addr, |(a, _)| *a) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => {
                let (base, bytes) = self.sections[i - 1];
                addr - base < bytes.len() as u32
            }
        }
    }

    /// Read up to 8 bytes starting at `addr`, zero-filling gaps — the
    /// exact bytes a machine would fetch, since RAM is zeroed before
    /// the image loads.
    fn read_bytes(&self, addr: u32) -> [u8; 8] {
        let mut out = [0u8; 8];
        for (i, slot) in out.iter_mut().enumerate() {
            let a = addr.wrapping_add(i as u32);
            let idx = match self.sections.binary_search_by_key(&a, |(b, _)| *b) {
                Ok(i) => Some(i),
                Err(0) => None,
                Err(i) => Some(i - 1),
            };
            if let Some(si) = idx {
                let (base, bytes) = self.sections[si];
                let off = a.wrapping_sub(base) as usize;
                if off < bytes.len() {
                    *slot = bytes[off];
                }
            }
        }
        out
    }

    fn run(self, roots: &[u32]) -> Cfg {
        let mut insns: BTreeMap<u32, Decoded> = BTreeMap::new();
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        let mut violations: Vec<CfgViolation> = Vec::new();
        let mut work: VecDeque<u32> = VecDeque::new();

        for &r in roots {
            if self.in_image(r) && leaders.insert(r) {
                work.push_back(r);
            }
        }

        while let Some(pc) = work.pop_front() {
            if insns.contains_key(&pc) {
                continue;
            }
            let bytes = self.read_bytes(pc);
            let decoded = match I::decode(&bytes[..I::MAX_INSN_BYTES], pc) {
                Ok(d) => d,
                Err(_) => {
                    violations.push(CfgViolation::Undecodable { pc });
                    continue;
                }
            };
            let exits = exits_of(&decoded);
            let next = pc.wrapping_add(decoded.len as u32);
            insns.insert(pc, decoded);
            for &target in &exits.targets {
                if self.in_image(target) {
                    leaders.insert(target);
                    work.push_back(target);
                } else {
                    violations.push(CfgViolation::TargetOutsideImage { from: pc, target });
                }
            }
            if exits.continues {
                // Call returns and trap resumes start fresh blocks; a
                // plain fall-through does not create a leader.
                if !matches!(exits.terminator, Terminator::FallThrough) {
                    leaders.insert(next);
                }
                if self.in_image(next) {
                    work.push_back(next);
                } else {
                    violations.push(CfgViolation::FallsOffImage { from: pc, next });
                }
            }
        }

        // Instruction-boundary invariant: no two reachable decodings may
        // overlap. A direct branch into the middle of an instruction
        // shows up here as a second decoding path through shared bytes.
        {
            let mut prev: Option<(u32, u32)> = None;
            for (&pc, d) in &insns {
                if let Some((a, a_end)) = prev {
                    if pc < a_end {
                        violations.push(CfgViolation::OverlappingInsns { a, b: pc });
                    }
                }
                prev = Some((pc, pc + d.len as u32));
            }
        }

        let cfg_insns: Vec<(u32, Decoded)> = insns.into_iter().collect();
        if !cfg_insns
            .iter()
            .any(|(_, d)| d.ops.iter().any(|op| matches!(op, Op::Halt)))
        {
            violations.push(CfgViolation::NoReachableHalt);
        }
        let mut blocks = Vec::new();
        let mut i = 0;
        while i < cfg_insns.len() {
            let (start, _) = cfg_insns[i];
            let first_insn = i;
            // Grow the block until an instruction ends it, the next
            // instruction is a leader, or the run is discontiguous.
            loop {
                let (pc, d) = &cfg_insns[i];
                let end = pc.wrapping_add(d.len as u32);
                i += 1;
                let ends = d.ends_block();
                let next_is_leader = leaders.contains(&end);
                let contiguous = i < cfg_insns.len() && cfg_insns[i].0 == end;
                if ends || next_is_leader || !contiguous {
                    let exits = exits_of(d);
                    let mut succs = Vec::new();
                    for t in exits.targets {
                        if self.in_image(t) {
                            succs.push(t);
                        }
                    }
                    if exits.continues && self.in_image(end) {
                        succs.push(end);
                    }
                    let terminator = if ends {
                        exits.terminator
                    } else {
                        Terminator::FallThrough
                    };
                    let mut h = Fnv1a::new();
                    for (pc, d) in &cfg_insns[first_insn..i] {
                        h.write_bytes(&self.read_bytes(*pc)[..d.len as usize]);
                    }
                    blocks.push(Block {
                        start,
                        end,
                        first_insn,
                        n_insns: i - first_insn,
                        terminator,
                        succs,
                        digest: h.finish(),
                        loop_header: false,
                    });
                    break;
                }
            }
        }

        mark_loop_headers(&mut blocks, roots);

        Cfg {
            insns: cfg_insns,
            blocks,
            violations,
        }
    }
}

/// Compute dominators over the block graph (a virtual root node with an
/// edge to every real root) and flag loop headers: a back edge `u → h`
/// is a loop edge only when `h` dominates `u`.
fn mark_loop_headers(blocks: &mut [Block], roots: &[u32]) {
    let n = blocks.len();
    if n == 0 {
        return;
    }
    let index: BTreeMap<u32, usize> = blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.start, i))
        .collect();
    // Node n is the virtual root.
    let vroot = n;
    let mut succs: Vec<Vec<usize>> = blocks
        .iter()
        .map(|b| {
            b.succs
                .iter()
                .filter_map(|s| index.get(s).copied())
                .collect()
        })
        .collect();
    let mut root_succ: Vec<usize> = roots.iter().filter_map(|r| index.get(r).copied()).collect();
    root_succ.sort_unstable();
    root_succ.dedup();
    succs.push(root_succ);

    // Reverse postorder from the virtual root.
    let mut order = Vec::with_capacity(n + 1);
    let mut seen = vec![false; n + 1];
    let mut stack: Vec<(usize, usize)> = vec![(vroot, 0)];
    seen[vroot] = true;
    while let Some(&mut (u, ref mut next)) = stack.last_mut() {
        if *next < succs[u].len() {
            let v = succs[u][*next];
            *next += 1;
            if !seen[v] {
                seen[v] = true;
                stack.push((v, 0));
            }
        } else {
            order.push(u);
            stack.pop();
        }
    }
    order.reverse();

    let mut rpo_pos = vec![usize::MAX; n + 1];
    for (pos, &b) in order.iter().enumerate() {
        rpo_pos[b] = pos;
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (u, ss) in succs.iter().enumerate() {
        for &v in ss {
            preds[v].push(u);
        }
    }

    // Iterative dominators (Cooper/Harvey/Kennedy).
    let mut idom = vec![usize::MAX; n + 1];
    idom[vroot] = vroot;
    fn intersect(idom: &[usize], rpo_pos: &[usize], mut a: usize, mut b: usize) -> usize {
        while a != b {
            while rpo_pos[a] > rpo_pos[b] {
                a = idom[a];
            }
            while rpo_pos[b] > rpo_pos[a] {
                b = idom[b];
            }
        }
        a
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            if b == vroot {
                continue;
            }
            let mut new_idom = usize::MAX;
            for &p in &preds[b] {
                if idom[p] == usize::MAX {
                    continue;
                }
                new_idom = if new_idom == usize::MAX {
                    p
                } else {
                    intersect(&idom, &rpo_pos, new_idom, p)
                };
            }
            if new_idom != usize::MAX && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }

    // h dominates u ⟺ walking idoms up from u reaches h before vroot.
    let dominates = |idom: &[usize], h: usize, mut u: usize| -> bool {
        loop {
            if u == h {
                return true;
            }
            if u == vroot || u == usize::MAX {
                return false;
            }
            u = idom[u];
        }
    };
    let mut headers = vec![false; n];
    for (u, ss) in succs.iter().enumerate().take(n) {
        if idom[u] == usize::MAX {
            continue; // unreachable from the roots
        }
        for &h in ss {
            if dominates(&idom, h, u) {
                headers[h] = true;
            }
        }
    }
    for (b, is_header) in blocks.iter_mut().zip(headers) {
        b.loop_header = is_header;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuState;
    use crate::fault::{CopFault, ExcInfo, ExceptionKind};
    use crate::ir::{Cond, DecodeError, InsnClass, LinkKind, RetKind};
    use crate::isa::CopEffect;
    use crate::mmu::{Perms, TlbEntry, WalkResult};

    /// Two-byte toy ISA for CFG tests: `[opcode, operand]`, where branch
    /// targets are the operand byte taken as an absolute address (odd
    /// targets are representable on purpose, to test overlap detection).
    struct ToyIsa;

    impl Isa for ToyIsa {
        const NAME: &'static str = "toy";
        const MAX_INSN_BYTES: usize = 2;
        const GPRS: usize = 4;
        type Sys = ();

        fn decode(bytes: &[u8], pc: u32) -> Result<Decoded, DecodeError> {
            if bytes.len() < 2 {
                return Err(DecodeError { pc });
            }
            let target = u32::from(bytes[1]);
            let (op, class) = match bytes[0] {
                0x00 => (Op::Nop, InsnClass::Nop),
                0x01 => (Op::Halt, InsnClass::System),
                0x02 => (Op::Branch { target }, InsnClass::Branch),
                0x03 => (
                    Op::BranchCond {
                        cond: Cond::Eq,
                        target,
                    },
                    InsnClass::Branch,
                ),
                0x04 => (
                    Op::Call {
                        target,
                        ret: pc.wrapping_add(2),
                        link: LinkKind::Register(3),
                    },
                    InsnClass::Branch,
                ),
                0x05 => (Op::Ret(RetKind::Register(3)), InsnClass::Branch),
                0x06 => (Op::BranchReg { rm: 0 }, InsnClass::Branch),
                _ => return Err(DecodeError { pc }),
            };
            Ok(Decoded::new(2, [op], class))
        }

        fn mmu_enabled(_sys: &()) -> bool {
            false
        }

        fn walk<B: crate::bus::Bus>(_sys: &(), _bus: &mut B, va: u32) -> WalkResult {
            Ok(TlbEntry {
                vpage: va >> 12,
                ppage: va >> 12,
                user: Perms::RWX,
                kernel: Perms::RWX,
            })
        }

        fn cop_read(_cpu: &CpuState, _sys: &mut (), _cp: u8, _reg: u8) -> Result<u32, CopFault> {
            Err(CopFault)
        }

        fn cop_write(
            _cpu: &mut CpuState,
            _sys: &mut (),
            _cp: u8,
            _reg: u8,
            _val: u32,
        ) -> Result<CopEffect, CopFault> {
            Err(CopFault)
        }

        fn enter_exception(
            _cpu: &mut CpuState,
            _sys: &mut (),
            _kind: ExceptionKind,
            _info: ExcInfo,
            _return_pc: u32,
        ) -> u32 {
            0
        }

        fn leave_exception(_cpu: &mut CpuState, _sys: &mut ()) -> u32 {
            0
        }

        fn sys_regs(_sys: &(), _visit: &mut dyn FnMut(&'static str, u32)) {}
    }

    fn image(code: &[u8]) -> GuestImage {
        let mut img = GuestImage::new(0);
        img.push_section(0, code.to_vec());
        img
    }

    fn recover(code: &[u8]) -> Cfg {
        Cfg::recover::<ToyIsa>(&image(code), &[0])
    }

    #[test]
    fn straight_line_single_block() {
        let cfg = recover(&[0x00, 0, 0x00, 0, 0x01, 0]);
        assert!(cfg.violations.is_empty(), "{:?}", cfg.violations);
        assert_eq!(cfg.blocks.len(), 1);
        let b = &cfg.blocks[0];
        assert_eq!((b.start, b.end, b.n_insns), (0, 6, 3));
        assert_eq!(b.terminator, Terminator::Halt);
        assert!(b.succs.is_empty());
        assert!(cfg.halt_reachable());
    }

    #[test]
    fn diamond_blocks_and_edges() {
        // 0: beq 6; 2: nop; 4: b 6; 6: halt
        let cfg = recover(&[0x03, 6, 0x00, 0, 0x02, 6, 0x01, 0]);
        assert!(cfg.violations.is_empty(), "{:?}", cfg.violations);
        assert_eq!(cfg.blocks.len(), 3);
        let b0 = cfg.block_at(0).unwrap();
        assert_eq!(b0.terminator, Terminator::BranchCond);
        assert_eq!(b0.succs, vec![6, 2]);
        let b2 = cfg.block_at(2).unwrap();
        assert_eq!((b2.n_insns, b2.terminator), (2, Terminator::Branch));
        assert_eq!(b2.succs, vec![6]);
        assert_eq!(cfg.edge_count(), 3);
        assert_eq!(cfg.loop_headers(), 0);
    }

    #[test]
    fn back_edge_marks_loop_header() {
        // 0: nop; 2: nop; 4: beq 2; 6: halt
        let cfg = recover(&[0x00, 0, 0x00, 0, 0x03, 2, 0x01, 0]);
        assert!(cfg.violations.is_empty(), "{:?}", cfg.violations);
        let b2 = cfg.block_at(2).unwrap();
        assert!(b2.loop_header);
        assert_eq!(cfg.loop_headers(), 1);
    }

    #[test]
    fn call_creates_return_continuation() {
        // 0: call 6; 2: halt; 4: (unreachable) nop; 6: ret
        let cfg = recover(&[0x04, 6, 0x01, 0, 0x00, 0, 0x05, 0]);
        assert!(cfg.violations.is_empty(), "{:?}", cfg.violations);
        let b0 = cfg.block_at(0).unwrap();
        assert_eq!(b0.terminator, Terminator::Call);
        assert_eq!(b0.succs, vec![6, 2]);
        let callee = cfg.block_at(6).unwrap();
        assert_eq!(callee.terminator, Terminator::Ret);
        assert!(callee.has_indirect_exit());
        assert!(cfg.block_at(4).is_none(), "unreachable code not walked");
    }

    #[test]
    fn undecodable_reachable_insn_reported() {
        let cfg = recover(&[0x00, 0, 0xFF, 0, 0x01, 0]);
        assert!(cfg
            .violations
            .contains(&CfgViolation::Undecodable { pc: 2 }));
    }

    #[test]
    fn branch_outside_image_reported() {
        let cfg = recover(&[0x02, 200, 0x01, 0]);
        assert!(cfg.violations.contains(&CfgViolation::TargetOutsideImage {
            from: 0,
            target: 200
        }));
    }

    #[test]
    fn falling_off_image_reported() {
        let cfg = recover(&[0x00, 0, 0x00, 0]);
        assert!(cfg
            .violations
            .contains(&CfgViolation::FallsOffImage { from: 2, next: 4 }));
        assert!(cfg.violations.contains(&CfgViolation::NoReachableHalt));
    }

    #[test]
    fn branch_into_insn_interior_reports_overlap() {
        // 0: beq 5 (lands mid-instruction); 2: nop; 4: nop; 6: halt.
        // Byte 5 is the nop@4 operand (0x00) followed by 0x01, which
        // decodes as a second, overlapping nop.
        let cfg = recover(&[0x03, 5, 0x00, 0, 0x00, 0, 0x01, 0]);
        assert!(cfg
            .violations
            .iter()
            .any(|v| matches!(v, CfgViolation::OverlappingInsns { .. })));
    }

    #[test]
    fn block_digest_tracks_bytes() {
        let a = recover(&[0x00, 0, 0x01, 0]);
        let b = recover(&[0x00, 1, 0x01, 0]);
        assert_ne!(a.blocks[0].digest, b.blocks[0].digest);
    }

    #[test]
    fn block_containing_spans_interior() {
        let cfg = recover(&[0x00, 0, 0x00, 0, 0x01, 0]);
        assert_eq!(cfg.block_containing(3).unwrap().start, 0);
        assert!(cfg.block_containing(6).is_none());
    }
}

//! The machine: CPU + system registers + physical bus.

use crate::cpu::CpuState;
use crate::image::GuestImage;
use crate::isa::Isa;

/// A complete guest machine instance for architecture `I` on bus `B`.
///
/// Engines borrow a machine mutably for the duration of a run; the
/// machine itself is engine-agnostic, so the same loaded image can be
/// executed by different engines for differential testing.
#[derive(Debug)]
pub struct Machine<I: Isa, B> {
    /// Architectural register state.
    pub cpu: CpuState,
    /// ISA-specific system registers.
    pub sys: I::Sys,
    /// Physical memory and devices.
    pub bus: B,
}

impl<I: Isa, B: crate::bus::Bus> Machine<I, B> {
    /// Create a machine with the image loaded and the CPU at its entry
    /// point, in the architectural reset state (kernel mode, MMU off,
    /// IRQs masked).
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit in the bus's RAM.
    pub fn boot(image: &GuestImage, mut bus: B) -> Self {
        image.load_into(bus.ram_mut());
        Machine {
            cpu: CpuState::at_reset(image.entry),
            sys: I::Sys::default(),
            bus,
        }
    }

    /// Reset CPU and system registers without reloading memory.
    pub fn reset_cpu(&mut self, entry: u32) {
        self.cpu = CpuState::at_reset(entry);
        self.sys = I::Sys::default();
    }
}

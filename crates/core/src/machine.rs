//! The machine: CPU + system registers + physical bus.

use crate::cpu::CpuState;
use crate::digest::{Fnv1a, StateDelta, StateDigest};
use crate::image::GuestImage;
use crate::isa::Isa;

/// A complete guest machine instance for architecture `I` on bus `B`.
///
/// Engines borrow a machine mutably for the duration of a run; the
/// machine itself is engine-agnostic, so the same loaded image can be
/// executed by different engines for differential testing.
#[derive(Debug)]
pub struct Machine<I: Isa, B> {
    /// Architectural register state.
    pub cpu: CpuState,
    /// ISA-specific system registers.
    pub sys: I::Sys,
    /// Physical memory and devices.
    pub bus: B,
}

impl<I: Isa, B: crate::bus::Bus> Machine<I, B> {
    /// Create a machine with the image loaded and the CPU at its entry
    /// point, in the architectural reset state (kernel mode, MMU off,
    /// IRQs masked).
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit in the bus's RAM.
    pub fn boot(image: &GuestImage, mut bus: B) -> Self {
        image.load_into(bus.ram_mut());
        Machine {
            cpu: CpuState::at_reset(image.entry),
            sys: I::Sys::default(),
            bus,
        }
    }

    /// Reset CPU and system registers without reloading memory.
    pub fn reset_cpu(&mut self, entry: u32) {
        self.cpu = CpuState::at_reset(entry);
        self.sys = I::Sys::default();
    }

    /// Pack the non-register CPU status into one word for hashing and
    /// diffing: flags in the low nibble layout NZCV, then privilege and
    /// the IRQ mask.
    fn status_word(cpu: &CpuState) -> u32 {
        (cpu.flags.n as u32) << 5
            | (cpu.flags.z as u32) << 4
            | (cpu.flags.c as u32) << 3
            | (cpu.flags.v as u32) << 2
            | (cpu.level.is_kernel() as u32) << 1
            | cpu.irq_enabled as u32
    }

    /// Digest of the architectural state: GPRs, PC, flags, privilege,
    /// IRQ mask, ISA system registers (via [`Isa::sys_regs`]), and all
    /// of RAM.
    ///
    /// Engine-private state (TLBs, decode caches, event counters) and
    /// device-internal state are excluded: the former is legitimately
    /// engine-specific, the latter surfaces through RAM and registers
    /// as soon as the guest reads it.
    pub fn state_digest(&self) -> StateDigest {
        let mut cpu = Fnv1a::new();
        for r in &self.cpu.regs[..I::GPRS] {
            cpu.write_u32(*r);
        }
        cpu.write_u32(self.cpu.pc);
        cpu.write_u32(Self::status_word(&self.cpu));
        let mut sys = Fnv1a::new();
        I::sys_regs(&self.sys, &mut |_, v| sys.write_u32(v));
        let mut ram = Fnv1a::new();
        ram.write_bytes(self.bus.ram());
        StateDigest {
            cpu: cpu.finish(),
            sys: sys.finish(),
            ram: ram.finish(),
        }
    }

    /// Field-by-field architectural diff against another machine of the
    /// same ISA, for reporting after a digest mismatch.
    ///
    /// RAM is compared word-wise and reported as `ram[0x<pa>]` deltas,
    /// capped at [`Machine::MAX_RAM_DELTAS`] entries.
    pub fn state_diff<B2: crate::bus::Bus>(&self, other: &Machine<I, B2>) -> Vec<StateDelta> {
        const REG_NAMES: [&str; crate::cpu::MAX_GPRS] = [
            "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "r12", "r13",
            "r14", "r15",
        ];
        let mut deltas = Vec::new();
        let mut push = |field: String, a: u32, b: u32| {
            if a != b {
                deltas.push(StateDelta { field, a, b });
            }
        };
        for (i, name) in REG_NAMES.iter().enumerate().take(I::GPRS) {
            push(name.to_string(), self.cpu.regs[i], other.cpu.regs[i]);
        }
        push("pc".to_string(), self.cpu.pc, other.cpu.pc);
        push(
            "status(nzcv|kernel|irq)".to_string(),
            Self::status_word(&self.cpu),
            Self::status_word(&other.cpu),
        );
        let mut mine = Vec::new();
        I::sys_regs(&self.sys, &mut |n, v| mine.push((n, v)));
        let mut idx = 0;
        I::sys_regs(&other.sys, &mut |n, v| {
            let (name, a) = mine[idx];
            debug_assert_eq!(name, n, "sys_regs must visit in a fixed order");
            push(format!("sys.{name}"), a, v);
            idx += 1;
        });
        let (ra, rb) = (self.bus.ram(), other.bus.ram());
        push("ram_len".to_string(), ra.len() as u32, rb.len() as u32);
        let mut ram_deltas = 0usize;
        for (i, (ca, cb)) in ra.chunks_exact(4).zip(rb.chunks_exact(4)).enumerate() {
            if ca != cb {
                deltas.push(StateDelta {
                    field: format!("ram[{:#010x}]", i * 4),
                    a: u32::from_le_bytes(ca.try_into().unwrap()),
                    b: u32::from_le_bytes(cb.try_into().unwrap()),
                });
                ram_deltas += 1;
                if ram_deltas >= Self::MAX_RAM_DELTAS {
                    break;
                }
            }
        }
        deltas
    }

    /// Cap on reported `ram[...]` deltas in [`Machine::state_diff`].
    pub const MAX_RAM_DELTAS: usize = 16;
}

//! Virtual-memory abstractions: page permissions, TLB entries, and the
//! permission-check performed on every translated access.

use crate::fault::{AccessKind, FaultKind, MemFault};
use crate::{page_of, PAGE_SHIFT};

/// Permission bits for one privilege level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Perms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Perms {
    /// Read/write/execute.
    pub const RWX: Perms = Perms {
        r: true,
        w: true,
        x: true,
    };
    /// Read/write, no execute.
    pub const RW: Perms = Perms {
        r: true,
        w: true,
        x: false,
    };
    /// Read-only.
    pub const R: Perms = Perms {
        r: true,
        w: false,
        x: false,
    };
    /// Read/execute.
    pub const RX: Perms = Perms {
        r: true,
        w: false,
        x: true,
    };
    /// No access.
    pub const NONE: Perms = Perms {
        r: false,
        w: false,
        x: false,
    };

    /// True if `access` is allowed.
    #[inline]
    pub fn allows(self, access: AccessKind) -> bool {
        match access {
            AccessKind::Read => self.r,
            AccessKind::Write => self.w,
            AccessKind::Execute => self.x,
        }
    }
}

/// A translation for one 4 KB virtual page, as cached in engine TLBs.
///
/// Walkers that resolve larger mappings (armlet 1 MB sections) fragment
/// them into page-granule entries at fill time, as real simulators'
/// software TLBs do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number.
    pub vpage: u32,
    /// Physical page number.
    pub ppage: u32,
    /// Permissions when executing unprivileged.
    pub user: Perms,
    /// Permissions when executing privileged.
    pub kernel: Perms,
}

impl TlbEntry {
    /// Translate an address within this page.
    #[inline]
    pub fn translate(&self, va: u32) -> u32 {
        debug_assert_eq!(page_of(va), self.vpage);
        (self.ppage << PAGE_SHIFT) | (va & ((1 << PAGE_SHIFT) - 1))
    }

    /// Effective permissions for an access at `privileged` level; a
    /// `nonpriv` access (ARM `ldrt`/`strt`) is checked against user
    /// permissions regardless of the current level.
    #[inline]
    pub fn perms(&self, privileged: bool, nonpriv: bool) -> Perms {
        if privileged && !nonpriv {
            self.kernel
        } else {
            self.user
        }
    }

    /// Check an access, producing the architectural fault on violation.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] with [`FaultKind::Permission`] when the
    /// access is not permitted at the effective privilege.
    #[inline]
    pub fn check(
        &self,
        va: u32,
        access: AccessKind,
        privileged: bool,
        nonpriv: bool,
    ) -> Result<u32, MemFault> {
        if self.perms(privileged, nonpriv).allows(access) {
            Ok(self.translate(va))
        } else {
            Err(MemFault {
                addr: va,
                access,
                kind: FaultKind::Permission,
            })
        }
    }
}

/// Outcome of a page-table walk.
pub type WalkResult = Result<TlbEntry, MemFault>;

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> TlbEntry {
        TlbEntry {
            vpage: 0x10,
            ppage: 0x80,
            user: Perms::R,
            kernel: Perms::RWX,
        }
    }

    #[test]
    fn translate_offsets() {
        let e = entry();
        assert_eq!(e.translate(0x10_234), 0x80_234);
        assert_eq!(e.translate(0x10_000), 0x80_000);
        assert_eq!(e.translate(0x10_fff), 0x80_fff);
    }

    #[test]
    fn perms_by_level() {
        let e = entry();
        assert!(e.check(0x10_000, AccessKind::Write, true, false).is_ok());
        let err = e
            .check(0x10_000, AccessKind::Write, false, false)
            .unwrap_err();
        assert_eq!(err.kind, FaultKind::Permission);
        assert_eq!(err.addr, 0x10_000);
        // Non-privileged override: kernel-mode ldrt checked as user.
        assert!(e.check(0x10_000, AccessKind::Read, true, true).is_ok());
        assert!(e.check(0x10_000, AccessKind::Write, true, true).is_err());
    }

    #[test]
    fn perm_constants() {
        assert!(Perms::RWX.allows(AccessKind::Execute));
        assert!(!Perms::RW.allows(AccessKind::Execute));
        assert!(!Perms::R.allows(AccessKind::Write));
        assert!(!Perms::NONE.allows(AccessKind::Read));
        assert!(Perms::RX.allows(AccessKind::Execute));
    }
}

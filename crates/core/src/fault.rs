//! Memory faults, exceptions, and the information carried into handlers.

use std::fmt;

/// The kind of memory access being attempted when a fault occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store.
    Write,
    /// An instruction fetch.
    Execute,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Execute => "execute",
        };
        f.write_str(s)
    }
}

/// Why a memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// No valid translation for the virtual address.
    Unmapped,
    /// A valid translation exists but the access violates its permissions.
    Permission,
    /// The address is not naturally aligned for the access size.
    Unaligned,
    /// The physical address does not decode to RAM or any device.
    BusError,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::Unmapped => "unmapped",
            FaultKind::Permission => "permission",
            FaultKind::Unaligned => "unaligned",
            FaultKind::BusError => "bus error",
        };
        f.write_str(s)
    }
}

/// A faulting memory access: the architectural payload of data and
/// prefetch aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The virtual address that faulted.
    pub addr: u32,
    /// What kind of access was attempted.
    pub access: AccessKind,
    /// Why it faulted.
    pub kind: FaultKind,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fault on {} at {:#010x}",
            self.kind, self.access, self.addr
        )
    }
}

impl std::error::Error for MemFault {}

/// Architectural exception classes recognised by both guest ISAs.
///
/// Every engine routes these through [`crate::isa::Isa::enter_exception`],
/// which banks state and returns the handler vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionKind {
    /// Undefined / illegal instruction.
    Undef,
    /// Software-requested system call (`svc` / `int`).
    Syscall,
    /// Faulting data access (load or store).
    DataAbort,
    /// Faulting instruction fetch.
    PrefetchAbort,
    /// Asynchronous external interrupt.
    Irq,
}

impl ExceptionKind {
    /// All exception kinds, in vector-table order.
    pub const ALL: [ExceptionKind; 5] = [
        ExceptionKind::Undef,
        ExceptionKind::Syscall,
        ExceptionKind::DataAbort,
        ExceptionKind::PrefetchAbort,
        ExceptionKind::Irq,
    ];

    /// Index of this exception in the vector table used by both ISAs.
    pub fn vector_index(self) -> usize {
        match self {
            ExceptionKind::Undef => 0,
            ExceptionKind::Syscall => 1,
            ExceptionKind::DataAbort => 2,
            ExceptionKind::PrefetchAbort => 3,
            ExceptionKind::Irq => 4,
        }
    }
}

impl fmt::Display for ExceptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExceptionKind::Undef => "undefined instruction",
            ExceptionKind::Syscall => "system call",
            ExceptionKind::DataAbort => "data abort",
            ExceptionKind::PrefetchAbort => "prefetch abort",
            ExceptionKind::Irq => "irq",
        };
        f.write_str(s)
    }
}

/// Side information recorded by the hardware when an exception is taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExcInfo {
    /// Faulting address for aborts; 0 otherwise.
    pub fault_addr: u32,
    /// Immediate operand of a `svc`-style instruction; 0 otherwise.
    pub syscall_no: u16,
}

impl ExcInfo {
    /// Info payload for a memory fault.
    pub fn from_fault(fault: MemFault) -> Self {
        ExcInfo {
            fault_addr: fault.addr,
            syscall_no: 0,
        }
    }

    /// Info payload for a syscall.
    pub fn syscall(no: u16) -> Self {
        ExcInfo {
            fault_addr: 0,
            syscall_no: no,
        }
    }
}

/// Failure of a coprocessor access: always surfaces as an undefined
/// instruction exception, mirroring ARM and x86 behaviour for accesses to
/// nonexistent coprocessors / control registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopFault;

impl fmt::Display for CopFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid coprocessor access")
    }
}

impl std::error::Error for CopFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let f = MemFault {
            addr: 0x8000_0000,
            access: AccessKind::Write,
            kind: FaultKind::Unmapped,
        };
        assert_eq!(f.to_string(), "unmapped fault on write at 0x80000000");
        assert_eq!(ExceptionKind::Irq.to_string(), "irq");
    }

    #[test]
    fn vector_indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for k in ExceptionKind::ALL {
            let i = k.vector_index();
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn exc_info_constructors() {
        let f = MemFault {
            addr: 0x1234,
            access: AccessKind::Read,
            kind: FaultKind::Permission,
        };
        assert_eq!(ExcInfo::from_fault(f).fault_addr, 0x1234);
        assert_eq!(ExcInfo::syscall(7).syscall_no, 7);
    }
}

//! ALU semantics with ARM-style flag behaviour, implemented once and used
//! by every engine so differential tests cannot diverge on arithmetic.

use crate::cpu::Flags;
use crate::ir::{AluOp, Cond};

/// Result of an ALU evaluation: value plus the flags that *would* be set
/// (the caller decides whether to commit them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluResult {
    /// The computed value.
    pub value: u32,
    /// Flags as they would be after a flag-setting form.
    pub flags: Flags,
}

#[inline]
fn nz(value: u32, prev: Flags) -> Flags {
    Flags {
        n: (value as i32) < 0,
        z: value == 0,
        c: prev.c,
        v: prev.v,
    }
}

#[inline]
fn add_with(a: u32, b: u32, carry_in: bool) -> AluResult {
    let (s1, c1) = a.overflowing_add(b);
    let (value, c2) = s1.overflowing_add(carry_in as u32);
    let c = c1 || c2;
    let v = ((a ^ value) & (b ^ value)) >> 31 != 0;
    AluResult {
        value,
        flags: Flags {
            n: (value as i32) < 0,
            z: value == 0,
            c,
            v,
        },
    }
}

#[inline]
fn sub_with(a: u32, b: u32, carry_in: bool) -> AluResult {
    // ARM convention: sub is add of !b with carry; C set means "no borrow".
    add_with(a, !b, carry_in)
}

/// Evaluate `a <op> b` under the incoming flags (`Adc`/`Sbc` consume C).
///
/// Shift amounts use only the low five bits of `b`; a shift amount of
/// zero leaves C unchanged, and logical/move ops never touch C or V,
/// mirroring the simplified shifter model described in `DESIGN.md`.
#[inline]
pub fn eval(op: AluOp, a: u32, b: u32, flags: Flags) -> AluResult {
    match op {
        AluOp::Add => add_with(a, b, false),
        AluOp::Adc => add_with(a, b, flags.c),
        AluOp::Sub => sub_with(a, b, true),
        AluOp::Sbc => sub_with(a, b, flags.c),
        AluOp::Rsb => sub_with(b, a, true),
        AluOp::And => AluResult {
            value: a & b,
            flags: nz(a & b, flags),
        },
        AluOp::Orr => AluResult {
            value: a | b,
            flags: nz(a | b, flags),
        },
        AluOp::Eor => AluResult {
            value: a ^ b,
            flags: nz(a ^ b, flags),
        },
        AluOp::Bic => AluResult {
            value: a & !b,
            flags: nz(a & !b, flags),
        },
        AluOp::Mov => AluResult {
            value: b,
            flags: nz(b, flags),
        },
        AluOp::Mvn => AluResult {
            value: !b,
            flags: nz(!b, flags),
        },
        AluOp::Mul => {
            let value = a.wrapping_mul(b);
            AluResult {
                value,
                flags: nz(value, flags),
            }
        }
        AluOp::Lsl => {
            let amt = b & 31;
            let value = a << amt;
            let mut f = nz(value, flags);
            if amt != 0 {
                f.c = (a >> (32 - amt)) & 1 != 0;
            }
            AluResult { value, flags: f }
        }
        AluOp::Lsr => {
            let amt = b & 31;
            let value = a >> amt;
            let mut f = nz(value, flags);
            if amt != 0 {
                f.c = (a >> (amt - 1)) & 1 != 0;
            }
            AluResult { value, flags: f }
        }
        AluOp::Asr => {
            let amt = b & 31;
            let value = ((a as i32) >> amt) as u32;
            let mut f = nz(value, flags);
            if amt != 0 {
                f.c = (a >> (amt - 1)) & 1 != 0;
            }
            AluResult { value, flags: f }
        }
        AluOp::Ror => {
            let amt = b & 31;
            let value = a.rotate_right(amt);
            let mut f = nz(value, flags);
            if amt != 0 {
                f.c = (value as i32) < 0;
            }
            AluResult { value, flags: f }
        }
    }
}

/// Evaluate a comparison (`Cmp` = subtract, `Tst` = and) returning only
/// the flags.
#[inline]
pub fn compare(a: u32, b: u32, is_tst: bool, flags: Flags) -> Flags {
    if is_tst {
        eval(AluOp::And, a, b, flags).flags
    } else {
        eval(AluOp::Sub, a, b, flags).flags
    }
}

/// Evaluate a branch condition against the flags.
#[inline]
pub fn cond_holds(cond: Cond, f: Flags) -> bool {
    match cond {
        Cond::Eq => f.z,
        Cond::Ne => !f.z,
        Cond::Cs => f.c,
        Cond::Cc => !f.c,
        Cond::Mi => f.n,
        Cond::Pl => !f.n,
        Cond::Vs => f.v,
        Cond::Vc => !f.v,
        Cond::Hi => f.c && !f.z,
        Cond::Ls => !f.c || f.z,
        Cond::Ge => f.n == f.v,
        Cond::Lt => f.n != f.v,
        Cond::Gt => !f.z && f.n == f.v,
        Cond::Le => f.z || f.n != f.v,
        Cond::Al => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F0: Flags = Flags {
        n: false,
        z: false,
        c: false,
        v: false,
    };

    #[test]
    fn add_flags() {
        let r = eval(AluOp::Add, 1, 2, F0);
        assert_eq!(r.value, 3);
        assert!(!r.flags.c && !r.flags.v && !r.flags.z && !r.flags.n);

        let r = eval(AluOp::Add, u32::MAX, 1, F0);
        assert_eq!(r.value, 0);
        assert!(r.flags.c && r.flags.z && !r.flags.v);

        let r = eval(AluOp::Add, i32::MAX as u32, 1, F0);
        assert_eq!(r.value, 0x8000_0000);
        assert!(r.flags.v && r.flags.n && !r.flags.c);
    }

    #[test]
    fn sub_carry_is_no_borrow() {
        let r = eval(AluOp::Sub, 5, 3, F0);
        assert_eq!(r.value, 2);
        assert!(r.flags.c, "no borrow => C set");

        let r = eval(AluOp::Sub, 3, 5, F0);
        assert_eq!(r.value, 3u32.wrapping_sub(5));
        assert!(!r.flags.c, "borrow => C clear");
        assert!(r.flags.n);
    }

    #[test]
    fn adc_sbc_consume_carry() {
        let c1 = Flags { c: true, ..F0 };
        assert_eq!(eval(AluOp::Adc, 1, 1, c1).value, 3);
        assert_eq!(eval(AluOp::Adc, 1, 1, F0).value, 2);
        // SBC with C set behaves like SUB.
        assert_eq!(eval(AluOp::Sbc, 5, 3, c1).value, 2);
        // SBC with C clear subtracts one more.
        assert_eq!(eval(AluOp::Sbc, 5, 3, F0).value, 1);
    }

    #[test]
    fn rsb_reverses() {
        assert_eq!(eval(AluOp::Rsb, 3, 10, F0).value, 7);
    }

    #[test]
    fn logical_preserve_cv() {
        let f = Flags {
            c: true,
            v: true,
            ..F0
        };
        let r = eval(AluOp::And, 0xF0, 0x0F, f);
        assert_eq!(r.value, 0);
        assert!(r.flags.z && r.flags.c && r.flags.v);
        let r = eval(AluOp::Mov, 0, 0x8000_0000, f);
        assert!(r.flags.n && r.flags.c && r.flags.v);
    }

    #[test]
    fn shifts() {
        let r = eval(AluOp::Lsl, 0x8000_0001, 1, F0);
        assert_eq!(r.value, 2);
        assert!(r.flags.c, "top bit shifted out");

        let r = eval(AluOp::Lsr, 0x3, 1, F0);
        assert_eq!(r.value, 1);
        assert!(r.flags.c, "low bit shifted out");

        let r = eval(AluOp::Asr, 0x8000_0000, 4, F0);
        assert_eq!(r.value, 0xF800_0000);

        let r = eval(AluOp::Ror, 0x1, 1, F0);
        assert_eq!(r.value, 0x8000_0000);
        assert!(r.flags.c);

        // Amount 0 leaves C untouched.
        let f = Flags { c: true, ..F0 };
        let r = eval(AluOp::Lsl, 7, 0, f);
        assert_eq!(r.value, 7);
        assert!(r.flags.c);
    }

    #[test]
    fn mul_low_bits() {
        let r = eval(AluOp::Mul, 0x1_0001, 0x1_0001, F0);
        assert_eq!(r.value, 0x1_0001u32.wrapping_mul(0x1_0001));
    }

    #[test]
    fn compare_forms() {
        let f = compare(3, 3, false, F0);
        assert!(f.z && f.c);
        let f = compare(0b1010, 0b0101, true, F0);
        assert!(f.z);
    }

    #[test]
    fn conditions() {
        let f = compare(3, 3, false, F0); // equal
        assert!(cond_holds(Cond::Eq, f));
        assert!(cond_holds(Cond::Ge, f));
        assert!(cond_holds(Cond::Le, f));
        assert!(cond_holds(Cond::Cs, f));
        assert!(!cond_holds(Cond::Ne, f));
        assert!(!cond_holds(Cond::Lt, f));

        let f = compare(2, 5, false, F0); // 2 < 5
        assert!(cond_holds(Cond::Lt, f));
        assert!(cond_holds(Cond::Cc, f), "unsigned below => borrow");
        assert!(cond_holds(Cond::Ls, f));
        assert!(!cond_holds(Cond::Hi, f));

        let f = compare(0x8000_0000, 1, false, F0); // i32::MIN cmp 1
        assert!(cond_holds(Cond::Vs, f), "i32::MIN - 1 overflows");
        assert!(
            cond_holds(Cond::Lt, f),
            "signed: i32::MIN < 1 despite overflow (N != V)"
        );

        assert!(cond_holds(Cond::Al, F0));
    }
}

//! Property tests for the shared ALU semantics.

use proptest::prelude::*;
use simbench_core::alu::{compare, cond_holds, eval};
use simbench_core::cpu::Flags;
use simbench_core::ir::{AluOp, Cond};

fn flags_strategy() -> impl Strategy<Value = Flags> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(n, z, c, v)| Flags {
        n,
        z,
        c,
        v,
    })
}

proptest! {
    #[test]
    fn add_matches_wrapping(a: u32, b: u32, f in flags_strategy()) {
        prop_assert_eq!(eval(AluOp::Add, a, b, f).value, a.wrapping_add(b));
    }

    #[test]
    fn sub_matches_wrapping(a: u32, b: u32, f in flags_strategy()) {
        prop_assert_eq!(eval(AluOp::Sub, a, b, f).value, a.wrapping_sub(b));
        prop_assert_eq!(eval(AluOp::Rsb, a, b, f).value, b.wrapping_sub(a));
    }

    #[test]
    fn adc_sbc_chain_is_64bit_arithmetic(a: u64, b: u64) {
        // Model 64-bit addition via two 32-bit adds with carry chaining.
        let f0 = Flags::default();
        let lo = eval(AluOp::Add, a as u32, b as u32, f0);
        let hi = eval(AluOp::Adc, (a >> 32) as u32, (b >> 32) as u32, lo.flags);
        let got = ((hi.value as u64) << 32) | lo.value as u64;
        prop_assert_eq!(got, a.wrapping_add(b));
    }

    #[test]
    fn signed_comparisons_agree_with_rust(a: u32, b: u32) {
        let f = compare(a, b, false, Flags::default());
        prop_assert_eq!(cond_holds(Cond::Eq, f), a == b);
        prop_assert_eq!(cond_holds(Cond::Ne, f), a != b);
        prop_assert_eq!(cond_holds(Cond::Lt, f), (a as i32) < (b as i32));
        prop_assert_eq!(cond_holds(Cond::Ge, f), (a as i32) >= (b as i32));
        prop_assert_eq!(cond_holds(Cond::Gt, f), (a as i32) > (b as i32));
        prop_assert_eq!(cond_holds(Cond::Le, f), (a as i32) <= (b as i32));
        prop_assert_eq!(cond_holds(Cond::Cc, f), a < b);
        prop_assert_eq!(cond_holds(Cond::Cs, f), a >= b);
        prop_assert_eq!(cond_holds(Cond::Hi, f), a > b);
        prop_assert_eq!(cond_holds(Cond::Ls, f), a <= b);
    }

    #[test]
    fn condition_pairs_are_complements(a: u32, b: u32, f in flags_strategy()) {
        let f = compare(a, b, false, f);
        for (yes, no) in [
            (Cond::Eq, Cond::Ne), (Cond::Cs, Cond::Cc), (Cond::Mi, Cond::Pl),
            (Cond::Vs, Cond::Vc), (Cond::Hi, Cond::Ls), (Cond::Ge, Cond::Lt),
            (Cond::Gt, Cond::Le),
        ] {
            prop_assert_ne!(cond_holds(yes, f), cond_holds(no, f));
        }
        prop_assert!(cond_holds(Cond::Al, f));
    }

    #[test]
    fn shifts_match_rust(a: u32, amt in 0u32..32, f in flags_strategy()) {
        prop_assert_eq!(eval(AluOp::Lsl, a, amt, f).value, a << amt);
        prop_assert_eq!(eval(AluOp::Lsr, a, amt, f).value, a >> amt);
        prop_assert_eq!(eval(AluOp::Asr, a, amt, f).value, ((a as i32) >> amt) as u32);
        prop_assert_eq!(eval(AluOp::Ror, a, amt, f).value, a.rotate_right(amt));
    }

    #[test]
    fn logical_identities(a: u32, b: u32, f in flags_strategy()) {
        prop_assert_eq!(eval(AluOp::And, a, b, f).value, a & b);
        prop_assert_eq!(eval(AluOp::Orr, a, b, f).value, a | b);
        prop_assert_eq!(eval(AluOp::Eor, a, b, f).value, a ^ b);
        prop_assert_eq!(eval(AluOp::Bic, a, b, f).value, a & !b);
        prop_assert_eq!(eval(AluOp::Mvn, a, b, f).value, !b);
        prop_assert_eq!(eval(AluOp::Mul, a, b, f).value, a.wrapping_mul(b));
    }

    #[test]
    fn nz_flags_describe_result(op in prop::sample::select(&AluOp::ALL[..]), a: u32, b: u32) {
        let r = eval(op, a, b, Flags::default());
        prop_assert_eq!(r.flags.z, r.value == 0, "Z mirrors zero for {:?}", op);
        prop_assert_eq!(r.flags.n, (r.value as i32) < 0, "N mirrors sign for {:?}", op);
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this workspace ships
//! an API-compatible subset sufficient for the bench targets in
//! `crates/bench`: [`Criterion::benchmark_group`], group knobs
//! (`sample_size`, `warm_up_time`, `measurement_time`),
//! [`BenchmarkGroup::bench_function`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is honest but simple: after a warm-up window, the closure
//! runs batches until the measurement window elapses, and the mean,
//! minimum, and maximum per-iteration times are printed in a criterion-
//! like one-line format. There is no statistical regression testing —
//! that now lives in `simbench-campaign`, which persists results and
//! compares against stored baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
        }
    }
}

/// A group of benchmarks sharing timing knobs.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples (kept for API compatibility; the shim sizes
    /// batches from the measurement window instead).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up window before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Time one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: Vec::new(),
        };
        f(&mut b);
        let n = b.samples.len().max(1) as f64;
        let mean = b.samples.iter().sum::<f64>() / n;
        let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = b.samples.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{}/{:<50} time: [{} {} {}]",
            self.name,
            id,
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Handed to the benchmark closure; times `iter` bodies.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure the routine: warm up, then record per-iteration seconds
    /// until the measurement window closes.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
        if self.samples.is_empty() {
            // Routine slower than the window: record the one mandatory run.
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle bench functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; accept and
            // ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this workspace ships a
//! small API-compatible subset of proptest sufficient for the property
//! tests in this repository: the [`proptest!`] macro (both `pat in
//! strategy` and `ident: Type` argument forms), [`Strategy`] with
//! `prop_map`, [`any`], range strategies, tuple strategies, weighted-free
//! [`prop_oneof!`], `prop::collection::vec`, `prop::sample::select`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * deterministic: case `i` of test `t` is seeded from `hash(t) + i`,
//!   so failures reproduce exactly across runs and machines;
//! * greedy shrinking instead of value trees: a failing case is
//!   minimized by re-testing strategy-proposed simplifications —
//!   integers binary-search toward their range start (or zero),
//!   vectors try prefix truncations and element-wise shrinks, tuples
//!   shrink one component at a time — and the near-minimal input is
//!   reported before the original assertion is re-raised on it;
//! * case count defaults to 256 and honours `PROPTEST_CASES`.

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64).
// ---------------------------------------------------------------------------

/// The PRNG handed to strategies. SplitMix64: tiny, fast, well mixed.
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test name and case index.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift bounded rejection is overkill for tests; a
        // simple widening multiply keeps bias below 2^-64.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy.
// ---------------------------------------------------------------------------

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing value, simplest first.
    /// Every candidate must be strictly "smaller" than `value` so the
    /// shrink loop terminates. The default — no candidates — is correct
    /// for strategies whose values have no useful order (mapped,
    /// one-of, sampled).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Shrink candidates for an integer failing at `cur`, moving toward
/// `lo`: the floor itself, the midpoint (repeated selection of which
/// binary-searches the boundary), and the predecessor.
fn int_candidates(lo: i128, cur: i128) -> Vec<i128> {
    let mut out = Vec::new();
    for c in [lo, lo + (cur - lo) / 2, cur - 1] {
        if c < cur && c >= lo && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_candidates(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                // Saturates only on the full u64/i64 domain, which the
                // tests never use as an inclusive range.
                (lo + rng.below(span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_candidates(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Candidate simplifications of a failing value (see
    /// [`Strategy::shrink`]). Unconstrained integers shrink toward
    /// zero, `true` shrinks to `false`.
    fn shrink(value: &Self) -> Vec<Self> {
        let _ = value;
        Vec::new()
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(value: &$t) -> Vec<$t> {
                let cur = *value as i128;
                let mut seen: Vec<i128> = Vec::new();
                for c in [0, cur / 2, cur - cur.signum()] {
                    if c != cur && !seen.contains(&c) {
                        seen.push(c);
                    }
                }
                seen.into_iter().map(|c| c as $t).collect()
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy for any value of `T`, returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink(value)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, leftmost first.
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&value.$i) {
                        let mut next = value.clone();
                        next.$i = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// One boxed generator arm of a [`Union`].
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice between boxed arms, built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// From explicit arms.
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `vec(elem, len_range)` — vectors of strategy-generated elements.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Prefix truncations first (length is usually the dominant
            // cost), binary-searching between the minimum legal length
            // and the current one.
            let n = value.len();
            let min = self.len.start;
            if n > min {
                let mut lens: Vec<usize> = Vec::new();
                for l in [min, min + (n - min) / 2, n - 1] {
                    if l < n && !lens.contains(&l) {
                        lens.push(l);
                    }
                }
                out.extend(lens.into_iter().map(|l| value[..l].to_vec()));
            }
            // Then element-wise shrinks, one position at a time.
            for i in 0..n {
                for cand in self.elem.shrink(&value[i]) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set.
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// `select(slice)` — one of the given values.
    pub fn select<T: Clone>(items: &[T]) -> Select<T> {
        assert!(!items.is_empty(), "select of nothing");
        Select {
            items: items.to_vec(),
        }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner and macros.
// ---------------------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

thread_local! {
    /// Set while shrink candidates are being probed, so their expected
    /// panics don't spam stderr.
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

/// Install (once per process) a panic hook that forwards to the
/// previous hook unless the current thread is probing shrink
/// candidates.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Run the body on one input, converting a panic into `Err`.
fn probe<V>(body: &impl Fn(V), value: V) -> Result<(), Box<dyn std::any::Any + Send>> {
    catch_unwind(AssertUnwindSafe(|| body(value)))
}

/// RAII scope for [`QUIET`]: clears the flag on drop, so a panic that
/// escapes the scope (e.g. from a `Strategy::shrink` implementation)
/// cannot leave the thread's panic messages suppressed forever.
struct QuietGuard;

impl QuietGuard {
    fn new() -> QuietGuard {
        QUIET.with(|q| q.set(true));
        QuietGuard
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        QUIET.with(|q| q.set(false));
    }
}

/// Greedily minimize a failing input: keep taking the first
/// strategy-proposed simplification that still fails until none does
/// (or a step cap is hit — shrinking must never hang a test run).
fn shrink_failing<S: Strategy>(
    strategy: &S,
    body: &impl Fn(S::Value),
    failing: S::Value,
) -> (S::Value, usize)
where
    S::Value: Clone,
{
    let mut current = failing;
    let mut steps = 0;
    let _quiet = QuietGuard::new();
    'outer: while steps < 10_000 {
        for candidate in strategy.shrink(&current) {
            if probe(body, candidate.clone()).is_err() {
                current = candidate;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, steps)
}

/// Drive `body` over `config.cases` generated inputs, shrinking the
/// first failure to a near-minimal input before re-raising it. Called
/// by the code that [`proptest!`] expands to; not part of the public
/// proptest API surface.
pub fn run_cases<S: Strategy>(
    test_name: &str,
    config: &ProptestConfig,
    strategy: &S,
    body: impl Fn(S::Value),
) where
    S::Value: Clone + std::fmt::Debug,
{
    install_quiet_hook();
    for case in 0..config.cases as u64 {
        let mut rng = TestRng::for_case(test_name, case);
        let value = strategy.generate(&mut rng);
        let failed = {
            // The first probe of a case is quiet too: if it fails, the
            // minimal input is re-run below with full reporting.
            let _quiet = QuietGuard::new();
            probe(&body, value.clone()).is_err()
        };
        if failed {
            let (minimal, steps) = shrink_failing(strategy, &body, value);
            eprintln!(
                "proptest: {test_name} case {case} failed; \
                 minimal failing input after {steps} shrink step(s): {minimal:?}"
            );
            match probe(&body, minimal.clone()) {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(()) => panic!(
                    "proptest: {test_name}: shrunk input {minimal:?} stopped failing \
                     (non-deterministic test body?)"
                ),
            }
        }
    }
}

/// Assert inside a property body (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$({
            let strategy = $arm;
            Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&strategy, rng))
                as Box<dyn Fn(&mut $crate::TestRng) -> _>
        }),+])
    };
}

/// The property-test macro: wraps each `fn` in a `#[test]` runner that
/// generates its arguments. Supports `name in strategy` and `name: Type`
/// argument forms and an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    { ($cfg:expr) } => {};
    { ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)* } => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_args! { @munch ($cfg) $name $body [] [] $($args)* }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_args {
    // All arguments consumed: run.
    (@munch ($cfg:expr) $name:ident $body:block [$(($pat:pat))*] [$(($strat:expr))*]) => {{
        let config = $cfg;
        let strategy = ($($strat,)*);
        $crate::run_cases(stringify!($name), &config, &strategy, |($($pat,)*)| $body);
    }};
    // `ident: Type` form (must precede the `pat in expr` arm: a bare
    // ident also parses as a pattern).
    (@munch ($cfg:expr) $name:ident $body:block [$($pats:tt)*] [$($strats:tt)*]
     $arg:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_args! { @munch ($cfg) $name $body
            [$($pats)* ($arg)] [$($strats)* ($crate::any::<$ty>())] $($rest)* }
    };
    (@munch ($cfg:expr) $name:ident $body:block [$($pats:tt)*] [$($strats:tt)*]
     $arg:ident : $ty:ty) => {
        $crate::__proptest_args! { @munch ($cfg) $name $body
            [$($pats)* ($arg)] [$($strats)* ($crate::any::<$ty>())] }
    };
    // `pat in strategy` form.
    (@munch ($cfg:expr) $name:ident $body:block [$($pats:tt)*] [$($strats:tt)*]
     $arg:pat in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_args! { @munch ($cfg) $name $body
            [$($pats)* ($arg)] [$($strats)* ($strat)] $($rest)* }
    };
    (@munch ($cfg:expr) $name:ident $body:block [$($pats:tt)*] [$($strats:tt)*]
     $arg:pat in $strat:expr) => {
        $crate::__proptest_args! { @munch ($cfg) $name $body
            [$($pats)* ($arg)] [$($strats)* ($strat)] }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{install_quiet_hook, shrink_failing, Arbitrary, TestRng};

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u64> = (0..4)
            .map(|i| TestRng::for_case("t", i).next_u64())
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|i| TestRng::for_case("t", i).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u8..9), &mut rng);
            assert!((5..9).contains(&v));
            let w = Strategy::generate(&(-3i32..=3), &mut rng);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn int_shrink_binary_searches_to_the_boundary() {
        install_quiet_hook();
        let strategy = (10u32..1000,);
        let body = |(v,): (u32,)| assert!(v < 50, "boom at {v}");
        let (minimal, steps) = shrink_failing(&strategy, &body, (999,));
        assert_eq!(minimal, (50,), "minimal failing input is the boundary");
        assert!(steps > 0);
    }

    #[test]
    fn vec_shrink_truncates_prefix_and_zeroes_elements() {
        install_quiet_hook();
        let strategy = (prop::collection::vec(0u32..10, 1..20),);
        let body = |(v,): (Vec<u32>,)| assert!(v.len() < 3);
        let (minimal, _) = shrink_failing(&strategy, &body, (vec![5, 9, 1, 7, 3],));
        assert_eq!(
            minimal,
            (vec![0, 0, 0],),
            "shortest failing vec, elements zeroed"
        );
    }

    #[test]
    fn shrink_preserves_the_failure_condition() {
        install_quiet_hook();
        // Failure depends on an element value, not on length: shrinking
        // must keep a 7 alive while minimizing everything else.
        let strategy = (prop::collection::vec(0u32..10, 1..20),);
        let body = |(v,): (Vec<u32>,)| assert!(!v.contains(&7));
        let (minimal, _) = shrink_failing(&strategy, &body, (vec![3, 7, 9, 7, 2],));
        assert!(minimal.0.contains(&7));
        assert!(minimal.0.len() <= 2, "near-minimal: {:?}", minimal.0);
    }

    #[test]
    fn value_with_no_failing_candidates_is_returned_unchanged() {
        install_quiet_hook();
        let strategy = (Just(42u32),);
        let body = |(_v,): (u32,)| panic!("always fails");
        let (minimal, steps) = shrink_failing(&strategy, &body, (42,));
        assert_eq!(minimal, (42,));
        assert_eq!(steps, 0);
    }

    #[test]
    fn arbitrary_ints_shrink_toward_zero() {
        assert_eq!(<i32 as Arbitrary>::shrink(&-8), vec![0, -4, -7]);
        assert_eq!(<u8 as Arbitrary>::shrink(&1), vec![0]);
        assert!(<u8 as Arbitrary>::shrink(&0).is_empty());
        assert_eq!(<bool as Arbitrary>::shrink(&true), vec![false]);
        assert!(<bool as Arbitrary>::shrink(&false).is_empty());
    }

    #[test]
    fn range_shrink_stays_in_range() {
        let strategy = 5u8..9;
        for v in 5u8..9 {
            for c in strategy.shrink(&v) {
                assert!((5..9).contains(&c) && c < v, "{v} -> {c}");
            }
        }
        assert!(
            strategy.shrink(&5).is_empty(),
            "the floor has no candidates"
        );
        let inclusive = -3i32..=3;
        assert_eq!(inclusive.shrink(&3), vec![-3, 0, 2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_mixed_args(x in 1u32..10, flag: bool, v in prop::collection::vec(0u8..4, 1..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 4));
            let _ = flag;
        }

        #[test]
        fn macro_oneof_and_map(v in prop_oneof![
            (0u32..10).prop_map(|x| x * 2),
            (100u32..110).prop_map(|x| x + 1),
        ]) {
            prop_assert!(v % 2 == 0 && v < 20 || (101u32..111).contains(&v));
        }
    }
}

//! Fig 6 bench: per-category kernels across the version profiles whose
//! transitions the paper explains (optimizer bump, guard creep, eager
//! exception sync, data-fault fast path).

use criterion::{criterion_group, criterion_main, Criterion};
use simbench_bench::{bench_config, CATEGORY_REPS};
use simbench_dbt::VersionProfile;
use simbench_harness::{run_suite_bench, EngineKind, Guest};
use simbench_suite::Benchmark;

fn fig6(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    let versions = ["v1.7.0", "v2.0.0", "v2.3.0", "v2.5.0-rc2"];
    let benches: Vec<Benchmark> = CATEGORY_REPS
        .iter()
        .copied()
        .chain([Benchmark::DataFault])
        .collect();
    for version in versions {
        let profile = VersionProfile::by_name(version).unwrap();
        for bench in &benches {
            let id = format!("{}/{}", version, bench.name());
            group.bench_function(id, |b| {
                b.iter(|| run_suite_bench(Guest::Armlet, EngineKind::Dbt(profile), *bench, &cfg));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);

//! Fig 8 bench: the aggregate sweep — whole-suite and whole-app-set runs
//! on the oldest and newest DBT versions.

use criterion::{criterion_group, criterion_main, Criterion};
use simbench_apps::App;
use simbench_bench::bench_config;
use simbench_dbt::VersionProfile;
use simbench_harness::{run_app, run_suite_bench, EngineKind, Guest};
use simbench_suite::Benchmark;

fn fig8(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for version in ["v1.7.0", "v2.5.0-rc2"] {
        let profile = VersionProfile::by_name(version).unwrap();
        group.bench_function(format!("{version}/simbench-suite"), |b| {
            b.iter(|| {
                for bench in Benchmark::ALL {
                    run_suite_bench(Guest::Armlet, EngineKind::Dbt(profile), bench, &cfg);
                }
            });
        });
        group.bench_function(format!("{version}/spec-like-apps"), |b| {
            b.iter(|| {
                for app in App::ALL {
                    run_app(Guest::Armlet, EngineKind::Dbt(profile), app, &cfg);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);

//! Hot-loop microbench: the decode → dispatch → execute path itself.
//!
//! The old fig2/fig3/fig6/fig7/fig8 bench targets duplicated what
//! `simbench-harness campaign run` measures (and what CI gates counter-
//! exactly against `BENCH_campaign.json`); they are retired in favour of
//! campaign specs. What a campaign cell *cannot* isolate is the
//! per-instruction front-end cost, so this one target measures exactly
//! that:
//!
//! * raw decoder throughput for both ISAs (no engine, no memory system),
//! * the interpreter's full fetch/decode/dispatch loop on the hottest
//!   suite kernel (Hot Memory Access),
//! * the DBT's translated-block dispatch on the chain-dominated kernel
//!   (Intra-Page Direct).

use criterion::{criterion_group, criterion_main, Criterion};
use simbench_bench::bench_config;
use simbench_harness::{run_suite_bench, EngineKind, Guest};
use simbench_suite::Benchmark;

/// Representative armlet words: ALU reg/imm, movw/movt, load/store,
/// branches, compares — the mix a hot loop decodes over and over.
const ARMLET_WORDS: [u32; 8] = [
    0x1012_3000, // alu rr
    0x2345_6000, // alu ri
    0x3030_1234, // movw
    0x4040_BEEF, // movt (two ops)
    0x5812_3008, // load
    0x6000_0010, // b
    0x8100_0004, // b.ne
    0xB012_3000, // cmp rr
];

/// Representative petix byte streams (variable length 1–6 bytes).
const PETIX_BYTES: [&[u8]; 6] = [
    &[0x00],                               // nop
    &[0x10, 0x12],                         // alu rr
    &[0x30, 0x10, 0x78, 0x56, 0x34, 0x12], // alu ri32
    &[0x70, 0x12, 0x08, 0x00],             // load
    &[0x80, 0x10, 0x00, 0x00, 0x00],       // jmp
    &[0x88, 0x12],                         // cmp
];

fn hotloop(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("hotloop");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));

    group.bench_function("decode/armlet", |b| {
        b.iter(|| {
            let mut ops = 0usize;
            for _ in 0..1000 {
                for &w in &ARMLET_WORDS {
                    ops += simbench_isa_armlet::decode::decode(w, 0x8000)
                        .map(|d| d.ops.len())
                        .unwrap_or(0);
                }
            }
            ops
        });
    });

    group.bench_function("decode/petix", |b| {
        b.iter(|| {
            let mut ops = 0usize;
            for _ in 0..1000 {
                for bytes in PETIX_BYTES {
                    ops += simbench_isa_petix::decode::decode(bytes, 0x8000)
                        .map(|d| d.ops.len())
                        .unwrap_or(0);
                }
            }
            ops
        });
    });

    group.bench_function("dispatch/interp-mem-hot", |b| {
        b.iter(|| run_suite_bench(Guest::Armlet, EngineKind::Interp, Benchmark::MemHot, &cfg));
    });

    group.bench_function("dispatch/dbt-intra-page-direct", |b| {
        b.iter(|| {
            run_suite_bench(
                Guest::Armlet,
                EngineKind::Dbt(simbench_dbt::VersionProfile::latest()),
                Benchmark::IntraPageDirect,
                &cfg,
            )
        });
    });

    group.finish();
}

criterion_group!(benches, hotloop);
criterion_main!(benches);

//! Fig 7 bench: representative benchmarks across every engine and guest.

use criterion::{criterion_group, criterion_main, Criterion};
use simbench_bench::{bench_config, fig7_points, CATEGORY_REPS};
use simbench_harness::run_suite_bench;

fn fig7(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for (guest, engine) in fig7_points() {
        for bench in CATEGORY_REPS {
            if !bench.supported_on(guest.isa_name()) {
                continue;
            }
            let id = format!("{}/{}/{}", guest.isa_name(), engine.name(), bench.name());
            group.bench_function(id, |b| {
                b.iter(|| run_suite_bench(guest, engine, bench, &cfg));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);

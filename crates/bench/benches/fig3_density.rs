//! Fig 3 bench: the suite kernels whose operation densities the table
//! reports, measured on the fast interpreter.

use criterion::{criterion_group, criterion_main, Criterion};
use simbench_bench::bench_config;
use simbench_harness::{run_suite_bench, EngineKind, Guest};
use simbench_suite::Benchmark;

fn fig3(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for bench in Benchmark::ALL {
        group.bench_function(bench.name(), |b| {
            b.iter(|| run_suite_bench(Guest::Armlet, EngineKind::Interp, bench, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);

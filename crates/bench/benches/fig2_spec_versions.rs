//! Fig 2 bench: the diverging applications across selected DBT versions.

use criterion::{criterion_group, criterion_main, Criterion};
use simbench_apps::App;
use simbench_bench::bench_config;
use simbench_dbt::VersionProfile;
use simbench_harness::{run_app, EngineKind, Guest};

fn fig2(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for version in ["v1.7.0", "v2.0.0", "v2.2.1", "v2.5.0-rc2"] {
        let profile = VersionProfile::by_name(version).unwrap();
        for app in [App::SjengLike, App::McfLike] {
            let id = format!("{}/{}", version, app.name());
            group.bench_function(id, |b| {
                b.iter(|| run_app(Guest::Armlet, EngineKind::Dbt(profile), app, &cfg));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);

//! # simbench-bench
//!
//! Criterion benchmark harness for SimBench-rs. One bench target exists
//! per paper table/figure; each exercises the same code paths as the
//! corresponding `simbench-harness` experiment at a reduced iteration
//! scale, so `cargo bench` regenerates relative timings for every
//! artefact of the evaluation.

use simbench_harness::{Config, EngineKind, Guest};
use simbench_suite::Benchmark;

/// The iteration divisor used by the bench targets (much higher than the
/// harness default so Criterion's repeated sampling stays fast).
pub const BENCH_SCALE: u64 = 50_000;

/// Shared benchmark configuration.
pub fn bench_config() -> Config {
    Config::with_scale(BENCH_SCALE)
}

/// A representative benchmark from each of the five categories, used
/// where running all eighteen per engine would make `cargo bench`
/// needlessly slow.
pub const CATEGORY_REPS: [Benchmark; 5] = [
    Benchmark::SmallBlocks,
    Benchmark::IntraPageDirect,
    Benchmark::Syscall,
    Benchmark::MmioDevice,
    Benchmark::MemHot,
];

/// Engines × guests measured by the Fig 7 bench.
pub fn fig7_points() -> Vec<(Guest, EngineKind)> {
    let mut v = Vec::new();
    for guest in Guest::ALL {
        for engine in EngineKind::fig7_columns() {
            v.push((guest, engine));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_is_fast() {
        assert!(bench_config().scale >= 10_000);
        assert_eq!(fig7_points().len(), 10);
    }
}

//! # simbench-bench
//!
//! Criterion harness for the decode → dispatch → execute hot path.
//!
//! This crate used to mirror every paper figure as a bench target; those
//! mirrors duplicated what `simbench-harness campaign run` measures (and
//! what CI gates counter-exactly against `BENCH_campaign.json`), so they
//! are folded into campaign specs — run
//! `simbench-harness campaign run --out snapshot.json` for figure-level
//! timings. The one remaining target, `benches/hotloop.rs`, measures
//! what a campaign cell cannot isolate: raw decoder throughput and the
//! per-instruction dispatch cost of the interpreter and DBT engines.

use simbench_harness::Config;

/// The iteration divisor used by the bench targets (much higher than the
/// harness default so Criterion's repeated sampling stays fast).
pub const BENCH_SCALE: u64 = 50_000;

/// Shared benchmark configuration.
pub fn bench_config() -> Config {
    Config::with_scale(BENCH_SCALE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_is_fast() {
        assert!(bench_config().scale >= 10_000);
    }
}

//! End-to-end tests driving the real `simbench-harness` binary: the
//! `campaign compare` exit-code matrix (0 ok / 1 regression / 2 broken
//! cell / 3 usage / 4 bad shard set) on both the timing and
//! `--counters` paths, worker-count determinism of persisted event
//! profiles, the shard → merge → counter-exact-compare workflow, and
//! the stored-campaign `model` workflow.

use std::path::PathBuf;
use std::process::{Command, Output};

use simbench_campaign::{CampaignResult, CellStatus, StopReason, SCHEMA, SCHEMA_V1};

fn run_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_simbench-harness"))
        .args(args)
        .output()
        .expect("spawn simbench-harness")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no exit code (signal?)")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

/// A scratch file path unique to this test process and label.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("simbench-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{label}.json", std::process::id()))
}

/// A tiny campaign measured through the library (identical to what
/// `campaign run` persists), saved to a scratch file.
fn measured_campaign(label: &str) -> (PathBuf, CampaignResult) {
    use simbench_campaign::{run, CampaignSpec, EngineKind, Guest, RunnerOpts, Workload};
    use simbench_suite::Benchmark;

    let spec = CampaignSpec {
        name: format!("cli-{label}"),
        guests: vec![Guest::Armlet],
        engines: vec![EngineKind::Interp],
        workloads: vec![
            Workload::Suite(Benchmark::Syscall),
            Workload::Suite(Benchmark::MemHot),
        ],
        scale: 1_000_000,
        reps: 1,
        precision: None,
        wall_limit: Some(std::time::Duration::from_secs(60)),
    };
    let result = run(&spec, &RunnerOpts::serial());
    let path = scratch(label);
    result.save(&path).unwrap();
    (path, result)
}

#[test]
fn compare_exit_code_matrix_on_the_timing_path() {
    let (base_path, base) = measured_campaign("sec-base");
    let base_str = base_path.to_str().unwrap();

    // 0: identical results are clean.
    let out = run_cli(&["campaign", "compare", base_str, "--baseline", base_str]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));

    // 1: a 10× slowdown beyond the threshold is a regression.
    let mut slowed = base.clone();
    for cell in &mut slowed.cells {
        cell.seconds.iter_mut().for_each(|s| *s *= 10.0);
        cell.stats = simbench_campaign::stats(&cell.seconds);
    }
    let slowed_path = scratch("sec-slowed");
    slowed.save(&slowed_path).unwrap();
    let out = run_cli(&[
        "campaign",
        "compare",
        slowed_path.to_str().unwrap(),
        "--baseline",
        base_str,
        "--threshold",
        "0.25",
    ]);
    assert_eq!(exit_code(&out), 1, "{}", stdout(&out));
    assert!(stdout(&out).contains("REGRESSIONS"), "{}", stdout(&out));

    // 2: a cell that completed in the baseline but fails now.
    let mut broken = base.clone();
    broken.cells[0].status = CellStatus::Failed("wall-clock limit reached".to_string());
    broken.cells[0].stats = None;
    broken.cells[0].seconds.clear();
    let broken_path = scratch("sec-broken");
    broken.save(&broken_path).unwrap();
    let out = run_cli(&[
        "campaign",
        "compare",
        broken_path.to_str().unwrap(),
        "--baseline",
        base_str,
    ]);
    assert_eq!(exit_code(&out), 2, "{}", stdout(&out));
    assert!(stdout(&out).contains("BROKEN"), "{}", stdout(&out));

    // 3: usage errors — missing baseline, unknown flag, unreadable
    // input, and mixing the two comparison modes' knobs.
    for args in [
        vec!["campaign", "compare", base_str],
        vec![
            "campaign",
            "compare",
            base_str,
            "--baseline",
            base_str,
            "--frobnicate",
        ],
        vec![
            "campaign",
            "compare",
            "/nonexistent.json",
            "--baseline",
            base_str,
        ],
        vec![
            "campaign",
            "compare",
            base_str,
            "--baseline",
            base_str,
            "--counters",
            "--threshold",
            "0.25",
        ],
        vec![
            "campaign",
            "compare",
            base_str,
            "--baseline",
            base_str,
            "--tolerance",
            "0.1",
        ],
    ] {
        let out = run_cli(&args);
        assert_eq!(exit_code(&out), 3, "args {args:?}: {}", stdout(&out));
    }
}

#[test]
fn compare_exit_code_matrix_on_the_counters_path() {
    let (base_path, base) = measured_campaign("cnt-base");
    let base_str = base_path.to_str().unwrap();

    // 0: identical profiles compare exactly equal.
    let out = run_cli(&[
        "campaign",
        "compare",
        base_str,
        "--baseline",
        base_str,
        "--counters",
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));

    // 0 even when wall-clock moved 10×: counters ignore timing noise.
    let mut slowed = base.clone();
    for cell in &mut slowed.cells {
        cell.seconds.iter_mut().for_each(|s| *s *= 10.0);
        cell.stats = simbench_campaign::stats(&cell.seconds);
    }
    let slowed_path = scratch("cnt-slowed");
    slowed.save(&slowed_path).unwrap();
    let out = run_cli(&[
        "campaign",
        "compare",
        slowed_path.to_str().unwrap(),
        "--baseline",
        base_str,
        "--counters",
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));

    // 1: a single drifted counter is an exact-compare regression...
    let mut drifted = base.clone();
    drifted.cells[0].counters.instructions += 1;
    let drifted_path = scratch("cnt-drifted");
    drifted.save(&drifted_path).unwrap();
    let drifted_str = drifted_path.to_str().unwrap();
    let out = run_cli(&[
        "campaign",
        "compare",
        drifted_str,
        "--baseline",
        base_str,
        "--counters",
    ]);
    assert_eq!(exit_code(&out), 1, "{}", stdout(&out));
    assert!(stdout(&out).contains("instructions"), "{}", stdout(&out));

    // ...that a generous --tolerance admits.
    let out = run_cli(&[
        "campaign",
        "compare",
        drifted_str,
        "--baseline",
        base_str,
        "--counters",
        "--tolerance",
        "0.01",
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));

    // 2: broken cells outrank counter equality.
    let mut broken = base.clone();
    broken.cells[0].status = CellStatus::Failed("panic: boom".to_string());
    broken.cells[0].stats = None;
    let broken_path = scratch("cnt-broken");
    broken.save(&broken_path).unwrap();
    let out = run_cli(&[
        "campaign",
        "compare",
        broken_path.to_str().unwrap(),
        "--baseline",
        base_str,
        "--counters",
    ]);
    assert_eq!(exit_code(&out), 2, "{}", stdout(&out));
}

#[test]
fn jobs_do_not_change_event_profiles_end_to_end() {
    let a = scratch("jobs-1");
    let b = scratch("jobs-8");
    for (jobs, path) in [("1", &a), ("8", &b)] {
        let out = run_cli(&[
            "campaign",
            "run",
            "--guests",
            "armlet",
            "--engines",
            "interp,native",
            "--benches",
            "System Call,Hot Memory Access,Data Access Fault",
            "--scale",
            "500000",
            "--reps",
            "2",
            "--jobs",
            jobs,
            "--out",
            path.to_str().unwrap(),
        ]);
        assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    }
    // The persisted files carry the current schema and identical
    // per-cell event profiles...
    let ra = CampaignResult::load(&a).unwrap();
    let rb = CampaignResult::load(&b).unwrap();
    assert_eq!(ra.schema, SCHEMA);
    assert_eq!(ra.cells.len(), rb.cells.len());
    for (ca, cb) in ra.cells.iter().zip(&rb.cells) {
        assert_eq!(
            ca.counters, cb.counters,
            "{}/{} {}",
            ca.guest, ca.engine, ca.workload
        );
        assert_eq!(ca.tested_ops, cb.tested_ops);
        assert!(ca.counters_consistent && cb.counters_consistent);
    }
    // ...so the counter-exact compare is clean in both directions.
    for (cur, base) in [(&a, &b), (&b, &a)] {
        let out = run_cli(&[
            "campaign",
            "compare",
            cur.to_str().unwrap(),
            "--baseline",
            base.to_str().unwrap(),
            "--counters",
        ]);
        assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    }
    // A v1-schema baseline still compares after reader-side migration.
    let v1 = scratch("jobs-v1");
    std::fs::write(
        &v1,
        std::fs::read_to_string(&a)
            .unwrap()
            .replace(SCHEMA, SCHEMA_V1),
    )
    .unwrap();
    let out = run_cli(&[
        "campaign",
        "compare",
        b.to_str().unwrap(),
        "--baseline",
        v1.to_str().unwrap(),
        "--counters",
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
}

/// The common spec flags of the shard workflow tests: a small matrix
/// that exercises both guests, an ISA hole, and multiple reps.
const SHARD_SPEC: &[&str] = &[
    "--guests",
    "armlet,petix",
    "--engines",
    "interp,native",
    "--benches",
    "System Call,Nonprivileged Access",
    "--scale",
    "500000",
    "--reps",
    "2",
];

/// `campaign run` with the shard-test spec plus extra args.
fn run_shard_spec(label: &str, extra: &[&str]) -> PathBuf {
    let path = scratch(label);
    let mut args = vec!["campaign", "run"];
    args.extend_from_slice(SHARD_SPEC);
    args.extend_from_slice(extra);
    args.push("--out");
    let path_str = path.to_str().unwrap().to_string();
    args.push(&path_str);
    let out = run_cli(&args);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    path
}

#[test]
fn shard_merge_compare_is_counter_exact_end_to_end() {
    // One unsharded reference run, then the same spec as 3 shards.
    let whole = run_shard_spec("shard-whole", &["--jobs", "2"]);
    let s1 = run_shard_spec("shard-1of3", &["--shard", "1/3"]);
    let s2 = run_shard_spec("shard-2of3", &["--shard", "2/3", "--jobs", "2"]);
    let s3 = run_shard_spec("shard-3of3", &["--shard", "3/3"]);

    // Each shard file records its slice and skips the others' cells.
    let shard_result = CampaignResult::load(&s2).unwrap();
    assert_eq!(
        shard_result.shard,
        Some(simbench_campaign::Shard::new(2, 3).unwrap())
    );
    assert!(shard_result
        .cells
        .iter()
        .any(|c| c.status == CellStatus::Skipped));

    // Merge (any argument order) and verify counter-exactness against
    // the unsharded run, in both directions.
    let merged = scratch("shard-merged");
    let out = run_cli(&[
        "campaign",
        "merge",
        s2.to_str().unwrap(),
        s3.to_str().unwrap(),
        s1.to_str().unwrap(),
        "--out",
        merged.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    let merged_result = CampaignResult::load(&merged).unwrap();
    assert_eq!(merged_result.shard, None, "merged results are whole-matrix");
    assert!(merged_result
        .cells
        .iter()
        .all(|c| c.status != CellStatus::Skipped));
    for (cur, base) in [(&merged, &whole), (&whole, &merged)] {
        let out = run_cli(&[
            "campaign",
            "compare",
            cur.to_str().unwrap(),
            "--baseline",
            base.to_str().unwrap(),
            "--counters",
        ]);
        assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    }

    // Exit 4 — data-level merge failures, distinct from usage errors:
    // the same shard twice (overlap), an incomplete set (missing), a
    // whole-matrix input (not a shard), and shards from different
    // specs (mismatch).
    let other_scale = run_shard_spec("shard-mismatch", &["--shard", "3/3", "--name", "other"]);
    for (label, files) in [
        ("overlap", vec![&s1, &s1, &s2]),
        ("missing", vec![&s1, &s3]),
        ("not-a-shard", vec![&whole]),
        ("spec-mismatch", vec![&s1, &s2, &other_scale]),
    ] {
        let mut args = vec!["campaign", "merge"];
        for f in &files {
            args.push(f.to_str().unwrap());
        }
        let merged_bad = scratch("shard-bad");
        let merged_bad_str = merged_bad.to_str().unwrap().to_string();
        args.extend_from_slice(&["--out", &merged_bad_str]);
        let out = run_cli(&args);
        assert_eq!(exit_code(&out), 4, "{label}: {}", stdout(&out));
    }

    // Exit 3 — usage errors: no inputs, missing --out, an unreadable
    // input, a malformed --shard value, and an out-of-range shard.
    for args in [
        vec!["campaign", "merge", "--out", "x.json"],
        vec!["campaign", "merge", s1.to_str().unwrap()],
        vec!["campaign", "merge", "/nonexistent.json", "--out", "x.json"],
        vec!["campaign", "run", "--shard", "banana"],
        vec!["campaign", "run", "--shard", "0/2"],
        vec!["campaign", "run", "--shard", "3/2"],
    ] {
        let out = run_cli(&args);
        assert_eq!(exit_code(&out), 3, "args {args:?}: {}", stdout(&out));
    }
}

/// The common spec flags of the adaptive workflow test: one guest, two
/// engines, two benchmarks.
const ADAPTIVE_SPEC: &[&str] = &[
    "--guests",
    "armlet",
    "--engines",
    "interp,native",
    "--benches",
    "System Call,Hot Memory Access",
    "--scale",
    "500000",
];

#[test]
fn adaptive_precision_run_end_to_end() {
    // Exit 3 — bad or inconsistent adaptive flags: non-positive or
    // non-numeric targets, a min below the 2-rep floor, max below min,
    // and rep bounds without --precision (they must be rejected, not
    // silently ignored).
    for bad in [
        vec!["--precision", "0"],
        vec!["--precision", "-0.5"],
        vec!["--precision", "banana"],
        vec!["--precision", "inf"],
        vec!["--precision", "0.2", "--min-reps", "1"],
        vec!["--precision", "0.2", "--min-reps", "5", "--max-reps", "4"],
        vec!["--min-reps", "3"],
        vec!["--max-reps", "3"],
        vec!["--precision", "0.2", "--reps", "3"],
    ] {
        let mut args = vec!["campaign", "run"];
        args.extend_from_slice(ADAPTIVE_SPEC);
        args.extend_from_slice(&bad);
        let out = run_cli(&args);
        assert_eq!(exit_code(&out), 3, "args {bad:?}: {}", stdout(&out));
    }

    // A fixed-reps reference run and an adaptive run of the same spec.
    let fixed = scratch("adaptive-fixed");
    let mut args = vec!["campaign", "run"];
    args.extend_from_slice(ADAPTIVE_SPEC);
    args.extend_from_slice(&["--reps", "3", "--out", fixed.to_str().unwrap()]);
    let out = run_cli(&args);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));

    let adaptive = scratch("adaptive-run");
    let mut args = vec!["campaign", "run"];
    args.extend_from_slice(ADAPTIVE_SPEC);
    args.extend_from_slice(&[
        "--precision",
        "0.5",
        "--min-reps",
        "2",
        "--max-reps",
        "5",
        "--jobs",
        "2",
        "--out",
        adaptive.to_str().unwrap(),
    ]);
    let out = run_cli(&args);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));

    // The persisted adaptive result carries the v4 schema, the
    // precision echo, and a truthful per-cell repetition record.
    let result = CampaignResult::load(&adaptive).unwrap();
    assert_eq!(result.schema, SCHEMA);
    let p = result.precision.expect("adaptive runs persist the target");
    assert_eq!((p.target_rci, p.min_reps, p.max_reps), (0.5, 2, 5));
    let ok_cells: Vec<_> = result
        .cells
        .iter()
        .filter(|c| c.status == CellStatus::Ok)
        .collect();
    assert!(!ok_cells.is_empty());
    for cell in ok_cells {
        assert!(
            (2..=5).contains(&cell.reps_run),
            "{}/{} {}: reps_run {}",
            cell.guest,
            cell.engine,
            cell.workload,
            cell.reps_run
        );
        assert_eq!(cell.seconds.len(), cell.reps_run as usize);
        assert!(
            matches!(
                cell.stop_reason,
                Some(StopReason::Converged | StopReason::MaxReps)
            ),
            "adaptive cells never report a fixed stop: {:?}",
            cell.stop_reason
        );
    }

    // Adaptive and fixed runs of one spec are counter-identical even
    // though their per-cell rep counts differ — the gate compares
    // event profiles, never rep-count equality.
    for (cur, base) in [(&adaptive, &fixed), (&fixed, &adaptive)] {
        let out = run_cli(&[
            "campaign",
            "compare",
            cur.to_str().unwrap(),
            "--baseline",
            base.to_str().unwrap(),
            "--counters",
        ]);
        assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    }
}

#[test]
fn model_workflow_runs_from_a_stored_campaign() {
    // One campaign with apps, measured once; every model step below
    // consumes the stored JSON without re-running anything.
    let path = scratch("model");
    let path_str = path.to_str().unwrap();
    let out = run_cli(&[
        "campaign",
        "run",
        "--guests",
        "armlet",
        "--engines",
        "interp,native",
        "--scale",
        "500000",
        "--apps",
        "--jobs",
        "4",
        "--out",
        path_str,
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));

    let out = run_cli(&[
        "model",
        "calibrate",
        path_str,
        "--guest",
        "armlet",
        "--engine",
        "interp",
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("cost model for armlet/interp"), "{text}");
    assert!(text.contains("base cost per instruction"), "{text}");

    let out = run_cli(&[
        "model",
        "predict",
        path_str,
        "--guest",
        "armlet",
        "--engine",
        "interp",
        "--profile-engine",
        "native",
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    assert!(stdout(&out).contains("app:"), "{}", stdout(&out));

    // validate defaults the profile engine to native and reports
    // per-app prediction error against the measured cells.
    let out = run_cli(&[
        "model", "validate", path_str, "--guest", "armlet", "--engine", "interp",
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    let text = stdout(&out);
    assert!(
        text.contains("app event profiles from engine native"),
        "{text}"
    );
    assert!(text.contains("prediction error"), "{text}");
    assert!(text.contains("geomean"), "{text}");

    // An absurdly tight error gate trips exit 1.
    let out = run_cli(&[
        "model",
        "validate",
        path_str,
        "--guest",
        "armlet",
        "--engine",
        "interp",
        "--max-error",
        "1.0",
    ]);
    assert_eq!(exit_code(&out), 1, "{}", stdout(&out));

    // Usage/data errors exit 3: unknown subcommand, missing file, an
    // engine the campaign never measured, a campaign without apps, and
    // flags that don't apply to the chosen subcommand (they must be
    // rejected, not silently ignored).
    let out = run_cli(&["model", "frobnicate", path_str]);
    assert_eq!(exit_code(&out), 3);
    for args in [
        vec!["model", "calibrate", path_str, "--profile-engine", "native"],
        vec!["model", "calibrate", path_str, "--max-error", "2.0"],
        vec!["model", "predict", path_str, "--max-error", "2.0"],
    ] {
        let out = run_cli(&args);
        assert_eq!(exit_code(&out), 3, "args {args:?}");
    }
    let out = run_cli(&["model", "validate", "/nonexistent.json"]);
    assert_eq!(exit_code(&out), 3);
    let out = run_cli(&[
        "model", "validate", path_str, "--guest", "armlet", "--engine", "virt",
    ]);
    assert_eq!(exit_code(&out), 3);
    let (no_apps, _) = measured_campaign("model-no-apps");
    let out = run_cli(&[
        "model",
        "validate",
        no_apps.to_str().unwrap(),
        "--guest",
        "armlet",
        "--engine",
        "interp",
    ]);
    assert_eq!(exit_code(&out), 3);
}

#[test]
fn figures_usage_errors_exit_3() {
    for args in [vec!["figX"], vec!["fig7", "--bogus"], vec![]] {
        let out = run_cli(&args);
        assert_eq!(exit_code(&out), 3, "args {args:?}");
    }
}

#[test]
fn trace_progress_and_report_end_to_end() {
    use simbench_campaign::json::{parse, Value};

    let campaign_path = scratch("obs-campaign");
    let trace_path = scratch("obs-trace");
    // --quiet silences the info banners, so with --progress=ndjson
    // every remaining stderr line must be a parseable JSON record —
    // the property a streaming consumer depends on.
    let out = run_cli(&[
        "campaign",
        "run",
        "--quiet",
        "--guests",
        "armlet",
        "--engines",
        "interp,dbt",
        "--benches",
        "System Call,Hot Memory Access",
        "--scale",
        "200000",
        "--reps",
        "2",
        "--trace",
        trace_path.to_str().unwrap(),
        "--progress=ndjson",
        "--out",
        campaign_path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    let mut starts = 0;
    let mut finishes = 0;
    for line in stderr.lines().filter(|l| !l.is_empty()) {
        let v = parse(line).unwrap_or_else(|e| panic!("unparseable stderr line {line:?}: {e}"));
        match v.get("event").and_then(Value::as_str) {
            Some("cell_start") => starts += 1,
            Some("cell_finish") => {
                finishes += 1;
                assert_eq!(
                    v.get("status").and_then(Value::as_str),
                    Some("ok"),
                    "{line}"
                );
                assert_eq!(v.get("reps").and_then(Value::as_u64), Some(2), "{line}");
            }
            Some("cell_converge") => {}
            other => panic!("unexpected event {other:?} in {line:?}"),
        }
        assert!(v.get("guest").and_then(Value::as_str).is_some(), "{line}");
    }
    // 2 engines × 2 benchmarks = 4 cells, each started and finished.
    assert_eq!((starts, finishes), (4, 4), "{stderr}");

    // The trace file is valid Chrome trace-event JSON covering both
    // campaign lifecycle spans and engine internals.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let v = parse(&trace).unwrap();
    let events = v
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    for expected in ["campaign.expand", "campaign.repetition", "dbt.translate"] {
        assert!(names.contains(&expected), "no {expected:?} in trace");
    }

    // The persisted campaign carries the metrics snapshot...
    let result = CampaignResult::load(&campaign_path).unwrap();
    let telemetry = result.telemetry.as_ref().expect("telemetry block");
    let counter = |name: &str| {
        telemetry
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    };
    assert!(
        counter("dbt.translations").unwrap_or(0) > 0,
        "{telemetry:?}"
    );
    assert!(
        counter("interp.dispatch_batches").unwrap_or(0) > 0,
        "{telemetry:?}"
    );
    assert!(
        telemetry
            .histograms
            .iter()
            .any(|(n, _)| n == "dbt.block_steps"),
        "{telemetry:?}"
    );

    // ...which `report` renders alongside the summary.
    let out = run_cli(&["report", campaign_path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("engine counters"), "{text}");
    assert!(text.contains("dbt.translations"), "{text}");
    assert!(text.contains("histogram dbt.block_steps"), "{text}");

    // A campaign run without --trace has no telemetry; report still
    // works and says how to record some.
    let (plain, _) = measured_campaign("obs-plain");
    let out = run_cli(&["report", plain.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    assert!(stdout(&out).contains("--trace"), "{}", stdout(&out));

    // report usage errors exit 3.
    assert_eq!(exit_code(&run_cli(&["report"])), 3);
    assert_eq!(exit_code(&run_cli(&["report", "/nonexistent.json"])), 3);
    let report_str = plain.to_str().unwrap();
    assert_eq!(exit_code(&run_cli(&["report", report_str, "--bogus"])), 3);
}

#[test]
fn log_level_flags_are_global_and_strict() {
    let (path, _) = measured_campaign("loglevel");
    let path_str = path.to_str().unwrap();
    let out_report = scratch("loglevel-report");
    let out_str = out_report.to_str().unwrap();

    // Default: the [wrote ...] info banner lands on stderr.
    let out = run_cli(&["selfbench", path_str, "--out", out_str]);
    assert_eq!(exit_code(&out), 0);
    assert!(String::from_utf8_lossy(&out.stderr).contains("[wrote"));

    // --quiet silences it without changing stdout or the exit code,
    // wherever it appears on the line.
    for args in [
        vec!["--quiet", "selfbench", path_str, "--out", out_str],
        vec!["selfbench", "--quiet", path_str, "--out", out_str],
        vec!["selfbench", path_str, "--out", out_str, "--quiet"],
    ] {
        let out = run_cli(&args);
        assert_eq!(exit_code(&out), 0, "args {args:?}");
        assert!(stdout(&out).contains("MIPS"), "args {args:?}");
        assert!(
            !String::from_utf8_lossy(&out.stderr).contains("[wrote"),
            "args {args:?}"
        );
    }

    // -v / --verbose are accepted; the conflict is a usage error.
    for v in ["-v", "--verbose"] {
        let out = run_cli(&["selfbench", path_str, v]);
        assert_eq!(exit_code(&out), 0, "{v}");
    }
    let out = run_cli(&["--quiet", "-v", "selfbench", path_str]);
    assert_eq!(exit_code(&out), 3);

    // Unknown-flag strictness survives the global pre-scan.
    assert_eq!(exit_code(&run_cli(&["selfbench", path_str, "--queit"])), 3);
    assert_eq!(
        exit_code(&run_cli(&["--quiet", "campaign", "run", "--frobnicate"])),
        3
    );
}

#[test]
fn selfbench_gate_trips_only_on_separated_intervals() {
    use simbench_campaign::{run, CampaignSpec, EngineKind, Guest, RunnerOpts, Workload};
    use simbench_suite::Benchmark;

    // Three repetitions so both sides of the gate have a measurable CI.
    let spec = CampaignSpec {
        name: "cli-gate".to_string(),
        guests: vec![Guest::Armlet],
        engines: vec![EngineKind::Interp],
        workloads: vec![Workload::Suite(Benchmark::Syscall)],
        scale: 1_000_000,
        reps: 3,
        precision: None,
        wall_limit: Some(std::time::Duration::from_secs(60)),
    };
    let result = run(&spec, &RunnerOpts::serial());
    let campaign_path = scratch("gate-campaign");
    result.save(&campaign_path).unwrap();
    let campaign_str = campaign_path.to_str().unwrap();

    // Persist the baseline report.
    let baseline_path = scratch("gate-baseline");
    let baseline_str = baseline_path.to_str().unwrap();
    let out = run_cli(&["selfbench", campaign_str, "--out", baseline_str]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));

    // A run gated against its own report can never regress.
    let out = run_cli(&["selfbench", campaign_str, "--gate", baseline_str]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    assert!(stdout(&out).contains("wall-clock gate"), "{}", stdout(&out));

    // A 1000× slowdown with zero spread separates the intervals.
    let mut slowed = result.clone();
    for cell in &mut slowed.cells {
        let slow = cell.stats.as_ref().unwrap().mean * 1000.0;
        cell.seconds = vec![slow; cell.seconds.len()];
        cell.stats = simbench_campaign::stats(&cell.seconds);
    }
    let slowed_path = scratch("gate-slowed");
    slowed.save(&slowed_path).unwrap();
    let slowed_str = slowed_path.to_str().unwrap();
    let out = run_cli(&["selfbench", slowed_str, "--gate", baseline_str]);
    assert_eq!(exit_code(&out), 1, "{}", stdout(&out));
    assert!(stdout(&out).contains("REGRESSIONS"), "{}", stdout(&out));

    // A v1 baseline has no intervals: every cell is skipped, so even
    // the slowed run passes — the gate refuses to invent a CI.
    let v1_path = scratch("gate-v1");
    std::fs::write(
        &v1_path,
        std::fs::read_to_string(&baseline_path)
            .unwrap()
            .replace("simbench-hotloop/v2", "simbench-hotloop/v1"),
    )
    .unwrap();
    let out = run_cli(&["selfbench", slowed_str, "--gate", v1_path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    assert!(stdout(&out).contains("1 skipped"), "{}", stdout(&out));

    // Gate usage errors exit 3: unreadable or malformed baselines.
    let out = run_cli(&["selfbench", campaign_str, "--gate", "/nonexistent.json"]);
    assert_eq!(exit_code(&out), 3);
    let bad = scratch("gate-bad");
    std::fs::write(&bad, "{\"schema\": \"simbench-hotloop/v9\"}").unwrap();
    let out = run_cli(&["selfbench", campaign_str, "--gate", bad.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 3);
}

#[test]
fn selfbench_reports_mips_from_a_stored_campaign() {
    let (path, result) = measured_campaign("selfbench");
    let path_str = path.to_str().unwrap();
    let report_path = scratch("selfbench-report");
    let report_str = report_path.to_str().unwrap();

    let out = run_cli(&["selfbench", path_str, "--out", report_str]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("MIPS"), "{text}");
    assert!(text.contains("suite:Hot Memory Access"), "{text}");

    // The persisted report is self-describing JSON with one rate per
    // clean cell, consistent with the stored campaign's counters.
    let json = std::fs::read_to_string(&report_path).unwrap();
    assert!(json.contains("simbench-hotloop/v2"), "{json}");
    let ok_cells = result
        .cells
        .iter()
        .filter(|c| c.status == CellStatus::Ok && c.counters_consistent)
        .count();
    assert_eq!(json.matches("\"mips\"").count(), ok_cells);

    // Usage errors: missing campaign file and unknown flags exit 3.
    assert_eq!(exit_code(&run_cli(&["selfbench"])), 3);
    assert_eq!(exit_code(&run_cli(&["selfbench", path_str, "--bogus"])), 3);
    // Unreadable input exits 3 like every other subcommand.
    assert_eq!(exit_code(&run_cli(&["selfbench", "/nonexistent.json"])), 3);
}

#[test]
fn analyze_sweeps_a_workload_and_persists_the_artifact() {
    let artifact_path = scratch("analyze-artifact");
    let artifact_str = artifact_path.to_str().unwrap();
    let out = run_cli(&[
        "analyze",
        "armlet",
        "--workload",
        "System Call",
        "--check",
        "--fuel",
        "5000000",
        "--out",
        artifact_str,
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("armlet/suite:System Call: ok"), "{text}");
    assert!(text.contains("check ok"), "{text}");
    assert!(text.contains("1/1 subject(s) clean"), "{text}");
    let json = std::fs::read_to_string(&artifact_path).unwrap();
    assert!(
        json.contains("\"schema\": \"simbench-analysis/v1\""),
        "{json}"
    );
    assert!(json.contains("\"matched\": true"), "{json}");
}

#[test]
fn analyze_fuzz_covers_the_differ_program_stream() {
    let out = run_cli(&[
        "analyze",
        "petix",
        "--fuzz",
        "48879",
        "--programs",
        "2",
        "--check",
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("petix/fuzz:0xbeef[0]"), "{text}");
    assert!(text.contains("2/2 subject(s) clean"), "{text}");
}

#[test]
fn analyze_usage_errors_exit_3() {
    // Missing guest, unknown guest, conflicting selectors, bad values.
    assert_eq!(exit_code(&run_cli(&["analyze"])), 3);
    assert_eq!(exit_code(&run_cli(&["analyze", "z80"])), 3);
    assert_eq!(
        exit_code(&run_cli(&[
            "analyze",
            "armlet",
            "--workload",
            "all",
            "--fuzz",
            "1"
        ])),
        3
    );
    assert_eq!(
        exit_code(&run_cli(&["analyze", "armlet", "--workload", "nope"])),
        3
    );
    assert_eq!(
        exit_code(&run_cli(&["analyze", "armlet", "--scale", "0"])),
        3
    );
    // A workload the user named must exist on the guest — unlike the
    // silently-skipped matrix holes of `all`.
    assert_eq!(
        exit_code(&run_cli(&[
            "analyze",
            "petix",
            "--workload",
            "Nonprivileged Access"
        ])),
        3
    );
}

/// The common spec flags of the fault-tolerance tests: four cells,
/// two reps each, small enough to re-run several times per test.
const FAULT_SPEC: &[&str] = &[
    "--guests",
    "armlet",
    "--engines",
    "interp,native",
    "--benches",
    "System Call,Hot Memory Access",
    "--scale",
    "500000",
    "--reps",
    "2",
];

/// A scratch directory unique to this test process and label.
fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simbench-cli-{}-{label}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn the harness binary without waiting, output piped.
fn spawn_cli(args: &[&str], env: &[(&str, &str)]) -> std::process::Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_simbench-harness"));
    cmd.args(args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped());
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn simbench-harness")
}

/// Count finished-cell records currently in a journal directory.
fn cell_records(dir: &std::path::Path) -> usize {
    std::fs::read_to_string(dir.join(simbench_campaign::JOURNAL_FILE))
        .map(|t| t.matches("\"record\": \"cell\"").count())
        .unwrap_or(0)
}

/// Block until the journal holds at least `n` finished-cell records.
fn wait_for_cells(dir: &std::path::Path, n: usize) {
    let t0 = std::time::Instant::now();
    while cell_records(dir) < n {
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(120),
            "journal in {} never reached {n} cell record(s)",
            dir.display()
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

#[test]
fn killed_campaign_resumes_counter_exact_end_to_end() {
    // Uninterrupted reference run.
    let clean = scratch("fault-clean");
    let mut args = vec!["campaign", "run"];
    args.extend_from_slice(FAULT_SPEC);
    args.extend_from_slice(&["--out", clean.to_str().unwrap()]);
    let out = run_cli(&args);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));

    // The same campaign, journaled, hung after four repetitions (two
    // finished cells) and then killed with SIGKILL — no unwinding, no
    // flushes, exactly the crash the journal exists for.
    let jdir = scratch_dir("fault-journal");
    let jdir_str = jdir.to_str().unwrap().to_string();
    let victim = scratch("fault-victim");
    let mut args = vec!["campaign", "run"];
    args.extend_from_slice(FAULT_SPEC);
    args.extend_from_slice(&[
        "--jobs",
        "1",
        "--journal",
        &jdir_str,
        "--failpoints",
        "measure.rep=4+hang(60000)",
        "--out",
        victim.to_str().unwrap(),
    ]);
    let mut child = spawn_cli(&args, &[]);
    wait_for_cells(&jdir, 2);
    child.kill().unwrap();
    child.wait().unwrap();
    assert!(!victim.exists(), "killed run must not persist an artifact");

    // Resume from the journal (no failpoints this time): only the
    // remainder is measured and the artifact is counter-exact against
    // the uninterrupted run, in both directions.
    let resumed = scratch("fault-resumed");
    let resumed_str = resumed.to_str().unwrap();
    let mut args = vec!["campaign", "run"];
    args.extend_from_slice(FAULT_SPEC);
    args.extend_from_slice(&["--resume", &jdir_str, "--out", resumed_str]);
    let out = run_cli(&args);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    for (cur, base) in [(&resumed, &clean), (&clean, &resumed)] {
        let out = run_cli(&[
            "campaign",
            "compare",
            cur.to_str().unwrap(),
            "--baseline",
            base.to_str().unwrap(),
            "--counters",
        ]);
        assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    }
    // The artifact names the journal it came from and has no holes.
    let result = CampaignResult::load(&resumed).unwrap();
    assert_eq!(result.journal.as_deref(), Some(jdir_str.as_str()));
    assert!(result.cells.iter().all(|c| c.status == CellStatus::Ok));
    std::fs::remove_dir_all(&jdir).ok();
}

#[test]
fn injected_panic_quarantines_one_cell_end_to_end() {
    let clean = scratch("quarantine-clean");
    let mut args = vec!["campaign", "run"];
    args.extend_from_slice(FAULT_SPEC);
    args.extend_from_slice(&["--out", clean.to_str().unwrap()]);
    let out = run_cli(&args);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));

    // One injected panic on the very first repetition: that cell is
    // quarantined, every other cell completes normally, and the run
    // exits 1 (broken cells are a failure, not a crash).
    let q = scratch("quarantine-run");
    let q_str = q.to_str().unwrap();
    let mut args = vec!["campaign", "run"];
    args.extend_from_slice(FAULT_SPEC);
    args.extend_from_slice(&[
        "--jobs",
        "1",
        "--failpoints",
        "measure.rep=1*panic(injected fault)",
        "--out",
        q_str,
    ]);
    let out = run_cli(&args);
    assert_eq!(exit_code(&out), 1, "{}", stdout(&out));
    assert!(
        stdout(&out).contains("quarantined cells"),
        "{}",
        stdout(&out)
    );

    let result = CampaignResult::load(&q).unwrap();
    let quarantined: Vec<_> = result
        .cells
        .iter()
        .filter(|c| matches!(c.status, CellStatus::Quarantined(_)))
        .collect();
    assert_eq!(quarantined.len(), 1, "exactly one cell quarantines");
    assert!(
        matches!(&quarantined[0].status, CellStatus::Quarantined(m) if m.contains("injected fault")),
        "{:?}",
        quarantined[0].status
    );
    assert!(result
        .cells
        .iter()
        .filter(|c| !matches!(c.status, CellStatus::Quarantined(_)))
        .all(|c| c.status == CellStatus::Ok));

    // The quarantined cell is broken coverage under the compare gate.
    let out = run_cli(&[
        "campaign",
        "compare",
        q_str,
        "--baseline",
        clean.to_str().unwrap(),
        "--counters",
    ]);
    assert_eq!(exit_code(&out), 2, "{}", stdout(&out));
    assert!(stdout(&out).contains("BROKEN"), "{}", stdout(&out));

    // A retry budget absorbs the same injected fault completely: the
    // re-run attempt succeeds and the campaign is clean end to end.
    let retried = scratch("quarantine-retried");
    let mut args = vec!["campaign", "run"];
    args.extend_from_slice(FAULT_SPEC);
    args.extend_from_slice(&[
        "--jobs",
        "1",
        "--retries",
        "2",
        "--failpoints",
        "measure.rep=1*panic(injected fault)",
        "--out",
        retried.to_str().unwrap(),
    ]);
    let out = run_cli(&args);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    let result = CampaignResult::load(&retried).unwrap();
    assert!(result.cells.iter().all(|c| c.status == CellStatus::Ok));
    let retried_cell = result
        .cells
        .iter()
        .find(|c| c.attempts > c.reps_run)
        .expect("one cell records its extra attempt");
    assert_eq!(retried_cell.attempts, retried_cell.reps_run + 1);
}

#[test]
fn sigterm_persists_a_partial_artifact_and_exits_130() {
    // Journaled run armed via the environment (covering the env path):
    // two repetitions finish, the third hangs under a 5 s watchdog.
    let jdir = scratch_dir("term-journal");
    let jdir_str = jdir.to_str().unwrap().to_string();
    let part = scratch("term-partial");
    let part_str = part.to_str().unwrap().to_string();
    let mut args = vec!["campaign", "run"];
    args.extend_from_slice(FAULT_SPEC);
    args.extend_from_slice(&[
        "--jobs",
        "1",
        "--cell-timeout",
        "5",
        "--journal",
        &jdir_str,
        "--out",
        &part_str,
    ]);
    let child = spawn_cli(
        &args,
        &[("SIMBENCH_FAILPOINTS", "measure.rep=2+hang(60000)")],
    );
    wait_for_cells(&jdir, 1);
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(130), "{}", stdout(&out));

    // The partial artifact is valid, names its holes truthfully, and
    // keeps what did finish.
    let result = CampaignResult::load(&part).unwrap();
    assert!(result.cells.iter().any(|c| c.status == CellStatus::Ok));
    assert!(result
        .cells
        .iter()
        .any(|c| c.status == CellStatus::Failed("interrupted".to_string())));

    // And the journal it left behind resumes to a fully clean run.
    let resumed = scratch("term-resumed");
    let mut args = vec!["campaign", "run"];
    args.extend_from_slice(FAULT_SPEC);
    args.extend_from_slice(&["--resume", &jdir_str, "--out", resumed.to_str().unwrap()]);
    let out = run_cli(&args);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    let result = CampaignResult::load(&resumed).unwrap();
    assert!(result.cells.iter().all(|c| c.status == CellStatus::Ok));
    std::fs::remove_dir_all(&jdir).ok();
}

#[test]
fn analyze_and_differ_sweeps_interrupt_with_exit_130() {
    for (args, marker) in [
        (
            vec!["analyze", "armlet", "--fuzz", "7", "--programs", "100000"],
            "analyze: interrupted —",
        ),
        (
            vec![
                "differ",
                "armlet",
                "interp",
                "native",
                "--fuzz",
                "7",
                "--programs",
                "100000",
            ],
            "differ: interrupted —",
        ),
    ] {
        let child = spawn_cli(&args, &[]);
        std::thread::sleep(std::time::Duration::from_millis(500));
        let kill = Command::new("kill")
            .args(["-TERM", &child.id().to_string()])
            .status()
            .unwrap();
        assert!(kill.success());
        let out = child.wait_with_output().unwrap();
        assert_eq!(out.status.code(), Some(130), "{args:?}: {}", stdout(&out));
        assert!(stdout(&out).contains(marker), "{args:?}: {}", stdout(&out));
    }
}

#[test]
fn fault_tolerance_flags_usage_errors_exit_3() {
    for args in [
        // --journal and --resume are mutually exclusive.
        vec![
            "campaign",
            "run",
            "--journal",
            "/tmp/a",
            "--resume",
            "/tmp/b",
        ],
        // Watchdog and retry values must parse and be sensible.
        vec!["campaign", "run", "--cell-timeout", "0"],
        vec!["campaign", "run", "--cell-timeout", "-1"],
        vec!["campaign", "run", "--cell-timeout", "banana"],
        vec!["campaign", "run", "--retries", "banana"],
        // A malformed failpoint spec is an error, never a silent no-op.
        vec!["campaign", "run", "--failpoints", "no-equals"],
        vec!["campaign", "run", "--failpoints", "s=explode"],
    ] {
        let out = run_cli(&args);
        assert_eq!(exit_code(&out), 3, "args {args:?}: {}", stdout(&out));
    }
}

#[test]
fn lint_runs_clean_on_this_repository() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .unwrap()
        .to_path_buf();
    let out = run_cli(&["lint", "--root", root.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    assert!(stdout(&out).contains("0 finding(s)"), "{}", stdout(&out));

    // A root with none of the designated files present is all findings.
    let out = run_cli(&["lint", "--root", std::env::temp_dir().to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "{}", stdout(&out));
}

//! SimBench-rs experiment CLI.
//!
//! ```text
//! simbench-harness <fig2|fig3|fig4|fig5|fig6|fig7|fig8|all> [--scale N] [--jobs N] [--out FILE]
//! simbench-harness campaign run     [--scale N] [--jobs N] [--reps R] [--out FILE] [--name S]
//!                                   [--guests LIST] [--engines LIST] [--benches LIST]
//!                                   [--apps] [--versions]
//! simbench-harness campaign compare <CURRENT.json> --baseline FILE [--threshold FRAC]
//! simbench-harness campaign list
//! simbench-harness --list
//! ```
//!
//! Unknown flags and malformed values are hard errors: a typo must not
//! silently change what gets measured.

use std::io::Write as _;
use std::process::ExitCode;

use simbench_apps::App;
use simbench_campaign::{
    compare, run, CampaignResult, CampaignSpec, EngineKind, Guest, RunnerOpts, Workload,
};
use simbench_dbt::QEMU_VERSIONS;
use simbench_harness::{fig2, fig3, fig4, fig5, fig6, fig7, fig8, Config};
use simbench_suite::Benchmark;

const USAGE: &str = "usage: simbench-harness <fig2|fig3|fig4|fig5|fig6|fig7|fig8|all> \
                     [--scale N] [--jobs N] [--out FILE]
       simbench-harness campaign run [--scale N] [--jobs N] [--reps R] [--out FILE] [--name S]
                                     [--guests LIST] [--engines LIST] [--benches LIST]
                                     [--apps] [--versions]
       simbench-harness campaign compare <CURRENT.json> --baseline FILE [--threshold FRAC]
       simbench-harness campaign list
       simbench-harness --list";

fn fail(msg: &str) -> ! {
    eprintln!("simbench-harness: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Typed argument cursor with strict error reporting.
struct Args {
    args: std::vec::IntoIter<String>,
}

impl Args {
    fn new(args: Vec<String>) -> Self {
        Args {
            args: args.into_iter(),
        }
    }

    fn next(&mut self) -> Option<String> {
        self.args.next()
    }

    fn value_of(&mut self, flag: &str) -> String {
        match self.next() {
            Some(v) if !v.starts_with("--") => v,
            _ => fail(&format!("{flag} requires a value")),
        }
    }

    fn parse_of<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        let raw = self.value_of(flag);
        raw.parse()
            .unwrap_or_else(|_| fail(&format!("invalid value for {flag}: {raw:?}")))
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("campaign") {
        argv.remove(0);
        return campaign_main(argv);
    }
    figures_main(argv)
}

// ---------------------------------------------------------------------------
// Figure mode.
// ---------------------------------------------------------------------------

const FIGURES: [&str; 7] = ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"];

fn figures_main(argv: Vec<String>) -> ExitCode {
    if argv.is_empty() {
        fail("missing figure name");
    }
    let mut which: Option<String> = None;
    let mut scale = 2000u64;
    let mut jobs = 1usize;
    let mut out_path: Option<String> = None;
    let mut args = Args::new(argv);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.parse_of("--scale"),
            "--jobs" => jobs = args.parse_of::<usize>("--jobs").max(1),
            "--out" => out_path = Some(args.value_of("--out")),
            "--list" | "list" => {
                print!("{}", render_list());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            name if !name.starts_with('-') && which.is_none() => which = Some(name.to_string()),
            name if !name.starts_with('-') => fail(&format!(
                "unexpected argument {name:?} (figure already given)"
            )),
            flag => fail(&format!("unknown flag {flag:?}")),
        }
    }
    let which = which.unwrap_or_else(|| fail("missing figure name"));
    if which != "all" && !FIGURES.contains(&which.as_str()) {
        fail(&format!("unknown figure {which:?}"));
    }
    if scale == 0 {
        fail("--scale must be at least 1");
    }
    let cfg = Config::with_scale(scale).with_jobs(jobs);

    let mut output = String::new();
    let run_one = |name: &str, output: &mut String| {
        let t0 = std::time::Instant::now();
        let text = match name {
            "fig2" => fig2::run(&cfg).1,
            "fig3" => fig3::run(&cfg).1,
            "fig4" => fig4::run().1,
            "fig5" => fig5::run(),
            "fig6" => fig6::run(&cfg).1,
            "fig7" => fig7::run(&cfg).1,
            "fig8" => fig8::run(&cfg).1,
            _ => unreachable!("figure validated above"),
        };
        eprintln!("[{name} completed in {:.1?}]", t0.elapsed());
        output.push_str(&text);
        output.push('\n');
    };

    eprintln!("scale divisor: {scale} (paper iteration counts / {scale}), {jobs} worker(s)");
    if which == "all" {
        for name in ["fig5", "fig4", "fig3", "fig7", "fig2", "fig6", "fig8"] {
            run_one(name, &mut output);
        }
    } else {
        run_one(&which, &mut output);
    }

    print!("{output}");
    if let Some(path) = out_path {
        write_file(&path, output.as_bytes());
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Campaign mode.
// ---------------------------------------------------------------------------

fn campaign_main(argv: Vec<String>) -> ExitCode {
    let mut args = Args::new(argv);
    match args.next().as_deref() {
        Some("run") => campaign_run(args),
        Some("compare") => campaign_compare(args),
        Some("list") => {
            print!("{}", render_list());
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown campaign subcommand {other:?}")),
        None => fail("campaign needs a subcommand: run | compare | list"),
    }
}

fn campaign_run(mut args: Args) -> ExitCode {
    let mut spec = CampaignSpec::full_matrix(20_000);
    spec.name = "campaign".to_string();
    let mut jobs = 1usize;
    let mut out_path: Option<String> = None;
    let mut version_sweep = false;
    let mut with_apps = false;
    let mut explicit_engines = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => spec.scale = args.parse_of("--scale"),
            "--jobs" => jobs = args.parse_of::<usize>("--jobs").max(1),
            "--reps" => spec.reps = args.parse_of::<u32>("--reps").max(1),
            "--out" => out_path = Some(args.value_of("--out")),
            "--name" => spec.name = args.value_of("--name"),
            "--guests" => {
                spec.guests = split_list(&args.value_of("--guests"))
                    .iter()
                    .map(|id| {
                        Guest::by_isa_name(id)
                            .unwrap_or_else(|| fail(&format!("unknown guest {id:?}")))
                    })
                    .collect();
            }
            "--engines" => {
                explicit_engines = true;
                spec.engines = split_list(&args.value_of("--engines"))
                    .iter()
                    .map(|id| {
                        EngineKind::by_id(id)
                            .unwrap_or_else(|| fail(&format!("unknown engine {id:?}")))
                    })
                    .collect();
            }
            "--benches" => {
                spec.workloads = split_list(&args.value_of("--benches"))
                    .iter()
                    .map(|name| {
                        Benchmark::ALL
                            .iter()
                            .copied()
                            .find(|b| b.name().eq_ignore_ascii_case(name))
                            .map(Workload::Suite)
                            .unwrap_or_else(|| fail(&format!("unknown benchmark {name:?}")))
                    })
                    .collect();
            }
            "--apps" => with_apps = true,
            "--versions" => version_sweep = true,
            flag => fail(&format!("unknown flag {flag:?}")),
        }
    }
    if spec.scale == 0 {
        fail("--scale must be at least 1");
    }
    if version_sweep {
        if explicit_engines {
            fail("--versions conflicts with --engines: pass one or the other");
        }
        spec.engines = EngineKind::all_dbt_versions();
    }
    if with_apps {
        spec.workloads
            .extend(App::ALL.iter().copied().map(Workload::App));
    }

    let cells = spec.cells().len();
    let total_jobs = spec.expand().len();
    eprintln!(
        "[campaign {}] {} guests × {} engines × {} workloads = {cells} cells, \
         {total_jobs} jobs on {jobs} worker(s), scale {}",
        spec.name,
        spec.guests.len(),
        spec.engines.len(),
        spec.workloads.len(),
        spec.scale,
    );
    let result = run(
        &spec,
        &RunnerOpts {
            jobs,
            verbose: false,
        },
    );
    eprintln!(
        "[campaign {} finished in {:.2}s]",
        spec.name, result.wall_secs
    );

    print!("{}", render_summary(&result));
    if let Some(path) = out_path {
        write_file(&path, result.to_json().as_bytes());
    }
    // Expected matrix holes (`-` / `-†`) are fine; cells that *failed*
    // (limits, panics) mean the measurement run itself is unsound.
    let failed = result
        .cells
        .iter()
        .any(|c| matches!(c.status, simbench_campaign::CellStatus::Failed(_)));
    if failed {
        eprintln!(
            "[campaign {}: some cells failed — exiting non-zero]",
            spec.name
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn campaign_compare(mut args: Args) -> ExitCode {
    let mut current_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut threshold = 0.25f64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = Some(args.value_of("--baseline")),
            "--threshold" => {
                threshold = args.parse_of("--threshold");
                if threshold <= 0.0 || threshold.is_nan() {
                    fail("--threshold must be a positive fraction, e.g. 0.25");
                }
            }
            path if !path.starts_with('-') && current_path.is_none() => {
                current_path = Some(path.to_string())
            }
            path if !path.starts_with('-') => fail(&format!(
                "unexpected argument {path:?} (current result already given)"
            )),
            flag => fail(&format!("unknown flag {flag:?}")),
        }
    }
    let current_path = current_path.unwrap_or_else(|| fail("compare needs a current result file"));
    let baseline_path = baseline_path.unwrap_or_else(|| fail("compare needs --baseline FILE"));
    let current = CampaignResult::load(&current_path).unwrap_or_else(|e| fail(&e));
    let baseline = CampaignResult::load(&baseline_path).unwrap_or_else(|e| fail(&e));
    let report = compare(&baseline, &current, threshold);
    print!("{}", report.render());
    // Exit codes are part of the interface: 0 clean, 1 timing
    // regressions only (CI may treat as a warning — wall-clock is
    // machine-dependent), 3 when cells stopped completing (always a
    // hard failure; 2 is reserved for usage errors).
    if !report.broken().is_empty() {
        ExitCode::from(3)
    } else if report.regressions().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

fn split_list(raw: &str) -> Vec<String> {
    let items: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if items.is_empty() {
        fail(&format!("empty list {raw:?}"));
    }
    items
}

fn write_file(path: &str, bytes: &[u8]) {
    let mut f =
        std::fs::File::create(path).unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
    f.write_all(bytes)
        .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
    eprintln!("[wrote {path}]");
}

/// What `--list` and `campaign list` print: every selectable figure,
/// benchmark, app, engine and version.
fn render_list() -> String {
    let mut out = String::from("figures:\n");
    for f in FIGURES {
        out.push_str(&format!("  {f}\n"));
    }
    out.push_str("  all\n\nbenchmarks (--benches):\n");
    for b in Benchmark::ALL {
        out.push_str(&format!("  {:<28} [{}]\n", b.name(), b.category().name()));
    }
    out.push_str("\napps (--apps adds all):\n");
    for a in App::ALL {
        out.push_str(&format!("  {}\n", a.name()));
    }
    out.push_str("\nengines (--engines):\n");
    for e in EngineKind::fig7_columns() {
        out.push_str(&format!("  {:<18} {}\n", e.id(), e.name()));
    }
    out.push_str("\nDBT versions (dbt@<version>, --versions selects all):\n");
    for v in QEMU_VERSIONS {
        out.push_str(&format!("  {}\n", v.name));
    }
    out.push_str("\nguests (--guests):\n  armlet\n  petix\n");
    out
}

/// Human summary of a finished campaign: per-engine geomeans plus any
/// problem cells.
fn render_summary(result: &CampaignResult) -> String {
    use simbench_campaign::table::{fmt_secs, Table};
    use simbench_campaign::CellStatus;

    let mut out = format!(
        "campaign {} — scale {}, {} rep(s), {} cells\n\n",
        result.name,
        result.scale,
        result.reps,
        result.cells.len()
    );
    let mut table = Table::new(["guest", "engine", "ok", "geomean secs", "flagged"]);
    for (key, cells) in
        simbench_campaign::result::group_by(&result.cells, |c| (c.guest.clone(), c.engine.clone()))
    {
        let ok: Vec<f64> = cells
            .iter()
            .filter(|c| c.status == CellStatus::Ok)
            .filter_map(|c| c.metric())
            .collect();
        let flagged = cells
            .iter()
            .filter(|c| matches!(c.status, CellStatus::Failed(_) | CellStatus::Unsupported(_)))
            .count();
        table.row([
            key.0,
            key.1,
            format!("{}/{}", ok.len(), cells.len()),
            if ok.is_empty() {
                "-".to_string()
            } else {
                fmt_secs(simbench_campaign::geomean(&ok))
            },
            if flagged == 0 {
                String::new()
            } else {
                format!("{flagged}")
            },
        ]);
    }
    out.push_str(&table.render());
    let failed: Vec<String> = result
        .cells
        .iter()
        .filter_map(|c| match &c.status {
            CellStatus::Failed(why) => Some(format!(
                "  {}/{} {}: {why}\n",
                c.guest, c.engine, c.workload
            )),
            _ => None,
        })
        .collect();
    if !failed.is_empty() {
        out.push_str("\nfailed cells:\n");
        for line in failed {
            out.push_str(&line);
        }
    }
    out
}

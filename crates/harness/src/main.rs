//! SimBench-rs experiment CLI.
//!
//! ```text
//! simbench-harness <fig2|fig3|fig4|fig5|fig6|fig7|fig8|all> [--scale N] [--jobs N] [--out FILE]
//! simbench-harness campaign run     [--scale N] [--jobs N] [--reps R] [--out FILE] [--name S]
//!                                   [--guests LIST] [--engines LIST] [--benches LIST]
//!                                   [--apps] [--versions] [--shard I/N]
//!                                   [--precision RCI [--min-reps N] [--max-reps N]]
//!                                   [--trace FILE] [--progress[=ndjson]]
//! simbench-harness campaign merge   <SHARD.json>... --out FILE
//! simbench-harness campaign compare <CURRENT.json> --baseline FILE
//!                                   [--threshold FRAC | --counters [--tolerance FRAC]]
//! simbench-harness campaign list
//! simbench-harness report <CAMPAIGN.json>
//! simbench-harness model <calibrate|predict|validate> <CAMPAIGN.json>
//!                        [--guest G] [--engine E] [--profile-engine P] [--max-error FACTOR]
//! simbench-harness selfbench <CAMPAIGN.json> [--out FILE] [--gate BASELINE.json]
//! simbench-harness differ <guest> <engineA> <engineB>
//!                         (--workload <W|all> | --fuzz SEED [--programs N])
//!                         [--max-insns K] [--checkpoints C] [--scale N]
//! simbench-harness analyze <guest|all> [--workload <W|all> | --fuzz SEED [--programs N]]
//!                          [--scale N] [--fuel N] [--check] [--out FILE]
//! simbench-harness lint [--root DIR]
//! simbench-harness --list
//! ```
//!
//! `differ` runs the same binary on both engines in checkpointed
//! lockstep and compares architectural state digests; a mismatch is
//! bisected to the first divergent instruction and reported with a
//! named state diff (exit 1). `--workload` takes a benchmark or app
//! name, a `suite:`/`app:` id, or `all` for every suite benchmark the
//! guest supports; `--fuzz` sweeps N seeded random programs instead.
//!
//! `analyze` runs the static analyzer over guest images without
//! executing them on an engine: CFG recovery with invariant proofs,
//! per-block DBT-promotion safety classes, and a static event-profile
//! prediction (`--check` verifies it counter-for-counter against the
//! reference interpreter). `--workload all` (the default) sweeps every
//! suite benchmark and app the guest supports; `--fuzz SEED` analyzes
//! the differ's seeded program stream instead. `--out` persists the
//! `simbench-analysis/v1` artifact. Exit 1 when any subject has an
//! invariant violation or check mismatch.
//!
//! `lint` runs the hot-path source lint over the designated
//! allocation-free modules (exit 1 on any finding).
//!
//! `--quiet` / `-v` are global: they may appear anywhere on the command
//! line and set the stderr log level (warnings only / debug). Stdout
//! reports, persisted files and exit codes are level-independent —
//! `--quiet` can never change what a script parses.
//!
//! Observability: `campaign run --trace FILE` switches the process-wide
//! telemetry on, writes a Chrome trace-event JSON of the run's spans
//! and events to FILE, and snapshots the engine-metric registry into
//! the persisted campaign's `telemetry` block (rendered later by
//! `report`). `--progress` streams per-cell start/converge/finish
//! records on stderr; `--progress=ndjson` emits them as one JSON object
//! per line. `selfbench --gate` compares wall-clock rates against a
//! stored baseline and exits 1 only when Student-t confidence
//! intervals separate.
//!
//! Unknown flags and malformed values are hard errors: a typo must not
//! silently change what gets measured. Exit codes are part of the
//! interface: 0 clean, 1 regression (timing or counter drift, or a
//! separated wall-clock CI under `selfbench --gate`), 2 a cell that
//! completed in the baseline no longer completes, 3 usage errors and
//! unreadable inputs, 4 an incoherent shard set handed to `campaign
//! merge` (overlapping, missing or spec-mismatched shards).

use std::io::Write as _;
use std::process::ExitCode;

use simbench_apps::App;
use simbench_campaign::{
    compare, compare_counters, merge, CampaignResult, CampaignSpec, EngineKind, Guest,
    PrecisionTarget, RunnerOpts, Shard, Workload,
};
use simbench_dbt::QEMU_VERSIONS;
use simbench_harness::{fig2, fig3, fig4, fig5, fig6, fig7, fig8, model, Config};
use simbench_suite::Benchmark;

const USAGE: &str = "usage: simbench-harness <fig2|fig3|fig4|fig5|fig6|fig7|fig8|all> \
                     [--scale N] [--jobs N] [--out FILE]
       simbench-harness campaign run [--scale N] [--jobs N] [--reps R] [--out FILE] [--name S]
                                     [--guests LIST] [--engines LIST] [--benches LIST]
                                     [--apps] [--versions] [--shard I/N]
                                     [--precision RCI [--min-reps N] [--max-reps N]]
                                     [--trace FILE] [--progress[=ndjson]]
                                     [--journal DIR | --resume DIR]
                                     [--cell-timeout SECS] [--retries N] [--failpoints SPEC]
       simbench-harness campaign merge <SHARD.json>... --out FILE
       simbench-harness campaign compare <CURRENT.json> --baseline FILE
                                     [--threshold FRAC | --counters [--tolerance FRAC]]
       simbench-harness campaign list
       simbench-harness report <CAMPAIGN.json>
       simbench-harness model <calibrate|predict|validate> <CAMPAIGN.json>
                              [--guest G] [--engine E] [--profile-engine P] [--max-error FACTOR]
       simbench-harness selfbench <CAMPAIGN.json> [--out FILE] [--gate BASELINE.json]
       simbench-harness differ <guest> <engineA> <engineB>
                               (--workload <W|all> | --fuzz SEED [--programs N])
                               [--max-insns K] [--checkpoints C] [--scale N]
       simbench-harness analyze <guest|all> [--workload <W|all> | --fuzz SEED [--programs N]]
                                [--scale N] [--fuel N] [--check] [--out FILE]
       simbench-harness lint [--root DIR]
       simbench-harness --list
global flags (anywhere on the line): --quiet (warnings only), -v/--verbose (debug)
exit codes: 0 clean, 1 failure/regression, 2 broken coverage, 3 usage,
            4 merge/journal data error, 130 interrupted (SIGINT/SIGTERM)";

fn fail(msg: &str) -> ! {
    eprintln!("simbench-harness: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(3);
}

/// `"armlet | petix | riscle"` — the guest ids accepted on the CLI,
/// from the registry table.
fn guest_ids() -> String {
    Guest::ALL.map(|g| g.isa_name()).join(" | ")
}

/// Typed argument cursor with strict error reporting.
struct Args {
    args: std::vec::IntoIter<String>,
}

impl Args {
    fn new(args: Vec<String>) -> Self {
        Args {
            args: args.into_iter(),
        }
    }

    fn next(&mut self) -> Option<String> {
        self.args.next()
    }

    fn value_of(&mut self, flag: &str) -> String {
        match self.next() {
            Some(v) if !v.starts_with("--") => v,
            _ => fail(&format!("{flag} requires a value")),
        }
    }

    fn parse_of<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        let raw = self.value_of(flag);
        raw.parse()
            .unwrap_or_else(|_| fail(&format!("invalid value for {flag}: {raw:?}")))
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    // Global log-level flags are position-independent — `campaign run
    // --quiet` and `--quiet campaign run` mean the same thing — so they
    // are extracted before subcommand dispatch. Everything they affect
    // is stderr narration; stdout reports and exit codes never change.
    let quiet = argv.iter().any(|a| a == "--quiet");
    let verbose = argv.iter().any(|a| a == "-v" || a == "--verbose");
    if quiet && verbose {
        fail("--quiet conflicts with -v/--verbose");
    }
    argv.retain(|a| a != "--quiet" && a != "-v" && a != "--verbose");
    if quiet {
        simbench_obs::log::set_level(simbench_obs::log::LEVEL_QUIET);
    } else if verbose {
        simbench_obs::log::set_level(simbench_obs::log::LEVEL_DEBUG);
    }
    match argv.first().map(String::as_str) {
        Some("campaign") => {
            argv.remove(0);
            campaign_main(argv)
        }
        Some("report") => {
            argv.remove(0);
            report_main(argv)
        }
        Some("model") => {
            argv.remove(0);
            model_main(argv)
        }
        Some("selfbench") => {
            argv.remove(0);
            selfbench_main(argv)
        }
        Some("differ") => {
            argv.remove(0);
            differ_main(argv)
        }
        Some("analyze") => {
            argv.remove(0);
            analyze_main(argv)
        }
        Some("lint") => {
            argv.remove(0);
            lint_main(argv)
        }
        _ => figures_main(argv),
    }
}

// ---------------------------------------------------------------------------
// Figure mode.
// ---------------------------------------------------------------------------

const FIGURES: [&str; 7] = ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"];

fn figures_main(argv: Vec<String>) -> ExitCode {
    if argv.is_empty() {
        fail("missing figure name");
    }
    let mut which: Option<String> = None;
    let mut scale = 2000u64;
    let mut jobs = 1usize;
    let mut out_path: Option<String> = None;
    let mut args = Args::new(argv);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.parse_of("--scale"),
            "--jobs" => jobs = args.parse_of::<usize>("--jobs").max(1),
            "--out" => out_path = Some(args.value_of("--out")),
            "--list" | "list" => {
                print!("{}", render_list());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            name if !name.starts_with('-') && which.is_none() => which = Some(name.to_string()),
            name if !name.starts_with('-') => fail(&format!(
                "unexpected argument {name:?} (figure already given)"
            )),
            flag => fail(&format!("unknown flag {flag:?}")),
        }
    }
    let which = which.unwrap_or_else(|| fail("missing figure name"));
    if which != "all" && !FIGURES.contains(&which.as_str()) {
        fail(&format!("unknown figure {which:?}"));
    }
    if scale == 0 {
        fail("--scale must be at least 1");
    }
    let cfg = Config::with_scale(scale).with_jobs(jobs);

    let mut output = String::new();
    let run_one = |name: &str, output: &mut String| {
        let t0 = std::time::Instant::now();
        let text = match name {
            "fig2" => fig2::run(&cfg).1,
            "fig3" => fig3::run(&cfg).1,
            "fig4" => fig4::run().1,
            "fig5" => fig5::run(),
            "fig6" => fig6::run(&cfg).1,
            "fig7" => fig7::run(&cfg).1,
            "fig8" => fig8::run(&cfg).1,
            _ => unreachable!("figure validated above"),
        };
        simbench_obs::info!("[{name} completed in {:.1?}]", t0.elapsed());
        output.push_str(&text);
        output.push('\n');
    };

    simbench_obs::info!(
        "scale divisor: {scale} (paper iteration counts / {scale}), {jobs} worker(s)"
    );
    if which == "all" {
        for name in ["fig5", "fig4", "fig3", "fig7", "fig2", "fig6", "fig8"] {
            run_one(name, &mut output);
        }
    } else {
        run_one(&which, &mut output);
    }

    print!("{output}");
    if let Some(path) = out_path {
        write_file(&path, output.as_bytes());
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Campaign mode.
// ---------------------------------------------------------------------------

fn campaign_main(argv: Vec<String>) -> ExitCode {
    let mut args = Args::new(argv);
    match args.next().as_deref() {
        Some("run") => campaign_run(args),
        Some("merge") => campaign_merge(args),
        Some("compare") => campaign_compare(args),
        Some("list") => {
            print!("{}", render_list());
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown campaign subcommand {other:?}")),
        None => fail("campaign needs a subcommand: run | merge | compare | list"),
    }
}

fn campaign_run(mut args: Args) -> ExitCode {
    let mut spec = CampaignSpec::full_matrix(20_000);
    spec.name = "campaign".to_string();
    let mut jobs = 1usize;
    let mut out_path: Option<String> = None;
    let mut version_sweep = false;
    let mut with_apps = false;
    let mut explicit_engines = false;
    let mut shard: Option<Shard> = None;
    let mut precision: Option<f64> = None;
    let mut min_reps: Option<u32> = None;
    let mut max_reps: Option<u32> = None;
    let mut explicit_reps = false;
    let mut trace_path: Option<String> = None;
    let mut journal_dir: Option<String> = None;
    let mut resume_dir: Option<String> = None;
    let mut cell_timeout: Option<f64> = None;
    let mut retries = 0u32;
    let mut failpoints: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace_path = Some(args.value_of("--trace")),
            "--journal" => journal_dir = Some(args.value_of("--journal")),
            "--resume" => resume_dir = Some(args.value_of("--resume")),
            "--cell-timeout" => {
                let t: f64 = args.parse_of("--cell-timeout");
                if !(t > 0.0 && t.is_finite()) {
                    fail("--cell-timeout must be a positive number of seconds");
                }
                cell_timeout = Some(t);
            }
            "--retries" => retries = args.parse_of("--retries"),
            "--failpoints" => failpoints = Some(args.value_of("--failpoints")),
            "--progress" => {
                simbench_obs::progress::set_mode(simbench_obs::ProgressMode::Human);
            }
            "--progress=ndjson" => {
                simbench_obs::progress::set_mode(simbench_obs::ProgressMode::Ndjson);
            }
            "--scale" => spec.scale = args.parse_of("--scale"),
            "--jobs" => jobs = args.parse_of::<usize>("--jobs").max(1),
            "--reps" => {
                explicit_reps = true;
                spec.reps = args.parse_of::<u32>("--reps").max(1);
            }
            "--precision" => precision = Some(args.parse_of("--precision")),
            "--min-reps" => min_reps = Some(args.parse_of("--min-reps")),
            "--max-reps" => max_reps = Some(args.parse_of("--max-reps")),
            "--out" => out_path = Some(args.value_of("--out")),
            "--name" => spec.name = args.value_of("--name"),
            "--shard" => {
                let raw = args.value_of("--shard");
                shard = Some(Shard::parse(&raw).unwrap_or_else(|e| fail(&e)));
            }
            "--guests" => {
                spec.guests = split_list(&args.value_of("--guests"))
                    .iter()
                    .map(|id| {
                        Guest::by_isa_name(id)
                            .unwrap_or_else(|| fail(&format!("unknown guest {id:?}")))
                    })
                    .collect();
            }
            "--engines" => {
                explicit_engines = true;
                spec.engines = split_list(&args.value_of("--engines"))
                    .iter()
                    .map(|id| {
                        EngineKind::by_id(id)
                            .unwrap_or_else(|| fail(&format!("unknown engine {id:?}")))
                    })
                    .collect();
            }
            "--benches" => {
                spec.workloads = split_list(&args.value_of("--benches"))
                    .iter()
                    .map(|name| {
                        Benchmark::ALL
                            .iter()
                            .copied()
                            .find(|b| b.name().eq_ignore_ascii_case(name))
                            .map(Workload::Suite)
                            .unwrap_or_else(|| fail(&format!("unknown benchmark {name:?}")))
                    })
                    .collect();
            }
            "--apps" => with_apps = true,
            "--versions" => version_sweep = true,
            flag => fail(&format!("unknown flag {flag:?}")),
        }
    }
    if spec.scale == 0 {
        fail("--scale must be at least 1");
    }
    // Adaptive repetitions: --precision switches the runner into
    // "measure until the relative CI is tight" mode. Knobs of the
    // other mode are usage errors, not silently ignored: rep bounds
    // require --precision, and a fixed --reps contradicts it.
    match (precision, min_reps, max_reps) {
        (None, None, None) => {}
        (None, _, _) => {
            fail("--min-reps/--max-reps require --precision (fixed-reps runs take --reps)")
        }
        (Some(rci), min, max) => {
            if explicit_reps {
                fail("--reps conflicts with --precision: adaptive runs take --min-reps/--max-reps");
            }
            let min = min.unwrap_or(2);
            // The default ceiling rises with an explicit floor: failing
            // a `--min-reps 12` run over a 10 the user never typed
            // would be nonsense.
            let max = max.unwrap_or(min.max(10));
            spec.precision = Some(PrecisionTarget::new(rci, min, max).unwrap_or_else(|e| fail(&e)));
        }
    }
    if version_sweep {
        if explicit_engines {
            fail("--versions conflicts with --engines: pass one or the other");
        }
        spec.engines = EngineKind::all_dbt_versions();
    }
    if with_apps {
        spec.workloads
            .extend(App::ALL.iter().copied().map(Workload::App));
    }
    if journal_dir.is_some() && resume_dir.is_some() {
        fail("--journal conflicts with --resume: --resume already appends to DIR's journal");
    }
    // Fault injection: the --failpoints flag wins over the
    // SIMBENCH_FAILPOINTS environment variable. A bad spec is a usage
    // error either way — injecting the wrong fault silently would make
    // every fault-tolerance test meaningless.
    match &failpoints {
        Some(fp) => simbench_campaign::failpoint::arm(fp).unwrap_or_else(|e| fail(&e)),
        None => {
            simbench_campaign::failpoint::arm_from_env().unwrap_or_else(|e| fail(&e));
        }
    }
    // Graceful shutdown: SIGINT/SIGTERM drains the runner at the next
    // repetition boundary and the partial artifact is still persisted.
    simbench_obs::shutdown::install();

    let cells = spec.cells().len();
    let total_jobs = spec.expand_shard(shard).len();
    let shard_note = shard.map_or(String::new(), |s| format!(", shard {s}"));
    let adaptive_note = spec
        .precision
        .map_or(String::new(), |p| format!(" initial (adaptive: {p})"));
    simbench_obs::info!(
        "[campaign {}] {} guests × {} engines × {} workloads = {cells} cells, \
         {total_jobs} jobs{adaptive_note} on {jobs} worker(s), scale {}{shard_note}",
        spec.name,
        spec.guests.len(),
        spec.engines.len(),
        spec.workloads.len(),
        spec.scale,
    );
    // --trace arms the whole telemetry subsystem for this process:
    // spans/events for the trace file, metrics for the persisted
    // snapshot. Default runs keep both off — the recording sites then
    // cost one relaxed load + branch each, so the measurements a trace
    // run perturbs are only its own.
    if trace_path.is_some() {
        simbench_obs::set_tracing(true);
        simbench_obs::set_metrics(true);
    }
    let mut opts = RunnerOpts {
        jobs,
        verbose: false,
        cell_timeout: cell_timeout.map(std::time::Duration::from_secs_f64),
        retries,
        journal: None,
    };
    // Resume reconstructs finished cells from the write-ahead journal
    // and measures only the remainder; counters are deterministic, so
    // the resumed artifact is counter-exact against an uninterrupted
    // run. A --resume directory without a journal file degrades to a
    // fresh journaled start (the campaign never ran far enough to
    // record anything); a journal written for a *different* campaign
    // is a data error — resuming it would mismeasure.
    let mut done: Vec<(usize, simbench_campaign::CellResult)> = Vec::new();
    if let Some(dir) = &resume_dir {
        let journal_file = std::path::Path::new(dir).join(simbench_campaign::JOURNAL_FILE);
        if journal_file.exists() {
            let replayed = match simbench_campaign::replay(dir, &spec, shard) {
                Ok(r) => r,
                Err(e) => {
                    simbench_obs::warn!("simbench-harness: cannot resume from {dir}: {e}");
                    return ExitCode::from(4);
                }
            };
            simbench_obs::info!(
                "[campaign {}: resuming from {dir} — {} finished cell(s) replayed from \
                 {} repetition record(s){}{}]",
                spec.name,
                replayed.cells.len(),
                replayed.reps,
                if replayed.broken > 0 {
                    format!(", {} broken cell(s) re-measured", replayed.broken)
                } else {
                    String::new()
                },
                if replayed.torn {
                    ", torn final record discarded"
                } else {
                    ""
                },
            );
            done = replayed.cells;
            match simbench_campaign::Journal::resume(dir) {
                Ok(j) => opts.journal = Some(std::sync::Arc::new(j)),
                Err(e) => {
                    simbench_obs::warn!("simbench-harness: cannot reopen journal in {dir}: {e}");
                    return ExitCode::from(4);
                }
            }
        } else {
            simbench_obs::warn!(
                "[campaign {}: no journal in {dir} — starting fresh (and journaling there)]",
                spec.name
            );
            match simbench_campaign::Journal::create(dir, &spec, shard) {
                Ok(j) => opts.journal = Some(std::sync::Arc::new(j)),
                Err(e) => {
                    simbench_obs::warn!("simbench-harness: cannot create journal in {dir}: {e}");
                    return ExitCode::from(4);
                }
            }
        }
    } else if let Some(dir) = &journal_dir {
        match simbench_campaign::Journal::create(dir, &spec, shard) {
            Ok(j) => opts.journal = Some(std::sync::Arc::new(j)),
            Err(e) => {
                simbench_obs::warn!("simbench-harness: cannot create journal in {dir}: {e}");
                return ExitCode::from(4);
            }
        }
    }
    let mut result = simbench_campaign::run_shard_resumed(&spec, &opts, shard, &done);
    simbench_obs::info!(
        "[campaign {}{shard_note} finished in {:.2}s]",
        spec.name,
        result.wall_secs
    );

    if trace_path.is_some() {
        let telemetry = simbench_campaign::Telemetry::from(simbench_obs::metrics::snapshot());
        if !telemetry.is_empty() {
            result.telemetry = Some(telemetry);
        }
    }
    print!("{}", render_summary(&result));
    if let Some(path) = out_path {
        let _obs = simbench_obs::span!("campaign.persist");
        write_file(&path, result.to_json().as_bytes());
    }
    if let Some(path) = trace_path {
        // Stop recording before draining, so the drain observes a
        // complete, quiescent set of rings (the persist span above is
        // the last thing recorded).
        simbench_obs::set_tracing(false);
        write_file(&path, simbench_obs::trace::chrome_trace_json().as_bytes());
    }
    // An interrupted run persisted a valid partial artifact above;
    // exit 130 tells the caller (and CI) the campaign is incomplete by
    // interruption, not by measurement failure.
    if simbench_obs::shutdown::interrupted() {
        simbench_obs::warn!(
            "[campaign {}: interrupted — partial artifact persisted, exiting 130]",
            spec.name
        );
        return ExitCode::from(simbench_obs::shutdown::EXIT_INTERRUPTED as u8);
    }
    // Expected matrix holes (`-` / `-†`) are fine; cells that *failed*
    // (limits, transient errors), quarantined (panicked) or timed out
    // mean the measurement run itself is unsound.
    let failed = result.cells.iter().any(|c| {
        use simbench_campaign::CellStatus;
        matches!(
            c.status,
            CellStatus::Failed(_) | CellStatus::Quarantined(_) | CellStatus::TimedOut(_)
        )
    });
    if failed {
        simbench_obs::warn!(
            "[campaign {}: some cells failed — exiting non-zero]",
            spec.name
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn campaign_merge(mut args: Args) -> ExitCode {
    let mut shard_paths: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(args.value_of("--out")),
            path if !path.starts_with('-') => shard_paths.push(path.to_string()),
            flag => fail(&format!("unknown flag {flag:?}")),
        }
    }
    if shard_paths.is_empty() {
        fail("merge needs at least one shard result file");
    }
    let out_path = out_path.unwrap_or_else(|| fail("merge needs --out FILE"));
    let shards: Vec<CampaignResult> = shard_paths
        .iter()
        .map(|p| CampaignResult::load(p).unwrap_or_else(|e| fail(&e.to_string())))
        .collect();
    // Data-level merge failures (overlapping, missing or mismatched
    // shards) get their own exit code, distinct from usage errors, so
    // CI can tell "bad shard set" from "typo on the command line".
    let merged = match merge(&shards) {
        Ok(m) => m,
        Err(e) => {
            simbench_obs::warn!("simbench-harness: cannot merge: {e}");
            return ExitCode::from(4);
        }
    };
    simbench_obs::info!(
        "[merged {} shard(s): {} cells, campaign {}]",
        shards.len(),
        merged.cells.len(),
        merged.name
    );
    print!("{}", render_summary(&merged));
    write_file(&out_path, merged.to_json().as_bytes());
    ExitCode::SUCCESS
}

fn campaign_compare(mut args: Args) -> ExitCode {
    let mut current_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut threshold: Option<f64> = None;
    let mut tolerance: Option<f64> = None;
    let mut counters = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = Some(args.value_of("--baseline")),
            "--threshold" => {
                let t: f64 = args.parse_of("--threshold");
                if t <= 0.0 || t.is_nan() {
                    fail("--threshold must be a positive fraction, e.g. 0.25");
                }
                threshold = Some(t);
            }
            "--counters" => counters = true,
            "--tolerance" => {
                let t: f64 = args.parse_of("--tolerance");
                if !(0.0..f64::INFINITY).contains(&t) {
                    fail("--tolerance must be a non-negative fraction, e.g. 0.01");
                }
                tolerance = Some(t);
            }
            path if !path.starts_with('-') && current_path.is_none() => {
                current_path = Some(path.to_string())
            }
            path if !path.starts_with('-') => fail(&format!(
                "unexpected argument {path:?} (current result already given)"
            )),
            flag => fail(&format!("unknown flag {flag:?}")),
        }
    }
    if counters && threshold.is_some() {
        fail("--threshold applies to the timing path; with --counters use --tolerance");
    }
    if !counters && tolerance.is_some() {
        fail("--tolerance applies to --counters; the timing path takes --threshold");
    }
    let current_path = current_path.unwrap_or_else(|| fail("compare needs a current result file"));
    let baseline_path = baseline_path.unwrap_or_else(|| fail("compare needs --baseline FILE"));
    let current = CampaignResult::load(&current_path).unwrap_or_else(|e| fail(&e.to_string()));
    let baseline = CampaignResult::load(&baseline_path).unwrap_or_else(|e| fail(&e.to_string()));
    // Exit codes (both paths): 0 clean, 1 regression — timing drift
    // beyond --threshold, or any counter difference beyond --tolerance
    // (counters are machine-independent, so CI can hard-fail on 1 for
    // the counters path while merely warning for the timing path) —
    // 2 when a cell that completed in the baseline no longer completes,
    // 3 for usage errors and unreadable inputs.
    let (clean, broke) = if counters {
        let report = compare_counters(&baseline, &current, tolerance.unwrap_or(0.0));
        print!("{}", report.render());
        (report.clean(), !report.broken().is_empty())
    } else {
        let report = compare(&baseline, &current, threshold.unwrap_or(0.25));
        print!("{}", report.render());
        (report.clean(), !report.broken().is_empty())
    };
    if broke {
        ExitCode::from(2)
    } else if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Model mode.
// ---------------------------------------------------------------------------

/// Shared argument set of the three model subcommands.
struct ModelArgs {
    result: CampaignResult,
    guest: String,
    engine: String,
    profile_engine: String,
    max_error: Option<f64>,
}

fn model_args(mut args: Args, verb: &str) -> ModelArgs {
    let mut campaign_path: Option<String> = None;
    let mut guest = "armlet".to_string();
    let mut engine = "dbt".to_string();
    let mut profile_engine: Option<String> = None;
    let mut max_error: Option<f64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--guest" => {
                guest = args.value_of("--guest");
                if Guest::by_isa_name(&guest).is_none() {
                    fail(&format!("unknown guest {guest:?}"));
                }
            }
            "--engine" => engine = args.value_of("--engine"),
            "--profile-engine" if verb != "calibrate" => {
                profile_engine = Some(args.value_of("--profile-engine"))
            }
            "--max-error" if verb == "validate" => {
                let f: f64 = args.parse_of("--max-error");
                if f < 1.0 || f.is_nan() {
                    fail("--max-error is an error *factor*, so it must be >= 1.0");
                }
                max_error = Some(f);
            }
            // Flags that exist but don't apply to this subcommand are
            // rejected, not ignored: accepting a gate like --max-error
            // and never consulting it would silently weaken CI.
            flag @ ("--profile-engine" | "--max-error") => {
                fail(&format!("{flag} does not apply to model {verb}"))
            }
            path if !path.starts_with('-') && campaign_path.is_none() => {
                campaign_path = Some(path.to_string())
            }
            path if !path.starts_with('-') => fail(&format!(
                "unexpected argument {path:?} (campaign file already given)"
            )),
            flag => fail(&format!("unknown flag {flag:?}")),
        }
    }
    let path = campaign_path.unwrap_or_else(|| fail("model needs a stored campaign JSON file"));
    let result = CampaignResult::load(&path).unwrap_or_else(|e| fail(&e.to_string()));
    // Engine ids are validated against the known set and canonicalized
    // (`dbt` means the latest version profile) before cell lookup.
    let engine = EngineKind::by_id(&engine)
        .unwrap_or_else(|| fail(&format!("unknown engine {engine:?}")))
        .id();
    let profile_engine = match profile_engine {
        Some(p) => EngineKind::by_id(&p)
            .unwrap_or_else(|| fail(&format!("unknown engine {p:?}")))
            .id(),
        // calibrate never reads profiles; don't scan for a default.
        None if verb == "calibrate" => String::new(),
        None => model::default_profile_engine(&result, &guest, &engine),
    };
    ModelArgs {
        result,
        guest,
        engine,
        profile_engine,
        max_error,
    }
}

fn model_main(argv: Vec<String>) -> ExitCode {
    use simbench_campaign::table::{fmt_secs, Table};

    let mut args = Args::new(argv);
    let verb = match args.next() {
        Some(v) => v,
        None => fail("model needs a subcommand: calibrate | predict | validate"),
    };
    // Validate the verb before touching flags or loading the campaign,
    // so a typo'd subcommand is reported as exactly that.
    if !matches!(verb.as_str(), "calibrate" | "predict" | "validate") {
        fail(&format!("unknown model subcommand {verb:?}"));
    }
    let m = model_args(args, &verb);
    match verb.as_str() {
        "calibrate" => {
            let cost = model::CostModel::from_campaign(&m.result, &m.guest, &m.engine)
                .unwrap_or_else(|e| fail(&e));
            println!(
                "cost model for {}/{} (campaign {:?}, scale {})",
                m.guest, m.engine, m.result.name, m.result.scale
            );
            println!("  base cost per instruction: {:.3e} s", cost.per_insn);
            let mut table = Table::new(["benchmark", "cost per tested op"]);
            for (bench, cost) in &cost.per_op {
                table.row([bench.name().to_string(), format!("{cost:.3e} s")]);
            }
            print!("{}", table.render());
            ExitCode::SUCCESS
        }
        "predict" | "validate" => {
            let preds =
                model::predict_from_campaign(&m.result, &m.guest, &m.engine, &m.profile_engine)
                    .unwrap_or_else(|e| fail(&e));
            println!(
                "model {verb} for {}/{} — costs calibrated from campaign {:?}, \
                 app event profiles from engine {}",
                m.guest, m.engine, m.result.name, m.profile_engine
            );
            let validating = verb == "validate";
            if validating && preds.iter().all(|p| p.measured.is_none()) {
                fail(&format!(
                    "campaign {:?} has no measured app cells for {}/{} to validate against",
                    m.result.name, m.guest, m.engine
                ));
            }
            let mut table = Table::new(["app", "predicted", "measured", "error factor"]);
            let mut errors = Vec::new();
            for p in &preds {
                let error = p.error_factor();
                if let Some(e) = error {
                    errors.push(e);
                }
                table.row([
                    p.app.clone(),
                    fmt_secs(p.predicted),
                    p.measured.map(fmt_secs).unwrap_or_else(|| "-".to_string()),
                    error
                        .map(|e| format!("{e:.2}×"))
                        .unwrap_or_else(|| "-".to_string()),
                ]);
            }
            print!("{}", table.render());
            if validating {
                let geo = simbench_campaign::geomean(&errors);
                let max = errors.iter().cloned().fold(f64::MIN, f64::max);
                println!(
                    "prediction error over {} app(s): geomean {geo:.2}×, worst {max:.2}×",
                    errors.len()
                );
                if let Some(limit) = m.max_error {
                    if geo > limit {
                        simbench_obs::warn!(
                            "[model validate: geomean error {geo:.2}× exceeds --max-error {limit}×]"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        _ => unreachable!("verb validated above"),
    }
}

// ---------------------------------------------------------------------------
// Report mode.
// ---------------------------------------------------------------------------

/// `report <CAMPAIGN.json>`: the human summary of a stored campaign
/// plus its `telemetry` block — engine-metric counters and histograms
/// snapshotted by `campaign run --trace`.
fn report_main(argv: Vec<String>) -> ExitCode {
    let mut args = Args::new(argv);
    let mut campaign_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            path if !path.starts_with('-') && campaign_path.is_none() => {
                campaign_path = Some(path.to_string())
            }
            path if !path.starts_with('-') => fail(&format!(
                "unexpected argument {path:?} (campaign file already given)"
            )),
            flag => fail(&format!("unknown flag {flag:?}")),
        }
    }
    let path = campaign_path.unwrap_or_else(|| fail("report needs a stored campaign JSON file"));
    let result = CampaignResult::load(&path).unwrap_or_else(|e| fail(&e.to_string()));
    print!("{}", render_summary(&result));
    print!("{}", simbench_harness::report::render_telemetry(&result));
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Self-bench mode.
// ---------------------------------------------------------------------------

/// `selfbench <CAMPAIGN.json> [--out FILE] [--gate BASELINE.json]`:
/// derive per-cell simulator throughput (MIPS / Muops/s) from a stored
/// campaign's iteration counts, instruction counters and median
/// timings. With `--out`, the `simbench-hotloop/v2` JSON report is
/// persisted — CI uploads it as `BENCH_hotloop.json` to track the
/// wall-clock trajectory alongside the counter-exact baseline. With
/// `--gate`, the report is compared against a stored baseline and the
/// exit code is 1 only when a cell's Student-t confidence intervals
/// separate with the current run on the slow side — overlap is noise.
fn selfbench_main(argv: Vec<String>) -> ExitCode {
    let mut args = Args::new(argv);
    let mut campaign_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut gate_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(args.value_of("--out")),
            "--gate" => gate_path = Some(args.value_of("--gate")),
            path if !path.starts_with('-') && campaign_path.is_none() => {
                campaign_path = Some(path.to_string())
            }
            path if !path.starts_with('-') => fail(&format!(
                "unexpected argument {path:?} (campaign file already given)"
            )),
            flag => fail(&format!("unknown flag {flag:?}")),
        }
    }
    let path = campaign_path.unwrap_or_else(|| fail("selfbench needs a stored campaign JSON file"));
    let result = CampaignResult::load(&path).unwrap_or_else(|e| fail(&e.to_string()));
    let report = simbench_harness::selfbench::report(&result);
    if report.cells.is_empty() {
        fail(&format!("campaign {:?} has no clean cells", result.name));
    }
    print!("{}", report.render());
    if let Some(path) = out_path {
        write_file(&path, report.to_json().as_bytes());
    }
    if let Some(gate_path) = gate_path {
        let text = std::fs::read_to_string(&gate_path)
            .unwrap_or_else(|e| fail(&format!("cannot read {gate_path}: {e}")));
        let baseline = simbench_harness::selfbench::Report::from_json(&text)
            .unwrap_or_else(|e| fail(&format!("{gate_path}: {e}")));
        let outcome = simbench_harness::selfbench::gate(&report, &baseline);
        print!("{}", outcome.render());
        if !outcome.clean() {
            simbench_obs::warn!(
                "[selfbench gate: {} cell(s) slower beyond both 95% CIs]",
                outcome.regressions.len()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Differ mode.
// ---------------------------------------------------------------------------

fn differ_main(argv: Vec<String>) -> ExitCode {
    use simbench_differ::{check_workload, fuzz_pair, DifferConfig};

    let mut args = Args::new(argv);
    let guest_id = args
        .next()
        .unwrap_or_else(|| fail("differ needs <guest> <engineA> <engineB>"));
    let guest = Guest::by_isa_name(&guest_id)
        .unwrap_or_else(|| fail(&format!("unknown guest {guest_id:?} ({})", guest_ids())));
    let parse_engine = |id: Option<String>| {
        let id = id.unwrap_or_else(|| fail("differ needs <guest> <engineA> <engineB>"));
        EngineKind::by_id(&id).unwrap_or_else(|| {
            fail(&format!(
                "unknown engine {id:?} (interp | dbt[@VERSION] | detailed | virt | native)"
            ))
        })
    };
    let engine_a = parse_engine(args.next());
    let engine_b = parse_engine(args.next());

    let mut workload: Option<String> = None;
    let mut fuzz_seed: Option<u64> = None;
    let mut programs = 25u32;
    let mut cfg = DifferConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workload" => workload = Some(args.value_of("--workload")),
            "--fuzz" => fuzz_seed = Some(args.parse_of("--fuzz")),
            "--programs" => programs = args.parse_of("--programs"),
            "--max-insns" => cfg.max_insns = args.parse_of("--max-insns"),
            "--checkpoints" => cfg.checkpoints = args.parse_of("--checkpoints"),
            "--scale" => cfg.scale = args.parse_of("--scale"),
            flag => fail(&format!("unknown flag {flag:?}")),
        }
    }

    // Ctrl-C / SIGTERM stops the sweep before the next subject: the
    // comparisons already completed are still reported, and the exit
    // code says "interrupted", not "agree" or "disagree".
    simbench_obs::shutdown::install();
    let (reports, planned) = match (workload, fuzz_seed) {
        (Some(_), Some(_)) => fail("--workload conflicts with --fuzz"),
        (None, None) => fail("differ needs --workload <W|all> or --fuzz SEED"),
        (Some(w), None) => {
            let workloads = differ_workloads(guest, &w);
            let planned = workloads.len();
            let mut reports = Vec::with_capacity(planned);
            for wl in workloads {
                if simbench_obs::shutdown::interrupted() {
                    break;
                }
                reports.push(
                    check_workload(guest, wl, engine_a, engine_b, &cfg).unwrap_or_else(|| {
                        fail(&format!(
                            "workload {:?} does not exist on guest {:?}",
                            wl.id(),
                            guest.isa_name()
                        ))
                    }),
                );
            }
            (reports, planned)
        }
        (None, Some(seed)) => (
            fuzz_pair(guest, engine_a, engine_b, seed, programs, &cfg),
            programs as usize,
        ),
    };

    let mut disagreements = 0usize;
    for report in &reports {
        print!("{}", report.render());
        if !report.agree() {
            disagreements += 1;
        }
    }
    if simbench_obs::shutdown::interrupted() {
        println!(
            "differ: interrupted — {} of {planned} comparison(s) completed, {} agree",
            reports.len(),
            reports.len() - disagreements,
        );
        return ExitCode::from(simbench_obs::shutdown::EXIT_INTERRUPTED as u8);
    }
    println!(
        "differ: {}/{} comparison(s) agree",
        reports.len() - disagreements,
        reports.len()
    );
    if disagreements > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Resolve a `--workload` selector: `all` (every suite benchmark the
/// guest supports), a `suite:`/`app:` id, or a bare benchmark/app name
/// (case-insensitive).
fn differ_workloads(guest: Guest, selector: &str) -> Vec<Workload> {
    if selector == "all" {
        return Benchmark::ALL
            .iter()
            .copied()
            .map(Workload::Suite)
            .filter(|wl| wl.supported_on(guest))
            .collect();
    }
    if let Some(wl) = Workload::by_id(selector) {
        return vec![wl];
    }
    let lower = selector.to_ascii_lowercase();
    Benchmark::ALL
        .iter()
        .copied()
        .map(Workload::Suite)
        .chain(App::ALL.iter().copied().map(Workload::App))
        .find(|wl| wl.name().to_ascii_lowercase() == lower)
        .map(|wl| vec![wl])
        .unwrap_or_else(|| {
            fail(&format!(
                "unknown workload {selector:?} (try a name from `campaign list`, a suite:/app: id, or `all`)"
            ))
        })
}

// ---------------------------------------------------------------------------
// Analyze mode.
// ---------------------------------------------------------------------------

fn analyze_main(argv: Vec<String>) -> ExitCode {
    use simbench_analyzer::{analyze_fuzz, analyze_workload, AnalyzeOpts};

    let mut args = Args::new(argv);
    let guest_id = args
        .next()
        .unwrap_or_else(|| fail("analyze needs <guest|all>"));
    let guests: Vec<Guest> = if guest_id == "all" {
        Guest::ALL.to_vec()
    } else {
        vec![Guest::by_isa_name(&guest_id).unwrap_or_else(|| {
            fail(&format!(
                "unknown guest {guest_id:?} ({} | all)",
                guest_ids()
            ))
        })]
    };

    let mut workload: Option<String> = None;
    let mut fuzz_seed: Option<u64> = None;
    let mut programs = 25u32;
    let mut scale = 20_000u64;
    let mut out_path: Option<String> = None;
    let mut opts = AnalyzeOpts::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workload" => workload = Some(args.value_of("--workload")),
            "--fuzz" => fuzz_seed = Some(args.parse_of("--fuzz")),
            "--programs" => programs = args.parse_of("--programs"),
            "--scale" => scale = args.parse_of("--scale"),
            "--fuel" => opts.fuel = args.parse_of("--fuel"),
            "--check" => opts.check = true,
            "--out" => out_path = Some(args.value_of("--out")),
            flag => fail(&format!("unknown flag {flag:?}")),
        }
    }
    if scale == 0 {
        fail("--scale must be at least 1");
    }
    if opts.fuel == 0 {
        fail("--fuel must be at least 1");
    }

    // Ctrl-C / SIGTERM stops the sweep before the next subject; the
    // analyses already completed are reported (and persisted with
    // --out) and the exit code says "interrupted".
    simbench_obs::shutdown::install();
    let interrupted = || simbench_obs::shutdown::interrupted();
    let analyses: Vec<simbench_analyzer::SubjectAnalysis> = match (workload, fuzz_seed) {
        (Some(_), Some(_)) => fail("--workload conflicts with --fuzz"),
        (w, None) => {
            let selector = w.unwrap_or_else(|| "all".to_string());
            let explicit = selector != "all";
            let workloads = analyze_workloads(&selector);
            guests
                .iter()
                .flat_map(|&guest| workloads.iter().map(move |&wl| (guest, wl)))
                .take_while(|_| !interrupted())
                .filter_map(|(guest, wl)| {
                    let a = analyze_workload(guest, wl, scale, &opts);
                    // Matrix holes are expected under `all`, but a
                    // workload the user named must exist on the guest.
                    if a.is_none() && explicit {
                        fail(&format!(
                            "workload {:?} does not exist on guest {:?}",
                            wl.id(),
                            guest.isa_name()
                        ));
                    }
                    a
                })
                .collect()
        }
        (None, Some(seed)) => guests
            .iter()
            .flat_map(|&guest| (0..programs).map(move |k| (guest, k)))
            .take_while(|_| !interrupted())
            .map(|(guest, k)| analyze_fuzz(guest, seed, k, &opts))
            .collect(),
    };
    if analyses.is_empty() && !interrupted() {
        fail("nothing to analyze (with --fuzz, --programs must be at least 1)");
    }

    let mut problems = 0usize;
    for a in &analyses {
        println!("{}", a.render_line());
        for line in a.render_problems() {
            println!("{line}");
        }
        if !a.ok() {
            problems += 1;
        }
    }
    if let Some(path) = out_path {
        write_file(&path, simbench_analyzer::to_json(&analyses).as_bytes());
    }
    if interrupted() {
        println!(
            "analyze: interrupted — {} subject(s) completed, {} clean",
            analyses.len(),
            analyses.len() - problems,
        );
        return ExitCode::from(simbench_obs::shutdown::EXIT_INTERRUPTED as u8);
    }
    println!(
        "analyze: {}/{} subject(s) clean",
        analyses.len() - problems,
        analyses.len()
    );
    if problems > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Resolve an analyze `--workload` selector: `all` (every suite
/// benchmark and app; matrix holes skipped per guest), a `suite:`/`app:`
/// id, or a bare name (case-insensitive).
fn analyze_workloads(selector: &str) -> Vec<Workload> {
    if selector == "all" {
        let mut all = CampaignSpec::suite_workloads();
        all.extend(CampaignSpec::app_workloads());
        return all;
    }
    if let Some(wl) = Workload::by_id(selector) {
        return vec![wl];
    }
    let lower = selector.to_ascii_lowercase();
    Benchmark::ALL
        .iter()
        .copied()
        .map(Workload::Suite)
        .chain(App::ALL.iter().copied().map(Workload::App))
        .find(|wl| wl.name().to_ascii_lowercase() == lower)
        .map(|wl| vec![wl])
        .unwrap_or_else(|| {
            fail(&format!(
                "unknown workload {selector:?} (try a name from `campaign list`, a suite:/app: id, or `all`)"
            ))
        })
}

// ---------------------------------------------------------------------------
// Lint mode.
// ---------------------------------------------------------------------------

fn lint_main(argv: Vec<String>) -> ExitCode {
    let mut args = Args::new(argv);
    let mut root: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(args.value_of("--root")),
            flag => fail(&format!("unknown flag {flag:?}")),
        }
    }
    let root = root.unwrap_or_else(|| ".".to_string());
    let findings = simbench_analyzer::lint_root(std::path::Path::new(&root));
    for f in &findings {
        println!("{f}");
    }
    println!(
        "lint: {} finding(s) across {} hot-path file(s)",
        findings.len(),
        simbench_analyzer::HOT_PATH_FILES.len()
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

fn split_list(raw: &str) -> Vec<String> {
    let items: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if items.is_empty() {
        fail(&format!("empty list {raw:?}"));
    }
    items
}

fn write_file(path: &str, bytes: &[u8]) {
    let mut f =
        std::fs::File::create(path).unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
    f.write_all(bytes)
        .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
    simbench_obs::info!("[wrote {path}]");
}

/// What `--list` and `campaign list` print: every selectable figure,
/// benchmark, app, engine and version.
fn render_list() -> String {
    let mut out = String::from("figures:\n");
    for f in FIGURES {
        out.push_str(&format!("  {f}\n"));
    }
    out.push_str("  all\n\nbenchmarks (--benches):\n");
    for b in Benchmark::ALL {
        out.push_str(&format!("  {:<28} [{}]\n", b.name(), b.category().name()));
    }
    out.push_str("\napps (--apps adds all):\n");
    for a in App::ALL {
        out.push_str(&format!("  {}\n", a.name()));
    }
    out.push_str("\nengines (--engines):\n");
    for e in EngineKind::fig7_columns() {
        out.push_str(&format!("  {:<18} {}\n", e.id(), e.name()));
    }
    out.push_str("\nDBT versions (dbt@<version>, --versions selects all):\n");
    for v in QEMU_VERSIONS {
        out.push_str(&format!("  {}\n", v.name));
    }
    out.push_str("\nguests (--guests):\n");
    for g in Guest::ALL {
        out.push_str(&format!("  {:<18} {}\n", g.isa_name(), g.name()));
    }
    out
}

/// Human summary of a finished campaign: per-engine geomeans plus any
/// problem cells.
fn render_summary(result: &CampaignResult) -> String {
    use simbench_campaign::table::{fmt_secs, Table};
    use simbench_campaign::CellStatus;

    let reps_desc = match result.precision {
        Some(p) => format!("adaptive reps ({p})"),
        None => format!("{} rep(s)", result.reps),
    };
    let mut out = format!(
        "campaign {}{} — scale {}, {reps_desc}, {} cells\n\n",
        result.name,
        result
            .shard
            .map_or(String::new(), |s| format!(" (shard {s})")),
        result.scale,
        result.cells.len()
    );
    let mut table = Table::new(["guest", "engine", "ok", "geomean secs", "flagged"]);
    for (key, cells) in
        simbench_campaign::result::group_by(&result.cells, |c| (c.guest.clone(), c.engine.clone()))
    {
        let ok: Vec<f64> = cells
            .iter()
            .filter(|c| c.status == CellStatus::Ok)
            .filter_map(|c| c.metric())
            .collect();
        let flagged = cells.iter().filter(|c| c.status.is_broken()).count();
        table.row([
            key.0,
            key.1,
            format!("{}/{}", ok.len(), cells.len()),
            if ok.is_empty() {
                "-".to_string()
            } else {
                fmt_secs(simbench_campaign::geomean(&ok))
            },
            if flagged == 0 {
                String::new()
            } else {
                format!("{flagged}")
            },
        ]);
    }
    out.push_str(&table.render());
    // Problem cells, one section per kind, so a fault-isolated run
    // names every hole in its coverage: failed (limits, transient
    // errors, interrupts), quarantined (panicking engines) and
    // timed-out (hung engines) cells are never silent.
    for (title, pick) in [
        (
            "failed cells",
            &(|s: &CellStatus| match s {
                CellStatus::Failed(why) => Some(why.clone()),
                _ => None,
            }) as &dyn Fn(&CellStatus) -> Option<String>,
        ),
        (
            "quarantined cells (engine panicked)",
            &|s: &CellStatus| match s {
                CellStatus::Quarantined(payload) => Some(payload.clone()),
                _ => None,
            },
        ),
        ("timed-out cells", &|s: &CellStatus| match s {
            CellStatus::TimedOut(why) => Some(why.clone()),
            _ => None,
        }),
    ] {
        let listed: Vec<String> = result
            .cells
            .iter()
            .filter_map(|c| {
                pick(&c.status)
                    .map(|why| format!("  {}/{} {}: {why}\n", c.guest, c.engine, c.workload))
            })
            .collect();
        if !listed.is_empty() {
            out.push_str(&format!("\n{title}:\n"));
            for line in listed {
                out.push_str(&line);
            }
        }
    }
    out
}

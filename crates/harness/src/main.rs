//! SimBench-rs experiment CLI.
//!
//! ```text
//! cargo run -p simbench-harness --release -- <figure> [--scale N] [--out FILE]
//!
//! figures: fig2 fig3 fig4 fig5 fig6 fig7 fig8 all
//! --scale N   divide the paper's iteration counts by N (default 2000;
//!             1 reproduces the full counts and runs for a long time)
//! --out FILE  additionally write the output to FILE
//! ```

use std::io::Write as _;

use simbench_harness::{fig2, fig3, fig4, fig5, fig6, fig7, fig8, Config};

fn usage() -> ! {
    eprintln!(
        "usage: simbench-harness <fig2|fig3|fig4|fig5|fig6|fig7|fig8|all> [--scale N] [--out FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut which = None;
    let mut scale = 2000u64;
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--out" => out_path = Some(it.next().unwrap_or_else(|| usage())),
            name if which.is_none() && !name.starts_with('-') => which = Some(name.to_string()),
            _ => usage(),
        }
    }
    let which = which.unwrap_or_else(|| usage());
    let cfg = Config::with_scale(scale);

    let mut output = String::new();
    let run_one = |name: &str, output: &mut String| {
        let t0 = std::time::Instant::now();
        let text = match name {
            "fig2" => fig2::run(&cfg).1,
            "fig3" => fig3::run(&cfg).1,
            "fig4" => fig4::run().1,
            "fig5" => fig5::run(),
            "fig6" => fig6::run(&cfg).1,
            "fig7" => fig7::run(&cfg).1,
            "fig8" => fig8::run(&cfg).1,
            _ => usage(),
        };
        eprintln!("[{name} completed in {:.1?}]", t0.elapsed());
        output.push_str(&text);
        output.push('\n');
    };

    eprintln!("scale divisor: {scale} (paper iteration counts / {scale})");
    if which == "all" {
        for name in ["fig5", "fig4", "fig3", "fig7", "fig2", "fig6", "fig8"] {
            run_one(name, &mut output);
        }
    } else {
        run_one(&which, &mut output);
    }

    print!("{output}");
    if let Some(path) = out_path {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(output.as_bytes()).expect("write output file");
        eprintln!("[wrote {path}]");
    }
}

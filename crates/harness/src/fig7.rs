//! Fig 7: the full cross-simulator results table — all eighteen
//! benchmarks on all five engines, for both guest architectures,
//! in seconds of kernel wall-clock time.
//!
//! `-` marks a benchmark that does not exist on the architecture
//! (Nonprivileged Access on petix); `-†` marks functionality the engine
//! does not implement (INTC / safe-device models on the detailed
//! engine), both mirroring the paper's footnotes.
//!
//! The measurements come from one campaign over the full matrix; this
//! module only renders the resulting cells.

use simbench_campaign::{CampaignResult, CampaignSpec, CellStatus, Workload};
use simbench_suite::Benchmark;

use crate::table::{fmt_secs, Table};
use crate::{figure_spec, run_campaign, Config, EngineKind, Guest};

/// One table cell.
#[derive(Debug, Clone, Copy)]
pub enum Cell {
    /// Kernel seconds.
    Seconds(f64),
    /// Engine lacks the device model (`-†`).
    Unsupported,
    /// Benchmark absent on the architecture (`-`).
    NotOnIsa,
}

impl Cell {
    fn render(self) -> String {
        match self {
            Cell::Seconds(s) => fmt_secs(s),
            Cell::Unsupported => "-†".to_string(),
            Cell::NotOnIsa => "-".to_string(),
        }
    }
}

/// Full results: `cells[guest][benchmark][engine]`.
pub type Results = Vec<Vec<Vec<Cell>>>;

/// The Fig 7 campaign: every suite benchmark on every engine column for
/// both guests.
pub fn spec(cfg: &Config) -> CampaignSpec {
    figure_spec(
        "fig7",
        Guest::ALL.to_vec(),
        EngineKind::fig7_columns().to_vec(),
        Benchmark::ALL
            .iter()
            .copied()
            .map(Workload::Suite)
            .collect(),
        cfg,
    )
}

/// Render a completed Fig 7 campaign.
pub fn render(campaign: &CampaignResult) -> (Results, String) {
    let engines = EngineKind::fig7_columns();
    let mut results: Results = Vec::new();
    let mut text = String::from("Fig 7 — SimBench kernel seconds across simulators\n");
    for guest in Guest::ALL {
        let mut guest_rows = Vec::new();
        let mut header = vec!["benchmark".to_string()];
        header.extend(engines.iter().map(|e| e.name().to_string()));
        let mut table = Table::new(header);
        for bench in Benchmark::ALL {
            let mut row_cells = Vec::new();
            for engine in engines {
                let rc = campaign
                    .cell(guest.isa_name(), &engine.id(), &Workload::Suite(bench).id())
                    .unwrap_or_else(|| panic!("missing cell {engine:?}/{bench:?} on {guest:?}"));
                let cell = match &rc.status {
                    CellStatus::Ok => {
                        Cell::Seconds(rc.stats.as_ref().expect("ok cell has stats").median)
                    }
                    CellStatus::NotOnIsa => Cell::NotOnIsa,
                    CellStatus::Unsupported(_) => Cell::Unsupported,
                    CellStatus::Failed(why)
                    | CellStatus::Quarantined(why)
                    | CellStatus::TimedOut(why) => {
                        panic!("{engine:?}/{bench:?} on {guest:?}: {why}")
                    }
                    // Figure drivers always run whole campaigns; a
                    // partial (shard) result cannot render a figure.
                    CellStatus::Skipped => {
                        panic!("{engine:?}/{bench:?} on {guest:?}: cell skipped (shard result?)")
                    }
                };
                row_cells.push(cell);
            }
            let mut cells = vec![bench.name().to_string()];
            cells.extend(row_cells.iter().map(|c| c.render()));
            table.row(cells);
            guest_rows.push(row_cells);
        }
        text.push_str(&format!("\n{} guest\n{}", guest.name(), table.render()));
        results.push(guest_rows);
    }
    text.push_str("\n(- benchmark absent on ISA; -† device model not implemented in engine)\n");
    (results, text)
}

/// Run the whole matrix and render it.
pub fn run(cfg: &Config) -> (Results, String) {
    render(&run_campaign(&spec(cfg), cfg))
}

//! Fig 8: geometric-mean speedup of the SPEC-like application suite vs
//! the SimBench suite across the twenty DBT versions (baseline v1.7.0).
//!
//! The paper's closing observation: both aggregates drift downward
//! across releases, but only SimBench's per-category breakdown (Fig 6)
//! says *why*.
//!
//! The measurements come from one campaign over the combined
//! (apps + suite) × version matrix; this module only renders the cells.

use simbench_apps::App;
use simbench_campaign::{CampaignResult, CampaignSpec, Workload};
use simbench_dbt::QEMU_VERSIONS;
use simbench_suite::Benchmark;

use crate::table::{fmt_ratio, Table};
use crate::{figure_spec, geomean, run_campaign, Config, EngineKind, Guest};

/// One version's aggregate speedups.
#[derive(Debug, Clone)]
pub struct Row {
    /// Version name.
    pub version: &'static str,
    /// Geomean speedup of the SPEC-like apps.
    pub spec: f64,
    /// Geomean speedup of the SimBench suite.
    pub simbench: f64,
}

/// The Fig 8 campaign: both workload families on every DBT version
/// profile (armlet guest, as in the paper).
pub fn spec(cfg: &Config) -> CampaignSpec {
    let mut workloads = CampaignSpec::app_workloads();
    workloads.extend(CampaignSpec::suite_workloads());
    figure_spec(
        "fig8",
        vec![Guest::Armlet],
        EngineKind::all_dbt_versions(),
        workloads,
        cfg,
    )
}

fn secs(campaign: &CampaignResult, version: &EngineKind, workload: Workload) -> f64 {
    let cell = campaign
        .cell(Guest::Armlet.isa_name(), &version.id(), &workload.id())
        .expect("armlet supports all workloads");
    cell.stats
        .as_ref()
        .expect("workload completed")
        .median
        .max(1e-9)
}

/// Render a completed Fig 8 campaign.
pub fn render(campaign: &CampaignResult) -> (Vec<Row>, String) {
    let versions = EngineKind::all_dbt_versions();
    let benches: Vec<Benchmark> = Benchmark::ALL.to_vec();
    let app_times: Vec<Vec<f64>> = versions
        .iter()
        .map(|v| {
            App::ALL
                .iter()
                .map(|&a| secs(campaign, v, Workload::App(a)))
                .collect()
        })
        .collect();
    let suite_times: Vec<Vec<f64>> = versions
        .iter()
        .map(|v| {
            benches
                .iter()
                .map(|&b| secs(campaign, v, Workload::Suite(b)))
                .collect()
        })
        .collect();

    let mut rows = Vec::new();
    let mut table = Table::new(["version", "SPEC-like", "SimBench"]);
    for (vi, v) in QEMU_VERSIONS.iter().enumerate() {
        let spec: Vec<f64> = (0..App::ALL.len())
            .map(|ai| app_times[0][ai] / app_times[vi][ai])
            .collect();
        let sim: Vec<f64> = (0..benches.len())
            .map(|bi| suite_times[0][bi] / suite_times[vi][bi])
            .collect();
        let row = Row {
            version: v.name,
            spec: geomean(&spec),
            simbench: geomean(&sim),
        };
        table.row([
            row.version.to_string(),
            fmt_ratio(row.spec),
            fmt_ratio(row.simbench),
        ]);
        rows.push(row);
    }
    let text = format!(
        "Fig 8 — geometric-mean speedup across DBT versions (baseline v1.7.0, armlet guest)\n\n{}",
        table.render()
    );
    (rows, text)
}

/// Run the experiment (armlet guest, as in the paper) and render it.
pub fn run(cfg: &Config) -> (Vec<Row>, String) {
    render(&run_campaign(&spec(cfg), cfg))
}

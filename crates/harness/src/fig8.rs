//! Fig 8: geometric-mean speedup of the SPEC-like application suite vs
//! the SimBench suite across the twenty DBT versions (baseline v1.7.0).
//!
//! The paper's closing observation: both aggregates drift downward
//! across releases, but only SimBench's per-category breakdown (Fig 6)
//! says *why*.

use simbench_apps::App;
use simbench_dbt::QEMU_VERSIONS;
use simbench_suite::Benchmark;

use crate::table::{fmt_ratio, Table};
use crate::{geomean, run_app, run_suite_bench, Config, EngineKind, Guest};

/// One version's aggregate speedups.
#[derive(Debug, Clone)]
pub struct Row {
    /// Version name.
    pub version: &'static str,
    /// Geomean speedup of the SPEC-like apps.
    pub spec: f64,
    /// Geomean speedup of the SimBench suite.
    pub simbench: f64,
}

/// Run the experiment (armlet guest, as in the paper).
pub fn run(cfg: &Config) -> (Vec<Row>, String) {
    let benches: Vec<Benchmark> = Benchmark::ALL.to_vec();
    let mut app_times: Vec<Vec<f64>> = Vec::new();
    let mut suite_times: Vec<Vec<f64>> = Vec::new();
    for v in QEMU_VERSIONS {
        app_times.push(
            App::ALL
                .iter()
                .map(|&a| run_app(Guest::Armlet, EngineKind::Dbt(*v), a, cfg).seconds.max(1e-9))
                .collect(),
        );
        suite_times.push(
            benches
                .iter()
                .map(|&b| {
                    run_suite_bench(Guest::Armlet, EngineKind::Dbt(*v), b, cfg)
                        .expect("armlet supports all")
                        .seconds
                        .max(1e-9)
                })
                .collect(),
        );
    }

    let mut rows = Vec::new();
    let mut table = Table::new(["version", "SPEC-like", "SimBench"]);
    for (vi, v) in QEMU_VERSIONS.iter().enumerate() {
        let spec: Vec<f64> =
            (0..App::ALL.len()).map(|ai| app_times[0][ai] / app_times[vi][ai]).collect();
        let sim: Vec<f64> =
            (0..benches.len()).map(|bi| suite_times[0][bi] / suite_times[vi][bi]).collect();
        let row = Row { version: v.name, spec: geomean(&spec), simbench: geomean(&sim) };
        table.row([row.version.to_string(), fmt_ratio(row.spec), fmt_ratio(row.simbench)]);
        rows.push(row);
    }
    let text = format!(
        "Fig 8 — geometric-mean speedup across DBT versions (baseline v1.7.0, armlet guest)\n\n{}",
        table.render()
    );
    (rows, text)
}

//! Fig 3: the benchmark table — iteration counts and operation densities
//! for SimBench kernels vs the SPEC-like application suite.
//!
//! Density is *tested operations per retired kernel instruction*,
//! measured (not assumed) from engine event counters.
//!
//! The measurements come from one campaign running every suite
//! benchmark and every app on the latest DBT profile; this module only
//! aggregates the cells' counters.

use simbench_apps::App;
use simbench_campaign::{CampaignResult, CampaignSpec, Workload};
use simbench_core::events::Counters;
use simbench_suite::Benchmark;

use crate::table::{fmt_density, fmt_iters, Table};
use crate::{figure_spec, run_campaign, Config, EngineKind, Guest};

/// One benchmark's densities.
#[derive(Debug, Clone)]
pub struct Row {
    /// The benchmark.
    pub bench: Benchmark,
    /// Paper default iteration count.
    pub iterations: u64,
    /// Tested-op density within the benchmark's own kernel.
    pub simbench_density: f64,
    /// Density of the same operation across the SPEC-like apps.
    pub spec_density: f64,
}

/// The Fig 3 campaign: suite + apps on the DBT engine. Densities are
/// measured on the DBT engine because only a translating engine can
/// observe code modifications (the Code Generation tested op).
pub fn spec(cfg: &Config) -> CampaignSpec {
    let mut workloads = CampaignSpec::suite_workloads();
    workloads.extend(CampaignSpec::app_workloads());
    figure_spec(
        "fig3",
        vec![Guest::Armlet],
        vec![EngineKind::Dbt(simbench_dbt::VersionProfile::latest())],
        workloads,
        cfg,
    )
}

/// Render a completed Fig 3 campaign.
pub fn render(campaign: &CampaignResult) -> (Vec<Row>, String) {
    let engine = EngineKind::Dbt(simbench_dbt::VersionProfile::latest());
    // Aggregate counters across the whole app suite.
    let mut spec_total = Counters::default();
    for app in App::ALL {
        let cell = campaign
            .cell(
                Guest::Armlet.isa_name(),
                &engine.id(),
                &Workload::App(app).id(),
            )
            .expect("apps run on the DBT engine");
        spec_total = spec_total.plus(&cell.counters);
    }

    let mut rows = Vec::new();
    let mut table = Table::new([
        "category",
        "benchmark",
        "iterations",
        "density (SimBench)",
        "density (SPEC-like)",
        "notes",
    ]);
    for bench in Benchmark::ALL {
        let cell = campaign
            .cell(
                Guest::Armlet.isa_name(),
                &engine.id(),
                &Workload::Suite(bench).id(),
            )
            .expect("all benchmarks exist on armlet");
        let counters = &cell.counters;
        let own = bench.tested_ops(counters) as f64 / counters.instructions.max(1) as f64;
        let spec = bench.tested_ops(&spec_total) as f64 / spec_total.instructions.max(1) as f64;
        let row = Row {
            bench,
            iterations: bench.paper_iterations(),
            simbench_density: own,
            spec_density: spec,
        };
        table.row([
            bench.category().name().to_string(),
            format!(
                "{}{}",
                bench.name(),
                if bench.platform_specific() {
                    " †"
                } else {
                    ""
                }
            ),
            fmt_iters(row.iterations),
            fmt_density(row.simbench_density),
            fmt_density(row.spec_density),
            String::new(),
        ]);
        rows.push(row);
    }
    let text = format!(
        "Fig 3 — SimBench benchmarks: paper iteration counts and measured operation densities\n\
         († significant platform-specific portions, as in the paper)\n\n{}",
        table.render()
    );
    (rows, text)
}

/// Run the experiment and render it.
pub fn run(cfg: &Config) -> (Vec<Row>, String) {
    render(&run_campaign(&spec(cfg), cfg))
}

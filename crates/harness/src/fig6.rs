//! Fig 6: per-benchmark SimBench speedups across the twenty DBT
//! versions, grouped by category, for both guest architectures
//! (baseline: v1.7.0).
//!
//! This is the figure that *explains* Fig 2's aggregate drift: the
//! control-flow and exception panels degrade monotonically from v2.1,
//! the optimizer bump lands at v2.0.0, and the data-fault fast path
//! appears at v2.5.0-rc0.
//!
//! The measurements come from one campaign (per guest) over the full
//! benchmark × version matrix; this module only renders the cells.

use std::collections::BTreeMap;

use simbench_campaign::{CampaignResult, CampaignSpec, Workload};
use simbench_dbt::QEMU_VERSIONS;
use simbench_suite::{Benchmark, Category};

use crate::table::{fmt_ratio, Table};
use crate::{figure_spec, run_campaign, Config, EngineKind, Guest};

/// Measured speedups: `speedups[benchmark][version index]`.
#[derive(Debug, Clone, Default)]
pub struct Panel {
    /// Guest the panel was measured on.
    pub guest: &'static str,
    /// Per-benchmark speedup series across versions.
    pub series: BTreeMap<&'static str, Vec<f64>>,
}

/// The Fig 6 campaign for one guest: every supported benchmark on every
/// DBT version profile.
pub fn spec(guest: Guest, cfg: &Config) -> CampaignSpec {
    figure_spec(
        "fig6",
        vec![guest],
        EngineKind::all_dbt_versions(),
        Benchmark::ALL
            .iter()
            .copied()
            .map(Workload::Suite)
            .collect(),
        cfg,
    )
}

/// Build one guest's panel from its completed campaign.
pub fn panel_from(guest: Guest, campaign: &CampaignResult) -> Panel {
    let mut panel = Panel {
        guest: guest.name(),
        series: BTreeMap::new(),
    };
    for bench in Benchmark::ALL {
        if !bench.supported_on(guest.isa_name()) {
            continue;
        }
        let secs: Vec<f64> = QEMU_VERSIONS
            .iter()
            .map(|v| {
                let cell = campaign
                    .cell(
                        guest.isa_name(),
                        &EngineKind::Dbt(*v).id(),
                        &Workload::Suite(bench).id(),
                    )
                    .expect("supported benchmark");
                cell.stats
                    .as_ref()
                    .expect("supported benchmark completed")
                    .median
                    .max(1e-9)
            })
            .collect();
        let base = secs[0];
        panel
            .series
            .insert(bench.name(), secs.iter().map(|&t| base / t).collect());
    }
    panel
}

/// Run the experiment for one guest.
pub fn run_guest(guest: Guest, cfg: &Config) -> Panel {
    panel_from(guest, &run_campaign(&spec(guest, cfg), cfg))
}

/// Render one guest's panels (one table per category).
pub fn render_panels(guest: Guest, panel: &Panel) -> String {
    let mut out = format!(
        "Fig 6 — SimBench speedups across DBT versions, {} guest\n",
        panel.guest
    );
    for cat in Category::ALL {
        let benches: Vec<Benchmark> = Benchmark::ALL
            .iter()
            .copied()
            .filter(|b| b.category() == cat && b.supported_on(guest.isa_name()))
            .collect();
        if benches.is_empty() {
            continue;
        }
        let mut header = vec!["version".to_string()];
        header.extend(benches.iter().map(|b| b.name().to_string()));
        let mut table = Table::new(header);
        for (vi, v) in QEMU_VERSIONS.iter().enumerate() {
            let mut cells = vec![v.name.to_string()];
            for b in &benches {
                cells.push(fmt_ratio(panel.series[b.name()][vi]));
            }
            table.row(cells);
        }
        out.push_str(&format!("\n{}\n{}", cat.name(), table.render()));
    }
    out
}

/// Run for both guests and render.
pub fn run(cfg: &Config) -> (Vec<Panel>, String) {
    let mut text = String::new();
    let mut panels = Vec::new();
    for guest in Guest::ALL {
        let p = run_guest(guest, cfg);
        text.push_str(&render_panels(guest, &p));
        text.push('\n');
        panels.push(p);
    }
    (panels, text)
}

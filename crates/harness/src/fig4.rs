//! Fig 4: how the measured mechanisms are implemented on each engine —
//! generated from the engines' own [`simbench_core::engine::EngineInfo`]
//! self-descriptions so the table cannot drift from the code.

use simbench_core::engine::{Engine, EngineInfo};
use simbench_isa_armlet::Armlet;
use simbench_platform::Platform;

use crate::table::Table;

fn infos() -> Vec<EngineInfo> {
    // EngineInfo is ISA-independent; instantiate against armlet.
    let dbt: &dyn Engine<Armlet, Platform> = &simbench_dbt::Dbt::<Armlet>::new();
    let interp: &dyn Engine<Armlet, Platform> = &simbench_interp::Interp::<Armlet>::new();
    let detailed: &dyn Engine<Armlet, Platform> = &simbench_detailed::Detailed::<Armlet>::new();
    let virt: &dyn Engine<Armlet, Platform> = &simbench_virt::Virt::<Armlet>::kvm();
    let native: &dyn Engine<Armlet, Platform> = &simbench_virt::Virt::<Armlet>::native();
    vec![
        dbt.info(),
        interp.info(),
        detailed.info(),
        virt.info(),
        native.info(),
    ]
}

/// Render the feature matrix.
pub fn run() -> (Vec<EngineInfo>, String) {
    let infos = infos();
    let mut header = vec!["feature".to_string()];
    header.extend(infos.iter().map(|i| i.name.to_string()));
    let mut table = Table::new(header);

    type InfoGetter = fn(&EngineInfo) -> &'static str;
    let rows: [(&str, InfoGetter); 8] = [
        ("Execution Model", |i| i.execution_model),
        ("Memory Access", |i| i.memory_access),
        ("Code Generation", |i| i.code_generation),
        ("Control Flow (inter-page)", |i| i.control_flow_inter),
        ("Control Flow (intra-page)", |i| i.control_flow_intra),
        ("Interrupts", |i| i.interrupts),
        ("Synchronous Exceptions", |i| i.sync_exceptions),
        ("Undefined Instruction", |i| i.undef_insn),
    ];
    for (label, get) in rows {
        let mut cells = vec![label.to_string()];
        cells.extend(infos.iter().map(|i| get(i).to_string()));
        table.row(cells);
    }
    let text = format!(
        "Fig 4 — mechanism implementation matrix (generated from engine self-descriptions)\n\n{}",
        table.render()
    );
    (infos, text)
}

#[cfg(test)]
mod tests {
    #[test]
    fn matrix_has_five_engines() {
        let (infos, text) = super::run();
        assert_eq!(infos.len(), 5);
        assert!(text.contains("Block Chaining"));
        assert!(text.contains("Hypercall"));
        assert!(text.contains("Modelled TLB"));
    }
}

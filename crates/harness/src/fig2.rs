//! Fig 2: relative performance of the sjeng-like and mcf-like workloads
//! and the overall SPEC-like rating across the twenty DBT versions
//! (baseline: v1.7.0).
//!
//! The paper's motivating example: aggregate application benchmarks
//! drift apart across simulator versions — sjeng improves while mcf
//! regresses — and the average hides both.

use simbench_apps::App;
use simbench_dbt::QEMU_VERSIONS;

use crate::table::{fmt_ratio, Table};
use crate::{geomean, run_app, Config, EngineKind, Guest};

/// One version's measurements.
#[derive(Debug, Clone)]
pub struct Row {
    /// Version name.
    pub version: &'static str,
    /// sjeng-like speedup vs baseline.
    pub sjeng: f64,
    /// mcf-like speedup vs baseline.
    pub mcf: f64,
    /// Geometric-mean speedup across all apps ("SPEC overall").
    pub overall: f64,
}

/// Run the experiment. Returns the rows plus a rendered table.
pub fn run(cfg: &Config) -> (Vec<Row>, String) {
    // Measure every app on every version (armlet guest, as in the paper's
    // ARM-binaries-on-x86-host motivating experiment).
    let mut times: Vec<Vec<f64>> = Vec::new(); // [version][app]
    for v in QEMU_VERSIONS {
        let per_app: Vec<f64> = App::ALL
            .iter()
            .map(|&app| run_app(Guest::Armlet, EngineKind::Dbt(*v), app, cfg).seconds.max(1e-9))
            .collect();
        times.push(per_app);
    }
    let base = &times[0];
    let sjeng_idx = App::ALL.iter().position(|a| *a == App::SjengLike).unwrap();
    let mcf_idx = App::ALL.iter().position(|a| *a == App::McfLike).unwrap();

    let mut rows = Vec::new();
    let mut table = Table::new(["version", "sjeng-like", "mcf-like", "SPEC-like (overall)"]);
    for (vi, v) in QEMU_VERSIONS.iter().enumerate() {
        let speedups: Vec<f64> = (0..App::ALL.len()).map(|ai| base[ai] / times[vi][ai]).collect();
        let row = Row {
            version: v.name,
            sjeng: speedups[sjeng_idx],
            mcf: speedups[mcf_idx],
            overall: geomean(&speedups),
        };
        table.row([
            row.version.to_string(),
            fmt_ratio(row.sjeng),
            fmt_ratio(row.mcf),
            fmt_ratio(row.overall),
        ]);
        rows.push(row);
    }
    let text = format!(
        "Fig 2 — application speedup across DBT versions (baseline v1.7.0, armlet guest)\n\n{}",
        table.render()
    );
    (rows, text)
}

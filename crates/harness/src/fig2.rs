//! Fig 2: relative performance of the sjeng-like and mcf-like workloads
//! and the overall SPEC-like rating across the twenty DBT versions
//! (baseline: v1.7.0).
//!
//! The paper's motivating example: aggregate application benchmarks
//! drift apart across simulator versions — sjeng improves while mcf
//! regresses — and the average hides both.
//!
//! The measurements come from one campaign over the app × version
//! matrix; this module only renders the cells.

use simbench_apps::App;
use simbench_campaign::{CampaignResult, CampaignSpec, Workload};
use simbench_dbt::QEMU_VERSIONS;

use crate::table::{fmt_ratio, Table};
use crate::{figure_spec, geomean, run_campaign, Config, EngineKind, Guest};

/// One version's measurements.
#[derive(Debug, Clone)]
pub struct Row {
    /// Version name.
    pub version: &'static str,
    /// sjeng-like speedup vs baseline.
    pub sjeng: f64,
    /// mcf-like speedup vs baseline.
    pub mcf: f64,
    /// Geometric-mean speedup across all apps ("SPEC overall").
    pub overall: f64,
}

/// The Fig 2 campaign: every app on every DBT version profile (armlet
/// guest, as in the paper's ARM-binaries-on-x86-host experiment).
pub fn spec(cfg: &Config) -> CampaignSpec {
    figure_spec(
        "fig2",
        vec![Guest::Armlet],
        EngineKind::all_dbt_versions(),
        CampaignSpec::app_workloads(),
        cfg,
    )
}

/// App time for one version from the campaign.
fn app_secs(campaign: &CampaignResult, version: &EngineKind, app: App) -> f64 {
    let cell = campaign
        .cell(
            Guest::Armlet.isa_name(),
            &version.id(),
            &Workload::App(app).id(),
        )
        .expect("apps run on every version");
    cell.stats.as_ref().expect("apps complete").median.max(1e-9)
}

/// Render a completed Fig 2 campaign. Returns the rows plus a table.
pub fn render(campaign: &CampaignResult) -> (Vec<Row>, String) {
    let versions = EngineKind::all_dbt_versions();
    let times: Vec<Vec<f64>> = versions
        .iter()
        .map(|v| {
            App::ALL
                .iter()
                .map(|&app| app_secs(campaign, v, app))
                .collect()
        })
        .collect();
    let base = &times[0];
    let sjeng_idx = App::ALL.iter().position(|a| *a == App::SjengLike).unwrap();
    let mcf_idx = App::ALL.iter().position(|a| *a == App::McfLike).unwrap();

    let mut rows = Vec::new();
    let mut table = Table::new(["version", "sjeng-like", "mcf-like", "SPEC-like (overall)"]);
    for (vi, v) in QEMU_VERSIONS.iter().enumerate() {
        let speedups: Vec<f64> = (0..App::ALL.len())
            .map(|ai| base[ai] / times[vi][ai])
            .collect();
        let row = Row {
            version: v.name,
            sjeng: speedups[sjeng_idx],
            mcf: speedups[mcf_idx],
            overall: geomean(&speedups),
        };
        table.row([
            row.version.to_string(),
            fmt_ratio(row.sjeng),
            fmt_ratio(row.mcf),
            fmt_ratio(row.overall),
        ]);
        rows.push(row);
    }
    let text = format!(
        "Fig 2 — application speedup across DBT versions (baseline v1.7.0, armlet guest)\n\n{}",
        table.render()
    );
    (rows, text)
}

/// Run the experiment and render it.
pub fn run(cfg: &Config) -> (Vec<Row>, String) {
    render(&run_campaign(&spec(cfg), cfg))
}

//! Text-table rendering, re-exported from `simbench-campaign` where the
//! shared implementation now lives (the campaign CLI renders comparison
//! reports with the same tables the figure drivers use).

pub use simbench_campaign::table::{fmt_density, fmt_iters, fmt_ratio, fmt_secs, Table};

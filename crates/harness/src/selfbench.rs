//! Simulator self-benchmarking: wall-clock throughput per campaign cell.
//!
//! The counter-exact gate (`campaign compare --counters`) proves an
//! optimization changed no architectural behavior; this module tracks
//! the other half of the story — how fast the simulator itself runs.
//! From a stored campaign result it derives, per clean cell, **MIPS**
//! (million retired guest instructions per wall-clock second, from the
//! kernel-phase instruction counter and the median repetition timing)
//! and the analogous micro-op rate. CI persists the report as
//! `BENCH_hotloop.json`, giving the repository a wall-clock trajectory
//! alongside the counter baseline.
//!
//! Since `simbench-hotloop/v2` each rate also carries the cell's mean,
//! Student-t 95% CI half-width and repetition count, which power the
//! statistical regression gate ([`gate`], `selfbench --gate
//! BASELINE.json`): a cell regresses only when the two confidence
//! intervals *separate* — `cur.mean - cur.ci95 > base.mean +
//! base.ci95` — so one noisy repetition cannot fail CI. Cells with
//! fewer than two repetitions on either side have no measurable
//! interval and are skipped, never guessed at.

use std::fmt::Write as _;

use simbench_campaign::json::{self, num, quote, Value};
use simbench_campaign::table::Table;
use simbench_campaign::{CampaignResult, CellStatus};

/// Schema identifier written to every self-bench report.
pub const SCHEMA: &str = "simbench-hotloop/v2";

/// The previous report schema: no `mean_secs` / `ci95_secs` / `n`
/// fields. Readable — the missing interval is represented as `n = 0`,
/// which the gate skips.
pub const SCHEMA_V1: &str = "simbench-hotloop/v1";

/// Throughput of one clean campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRate {
    /// Guest id (`armlet` / `petix`).
    pub guest: String,
    /// Engine id (`interp`, `dbt@v2.5.0-rc2`, ...).
    pub engine: String,
    /// Workload id (`suite:Hot Memory Access`, ...).
    pub workload: String,
    /// Median kernel-phase seconds across the cell's repetitions.
    pub median_secs: f64,
    /// Mean kernel-phase seconds (outlier-rejected).
    pub mean_secs: f64,
    /// Student-t 95% CI half-width on the mean; 0 when `n < 2`.
    pub ci95_secs: f64,
    /// Repetition count behind the timing; 0 for v1 reports, where the
    /// interval is unknown and the gate must skip the cell.
    pub n: u32,
    /// Kernel-phase retired guest instructions (architectural, identical
    /// in every repetition).
    pub instructions: u64,
    /// Kernel-phase executed micro-ops.
    pub uops: u64,
    /// Million instructions per second: `instructions / median / 1e6`.
    pub mips: f64,
    /// Million micro-ops per second.
    pub muops: f64,
}

/// The self-bench report: one rate per clean cell of a campaign.
#[derive(Debug, Clone)]
pub struct Report {
    /// Source campaign name.
    pub campaign: String,
    /// Source campaign scale divisor.
    pub scale: u64,
    /// Per-cell throughput, in the campaign's deterministic cell order.
    pub cells: Vec<CellRate>,
}

/// Derive the throughput report from a stored campaign result. Cells
/// without a clean measurement (failed, skipped, absent), with
/// repetitions that disagreed on their counters (the stored profile
/// then describes only the first repetition, not the timed set), or
/// with a zero-width median are omitted — a rate fabricated from them
/// would poison the trajectory.
pub fn report(result: &CampaignResult) -> Report {
    let cells = result
        .cells
        .iter()
        .filter(|c| c.status == CellStatus::Ok && c.counters_consistent)
        .filter_map(|c| {
            let stats = c.stats.as_ref()?;
            let median = stats.median;
            if !(median > 0.0 && median.is_finite()) {
                return None;
            }
            Some(CellRate {
                guest: c.guest.clone(),
                engine: c.engine.clone(),
                workload: c.workload.clone(),
                median_secs: median,
                mean_secs: stats.mean,
                ci95_secs: stats.ci95,
                n: c.seconds.len() as u32,
                instructions: c.counters.instructions,
                uops: c.counters.uops,
                mips: c.counters.instructions as f64 / median / 1e6,
                muops: c.counters.uops as f64 / median / 1e6,
            })
        })
        .collect();
    Report {
        campaign: result.name.clone(),
        scale: result.scale,
        cells,
    }
}

impl Report {
    /// Serialize as `simbench-hotloop/v2` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {},", quote(SCHEMA));
        let _ = writeln!(out, "  \"campaign\": {},", quote(&self.campaign));
        let _ = writeln!(out, "  \"scale\": {},", self.scale);
        out.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"guest\": {}, \"engine\": {}, \"workload\": {}, \
                 \"median_secs\": {}, \"mean_secs\": {}, \"ci95_secs\": {}, \
                 \"n\": {}, \"instructions\": {}, \"uops\": {}, \
                 \"mips\": {}, \"muops\": {}}}",
                quote(&c.guest),
                quote(&c.engine),
                quote(&c.workload),
                num(c.median_secs),
                num(c.mean_secs),
                num(c.ci95_secs),
                c.n,
                c.instructions,
                c.uops,
                num(c.mips),
                num(c.muops),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a stored report. Accepts `simbench-hotloop/v2` and, for
    /// gating against baselines persisted before the interval fields
    /// existed, `simbench-hotloop/v1` — whose cells surface with
    /// `n = 0` so the gate skips them instead of inventing a CI.
    pub fn from_json(text: &str) -> Result<Report, String> {
        let v = json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema")?;
        if schema != SCHEMA && schema != SCHEMA_V1 {
            return Err(format!(
                "unknown self-bench schema {schema:?} (expected {SCHEMA} or {SCHEMA_V1})"
            ));
        }
        let campaign = v
            .get("campaign")
            .and_then(Value::as_str)
            .ok_or("missing campaign name")?
            .to_string();
        let scale = v
            .get("scale")
            .and_then(Value::as_u64)
            .ok_or("missing scale")?;
        let mut cells = Vec::new();
        for c in v
            .get("cells")
            .and_then(Value::as_arr)
            .ok_or("missing cells")?
        {
            let s = |key: &str| -> Result<String, String> {
                Ok(c.get(key)
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("cell missing {key:?}"))?
                    .to_string())
            };
            let f = |key: &str| -> Result<f64, String> {
                c.get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("cell missing {key:?}"))
            };
            let u = |key: &str| -> Result<u64, String> {
                c.get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("cell missing {key:?}"))
            };
            let median_secs = f("median_secs")?;
            // v1 reports carry no interval: the median stands in for
            // the mean and n = 0 marks the interval as unknown.
            let (mean_secs, ci95_secs, n) = if schema == SCHEMA_V1 {
                (median_secs, 0.0, 0)
            } else {
                (f("mean_secs")?, f("ci95_secs")?, u("n")? as u32)
            };
            cells.push(CellRate {
                guest: s("guest")?,
                engine: s("engine")?,
                workload: s("workload")?,
                median_secs,
                mean_secs,
                ci95_secs,
                n,
                instructions: u("instructions")?,
                uops: u("uops")?,
                mips: f("mips")?,
                muops: f("muops")?,
            });
        }
        Ok(Report {
            campaign,
            scale,
            cells,
        })
    }

    /// Human-readable table, slowest cells first (they are the ones an
    /// optimization PR is trying to move).
    pub fn render(&self) -> String {
        let mut rows: Vec<&CellRate> = self.cells.iter().collect();
        rows.sort_by(|a, b| a.mips.total_cmp(&b.mips));
        let mut table = Table::new(["guest", "engine", "workload", "median", "MIPS", "Muops/s"]);
        for c in rows {
            table.row([
                c.guest.clone(),
                c.engine.clone(),
                c.workload.clone(),
                format!("{:.4}s", c.median_secs),
                format!("{:.2}", c.mips),
                format!("{:.2}", c.muops),
            ]);
        }
        format!(
            "self-bench of campaign {} (scale {}): {} cell(s)\n\n{}",
            self.campaign,
            self.scale,
            self.cells.len(),
            table.render()
        )
    }
}

/// One cell whose confidence intervals separated: the current run is
/// slower than the baseline beyond both 95% CIs.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Guest id.
    pub guest: String,
    /// Engine id.
    pub engine: String,
    /// Workload id.
    pub workload: String,
    /// Baseline mean seconds.
    pub base_mean: f64,
    /// Baseline CI half-width.
    pub base_ci95: f64,
    /// Current mean seconds.
    pub cur_mean: f64,
    /// Current CI half-width.
    pub cur_ci95: f64,
}

impl Regression {
    /// Slowdown ratio of the means.
    pub fn ratio(&self) -> f64 {
        self.cur_mean / self.base_mean
    }
}

/// Outcome of gating a current report against a stored baseline.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Cells present in both reports with `n >= 2` on both sides.
    pub compared: usize,
    /// Cells skipped: absent from one report, or lacking a measurable
    /// interval (`n < 2`) on either side.
    pub skipped: usize,
    /// Cells whose intervals separated, current slower.
    pub regressions: Vec<Regression>,
}

impl GateOutcome {
    /// No regressions.
    pub fn clean(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable gate verdict.
    pub fn render(&self) -> String {
        let mut out = format!(
            "\nwall-clock gate: {} cell(s) compared, {} skipped\n",
            self.compared, self.skipped
        );
        if self.regressions.is_empty() {
            out.push_str("no statistically separated slowdowns\n");
        } else {
            let _ = writeln!(out, "REGRESSIONS ({} cell(s)):", self.regressions.len());
            for r in &self.regressions {
                let _ = writeln!(
                    out,
                    "  {}/{} {}: {:.4}s ±{:.4} -> {:.4}s ±{:.4} ({:.2}x)",
                    r.guest,
                    r.engine,
                    r.workload,
                    r.base_mean,
                    r.base_ci95,
                    r.cur_mean,
                    r.cur_ci95,
                    r.ratio()
                );
            }
        }
        out
    }
}

/// Statistical wall-clock regression gate. A cell regresses only when
/// the Student-t 95% confidence intervals separate with the current run
/// on the slow side: `cur.mean - cur.ci95 > base.mean + base.ci95`.
/// Overlapping intervals — however the means moved — are noise, not a
/// verdict. Cells missing from either report or with `n < 2` on either
/// side are counted as skipped.
pub fn gate(current: &Report, baseline: &Report) -> GateOutcome {
    let mut compared = 0;
    let mut skipped = 0;
    let mut regressions = Vec::new();
    for cur in &current.cells {
        let base = baseline
            .cells
            .iter()
            .find(|b| b.guest == cur.guest && b.engine == cur.engine && b.workload == cur.workload);
        let Some(base) = base else {
            skipped += 1;
            continue;
        };
        if cur.n < 2 || base.n < 2 {
            skipped += 1;
            continue;
        }
        compared += 1;
        if cur.mean_secs - cur.ci95_secs > base.mean_secs + base.ci95_secs {
            regressions.push(Regression {
                guest: cur.guest.clone(),
                engine: cur.engine.clone(),
                workload: cur.workload.clone(),
                base_mean: base.mean_secs,
                base_ci95: base.ci95_secs,
                cur_mean: cur.mean_secs,
                cur_ci95: cur.ci95_secs,
            });
        }
    }
    GateOutcome {
        compared,
        skipped,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_campaign::{run, CampaignSpec, EngineKind, Guest, RunnerOpts, Workload};
    use simbench_suite::Benchmark;

    fn small_result() -> CampaignResult {
        let spec = CampaignSpec {
            name: "selfbench-test".to_string(),
            guests: vec![Guest::Armlet, Guest::Petix],
            engines: vec![EngineKind::Interp],
            workloads: vec![
                Workload::Suite(Benchmark::Syscall),
                Workload::Suite(Benchmark::NonprivAccess), // absent on petix
            ],
            scale: u64::MAX,
            reps: 2,
            precision: None,
            wall_limit: Some(std::time::Duration::from_secs(60)),
        };
        run(&spec, &RunnerOpts::serial())
    }

    #[test]
    fn report_covers_clean_cells_with_positive_rates() {
        let result = small_result();
        let rep = report(&result);
        // 4 cells in the matrix, one absent on petix.
        assert_eq!(rep.cells.len(), 3);
        for c in &rep.cells {
            assert!(c.mips > 0.0 && c.mips.is_finite(), "{c:?}");
            assert!(c.muops >= c.mips, "uop rate can never trail insn rate");
            assert!(c.instructions > 0);
            assert_eq!(c.n, 2, "two repetitions behind every rate");
            assert!(c.mean_secs > 0.0 && c.ci95_secs >= 0.0);
        }
    }

    #[test]
    fn counter_inconsistent_cells_are_excluded() {
        // An engine-determinism bug leaves the cell Ok but flags the
        // disagreement; its stored counters describe only the first
        // repetition, so no rate may be derived from them.
        let mut result = small_result();
        let before = report(&result).cells.len();
        result.cells[0].counters_consistent = false;
        assert_eq!(report(&result).cells.len(), before - 1);
    }

    #[test]
    fn json_round_trips_and_renders() {
        let rep = report(&small_result());
        let json = rep.to_json();
        assert!(json.contains(SCHEMA));
        assert!(json.contains("\"mips\""));
        assert!(json.contains("\"ci95_secs\""));
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back.campaign, rep.campaign);
        assert_eq!(back.cells, rep.cells);
        let text = rep.render();
        assert!(text.contains("MIPS"));
        assert!(text.contains("suite:System Call"));
    }

    #[test]
    fn v1_reports_parse_with_unknown_intervals() {
        let v1 = format!(
            "{{\n  \"schema\": {},\n  \"campaign\": \"old\",\n  \"scale\": 7,\n  \
             \"cells\": [\n    {{\"guest\": \"armlet\", \"engine\": \"interp\", \
             \"workload\": \"suite:System Call\", \"median_secs\": 0.5, \
             \"instructions\": 100, \"uops\": 150, \"mips\": 0.0002, \
             \"muops\": 0.0003}}\n  ]\n}}\n",
            quote(SCHEMA_V1)
        );
        let rep = Report::from_json(&v1).unwrap();
        assert_eq!(rep.cells.len(), 1);
        let c = &rep.cells[0];
        assert_eq!((c.mean_secs, c.ci95_secs, c.n), (0.5, 0.0, 0));
        // An unknown interval means the gate skips, in both directions.
        let out = gate(&rep, &rep);
        assert_eq!((out.compared, out.skipped), (0, 1));
        assert!(out.clean());
    }

    #[test]
    fn unknown_schema_is_an_error() {
        let bogus = "{\"schema\": \"simbench-hotloop/v9\", \"campaign\": \"x\", \
                     \"scale\": 1, \"cells\": []}";
        let err = Report::from_json(bogus).unwrap_err();
        assert!(err.contains("simbench-hotloop/v9"), "{err}");
    }

    fn one_cell_report(mean: f64, ci: f64, n: u32) -> Report {
        Report {
            campaign: "gate-test".to_string(),
            scale: 1,
            cells: vec![CellRate {
                guest: "armlet".to_string(),
                engine: "interp".to_string(),
                workload: "suite:System Call".to_string(),
                median_secs: mean,
                mean_secs: mean,
                ci95_secs: ci,
                n,
                instructions: 1000,
                uops: 1500,
                mips: 1.0,
                muops: 1.5,
            }],
        }
    }

    #[test]
    fn gate_fails_only_when_intervals_separate() {
        let base = one_cell_report(1.0, 0.1, 3);

        // Slower but overlapping: noise, not a regression.
        let noisy = one_cell_report(1.15, 0.1, 3);
        let out = gate(&noisy, &base);
        assert_eq!(out.compared, 1);
        assert!(out.clean(), "{out:?}");

        // Separated: 1.5 - 0.1 > 1.0 + 0.1.
        let slower = one_cell_report(1.5, 0.1, 3);
        let out = gate(&slower, &base);
        assert!(!out.clean());
        assert!((out.regressions[0].ratio() - 1.5).abs() < 1e-12);
        assert!(out.render().contains("REGRESSIONS"));

        // Faster, even separated, is never a regression.
        let faster = one_cell_report(0.5, 0.1, 3);
        assert!(gate(&faster, &base).clean());

        // Too few reps on either side: skipped, not judged.
        let thin = one_cell_report(9.0, 0.0, 1);
        let out = gate(&thin, &base);
        assert_eq!((out.compared, out.skipped), (0, 1));
        assert!(out.clean());
        let out = gate(&one_cell_report(9.0, 0.1, 3), &one_cell_report(1.0, 0.0, 1));
        assert!(out.clean());

        // A cell absent from the baseline is skipped.
        let mut unknown = one_cell_report(9.0, 0.1, 3);
        unknown.cells[0].workload = "suite:Unheard Of".to_string();
        let out = gate(&unknown, &base);
        assert_eq!((out.compared, out.skipped), (0, 1));
    }
}

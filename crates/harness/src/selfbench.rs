//! Simulator self-benchmarking: wall-clock throughput per campaign cell.
//!
//! The counter-exact gate (`campaign compare --counters`) proves an
//! optimization changed no architectural behavior; this module tracks
//! the other half of the story — how fast the simulator itself runs.
//! From a stored campaign result it derives, per clean cell, **MIPS**
//! (million retired guest instructions per wall-clock second, from the
//! kernel-phase instruction counter and the median repetition timing)
//! and the analogous micro-op rate. CI persists the report as
//! `BENCH_hotloop.json`, giving the repository a wall-clock trajectory
//! alongside the counter baseline.

use std::fmt::Write as _;

use simbench_campaign::json::{num, quote};
use simbench_campaign::table::Table;
use simbench_campaign::{CampaignResult, CellStatus};

/// Schema identifier written to every self-bench report.
pub const SCHEMA: &str = "simbench-hotloop/v1";

/// Throughput of one clean campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRate {
    /// Guest id (`armlet` / `petix`).
    pub guest: String,
    /// Engine id (`interp`, `dbt@v2.5.0-rc2`, ...).
    pub engine: String,
    /// Workload id (`suite:Hot Memory Access`, ...).
    pub workload: String,
    /// Median kernel-phase seconds across the cell's repetitions.
    pub median_secs: f64,
    /// Kernel-phase retired guest instructions (architectural, identical
    /// in every repetition).
    pub instructions: u64,
    /// Kernel-phase executed micro-ops.
    pub uops: u64,
    /// Million instructions per second: `instructions / median / 1e6`.
    pub mips: f64,
    /// Million micro-ops per second.
    pub muops: f64,
}

/// The self-bench report: one rate per clean cell of a campaign.
#[derive(Debug, Clone)]
pub struct Report {
    /// Source campaign name.
    pub campaign: String,
    /// Source campaign scale divisor.
    pub scale: u64,
    /// Per-cell throughput, in the campaign's deterministic cell order.
    pub cells: Vec<CellRate>,
}

/// Derive the throughput report from a stored campaign result. Cells
/// without a clean measurement (failed, skipped, absent), with
/// repetitions that disagreed on their counters (the stored profile
/// then describes only the first repetition, not the timed set), or
/// with a zero-width median are omitted — a rate fabricated from them
/// would poison the trajectory.
pub fn report(result: &CampaignResult) -> Report {
    let cells = result
        .cells
        .iter()
        .filter(|c| c.status == CellStatus::Ok && c.counters_consistent)
        .filter_map(|c| {
            let median = c.stats.as_ref()?.median;
            if !(median > 0.0 && median.is_finite()) {
                return None;
            }
            Some(CellRate {
                guest: c.guest.clone(),
                engine: c.engine.clone(),
                workload: c.workload.clone(),
                median_secs: median,
                instructions: c.counters.instructions,
                uops: c.counters.uops,
                mips: c.counters.instructions as f64 / median / 1e6,
                muops: c.counters.uops as f64 / median / 1e6,
            })
        })
        .collect();
    Report {
        campaign: result.name.clone(),
        scale: result.scale,
        cells,
    }
}

impl Report {
    /// Serialize as `simbench-hotloop/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {},", quote(SCHEMA));
        let _ = writeln!(out, "  \"campaign\": {},", quote(&self.campaign));
        let _ = writeln!(out, "  \"scale\": {},", self.scale);
        out.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"guest\": {}, \"engine\": {}, \"workload\": {}, \
                 \"median_secs\": {}, \"instructions\": {}, \"uops\": {}, \
                 \"mips\": {}, \"muops\": {}}}",
                quote(&c.guest),
                quote(&c.engine),
                quote(&c.workload),
                num(c.median_secs),
                c.instructions,
                c.uops,
                num(c.mips),
                num(c.muops),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Human-readable table, slowest cells first (they are the ones an
    /// optimization PR is trying to move).
    pub fn render(&self) -> String {
        let mut rows: Vec<&CellRate> = self.cells.iter().collect();
        rows.sort_by(|a, b| a.mips.total_cmp(&b.mips));
        let mut table = Table::new(["guest", "engine", "workload", "median", "MIPS", "Muops/s"]);
        for c in rows {
            table.row([
                c.guest.clone(),
                c.engine.clone(),
                c.workload.clone(),
                format!("{:.4}s", c.median_secs),
                format!("{:.2}", c.mips),
                format!("{:.2}", c.muops),
            ]);
        }
        format!(
            "self-bench of campaign {} (scale {}): {} cell(s)\n\n{}",
            self.campaign,
            self.scale,
            self.cells.len(),
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_campaign::{run, CampaignSpec, EngineKind, Guest, RunnerOpts, Workload};
    use simbench_suite::Benchmark;

    fn small_result() -> CampaignResult {
        let spec = CampaignSpec {
            name: "selfbench-test".to_string(),
            guests: vec![Guest::Armlet, Guest::Petix],
            engines: vec![EngineKind::Interp],
            workloads: vec![
                Workload::Suite(Benchmark::Syscall),
                Workload::Suite(Benchmark::NonprivAccess), // absent on petix
            ],
            scale: u64::MAX,
            reps: 1,
            precision: None,
            wall_limit: Some(std::time::Duration::from_secs(60)),
        };
        run(&spec, &RunnerOpts::serial())
    }

    #[test]
    fn report_covers_clean_cells_with_positive_rates() {
        let result = small_result();
        let rep = report(&result);
        // 4 cells in the matrix, one absent on petix.
        assert_eq!(rep.cells.len(), 3);
        for c in &rep.cells {
            assert!(c.mips > 0.0 && c.mips.is_finite(), "{c:?}");
            assert!(c.muops >= c.mips, "uop rate can never trail insn rate");
            assert!(c.instructions > 0);
        }
    }

    #[test]
    fn counter_inconsistent_cells_are_excluded() {
        // An engine-determinism bug leaves the cell Ok but flags the
        // disagreement; its stored counters describe only the first
        // repetition, so no rate may be derived from them.
        let mut result = small_result();
        let before = report(&result).cells.len();
        result.cells[0].counters_consistent = false;
        assert_eq!(report(&result).cells.len(), before - 1);
    }

    #[test]
    fn json_and_table_render() {
        let rep = report(&small_result());
        let json = rep.to_json();
        assert!(json.contains(SCHEMA));
        assert!(json.contains("\"mips\""));
        let text = rep.render();
        assert!(text.contains("MIPS"));
        assert!(text.contains("suite:System Call"));
    }
}

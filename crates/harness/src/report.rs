//! `simbench-harness report <CAMPAIGN.json>` — render a stored
//! campaign's optional `telemetry` block: the engine-metric counters
//! and log₂-bucket histograms that `campaign run --trace FILE`
//! snapshots into the `simbench-campaign/v5` schema.
//!
//! The block is observational — `campaign compare` never reads it — so
//! this renderer is the one consumer that turns it back into something
//! a human can reason about: counter totals, histogram totals and a
//! bar per nonzero bucket labelled with its lower bound.

use std::fmt::Write as _;

use simbench_campaign::table::Table;
use simbench_campaign::{CampaignResult, Telemetry};
use simbench_obs::metrics::bucket_floor;

/// Render the telemetry block of a stored campaign, or a pointer at
/// `--trace` when the campaign was run without instrumentation.
pub fn render_telemetry(result: &CampaignResult) -> String {
    let Some(t) = &result.telemetry else {
        return "\nno telemetry block in this campaign \
                (record one with `campaign run --trace FILE`)\n"
            .to_string();
    };
    let mut out = String::new();
    if !t.counters.is_empty() {
        out.push_str("\nengine counters:\n");
        let mut table = Table::new(["counter", "value"]);
        for (name, value) in &t.counters {
            table.row([name.clone(), value.to_string()]);
        }
        out.push_str(&table.render());
    }
    for (name, buckets) in &t.histograms {
        out.push_str(&render_histogram(name, buckets));
    }
    out
}

/// One histogram as a bucket table with proportional bars. Buckets are
/// log₂: the label is the bucket's lower value bound.
fn render_histogram(name: &str, buckets: &[(u32, u64)]) -> String {
    let total: u64 = buckets.iter().map(|(_, n)| n).sum();
    let peak = buckets.iter().map(|(_, n)| *n).max().unwrap_or(1).max(1);
    let mut out = String::new();
    let _ = writeln!(out, "\nhistogram {name} — {total} observation(s):");
    let mut table = Table::new([">= value", "count", ""]);
    for (b, n) in buckets {
        let bar = "#".repeat(((n * 32).div_ceil(peak)) as usize);
        table.row([bucket_floor(*b).to_string(), n.to_string(), bar]);
    }
    out.push_str(&table.render());
    out
}

/// True when the campaign carries a non-empty telemetry block.
pub fn has_telemetry(result: &CampaignResult) -> bool {
    result
        .telemetry
        .as_ref()
        .is_some_and(|t: &Telemetry| !t.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_campaign::{run, CampaignSpec, EngineKind, Guest, RunnerOpts, Workload};
    use simbench_suite::Benchmark;

    fn tiny_result() -> CampaignResult {
        let spec = CampaignSpec {
            name: "report-test".to_string(),
            guests: vec![Guest::Armlet],
            engines: vec![EngineKind::Interp],
            workloads: vec![Workload::Suite(Benchmark::Syscall)],
            scale: u64::MAX,
            reps: 1,
            precision: None,
            wall_limit: Some(std::time::Duration::from_secs(60)),
        };
        run(&spec, &RunnerOpts::serial())
    }

    fn result_with_telemetry() -> CampaignResult {
        let mut result = tiny_result();
        result.telemetry = Some(Telemetry {
            counters: vec![
                ("dbt.translations".to_string(), 1234),
                ("interp.dispatch_batches".to_string(), 9),
            ],
            histograms: vec![("dbt.block_steps".to_string(), vec![(0, 1), (3, 40), (5, 2)])],
        });
        result
    }

    #[test]
    fn renders_counters_and_histograms() {
        let result = result_with_telemetry();
        assert!(has_telemetry(&result));
        let text = render_telemetry(&result);
        assert!(text.contains("dbt.translations"), "{text}");
        assert!(text.contains("1234"), "{text}");
        assert!(text.contains("histogram dbt.block_steps"), "{text}");
        assert!(text.contains("43 observation(s)"), "{text}");
        // Bucket 3 floors at 4; its 40 observations get the full bar.
        assert!(text.contains(&"#".repeat(32)), "{text}");
        assert!(text.contains('4'), "{text}");
    }

    #[test]
    fn missing_telemetry_points_at_trace() {
        let result = tiny_result();
        assert!(!has_telemetry(&result));
        let text = render_telemetry(&result);
        assert!(text.contains("--trace"), "{text}");
    }
}

//! # simbench-harness
//!
//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation:
//!
//! | Module | Paper artefact |
//! |--------|----------------|
//! | [`fig2`] | Fig 2 — sjeng/mcf/overall SPEC speedup across QEMU versions |
//! | [`fig3`] | Fig 3 — benchmark table with operation densities |
//! | [`fig4`] | Fig 4 — engine feature-implementation matrix |
//! | [`fig5`] | Fig 5 — measurement environment |
//! | [`fig6`] | Fig 6 — per-category SimBench speedups across versions |
//! | [`fig7`] | Fig 7 — 18 benchmarks × 5 simulators × 2 guest ISAs |
//! | [`fig8`] | Fig 8 — SPEC vs SimBench geometric means across versions |
//! | [`model`] | §I contribution 3 — predict application runtimes from micro-benchmark costs |
//!
//! Run everything with `cargo run -p simbench-harness --release -- all`.

pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod model;
pub mod table;

use std::time::Duration;

use simbench_apps::{build_app, App};
use simbench_core::engine::{Engine, ExitReason, RunLimits, RunOutcome};
use simbench_core::events::Counters;
use simbench_core::image::GuestImage;
use simbench_core::isa::Isa;
use simbench_core::machine::Machine;
use simbench_dbt::{Dbt, VersionProfile};
use simbench_detailed::Detailed;
use simbench_interp::Interp;
use simbench_isa_armlet::Armlet;
use simbench_isa_petix::Petix;
use simbench_platform::Platform;
use simbench_suite::{build, ArmletSupport, Benchmark, PetixSupport};
use simbench_virt::Virt;

/// Guest architecture selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Guest {
    /// ARM-like guest.
    Armlet,
    /// x86-like guest.
    Petix,
}

impl Guest {
    /// Both guests.
    pub const ALL: [Guest; 2] = [Guest::Armlet, Guest::Petix];

    /// Display name matching the paper's "ARM Guest" / "x86 Guest".
    pub fn name(self) -> &'static str {
        match self {
            Guest::Armlet => "armlet (ARM-like)",
            Guest::Petix => "petix (x86-like)",
        }
    }

    /// ISA name used by `Benchmark::supported_on`.
    pub fn isa_name(self) -> &'static str {
        match self {
            Guest::Armlet => "armlet",
            Guest::Petix => "petix",
        }
    }
}

/// Engine selector, matching the five columns of Fig 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The DBT engine at a version profile (QEMU-DBT analogue).
    Dbt(VersionProfile),
    /// Fast interpreter (SimIt-ARM analogue).
    Interp,
    /// Detailed timing interpreter (Gem5 analogue).
    Detailed,
    /// Hardware-assisted virtualization (QEMU-KVM analogue).
    Virt,
    /// Bare-metal stand-in (zero-exit-cost direct execution).
    Native,
}

impl EngineKind {
    /// The five Fig 7 columns, newest DBT profile.
    pub fn fig7_columns() -> [EngineKind; 5] {
        [
            EngineKind::Dbt(VersionProfile::latest()),
            EngineKind::Interp,
            EngineKind::Detailed,
            EngineKind::Virt,
            EngineKind::Native,
        ]
    }

    /// Column header.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Dbt(_) => "dbt (QEMU)",
            EngineKind::Interp => "interp (SimIt)",
            EngineKind::Detailed => "detailed (Gem5)",
            EngineKind::Virt => "virt (KVM)",
            EngineKind::Native => "native (HW)",
        }
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Wall-clock time of the timed kernel phase.
    pub seconds: f64,
    /// Events retired during the kernel phase.
    pub counters: Counters,
    /// Why the run ended.
    pub exit: ExitReason,
    /// Iterations the guest executed.
    pub iterations: u32,
}

impl Sample {
    /// True when the run completed normally.
    pub fn ok(&self) -> bool {
        self.exit == ExitReason::Halted
    }
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Iteration divisor applied to the paper's Fig 3 counts (and app
    /// defaults). 1 reproduces the paper's full counts; the default keeps
    /// a full `all` run to a few minutes on a laptop.
    pub scale: u64,
    /// Safety limits per run.
    pub limits: RunLimits,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: 2000,
            limits: RunLimits {
                max_insns: u64::MAX,
                wall_limit: Some(Duration::from_secs(120)),
            },
        }
    }
}

impl Config {
    /// A configuration with the given scale divisor.
    pub fn with_scale(scale: u64) -> Self {
        Config { scale, ..Default::default() }
    }
}

fn run_image_on<I: Isa>(engine: EngineKind, image: &GuestImage, limits: &RunLimits) -> RunOutcome {
    let mut m = Machine::<I, Platform>::boot(image, Platform::new());
    match engine {
        EngineKind::Dbt(profile) => Dbt::<I>::with_profile(profile).run(&mut m, limits),
        EngineKind::Interp => Interp::<I>::new().run(&mut m, limits),
        EngineKind::Detailed => {
            // Mirror the paper's Fig 7 footnote: Gem5 lacks device models
            // for the interrupt controller and the safe MMIO device.
            let pages = [
                simbench_platform::INTC_BASE >> 12,
                simbench_platform::SAFEDEV_BASE >> 12,
            ];
            Detailed::<I>::new().with_unimplemented_pages(&pages).run(&mut m, limits)
        }
        EngineKind::Virt => Virt::<I>::kvm().run(&mut m, limits),
        EngineKind::Native => Virt::<I>::native().run(&mut m, limits),
    }
}

fn sample_from(out: RunOutcome, iterations: u32) -> Sample {
    Sample {
        seconds: out.kernel_wall().as_secs_f64(),
        counters: out.kernel_counters(),
        exit: out.exit,
        iterations,
    }
}

/// Run one suite benchmark. `None` when the benchmark does not exist on
/// the guest architecture (Nonprivileged Access on petix).
pub fn run_suite_bench(
    guest: Guest,
    engine: EngineKind,
    bench: Benchmark,
    cfg: &Config,
) -> Option<Sample> {
    let iters = bench.scaled_iterations(cfg.scale);
    let out = match guest {
        Guest::Armlet => {
            let image = build(&ArmletSupport::new(), bench, iters)?;
            run_image_on::<Armlet>(engine, &image, &cfg.limits)
        }
        Guest::Petix => {
            let image = build(&PetixSupport::new(), bench, iters)?;
            run_image_on::<Petix>(engine, &image, &cfg.limits)
        }
    };
    Some(sample_from(out, iters))
}

/// Run one synthetic application.
pub fn run_app(guest: Guest, engine: EngineKind, app: App, cfg: &Config) -> Sample {
    // Apps use a gentler divisor: the paper's point is that they are
    // large relative to the micro-benchmarks.
    let iters = app.scaled_iterations(cfg.scale / 50);
    let out = match guest {
        Guest::Armlet => {
            let image = build_app(&ArmletSupport::new(), app, iters);
            run_image_on::<Armlet>(engine, &image, &cfg.limits)
        }
        Guest::Petix => {
            let image = build_app(&PetixSupport::new(), app, iters);
            run_image_on::<Petix>(engine, &image, &cfg.limits)
        }
    };
    sample_from(out, iters)
}

/// Geometric mean.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn smoke_run_syscall_on_all_engines() {
        let cfg = Config { scale: 1_000_000, ..Default::default() };
        for engine in EngineKind::fig7_columns() {
            let s = run_suite_bench(Guest::Armlet, engine, Benchmark::Syscall, &cfg).unwrap();
            assert!(s.ok(), "{engine:?}: {:?}", s.exit);
            assert!(s.counters.syscalls >= 16);
        }
    }

    #[test]
    fn detailed_reports_unsupported_for_mmio() {
        let cfg = Config { scale: 1_000_000, ..Default::default() };
        let s = run_suite_bench(Guest::Armlet, EngineKind::Detailed, Benchmark::MmioDevice, &cfg)
            .unwrap();
        assert!(matches!(s.exit, ExitReason::Unsupported(_)));
        let s = run_suite_bench(Guest::Armlet, EngineKind::Detailed, Benchmark::ExtSwi, &cfg)
            .unwrap();
        assert!(matches!(s.exit, ExitReason::Unsupported(_)));
    }

    #[test]
    fn nonpriv_none_on_petix() {
        let cfg = Config { scale: 1_000_000, ..Default::default() };
        assert!(run_suite_bench(Guest::Petix, EngineKind::Interp, Benchmark::NonprivAccess, &cfg)
            .is_none());
    }
}

//! # simbench-harness
//!
//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation:
//!
//! | Module | Paper artefact |
//! |--------|----------------|
//! | [`fig2`] | Fig 2 — sjeng/mcf/overall SPEC speedup across QEMU versions |
//! | [`fig3`] | Fig 3 — benchmark table with operation densities |
//! | [`fig4`] | Fig 4 — engine feature-implementation matrix |
//! | [`fig5`] | Fig 5 — measurement environment |
//! | [`fig6`] | Fig 6 — per-category SimBench speedups across versions |
//! | [`fig7`] | Fig 7 — 18 benchmarks × 5 simulators × 2 guest ISAs |
//! | [`fig8`] | Fig 8 — SPEC vs SimBench geometric means across versions |
//! | [`model`] | §I contribution 3 — predict application runtimes from micro-benchmark costs, calibrated from stored campaign results (`simbench-harness model calibrate\|predict\|validate`) |
//!
//! Since the campaign refactor, every measuring driver (figs 2, 3, 6,
//! 7, 8) is a thin renderer over a [`simbench_campaign::CampaignResult`]:
//! it declares a [`simbench_campaign::CampaignSpec`], hands it to the
//! parallel campaign runner (honouring [`Config::jobs`]), and formats
//! the aggregated cells. The measurement primitives themselves
//! ([`Guest`], [`EngineKind`], [`run_suite_bench`], [`run_app`], ...)
//! live in `simbench-campaign` and are re-exported here for backwards
//! compatibility.
//!
//! Run everything with `cargo run -p simbench-harness --release -- all`.

pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod model;
pub mod report;
pub mod selfbench;
pub mod table;

pub use simbench_campaign::measure::{run_app, run_suite_bench, Config, EngineKind, Guest, Sample};
pub use simbench_campaign::stats::geomean;

use simbench_campaign::{CampaignResult, CampaignSpec, RunnerOpts};

/// Run a figure's campaign spec with the harness configuration's worker
/// count. All figure drivers funnel through here.
pub(crate) fn run_campaign(spec: &CampaignSpec, cfg: &Config) -> CampaignResult {
    simbench_campaign::run(spec, &RunnerOpts::with_jobs(cfg.jobs))
}

/// A figure campaign spec at the harness configuration's scale: reps
/// and wall limit come from [`Config`], the matrix from the caller.
pub(crate) fn figure_spec(
    name: &str,
    guests: Vec<Guest>,
    engines: Vec<EngineKind>,
    workloads: Vec<simbench_campaign::Workload>,
    cfg: &Config,
) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        guests,
        engines,
        workloads,
        scale: cfg.scale,
        reps: cfg.reps.max(1),
        // Figure renderers always run fixed repetition counts: their
        // tables show one number per cell, not convergence behavior.
        precision: None,
        // Pass the limit through as a full Duration: a sub-second limit
        // (e.g. 500 ms) must not be silently rounded up to one second,
        // nor a fractional part truncated.
        wall_limit: cfg.limits.wall_limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_suite::Benchmark;

    #[test]
    fn figure_specs_round_trip_sub_second_wall_limits() {
        use simbench_core::engine::RunLimits;
        use std::time::Duration;

        // 500 ms and 2.5 s used to collapse to 1 s and 2 s; the spec
        // now carries the configured limit losslessly.
        for limit in [
            Duration::from_millis(500),
            Duration::from_millis(2500),
            Duration::from_secs(120),
        ] {
            let cfg = Config {
                limits: RunLimits {
                    max_insns: u64::MAX,
                    wall_limit: Some(limit),
                },
                ..Default::default()
            };
            let spec = figure_spec(
                "t",
                vec![Guest::Armlet],
                vec![EngineKind::Interp],
                vec![],
                &cfg,
            );
            assert_eq!(spec.wall_limit, Some(limit));
            assert_eq!(spec.config().limits.wall_limit, Some(limit));
        }
        let cfg = Config {
            limits: RunLimits {
                max_insns: u64::MAX,
                wall_limit: None,
            },
            ..Default::default()
        };
        let spec = figure_spec(
            "t",
            vec![Guest::Armlet],
            vec![EngineKind::Interp],
            vec![],
            &cfg,
        );
        assert_eq!(spec.wall_limit, None);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn smoke_run_syscall_on_all_engines() {
        let cfg = Config {
            scale: 1_000_000,
            ..Default::default()
        };
        for engine in EngineKind::fig7_columns() {
            let s = run_suite_bench(Guest::Armlet, engine, Benchmark::Syscall, &cfg).unwrap();
            assert!(s.ok(), "{engine:?}: {:?}", s.exit);
            assert!(s.counters.syscalls >= 16);
        }
    }

    #[test]
    fn detailed_reports_unsupported_for_mmio() {
        let cfg = Config {
            scale: 1_000_000,
            ..Default::default()
        };
        let s = run_suite_bench(
            Guest::Armlet,
            EngineKind::Detailed,
            Benchmark::MmioDevice,
            &cfg,
        )
        .unwrap();
        assert!(matches!(
            s.exit,
            simbench_core::engine::ExitReason::Unsupported(_)
        ));
        let s =
            run_suite_bench(Guest::Armlet, EngineKind::Detailed, Benchmark::ExtSwi, &cfg).unwrap();
        assert!(matches!(
            s.exit,
            simbench_core::engine::ExitReason::Unsupported(_)
        ));
    }

    #[test]
    fn nonpriv_none_on_petix() {
        let cfg = Config {
            scale: 1_000_000,
            ..Default::default()
        };
        assert!(run_suite_bench(
            Guest::Petix,
            EngineKind::Interp,
            Benchmark::NonprivAccess,
            &cfg
        )
        .is_none());
    }
}

//! Application-performance modelling from micro-benchmark costs — the
//! paper's third contribution: "model application performance without
//! the need to repeatedly run full-scale application benchmarks".
//!
//! The model calibrates a per-operation cost vector from the SimBench
//! kernels (seconds per tested operation, plus a base cost per retired
//! instruction), then predicts an application's runtime on an engine
//! from its architectural *event profile* alone:
//!
//! ```text
//! t(app) ≈ insns·c_base + Σ_op  count_op(app) · c_op
//! ```
//!
//! The event profile is engine-independent (it is architectural), so it
//! can be collected once on any engine — e.g. the fastest — and combined
//! with another engine's calibrated costs, which is exactly the
//! workflow the paper proposes for avoiding repeated full application
//! runs on slow simulators.
//!
//! Everything here consumes stored [`CampaignResult`]s: calibration
//! reads the suite cells, prediction reads app event profiles, and
//! validation compares predictions against the measured app cells of
//! the same campaign — no benchmark is ever re-run. The convenience
//! entry points that measure fresh data ([`CostModel::calibrate`],
//! [`evaluate`]) do so by running a campaign first, so there is a
//! single calibration math path either way. On the CLI this surfaces
//! as `simbench-harness model calibrate|predict|validate`.

use simbench_campaign::{
    run, CampaignResult, CampaignSpec, CellResult, CellStatus, RunnerOpts, Workload,
};
use simbench_core::events::Counters;
use simbench_suite::Benchmark;

use crate::{Config, EngineKind, Guest};

/// Calibrated per-operation costs (seconds) for one engine.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Base cost per retired instruction.
    pub per_insn: f64,
    /// Extra cost per tested operation, by benchmark.
    pub per_op: Vec<(Benchmark, f64)>,
}

/// Benchmarks used for calibration: one per distinct cost source, with
/// near-pure kernels (their tested op dominates the kernel).
pub const CALIBRATORS: [Benchmark; 8] = [
    Benchmark::DataFault,
    Benchmark::InsnFault,
    Benchmark::UndefInsn,
    Benchmark::Syscall,
    Benchmark::MmioDevice,
    Benchmark::CoprocAccess,
    Benchmark::MemCold,
    Benchmark::IntraPageIndirect,
];

/// The (guest, engine) cell for a workload, if it completed cleanly.
fn ok_cell<'a>(
    result: &'a CampaignResult,
    guest: &str,
    engine: &str,
    workload: &str,
) -> Option<&'a CellResult> {
    result
        .cell(guest, engine, workload)
        .filter(|c| c.status == CellStatus::Ok && c.stats.is_some())
}

impl CostModel {
    /// Calibrate a cost model for one engine from a stored campaign
    /// result, dividing each calibration kernel's measured time among
    /// its events. Requires the campaign to contain a clean Hot Memory
    /// Access cell for the (guest, engine) pair; calibrator benchmarks
    /// that are missing or unsupported are skipped, matching the
    /// fresh-run path.
    pub fn from_campaign(
        result: &CampaignResult,
        guest: &str,
        engine: &str,
    ) -> Result<CostModel, String> {
        // Base instruction cost from the most uniform kernel: Hot Memory
        // Access (its loop is ordinary translated/interpreted code).
        let hot_id = Workload::Suite(Benchmark::MemHot).id();
        let hot = ok_cell(result, guest, engine, &hot_id).ok_or_else(|| {
            format!(
                "campaign {:?} has no clean {hot_id:?} cell for {guest}/{engine} \
                 (required for the base instruction cost)",
                result.name
            )
        })?;
        let hot_secs = hot.metric().expect("ok cell has stats");
        let per_insn = hot_secs / hot.counters.instructions.max(1) as f64;

        let mut per_op = Vec::new();
        for bench in CALIBRATORS {
            let Some(cell) = ok_cell(result, guest, engine, &Workload::Suite(bench).id()) else {
                continue; // e.g. detailed engine's unimplemented devices
            };
            let ops = cell
                .tested_ops
                .unwrap_or_else(|| bench.tested_ops(&cell.counters))
                .max(1) as f64;
            // The operation's marginal cost: kernel time minus what the
            // base instruction cost already explains.
            let base = cell.counters.instructions as f64 * per_insn;
            let secs = cell.metric().expect("ok cell has stats");
            let marginal = ((secs - base) / ops).max(0.0);
            per_op.push((bench, marginal));
        }
        Ok(CostModel { per_insn, per_op })
    }

    /// Calibrate by running the calibration kernels now: executes
    /// [`calibration_spec`] as a campaign, then calibrates from the
    /// result.
    pub fn calibrate(guest: Guest, engine: EngineKind, cfg: &Config) -> CostModel {
        let result = run(
            &calibration_spec(guest, vec![engine], cfg),
            &RunnerOpts::with_jobs(cfg.jobs),
        );
        CostModel::from_campaign(&result, guest.isa_name(), &engine.id())
            .expect("hot memory runs everywhere")
    }

    /// Predict a runtime from an architectural event profile.
    pub fn predict(&self, profile: &Counters) -> f64 {
        let mut t = profile.instructions as f64 * self.per_insn;
        for (bench, cost) in &self.per_op {
            t += bench.tested_ops(profile) as f64 * cost;
        }
        t
    }
}

/// The campaign matrix that calibration needs: the base-cost kernel
/// plus every calibrator, on the given engines.
pub fn calibration_spec(guest: Guest, engines: Vec<EngineKind>, cfg: &Config) -> CampaignSpec {
    let mut workloads = vec![Workload::Suite(Benchmark::MemHot)];
    workloads.extend(CALIBRATORS.iter().copied().map(Workload::Suite));
    crate::figure_spec("model-calibration", vec![guest], engines, workloads, cfg)
}

/// Evaluation of the model on one application.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Application workload id (`app:<name>`).
    pub app: String,
    /// Predicted seconds on the modelled engine.
    pub predicted: f64,
    /// Measured seconds on the modelled engine, when the campaign
    /// contains that cell.
    pub measured: Option<f64>,
}

impl Prediction {
    /// measured/predicted error factor (≥ 1); `None` without a
    /// measurement.
    pub fn error_factor(&self) -> Option<f64> {
        let measured = self.measured?;
        let (a, b) = (self.predicted.max(1e-12), measured.max(1e-12));
        Some((a / b).max(b / a))
    }
}

/// Calibrate costs for `engine` from a stored campaign, take each app's
/// event profile from `profile_engine`'s cells, and predict the app's
/// runtime on `engine`. Where the campaign also measured the app on
/// `engine`, the prediction carries that measurement for validation.
pub fn predict_from_campaign(
    result: &CampaignResult,
    guest: &str,
    engine: &str,
    profile_engine: &str,
) -> Result<Vec<Prediction>, String> {
    let model = CostModel::from_campaign(result, guest, engine)?;
    let predictions: Vec<Prediction> = result
        .cells
        .iter()
        .filter(|c| {
            c.guest == guest
                && c.engine == profile_engine
                && c.workload.starts_with("app:")
                && c.status == CellStatus::Ok
        })
        .map(|profile_cell| Prediction {
            app: profile_cell.workload.clone(),
            predicted: model.predict(&profile_cell.counters),
            measured: ok_cell(result, guest, engine, &profile_cell.workload)
                .and_then(CellResult::metric),
        })
        .collect();
    if predictions.is_empty() {
        return Err(format!(
            "campaign {:?} has no clean app event profiles for {guest}/{profile_engine} \
             (run it with --apps)",
            result.name
        ));
    }
    Ok(predictions)
}

/// The engine whose app cells should supply event profiles when the
/// caller did not pick one: `native` when it has clean app cells (the
/// paper profiles on the fastest engine), otherwise any other engine
/// with clean app cells, otherwise the modelled engine itself.
pub fn default_profile_engine(result: &CampaignResult, guest: &str, engine: &str) -> String {
    let has_profiles = |e: &str| {
        result.cells.iter().any(|c| {
            c.guest == guest
                && c.engine == e
                && c.workload.starts_with("app:")
                && c.status == CellStatus::Ok
        })
    };
    if has_profiles("native") {
        return "native".to_string();
    }
    result
        .cells
        .iter()
        .find(|c| {
            c.engine != engine
                && c.guest == guest
                && c.workload.starts_with("app:")
                && c.status == CellStatus::Ok
        })
        .map(|c| c.engine.clone())
        .unwrap_or_else(|| engine.to_string())
}

/// Calibrate on `engine`, collect app event profiles on `profile_engine`
/// (typically the fastest), and compare predicted vs measured times —
/// all through one freshly-run campaign.
pub fn evaluate(
    guest: Guest,
    engine: EngineKind,
    profile_engine: EngineKind,
    cfg: &Config,
) -> Vec<Prediction> {
    let mut engines = vec![engine];
    if profile_engine != engine {
        engines.push(profile_engine);
    }
    let mut spec = calibration_spec(guest, engines, cfg);
    spec.name = "model-evaluation".to_string();
    spec.workloads.extend(CampaignSpec::app_workloads());
    let result = run(&spec, &RunnerOpts::with_jobs(cfg.jobs));
    predict_from_campaign(
        &result,
        guest.isa_name(),
        &engine.id(),
        &profile_engine.id(),
    )
    .expect("evaluation campaign measured apps on both engines")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_predicts_dbt_app_times_within_bounds() {
        // Profile on the native engine, predict the DBT engine's time.
        let cfg = Config::with_scale(20_000);
        let preds = evaluate(
            Guest::Armlet,
            EngineKind::Dbt(simbench_dbt::VersionProfile::latest()),
            EngineKind::Native,
            &cfg,
        );
        assert_eq!(preds.len(), simbench_apps::App::ALL.len());
        assert!(preds.iter().all(|p| p.measured.is_some()));
        // The paper claims usefulness, not precision ("you could not
        // accurately use one to predict the other"): require order-of-
        // magnitude agreement for the majority of apps.
        let good = preds
            .iter()
            .filter(|p| p.error_factor().is_some_and(|e| e < 10.0))
            .count();
        assert!(
            good * 2 >= preds.len(),
            "model too far off: {:?}",
            preds
                .iter()
                .map(|p| (p.app.clone(), p.error_factor()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn calibration_produces_positive_base_cost() {
        let cfg = Config::with_scale(50_000);
        let m = CostModel::calibrate(Guest::Armlet, EngineKind::Interp, &cfg);
        assert!(m.per_insn > 0.0);
        assert!(!m.per_op.is_empty());
        // Prediction is monotone in instruction count.
        let small = Counters {
            instructions: 1_000,
            ..Default::default()
        };
        let big = Counters {
            instructions: 1_000_000,
            ..Default::default()
        };
        assert!(m.predict(&big) > m.predict(&small));
    }

    #[test]
    fn stored_campaign_round_trip_preserves_the_model() {
        // Calibrating from a persisted-and-reloaded campaign must give
        // the same model as calibrating from the in-memory result: the
        // validation workflow never needs the original process.
        let cfg = Config::with_scale(200_000);
        let result = run(
            &calibration_spec(Guest::Armlet, vec![EngineKind::Interp], &cfg),
            &RunnerOpts::serial(),
        );
        let reloaded = CampaignResult::from_json(&result.to_json()).unwrap();
        let a = CostModel::from_campaign(&result, "armlet", "interp").unwrap();
        let b = CostModel::from_campaign(&reloaded, "armlet", "interp").unwrap();
        assert_eq!(a.per_insn, b.per_insn);
        assert_eq!(a.per_op.len(), b.per_op.len());
        for ((ba, ca), (bb, cb)) in a.per_op.iter().zip(&b.per_op) {
            assert_eq!(ba, bb);
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn missing_cells_are_reported_not_panicked() {
        let cfg = Config::with_scale(500_000);
        let result = run(
            &calibration_spec(Guest::Armlet, vec![EngineKind::Interp], &cfg),
            &RunnerOpts::serial(),
        );
        let err = CostModel::from_campaign(&result, "armlet", "virt").unwrap_err();
        assert!(err.contains("no clean"), "{err}");
        let err = predict_from_campaign(&result, "armlet", "interp", "interp").unwrap_err();
        assert!(err.contains("--apps"), "{err}");
    }

    #[test]
    fn profile_engine_defaults_prefer_native() {
        let cfg = Config::with_scale(500_000);
        let mut spec = calibration_spec(
            Guest::Armlet,
            vec![EngineKind::Interp, EngineKind::Native],
            &cfg,
        );
        spec.workloads
            .push(Workload::App(simbench_apps::App::McfLike));
        let result = run(&spec, &RunnerOpts::with_jobs(2));
        assert_eq!(
            default_profile_engine(&result, "armlet", "interp"),
            "native"
        );
        // Without any app cells the modelled engine is its own profiler.
        let bare = run(
            &calibration_spec(Guest::Armlet, vec![EngineKind::Interp], &cfg),
            &RunnerOpts::serial(),
        );
        assert_eq!(default_profile_engine(&bare, "armlet", "interp"), "interp");
    }
}

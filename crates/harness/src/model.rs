//! Application-performance modelling from micro-benchmark costs — the
//! paper's third contribution: "model application performance without
//! the need to repeatedly run full-scale application benchmarks".
//!
//! The model calibrates a per-operation cost vector from the SimBench
//! kernels (seconds per tested operation, plus a base cost per retired
//! instruction), then predicts an application's runtime on an engine
//! from its architectural *event profile* alone:
//!
//! ```text
//! t(app) ≈ insns·c_base + Σ_op  count_op(app) · c_op
//! ```
//!
//! The event profile is engine-independent (it is architectural), so it
//! can be collected once on any engine — e.g. the fastest — and combined
//! with another engine's calibrated costs, which is exactly the
//! workflow the paper proposes for avoiding repeated full application
//! runs on slow simulators.

use simbench_core::events::Counters;
use simbench_suite::Benchmark;

use crate::{run_suite_bench, Config, EngineKind, Guest};

/// Calibrated per-operation costs (seconds) for one engine.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Base cost per retired instruction.
    pub per_insn: f64,
    /// Extra cost per tested operation, by benchmark.
    pub per_op: Vec<(Benchmark, f64)>,
}

/// Benchmarks used for calibration: one per distinct cost source, with
/// near-pure kernels (their tested op dominates the kernel).
const CALIBRATORS: [Benchmark; 8] = [
    Benchmark::DataFault,
    Benchmark::InsnFault,
    Benchmark::UndefInsn,
    Benchmark::Syscall,
    Benchmark::MmioDevice,
    Benchmark::CoprocAccess,
    Benchmark::MemCold,
    Benchmark::IntraPageIndirect,
];

impl CostModel {
    /// Calibrate a cost model for an engine by running the SimBench
    /// kernels and dividing their kernel time among their events.
    pub fn calibrate(guest: Guest, engine: EngineKind, cfg: &Config) -> CostModel {
        // Base instruction cost from the most uniform kernel: Hot Memory
        // Access (its loop is ordinary translated/interpreted code).
        let hot = run_suite_bench(guest, engine, Benchmark::MemHot, cfg)
            .expect("hot memory runs everywhere");
        let per_insn = hot.seconds / hot.counters.instructions.max(1) as f64;

        let mut per_op = Vec::new();
        for bench in CALIBRATORS {
            let Some(s) = run_suite_bench(guest, engine, bench, cfg) else {
                continue;
            };
            if !s.ok() {
                continue; // e.g. detailed engine's unimplemented devices
            }
            let ops = bench.tested_ops(&s.counters).max(1) as f64;
            // The operation's marginal cost: kernel time minus what the
            // base instruction cost already explains.
            let base = s.counters.instructions as f64 * per_insn;
            let marginal = ((s.seconds - base) / ops).max(0.0);
            per_op.push((bench, marginal));
        }
        CostModel { per_insn, per_op }
    }

    /// Predict a runtime from an architectural event profile.
    pub fn predict(&self, profile: &Counters) -> f64 {
        let mut t = profile.instructions as f64 * self.per_insn;
        for (bench, cost) in &self.per_op {
            t += bench.tested_ops(profile) as f64 * cost;
        }
        t
    }
}

/// Evaluation of the model on one application.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Application name.
    pub app: &'static str,
    /// Predicted seconds.
    pub predicted: f64,
    /// Measured seconds.
    pub measured: f64,
}

impl Prediction {
    /// measured/predicted error factor (≥ 1).
    pub fn error_factor(&self) -> f64 {
        let (a, b) = (self.predicted.max(1e-12), self.measured.max(1e-12));
        (a / b).max(b / a)
    }
}

/// Calibrate on `engine`, collect app event profiles on `profile_engine`
/// (typically the fastest), and compare predicted vs measured times.
pub fn evaluate(
    guest: Guest,
    engine: EngineKind,
    profile_engine: EngineKind,
    cfg: &Config,
) -> Vec<Prediction> {
    let model = CostModel::calibrate(guest, engine, cfg);
    simbench_apps::App::ALL
        .iter()
        .map(|&app| {
            let profile = crate::run_app(guest, profile_engine, app, cfg).counters;
            let measured = crate::run_app(guest, engine, app, cfg).seconds;
            Prediction {
                app: app.name(),
                predicted: model.predict(&profile),
                measured,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_predicts_dbt_app_times_within_bounds() {
        // Profile on the native engine, predict the DBT engine's time.
        let cfg = Config::with_scale(20_000);
        let preds = evaluate(
            Guest::Armlet,
            EngineKind::Dbt(simbench_dbt::VersionProfile::latest()),
            EngineKind::Native,
            &cfg,
        );
        assert_eq!(preds.len(), simbench_apps::App::ALL.len());
        // The paper claims usefulness, not precision ("you could not
        // accurately use one to predict the other"): require order-of-
        // magnitude agreement for the majority of apps.
        let good = preds.iter().filter(|p| p.error_factor() < 10.0).count();
        assert!(
            good * 2 >= preds.len(),
            "model too far off: {:?}",
            preds
                .iter()
                .map(|p| (p.app, p.error_factor()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn calibration_produces_positive_base_cost() {
        let cfg = Config::with_scale(50_000);
        let m = CostModel::calibrate(Guest::Armlet, EngineKind::Interp, &cfg);
        assert!(m.per_insn > 0.0);
        assert!(!m.per_op.is_empty());
        // Prediction is monotone in instruction count.
        let small = Counters {
            instructions: 1_000,
            ..Default::default()
        };
        let big = Counters {
            instructions: 1_000_000,
            ..Default::default()
        };
        assert!(m.predict(&big) > m.predict(&small));
    }
}

//! Fig 5: the measurement environment. The paper lists its two physical
//! testbeds; our substitution (see `DESIGN.md`) runs every engine on the
//! host this harness executes on, so the honest equivalent is a
//! description of that host plus the engine configurations.

use crate::table::Table;

/// Render the environment table.
pub fn run() -> String {
    let mut table = Table::new(["property", "value"]);
    table.row([
        "Role",
        "host for all five engines (paper: ODROID-XU3 + HP z440)",
    ]);
    table.row([
        "OS".to_string(),
        format!("{} / {}", std::env::consts::OS, std::env::consts::ARCH),
    ]);
    table.row(["CPU".to_string(), cpu_model()]);
    table.row(["Logical CPUs".to_string(), num_cpus().to_string()]);
    table.row(["Rust".to_string(), rustc_version()]);
    table.row([
        "Engines",
        "dbt, interp, detailed, virt, native (single-threaded)",
    ]);
    format!("Fig 5 — measurement environment\n\n{}", table.render())
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn rustc_version() -> String {
    option_env!("CARGO_PKG_RUST_VERSION")
        .filter(|v| !v.is_empty())
        .map(str::to_string)
        .unwrap_or_else(|| "stable (workspace default)".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders() {
        let s = super::run();
        assert!(s.contains("Fig 5"));
        assert!(s.contains("Engines"));
    }
}

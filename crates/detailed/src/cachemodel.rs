//! Timing-model structures for the detailed engine: a set-associative
//! cache model with true-LRU replacement and a simple DRAM latency
//! model. Every simulated access does real bookkeeping work — that work
//! *is* the slowness of detailed simulation the paper measures for Gem5.

/// One cache way.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u32,
    valid: bool,
    lru: u8,
}

/// A set-associative cache model with LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheModel {
    sets: Vec<Line>,
    ways: usize,
    set_mask: u32,
    line_shift: u32,
    hits: u64,
    misses: u64,
    /// Cycle cost of a hit.
    pub hit_cycles: u64,
    /// Cycle cost of a miss (fill from the next level).
    pub miss_cycles: u64,
}

impl CacheModel {
    /// A cache of `size_bytes` with `ways` ways and `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two split.
    pub fn new(
        size_bytes: usize,
        ways: usize,
        line_bytes: usize,
        hit_cycles: u64,
        miss_cycles: u64,
    ) -> Self {
        assert!(line_bytes.is_power_of_two() && size_bytes.is_multiple_of(ways * line_bytes));
        let n_sets = size_bytes / (ways * line_bytes);
        assert!(n_sets.is_power_of_two());
        CacheModel {
            sets: vec![
                Line {
                    tag: 0,
                    valid: false,
                    lru: 0
                };
                n_sets * ways
            ],
            ways,
            set_mask: n_sets as u32 - 1,
            line_shift: line_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
            hit_cycles,
            miss_cycles,
        }
    }

    /// Simulate an access; returns charged cycles.
    pub fn access(&mut self, pa: u32) -> u64 {
        let line_addr = pa >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.trailing_ones();
        let base = set * self.ways;
        let ways = &mut self.sets[base..base + self.ways];

        // LRU search: real per-access work.
        let mut hit_way = None;
        for (i, line) in ways.iter().enumerate() {
            if line.valid && line.tag == tag {
                hit_way = Some(i);
                break;
            }
        }
        match hit_way {
            Some(i) => {
                let old = ways[i].lru;
                for line in ways.iter_mut() {
                    if line.lru < old {
                        line.lru += 1;
                    }
                }
                ways[i].lru = 0;
                self.hits += 1;
                self.hit_cycles
            }
            None => {
                // Evict the LRU way.
                let victim = ways
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, l)| if l.valid { l.lru } else { u8::MAX })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                for line in ways.iter_mut() {
                    line.lru = line.lru.saturating_add(1);
                }
                ways[victim] = Line {
                    tag,
                    valid: true,
                    lru: 0,
                };
                self.misses += 1;
                self.miss_cycles
            }
        }
    }

    /// Invalidate everything (context switches, SMC).
    pub fn flush(&mut self) {
        for line in &mut self.sets {
            line.valid = false;
        }
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Accumulated pipeline timing for the run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycles lost to instruction-cache misses.
    pub icache_stall: u64,
    /// Cycles lost to data-cache misses.
    pub dcache_stall: u64,
    /// Cycles lost to TLB walks.
    pub tlb_stall: u64,
    /// Branch redirect penalties.
    pub branch_penalty: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let mut c = CacheModel::new(1024, 2, 64, 1, 20);
        assert_eq!(c.access(0x100), 20, "cold miss");
        assert_eq!(c.access(0x104), 1, "same line hits");
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        // 2 ways, 1 set: 128 bytes total, 64-byte lines.
        let mut c = CacheModel::new(128, 2, 64, 1, 20);
        c.access(0x000); // A
        c.access(0x040); // B
        c.access(0x000); // A hit → B becomes LRU
        c.access(0x080); // C evicts B
        assert_eq!(c.access(0x000), 1, "A still resident");
        assert_eq!(c.access(0x040), 20, "B was evicted");
    }

    #[test]
    fn flush_invalidates() {
        let mut c = CacheModel::new(1024, 2, 64, 1, 20);
        c.access(0x100);
        c.flush();
        assert_eq!(c.access(0x100), 20);
    }
}

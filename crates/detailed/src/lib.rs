//! # simbench-detailed
//!
//! A *detailed* (timing) interpreter — the Gem5 analogue of the paper's
//! evaluation. Every instruction is re-decoded through the full decoder,
//! fetched through a modelled L1 instruction cache, and its data
//! accesses charged through a modelled TLB and L1 data cache with LRU
//! bookkeeping; the engine accumulates a simulated cycle count. All of
//! that per-instruction work is *why* detailed simulators are orders of
//! magnitude slower than fast interpreters — the same reason the paper
//! gives for Gem5's Code Generation numbers ("the Gem5 interpreter is
//! much more detailed in nature than that of SimIt-ARM").
//!
//! Mirroring the paper's Fig 7 footnote ("† functionality is not
//! implemented in the Gem5 simulator"), this engine can be configured
//! with unimplemented physical pages; touching one ends the run with
//! [`ExitReason::Unsupported`]. The harness marks the interrupt
//! controller and the safe MMIO device as unimplemented, so the External
//! Software Interrupt and Memory Mapped Device benchmarks report "-" on
//! this engine, exactly as in the paper.

pub mod cachemodel;
pub mod timing;

use std::marker::PhantomData;
use std::time::Instant;

use simbench_core::bus::{Bus, BusEvent};
use simbench_core::cpu::{CpuState, Flags};
use simbench_core::engine::{Engine, EngineInfo, ExitReason, PhaseTracker, RunLimits, RunOutcome};
use simbench_core::events::Counters;
use simbench_core::exec::{step_op, BranchFlavor, ExecCtx, OpOutcome, Trap};
use simbench_core::fault::{AccessKind, CopFault, ExcInfo, ExceptionKind, FaultKind, MemFault};
use simbench_core::ir::{Decoded, InsnClass, MemSize, Op};
use simbench_core::isa::{CopEffect, Isa};
use simbench_core::machine::Machine;
use simbench_core::page_of;
use simbench_core::tlb::SetAssocTlb;

use cachemodel::{CacheModel, PipelineStats};
use timing::{BranchPredictor, Latencies, Scoreboard};

/// Main-loop iterations between wall-clock checks. Iterations, not
/// retired instructions: IRQ-delivery and prefetch-abort iterations
/// retire nothing, and a storm of them must still honor `--wall-limit`.
const WALL_CHECK_PERIOD: u64 = 0x4000;

/// Timing parameters of the modelled core.
#[derive(Debug, Clone, Copy)]
pub struct TimingConfig {
    /// Cycles per decoded instruction (front end).
    pub decode_cycles: u64,
    /// Cycles per executed micro-op.
    pub op_cycles: u64,
    /// Cycles for a TLB walk.
    pub walk_cycles: u64,
    /// Redirect penalty per taken branch.
    pub branch_cycles: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            decode_cycles: 1,
            op_cycles: 1,
            walk_cycles: 30,
            branch_cycles: 2,
        }
    }
}

/// The detailed timing engine.
#[derive(Debug)]
pub struct Detailed<I: Isa> {
    timing: TimingConfig,
    tlb: SetAssocTlb,
    icache: CacheModel,
    dcache: CacheModel,
    l2: CacheModel,
    scoreboard: Scoreboard,
    bpred: BranchPredictor,
    stats: PipelineStats,
    /// Physical pages the model has no device implementation for.
    unimplemented_pages: Vec<u32>,
    /// Per-class retirement histogram (part of the detailed bookkeeping).
    class_histogram: [u64; 5],
    _isa: PhantomData<I>,
}

impl<I: Isa> Default for Detailed<I> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Isa> Detailed<I> {
    /// An engine with default timing and everything implemented.
    pub fn new() -> Self {
        Detailed {
            timing: TimingConfig::default(),
            tlb: SetAssocTlb::new(16, 4),
            icache: CacheModel::new(32 << 10, 4, 64, 1, 12),
            dcache: CacheModel::new(32 << 10, 4, 64, 2, 12),
            l2: CacheModel::new(256 << 10, 8, 64, 10, 80),
            scoreboard: Scoreboard::new(Latencies::default()),
            bpred: BranchPredictor::new(12, Latencies::default().mispredict),
            stats: PipelineStats::default(),
            unimplemented_pages: Vec::new(),
            class_histogram: [0; 5],
            _isa: PhantomData,
        }
    }

    /// Mark physical pages as having no device model: any access ends the
    /// run as [`ExitReason::Unsupported`].
    pub fn with_unimplemented_pages(mut self, pages: &[u32]) -> Self {
        self.unimplemented_pages = pages.to_vec();
        self
    }

    /// Accumulated pipeline statistics.
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.stats
    }

    /// Retired-instruction histogram by [`InsnClass`].
    pub fn class_histogram(&self) -> [u64; 5] {
        self.class_histogram
    }
}

struct Ctx<'a, I: Isa, B: Bus> {
    cpu: &'a mut CpuState,
    sys: &'a mut I::Sys,
    bus: &'a mut B,
    tlb: &'a mut SetAssocTlb,
    dcache: &'a mut CacheModel,
    l2: &'a mut CacheModel,
    scoreboard: &'a mut Scoreboard,
    stats: &'a mut PipelineStats,
    /// Memory latency of the current op, consumed by the scoreboard.
    mem_cycles: u64,
    timing: TimingConfig,
    counters: &'a mut Counters,
    unimplemented_pages: &'a [u32],
    phase_mark: Option<u8>,
    unsupported: bool,
}

impl<I: Isa, B: Bus> Ctx<'_, I, B> {
    fn translate_data(
        &mut self,
        va: u32,
        size: MemSize,
        access: AccessKind,
        nonpriv: bool,
    ) -> Result<u32, MemFault> {
        if !size.aligned(va) {
            return Err(MemFault {
                addr: va,
                access,
                kind: FaultKind::Unaligned,
            });
        }
        if !I::mmu_enabled(self.sys) {
            return Ok(va);
        }
        let vpage = page_of(va);
        let entry = match self.tlb.lookup(vpage) {
            Some(e) => {
                self.counters.tlb_hits += 1;
                e
            }
            None => {
                self.counters.tlb_misses += 1;
                self.stats.tlb_stall += self.timing.walk_cycles;
                self.stats.cycles += self.timing.walk_cycles;
                let e = I::walk(self.sys, self.bus, va).map_err(|mut f| {
                    f.access = access;
                    f
                })?;
                self.tlb.insert(e);
                e
            }
        };
        entry.check(va, access, self.cpu.level.is_kernel(), nonpriv)
    }

    fn charge_data(&mut self, pa: u32) {
        let mut cycles = self.dcache.access(pa);
        if cycles > self.dcache.hit_cycles {
            // L1 miss: model the L2 access (and implicit DRAM on L2 miss).
            cycles += self.l2.access(pa);
            self.stats.dcache_stall += cycles - self.dcache.hit_cycles;
        }
        self.stats.cycles += cycles;
        self.mem_cycles += cycles;
    }

    fn check_implemented(&mut self, pa: u32) -> bool {
        if self.unimplemented_pages.contains(&page_of(pa)) {
            self.unsupported = true;
            return false;
        }
        true
    }
}

impl<I: Isa, B: Bus> ExecCtx for Ctx<'_, I, B> {
    fn reg(&self, r: u8) -> u32 {
        self.cpu.regs[r as usize]
    }
    fn set_reg(&mut self, r: u8, v: u32) {
        self.cpu.regs[r as usize] = v;
    }
    fn flags(&self) -> Flags {
        self.cpu.flags
    }
    fn set_flags(&mut self, f: Flags) {
        self.cpu.flags = f;
    }
    fn privileged(&self) -> bool {
        self.cpu.level.is_kernel()
    }

    fn read(&mut self, va: u32, size: MemSize, nonpriv: bool) -> Result<u32, MemFault> {
        self.counters.mem_reads += 1;
        if nonpriv {
            self.counters.nonpriv_accesses += 1;
        }
        let pa = self.translate_data(va, size, AccessKind::Read, nonpriv)?;
        if self.bus.is_mmio(pa) {
            self.counters.mmio_accesses += 1;
            if !self.check_implemented(pa) {
                // Unsupported device: return a dummy value; the run loop
                // terminates before architectural state can diverge.
                return Ok(0);
            }
        } else {
            self.charge_data(pa);
        }
        self.bus.read(pa, size).map_err(|mut f| {
            f.addr = va;
            f
        })
    }

    fn write(&mut self, va: u32, val: u32, size: MemSize, nonpriv: bool) -> Result<(), MemFault> {
        self.counters.mem_writes += 1;
        if nonpriv {
            self.counters.nonpriv_accesses += 1;
        }
        let pa = self.translate_data(va, size, AccessKind::Write, nonpriv)?;
        if self.bus.is_mmio(pa) {
            self.counters.mmio_accesses += 1;
            if !self.check_implemented(pa) {
                return Ok(());
            }
        } else {
            self.charge_data(pa);
        }
        match self.bus.write(pa, val, size) {
            Ok(Some(BusEvent::PhaseMark(m))) => {
                self.phase_mark = Some(m);
                Ok(())
            }
            Ok(_) => Ok(()),
            Err(mut f) => {
                f.addr = va;
                Err(f)
            }
        }
    }

    fn cop_read(&mut self, cp: u8, reg: u8) -> Result<u32, CopFault> {
        self.counters.coproc_accesses += 1;
        I::cop_read(self.cpu, self.sys, cp, reg)
    }

    fn cop_write(&mut self, cp: u8, reg: u8, val: u32) -> Result<(), CopFault> {
        self.counters.coproc_accesses += 1;
        match I::cop_write(self.cpu, self.sys, cp, reg, val)? {
            CopEffect::None => {}
            CopEffect::TlbInvPage(va) => {
                self.counters.tlb_invalidate_page += 1;
                self.tlb.invalidate_page(page_of(va));
            }
            CopEffect::TlbFlush => {
                self.counters.tlb_flushes += 1;
                self.tlb.flush();
            }
            CopEffect::ContextChanged => self.tlb.flush(),
        }
        Ok(())
    }
}

enum Fetch {
    Ok(Decoded),
    Abort(MemFault),
}

impl<I: Isa> Detailed<I> {
    fn fetch<B: Bus>(
        &mut self,
        cpu: &CpuState,
        sys: &mut I::Sys,
        bus: &mut B,
        counters: &mut Counters,
        pc: u32,
    ) -> Fetch {
        let mut bytes = [0u8; 8];
        let mut have = 0usize;
        let want = I::MAX_INSN_BYTES;
        let mut va = pc;
        while have < want {
            let pa = if !I::mmu_enabled(sys) {
                va
            } else {
                let vpage = page_of(va);
                let entry = match self.tlb.lookup(vpage) {
                    Some(e) => {
                        counters.tlb_hits += 1;
                        e
                    }
                    None => {
                        counters.tlb_misses += 1;
                        self.stats.tlb_stall += self.timing.walk_cycles;
                        self.stats.cycles += self.timing.walk_cycles;
                        match I::walk(sys, bus, va) {
                            Ok(e) => {
                                self.tlb.insert(e);
                                e
                            }
                            Err(mut f) => {
                                f.access = AccessKind::Execute;
                                if have > 0 {
                                    break;
                                }
                                return Fetch::Abort(f);
                            }
                        }
                    }
                };
                match entry.check(va, AccessKind::Execute, cpu.level.is_kernel(), false) {
                    Ok(pa) => pa,
                    Err(f) => {
                        if have > 0 {
                            break;
                        }
                        return Fetch::Abort(f);
                    }
                }
            };
            // Charge the instruction cache (L2 behind it on a miss).
            let mut cycles = self.icache.access(pa);
            if cycles > self.icache.hit_cycles {
                cycles += self.l2.access(pa);
                self.stats.icache_stall += cycles - self.icache.hit_cycles;
            }
            self.stats.cycles += cycles;
            let page_left = (0x1000 - (va & 0xFFF)) as usize;
            let n = page_left.min(want - have);
            let ram = bus.ram();
            if (pa as usize) + n > ram.len() {
                if have == 0 {
                    return Fetch::Abort(MemFault {
                        addr: pc,
                        access: AccessKind::Execute,
                        kind: FaultKind::BusError,
                    });
                }
                break;
            }
            bytes[have..have + n].copy_from_slice(&ram[pa as usize..pa as usize + n]);
            have += n;
            va = va.wrapping_add(n as u32);
        }
        match I::decode(&bytes[..have], pc) {
            Ok(d) => Fetch::Ok(d),
            Err(_) => Fetch::Ok(Decoded::new(
                I::MAX_INSN_BYTES as u8,
                [Op::Udf],
                InsnClass::System,
            )),
        }
    }
}

impl<I: Isa, B: Bus> Engine<I, B> for Detailed<I> {
    fn info(&self) -> EngineInfo {
        EngineInfo {
            name: "detailed",
            execution_model: "Interpreter",
            memory_access: "Modelled TLB",
            code_generation: "None",
            control_flow_inter: "Interpreted",
            control_flow_intra: "Interpreted",
            interrupts: "Insn. Boundaries",
            sync_exceptions: "Interpreted",
            undef_insn: "Interpreted",
        }
    }

    fn run(&mut self, m: &mut Machine<I, B>, limits: &RunLimits) -> RunOutcome {
        let t0 = Instant::now();
        let mut counters = Counters::default();
        let mut phase = PhaseTracker::new();
        self.tlb.flush();
        self.icache.flush();
        self.dcache.flush();
        self.l2.flush();
        self.scoreboard.reset();

        let mut iters: u64 = 0;
        let exit = 'outer: loop {
            if counters.instructions >= limits.max_insns {
                break ExitReason::InsnLimit;
            }
            if let Some(wall) = limits.wall_limit {
                if iters.is_multiple_of(WALL_CHECK_PERIOD) && t0.elapsed() >= wall {
                    break ExitReason::WallLimit;
                }
            }
            iters += 1;

            if m.cpu.irq_enabled && m.bus.irq_pending() {
                counters.irqs_delivered += 1;
                let resume = m.cpu.pc;
                let vec = I::enter_exception(
                    &mut m.cpu,
                    &mut m.sys,
                    ExceptionKind::Irq,
                    ExcInfo::default(),
                    resume,
                );
                m.cpu.pc = vec;
                continue;
            }

            let pc = m.cpu.pc;
            let decoded = match self.fetch(&m.cpu, &mut m.sys, &mut m.bus, &mut counters, pc) {
                Fetch::Ok(d) => d,
                Fetch::Abort(f) => {
                    counters.insn_faults += 1;
                    let vec = I::enter_exception(
                        &mut m.cpu,
                        &mut m.sys,
                        ExceptionKind::PrefetchAbort,
                        ExcInfo::from_fault(f),
                        pc,
                    );
                    m.cpu.pc = vec;
                    continue;
                }
            };

            counters.instructions += 1;
            self.stats.cycles += self.timing.decode_cycles;
            self.class_histogram[match decoded.class {
                InsnClass::Alu => 0,
                InsnClass::Mem => 1,
                InsnClass::Branch => 2,
                InsnClass::System => 3,
                InsnClass::Nop => 4,
            }] += 1;

            let next_pc = pc.wrapping_add(decoded.len as u32);
            let mut ctx = Ctx::<I, B> {
                cpu: &mut m.cpu,
                sys: &mut m.sys,
                bus: &mut m.bus,
                tlb: &mut self.tlb,
                dcache: &mut self.dcache,
                l2: &mut self.l2,
                scoreboard: &mut self.scoreboard,
                stats: &mut self.stats,
                mem_cycles: 0,
                timing: self.timing,
                counters: &mut counters,
                unimplemented_pages: &self.unimplemented_pages,
                phase_mark: None,
                unsupported: false,
            };

            let mut new_pc = next_pc;
            let mut trap: Option<Trap> = None;
            for op in &decoded.ops {
                ctx.counters.uops += 1;
                ctx.stats.cycles += ctx.timing.op_cycles;
                ctx.mem_cycles = 0;
                let outcome = step_op(&mut ctx, op);
                // In-order issue through the scoreboard (operand stalls,
                // unit latencies, memory latency from the cache model).
                let extra = ctx.mem_cycles;
                ctx.stats.cycles += ctx.scoreboard.issue(op, extra);
                if let Op::BranchCond { .. } = op {
                    let taken = matches!(outcome, OpOutcome::Jump { .. });
                    let penalty = self.bpred.observe(pc, taken);
                    ctx.stats.cycles += penalty;
                    ctx.stats.branch_penalty += penalty;
                }
                match outcome {
                    OpOutcome::Next => {
                        if ctx.unsupported {
                            break;
                        }
                    }
                    OpOutcome::Jump { target, flavor } => {
                        ctx.stats.cycles += ctx.timing.branch_cycles;
                        ctx.stats.branch_penalty += ctx.timing.branch_cycles;
                        let same_page = page_of(pc) == page_of(target);
                        match (flavor, same_page) {
                            (BranchFlavor::Direct, true) => ctx.counters.branch_intra_direct += 1,
                            (BranchFlavor::Direct, false) => ctx.counters.branch_inter_direct += 1,
                            (BranchFlavor::Indirect, true) => {
                                ctx.counters.branch_intra_indirect += 1
                            }
                            (BranchFlavor::Indirect, false) => {
                                ctx.counters.branch_inter_indirect += 1
                            }
                        }
                        new_pc = target;
                        break;
                    }
                    OpOutcome::Trap(t) => {
                        trap = Some(t);
                        break;
                    }
                    OpOutcome::Halt => break 'outer ExitReason::Halted,
                }
            }
            let mark = ctx.phase_mark.take();
            let unsupported = ctx.unsupported;

            if unsupported {
                break ExitReason::Unsupported("no device model for accessed page");
            }

            match trap {
                None => m.cpu.pc = new_pc,
                Some(Trap::Eret) => m.cpu.pc = I::leave_exception(&mut m.cpu, &mut m.sys),
                Some(Trap::Syscall(n)) => {
                    counters.syscalls += 1;
                    let vec = I::enter_exception(
                        &mut m.cpu,
                        &mut m.sys,
                        ExceptionKind::Syscall,
                        ExcInfo::syscall(n),
                        next_pc,
                    );
                    m.cpu.pc = vec;
                }
                Some(Trap::Undef) => {
                    counters.undef_insns += 1;
                    let vec = I::enter_exception(
                        &mut m.cpu,
                        &mut m.sys,
                        ExceptionKind::Undef,
                        ExcInfo::default(),
                        next_pc,
                    );
                    m.cpu.pc = vec;
                }
                Some(Trap::DataFault(f)) => {
                    counters.data_faults += 1;
                    let vec = I::enter_exception(
                        &mut m.cpu,
                        &mut m.sys,
                        ExceptionKind::DataAbort,
                        ExcInfo::from_fault(f),
                        next_pc,
                    );
                    m.cpu.pc = vec;
                }
            }

            if let Some(mark) = mark {
                phase.on_mark(mark, &counters);
            }
        };

        RunOutcome {
            exit,
            wall: t0.elapsed(),
            counters,
            kernel: phase.into_kernel(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_core::asm::{PReg, PortableAsm};
    use simbench_core::bus::FlatRam;
    use simbench_core::ir::AluOp;
    use simbench_isa_armlet::{Armlet, ArmletAsm};

    #[test]
    fn computes_and_accumulates_cycles() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, 0);
        a.mov_imm(PReg::B, 100);
        let top = a.new_label();
        a.bind(top);
        a.alu_ri(AluOp::Add, PReg::A, PReg::A, 2);
        a.alu_ri(AluOp::Sub, PReg::B, PReg::B, 1);
        a.cmp_ri(PReg::B, 0);
        a.b_cond(simbench_core::ir::Cond::Ne, top);
        a.halt();
        let img = a.finish(0x8000);
        let mut m = Machine::<Armlet, _>::boot(&img, FlatRam::new(1 << 20));
        let mut e = Detailed::<Armlet>::new();
        let out = e.run(&mut m, &RunLimits::insns(1_000_000));
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(m.cpu.regs[0], 200);
        let stats = e.pipeline_stats();
        assert!(
            stats.cycles > out.counters.instructions,
            "timing model charges cycles"
        );
        assert!(stats.branch_penalty > 0);
        let hist = e.class_histogram();
        assert!(
            hist[0] > 0 && hist[2] > 0,
            "histogram tracks ALU and branches"
        );
    }

    #[test]
    fn unimplemented_page_reports_unsupported() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, 0x9_0000);
        a.load(PReg::B, PReg::A, 0);
        a.halt();
        let img = a.finish(0x8000);
        // 1 MB RAM; pretend page 0x90 is an unimplemented device by
        // marking it (even though it is RAM in this fixture, the check is
        // on physical page identity).
        let mut m = Machine::<Armlet, _>::boot(&img, FlatRam::new(1 << 20));
        let mut e = Detailed::<Armlet>::new().with_unimplemented_pages(&[0x90]);
        let out = e.run(&mut m, &RunLimits::insns(1000));
        assert_eq!(
            out.exit,
            ExitReason::Halted,
            "RAM pages are always implemented"
        );
        // Now route the access through MMIO space instead.
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, 0xF000_3000u32);
        a.load(PReg::B, PReg::A, 0);
        a.halt();
        let img = a.finish(0x8000);
        let mut p = simbench_platform::Platform::with_ram(1 << 20);
        use simbench_core::bus::Bus as _;
        let _ = p.ram_mut();
        let mut m = Machine::<Armlet, _>::boot(&img, p);
        let mut e = Detailed::<Armlet>::new().with_unimplemented_pages(&[0xF000_3000 >> 12]);
        let out = e.run(&mut m, &RunLimits::insns(1000));
        assert!(matches!(out.exit, ExitReason::Unsupported(_)));
    }

    #[test]
    fn cold_loop_has_tlb_and_cache_misses_flat() {
        // Touch many distinct lines: dcache misses accumulate.
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, 0x10000);
        a.mov_imm(PReg::B, 256);
        let top = a.new_label();
        a.bind(top);
        a.load(PReg::C, PReg::A, 0);
        a.alu_ri(AluOp::Add, PReg::A, PReg::A, 64);
        a.alu_ri(AluOp::Sub, PReg::B, PReg::B, 1);
        a.cmp_ri(PReg::B, 0);
        a.b_cond(simbench_core::ir::Cond::Ne, top);
        a.halt();
        let img = a.finish(0x8000);
        let mut m = Machine::<Armlet, _>::boot(&img, FlatRam::new(1 << 20));
        let mut e = Detailed::<Armlet>::new();
        let out = e.run(&mut m, &RunLimits::insns(100_000));
        assert_eq!(out.exit, ExitReason::Halted);
        assert!(
            e.pipeline_stats().dcache_stall >= 250 * 23,
            "each new line misses"
        );
    }

    #[test]
    fn non_retiring_storm_honors_wall_limit() {
        use simbench_isa_armlet::sys::{cp14, cp15, CP_BANK, CP_SYS};
        use simbench_platform::devices::{INTC_ENABLE, INTC_TRIGGER};
        use simbench_platform::{Platform, INTC_BASE};
        use std::time::Duration;
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, INTC_BASE + INTC_ENABLE);
        a.mov_imm(PReg::B, 1);
        a.store(PReg::B, PReg::A, 0);
        a.mov_imm(PReg::A, INTC_BASE + INTC_TRIGGER);
        a.store(PReg::B, PReg::A, 0);
        // Vector table beyond RAM: the IRQ handler can never fetch, so
        // delivery degenerates into a prefetch-abort storm in which no
        // iteration retires an instruction.
        a.mov_imm(PReg::C, 0x0800_0000);
        a.mcr(CP_SYS, cp15::VBAR, PReg::C);
        a.mcr(CP_BANK, cp14::IRQ_CTL, PReg::B);
        a.nop();
        a.halt();
        let img = a.finish(0x8000);
        let mut m = Machine::<Armlet, _>::boot(&img, Platform::with_ram(1 << 20));
        let mut e = Detailed::<Armlet>::new();
        let out = e.run(
            &mut m,
            &RunLimits {
                max_insns: u64::MAX,
                wall_limit: Some(Duration::from_millis(30)),
            },
        );
        assert_eq!(out.exit, ExitReason::WallLimit);
        assert_eq!(out.counters.irqs_delivered, 1);
        assert!(out.counters.insn_faults > 0, "abort storm was spinning");
    }

    #[test]
    fn fetch_path_counts_tlb_hits() {
        use simbench_isa_armlet::sys::{cp15, CP_SYS};
        use simbench_isa_armlet::{Access, TableBuilder};
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, 0x0010_0000);
        a.mcr(CP_SYS, cp15::TTBR, PReg::A);
        a.mov_imm(PReg::B, 1);
        a.mcr(CP_SYS, cp15::SCTLR, PReg::B); // MMU on
        a.nop();
        a.nop();
        a.nop();
        a.halt();
        let mut img = a.finish(0x8000);
        let mut tb = TableBuilder::new(0x0010_0000);
        tb.map_section(0, 0, Access::KernelOnly);
        let (load_at, blob) = tb.into_blob();
        img.push_section(load_at, blob);
        let mut m = Machine::<Armlet, _>::boot(&img, FlatRam::new(1 << 21));
        let mut e = Detailed::<Armlet>::new();
        let out = e.run(&mut m, &RunLimits::insns(1000));
        assert_eq!(out.exit, ExitReason::Halted);
        // No loads or stores after the MMU comes on, so every TLB probe
        // below comes from the fetch path.
        assert_eq!(out.counters.mem_reads, 0);
        assert_eq!(out.counters.mem_writes, 0);
        assert!(out.counters.tlb_misses >= 1, "first fetch walks");
        assert!(out.counters.tlb_hits >= 2, "later fetches hit the TLB");
    }
}

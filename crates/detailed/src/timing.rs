//! In-order pipeline timing: a register scoreboard tracking per-register
//! ready cycles, and a bimodal branch predictor. Together with the cache
//! models this is the per-instruction work that makes detailed
//! simulators orders of magnitude slower than fast interpreters — the
//! paper's explanation for Gem5's numbers.

use simbench_core::cpu::MAX_GPRS;
use simbench_core::ir::{LinkKind, Op, Operand, RetKind};

/// Default operation latencies in cycles.
#[derive(Debug, Clone, Copy)]
pub struct Latencies {
    /// Simple ALU ops.
    pub alu: u64,
    /// Multiplies.
    pub mul: u64,
    /// Load-to-use latency on a cache hit.
    pub load: u64,
    /// Branch misprediction penalty.
    pub mispredict: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            alu: 1,
            mul: 3,
            load: 2,
            mispredict: 12,
        }
    }
}

/// In-order scoreboard: per-register ready cycle.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    ready: [u64; MAX_GPRS],
    /// Current cycle (advances as instructions issue).
    pub now: u64,
    lat: Latencies,
    stall_cycles: u64,
}

/// Operand registers read and written by an op (at most 3 sources).
fn op_regs(op: &Op) -> ([Option<u8>; 3], Option<u8>) {
    let src_of = |s: Operand| match s {
        Operand::Reg(r) => Some(r),
        Operand::Imm(_) => None,
    };
    match *op {
        Op::Alu { rd, rn, src, .. } => ([Some(rn), src_of(src), None], Some(rd)),
        Op::Cmp { rn, src, .. } => ([Some(rn), src_of(src), None], None),
        Op::Load { rd, base, .. } => ([Some(base), None, None], Some(rd)),
        Op::Store { rs, base, .. } => ([Some(rs), Some(base), None], None),
        Op::BranchReg { rm } => ([Some(rm), None, None], None),
        Op::Call { link, .. } => match link {
            LinkKind::Register(lr) => ([None; 3], Some(lr)),
            LinkKind::Push(sp) => ([Some(sp), None, None], Some(sp)),
        },
        Op::CallReg { rm, link, .. } => match link {
            LinkKind::Register(lr) => ([Some(rm), None, None], Some(lr)),
            LinkKind::Push(sp) => ([Some(rm), Some(sp), None], Some(sp)),
        },
        Op::Ret(RetKind::Register(r)) => ([Some(r), None, None], None),
        Op::Ret(RetKind::Pop(sp)) => ([Some(sp), None, None], Some(sp)),
        Op::CopRead { rd, .. } => ([None; 3], Some(rd)),
        Op::CopWrite { rs, .. } => ([Some(rs), None, None], None),
        _ => ([None; 3], None),
    }
}

impl Scoreboard {
    /// A scoreboard at cycle zero.
    pub fn new(lat: Latencies) -> Self {
        Scoreboard {
            ready: [0; MAX_GPRS],
            now: 0,
            lat,
            stall_cycles: 0,
        }
    }

    /// Issue one op: stall until its sources are ready, charge its
    /// latency, and mark its destination. `mem_extra` is additional
    /// latency from the cache model (0 for non-memory ops). Returns the
    /// cycles this op added.
    pub fn issue(&mut self, op: &Op, mem_extra: u64) -> u64 {
        let (srcs, dst) = op_regs(op);
        let start = self.now;
        let mut issue_at = self.now + 1;
        for src in srcs.into_iter().flatten() {
            issue_at = issue_at.max(self.ready[src as usize]);
        }
        self.stall_cycles += issue_at - (self.now + 1);
        let latency = match op {
            Op::Alu {
                op: simbench_core::ir::AluOp::Mul,
                ..
            } => self.lat.mul,
            Op::Load { .. } | Op::Ret(RetKind::Pop(_)) => self.lat.load + mem_extra,
            Op::Store { .. } => 1 + mem_extra,
            _ => self.lat.alu,
        };
        let done = issue_at + latency;
        if let Some(d) = dst {
            self.ready[d as usize] = done;
        }
        self.now = issue_at;
        self.now - start + latency
    }

    /// Cycles lost waiting on operands so far.
    pub fn stalls(&self) -> u64 {
        self.stall_cycles
    }

    /// Reset for a new run.
    pub fn reset(&mut self) {
        self.ready = [0; MAX_GPRS];
        self.now = 0;
        self.stall_cycles = 0;
    }
}

/// A bimodal (2-bit saturating counter) branch predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    mask: u32,
    hits: u64,
    misses: u64,
    mispredict_penalty: u64,
}

impl BranchPredictor {
    /// A predictor with `1 << bits` counters.
    pub fn new(bits: u8, mispredict_penalty: u64) -> Self {
        let n = 1usize << bits;
        BranchPredictor {
            counters: vec![1; n], // weakly not-taken
            mask: n as u32 - 1,
            hits: 0,
            misses: 0,
            mispredict_penalty,
        }
    }

    /// Record an executed conditional branch; returns the cycle penalty
    /// (0 on correct prediction).
    pub fn observe(&mut self, pc: u32, taken: bool) -> u64 {
        let i = ((pc >> 2) & self.mask) as usize;
        let predict_taken = self.counters[i] >= 2;
        let penalty = if predict_taken == taken {
            self.hits += 1;
            0
        } else {
            self.misses += 1;
            self.mispredict_penalty
        };
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        penalty
    }

    /// (correct, mispredicted).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_core::ir::AluOp;

    #[test]
    fn scoreboard_tracks_dependencies() {
        let mut sb = Scoreboard::new(Latencies::default());
        // r1 = load (latency 2): r1 ready later.
        sb.issue(
            &Op::Load {
                rd: 1,
                base: 0,
                off: 0,
                size: simbench_core::ir::MemSize::B4,
                nonpriv: false,
            },
            0,
        );
        let before = sb.stalls();
        // Dependent add must stall on r1.
        sb.issue(
            &Op::Alu {
                op: AluOp::Add,
                rd: 2,
                rn: 1,
                src: Operand::Imm(1),
                set_flags: false,
            },
            0,
        );
        assert!(sb.stalls() > before, "load-use stall recorded");
        // Independent op does not stall.
        let before = sb.stalls();
        sb.issue(
            &Op::Alu {
                op: AluOp::Add,
                rd: 3,
                rn: 0,
                src: Operand::Imm(1),
                set_flags: false,
            },
            0,
        );
        assert_eq!(sb.stalls(), before);
    }

    #[test]
    fn multiply_slower_than_add() {
        let lat = Latencies::default();
        let mut sb = Scoreboard::new(lat);
        let add = sb.issue(
            &Op::Alu {
                op: AluOp::Add,
                rd: 1,
                rn: 0,
                src: Operand::Imm(1),
                set_flags: false,
            },
            0,
        );
        let mul = sb.issue(
            &Op::Alu {
                op: AluOp::Mul,
                rd: 2,
                rn: 0,
                src: Operand::Imm(3),
                set_flags: false,
            },
            0,
        );
        assert!(mul > add);
    }

    #[test]
    fn predictor_learns_a_loop() {
        let mut bp = BranchPredictor::new(4, 10);
        // A loop branch taken 100 times: after warmup, no penalties.
        let mut late_penalty = 0;
        for i in 0..100 {
            let p = bp.observe(0x8000, true);
            if i > 4 {
                late_penalty += p;
            }
        }
        assert_eq!(late_penalty, 0, "steady-state loop predicted");
        let (hits, misses) = bp.stats();
        assert!(hits > 90 && misses <= 4);
    }

    #[test]
    fn reset_clears() {
        let mut sb = Scoreboard::new(Latencies::default());
        sb.issue(
            &Op::Load {
                rd: 1,
                base: 0,
                off: 0,
                size: simbench_core::ir::MemSize::B4,
                nonpriv: false,
            },
            5,
        );
        sb.reset();
        assert_eq!(sb.now, 0);
        assert_eq!(sb.stalls(), 0);
    }
}

//! Regenerate every ISA crate's `src/decode_gen.rs` from its
//! `spec/<name>.isa` file.
//!
//! Usage:
//!
//! ```text
//! cargo run -p simbench-isa-spec --bin specgen            # rewrite stale files
//! cargo run -p simbench-isa-spec --bin specgen -- --check # fail if anything is stale
//! ```
//!
//! Discovery is by convention: any `crates/*/spec/*.isa` is compiled to
//! the sibling `src/decode_gen.rs`, so registering a new ISA is just
//! dropping a spec file into its crate. Output is formatted with
//! `rustfmt` when available so the committed files are stable under
//! `cargo fmt --check`.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode, Stdio};

use simbench_isa_spec::{generate, Spec};

fn rustfmt(src: &str) -> String {
    let child = Command::new("rustfmt")
        .args(["--edition", "2021", "--emit", "stdout"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn();
    let Ok(mut child) = child else {
        return src.to_string();
    };
    if let Some(stdin) = child.stdin.take() {
        let mut stdin = stdin;
        if stdin.write_all(src.as_bytes()).is_err() {
            return src.to_string();
        }
    }
    match child.wait_with_output() {
        Ok(out) if out.status.success() => {
            String::from_utf8(out.stdout).unwrap_or_else(|_| src.to_string())
        }
        _ => src.to_string(),
    }
}

fn workspace_root() -> PathBuf {
    // crates/isa-spec → crates → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn find_specs(root: &Path) -> Vec<PathBuf> {
    let mut specs = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return specs;
    };
    for entry in entries.flatten() {
        let spec_dir = entry.path().join("spec");
        let Ok(files) = std::fs::read_dir(&spec_dir) else {
            continue;
        };
        for file in files.flatten() {
            let path = file.path();
            if path.extension().is_some_and(|e| e == "isa") {
                specs.push(path);
            }
        }
    }
    specs.sort();
    specs
}

fn main() -> ExitCode {
    let check = std::env::args().any(|a| a == "--check");
    let root = workspace_root();
    let specs = find_specs(&root);
    if specs.is_empty() {
        eprintln!("specgen: no spec files found under {}", root.display());
        return ExitCode::from(2);
    }

    let mut stale = Vec::new();
    for spec_path in &specs {
        let text = match std::fs::read_to_string(spec_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("specgen: {}: {e}", spec_path.display());
                return ExitCode::from(2);
            }
        };
        let spec = match Spec::parse(&text).and_then(|s| generate(&s).map(|g| (s, g))) {
            Ok((spec, generated)) => (spec, generated),
            Err(e) => {
                eprintln!("specgen: {}: {e}", spec_path.display());
                return ExitCode::from(2);
            }
        };
        let (parsed, generated) = spec;
        let formatted = rustfmt(&generated);
        let out_path = spec_path
            .parent()
            .and_then(Path::parent)
            .expect("crate dir")
            .join("src/decode_gen.rs");
        let current = std::fs::read_to_string(&out_path).unwrap_or_default();
        let rel = out_path
            .strip_prefix(&root)
            .unwrap_or(&out_path)
            .display()
            .to_string();
        if current == formatted {
            println!("specgen: {rel} up to date ({})", parsed.name);
            continue;
        }
        if check {
            stale.push(rel);
        } else {
            if let Err(e) = std::fs::write(&out_path, &formatted) {
                eprintln!("specgen: write {rel}: {e}");
                return ExitCode::from(2);
            }
            println!("specgen: {rel} regenerated ({})", parsed.name);
        }
    }

    if !stale.is_empty() {
        eprintln!("specgen: stale generated decoders (re-run specgen and commit):");
        for rel in &stale {
            eprintln!("  {rel}");
        }
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

//! # simbench-isa-spec
//!
//! Declarative ISA decode specs and the generator that turns them into
//! Rust decoders. Each guest ISA describes its instruction encodings in
//! a compact line-based `spec/<name>.isa` file: mask/value patterns per
//! encoding group, operand field extraction, and 1–4 micro-op emission
//! templates. `specgen` (this crate's binary) compiles the spec into a
//! committed `src/decode_gen.rs` module that produces the shared
//! fixed-capacity [`OpList`] IR — no heap allocation, no formatted
//! panics, capacity checked at compile time — so the generated decoder
//! is a drop-in for the hand-written ones it replaced.
//!
//! ## Spec format
//!
//! `#` starts a comment. Top-level directives:
//!
//! - `isa <name>` — ISA name (must match the crate's spec file stem).
//! - `mode fixed32 | bytevar | half16_32` — length discipline:
//!   - `fixed32`: every instruction is one little-endian 32-bit word;
//!     `decode(word: u32, pc)` dispatches on bits `[31:28]`.
//!   - `bytevar`: x86-style byte-granular lengths; the first byte
//!     (`opc`, bits `[7:0]`) determines the total length, recorded per
//!     group with `len N`; generates `insn_len(opc) -> Option<usize>`
//!     alongside `decode(bytes: &[u8], pc)`.
//!   - `half16_32`: RISC-V-C-style 16/32-bit halfword parcels; the low
//!     two bits of the first halfword select the length (`0b11` → 32);
//!     32-bit groups dispatch on bits `[6:2]`, 16-bit groups on bits
//!     `[15:13]`.
//! - `prelude <rust>` — verbatim line in the generated module header
//!   (extra `use` items for emission templates).
//!
//! Each `group <name>` block then gives, in order:
//!
//! - `match HI:LO = V` / `match HI:LO = A..=B` — bit-pattern tests. One
//!   match must cover the mode's dispatch field (ranges are allowed
//!   only there); the rest become residual mask/value tests, applied in
//!   spec order, so overlapping groups resolve first-match-wins.
//! - `field NAME = HI:LO` — zero-extended operand extraction (`u32`).
//! - `sfield NAME = HI:LO` — sign-extended extraction (`i32`).
//! - `try NAME = EXPR` — bind an `Option`-valued Rust expression,
//!   rejecting the word (`DecodeError`) on `None`.
//! - `let NAME = EXPR` — bind a plain Rust expression.
//! - `emit VARIANT { .. }` — an [`Op`] constructor template (1–4 per
//!   group). Templates may use bound names, `pc`, `next` (the fallthrough
//!   pc), and in `bytevar` mode `opc`.
//! - `class Alu|Mem|Branch|System|Nop` — the group's [`InsnClass`].
//! - `len N` — total instruction bytes (`bytevar`/`half16_32` only).
//!
//! [`OpList`]: https://docs.rs/simbench-core
//! [`Op`]: https://docs.rs/simbench-core
//! [`InsnClass`]: https://docs.rs/simbench-core

use std::fmt;

/// A parse or validation failure, pointing at a spec line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based spec line (0 for file-level problems).
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError {
        line,
        msg: msg.into(),
    })
}

/// Instruction-length discipline of an ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Fixed 32-bit words, dispatch on bits `[31:28]`.
    Fixed32,
    /// Byte-variable lengths, dispatch on the first byte.
    ByteVar,
    /// 16/32-bit halfword parcels, RVC-style length in bits `[1:0]`.
    Half16_32,
}

/// One `match HI:LO = ..` bit-pattern test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldMatch {
    /// High bit (inclusive).
    pub hi: u32,
    /// Low bit (inclusive).
    pub lo: u32,
    /// First accepted field value.
    pub first: u32,
    /// Last accepted field value (== `first` for exact matches).
    pub last: u32,
    /// Spec line, for diagnostics.
    pub line: usize,
}

/// One operand binding inside a group, in spec order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Binding {
    /// Zero-extended bit-field extraction.
    Field {
        /// Bound name.
        name: String,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// Sign-extended bit-field extraction.
    SField {
        /// Bound name.
        name: String,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// `Option`-valued expression; `None` rejects the instruction.
    Try {
        /// Bound name.
        name: String,
        /// Rust expression of type `Option<T>`.
        expr: String,
    },
    /// Plain expression binding.
    Let {
        /// Bound name.
        name: String,
        /// Rust expression.
        expr: String,
    },
}

impl Binding {
    fn name(&self) -> &str {
        match self {
            Binding::Field { name, .. }
            | Binding::SField { name, .. }
            | Binding::Try { name, .. }
            | Binding::Let { name, .. } => name,
        }
    }
}

/// One encoding group: patterns, operand bindings, op templates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Group name (diagnostics and generated comments).
    pub name: String,
    /// Spec line of the `group` directive.
    pub line: usize,
    /// Bit-pattern tests; exactly one covers the dispatch field.
    pub matches: Vec<FieldMatch>,
    /// Operand bindings, in order.
    pub bindings: Vec<Binding>,
    /// `Op::` constructor templates (1–4).
    pub emits: Vec<String>,
    /// `InsnClass` variant name.
    pub class: String,
    /// Total instruction bytes (required unless `fixed32`).
    pub len: Option<u32>,
}

/// A parsed ISA spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spec {
    /// ISA name.
    pub name: String,
    /// Length discipline.
    pub mode: Mode,
    /// Verbatim header lines for the generated module.
    pub prelude: Vec<String>,
    /// Encoding groups in spec (= match priority) order.
    pub groups: Vec<Group>,
}

fn parse_num(s: &str, line: usize) -> Result<u32, SpecError> {
    let s = s.trim();
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(&hex.replace('_', ""), 16)
    } else {
        s.replace('_', "").parse()
    };
    match parsed {
        Ok(v) => Ok(v),
        Err(_) => err(line, format!("bad number {s:?}")),
    }
}

fn parse_bits(s: &str, line: usize) -> Result<(u32, u32), SpecError> {
    let Some((hi, lo)) = s.trim().split_once(':') else {
        return err(line, format!("expected HI:LO bit range, got {s:?}"));
    };
    let (hi, lo) = (parse_num(hi, line)?, parse_num(lo, line)?);
    if hi < lo || hi > 63 || hi - lo + 1 > 32 {
        return err(line, format!("bad bit range {s:?}"));
    }
    Ok((hi, lo))
}

fn parse_name(s: &str, line: usize) -> Result<String, SpecError> {
    let s = s.trim();
    let ok = !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.starts_with(|c: char| c.is_ascii_digit());
    if !ok {
        return err(line, format!("bad name {s:?}"));
    }
    Ok(s.to_string())
}

impl Spec {
    /// Parse a spec file.
    ///
    /// # Errors
    ///
    /// [`SpecError`] with the offending line on malformed input; full
    /// semantic validation happens in [`generate`].
    pub fn parse(text: &str) -> Result<Spec, SpecError> {
        let mut name = None;
        let mut mode = None;
        let mut prelude = Vec::new();
        let mut groups: Vec<Group> = Vec::new();

        for (i, raw) in text.lines().enumerate() {
            let ln = i + 1;
            // `prelude` lines are verbatim Rust and keep their text.
            let line = if raw.trim_start().starts_with("prelude") {
                raw.trim()
            } else {
                match raw.split('#').next() {
                    Some(code) => code.trim(),
                    None => "",
                }
            };
            if line.is_empty() {
                continue;
            }
            let (word, rest) = match line.split_once(char::is_whitespace) {
                Some((w, r)) => (w, r.trim()),
                None => (line, ""),
            };
            match word {
                "isa" => name = Some(parse_name(rest, ln)?),
                "mode" => {
                    mode = Some(match rest {
                        "fixed32" => Mode::Fixed32,
                        "bytevar" => Mode::ByteVar,
                        "half16_32" => Mode::Half16_32,
                        other => return err(ln, format!("unknown mode {other:?}")),
                    });
                }
                "prelude" => prelude.push(rest.to_string()),
                "group" => groups.push(Group {
                    name: parse_name(rest, ln)?,
                    line: ln,
                    matches: Vec::new(),
                    bindings: Vec::new(),
                    emits: Vec::new(),
                    class: String::new(),
                    len: None,
                }),
                "match" | "field" | "sfield" | "try" | "let" | "emit" | "class" | "len" => {
                    let Some(group) = groups.last_mut() else {
                        return err(ln, format!("{word:?} before any `group`"));
                    };
                    match word {
                        "match" => {
                            let Some((bits, val)) = rest.split_once('=') else {
                                return err(ln, "expected `match HI:LO = VALUE`");
                            };
                            let (hi, lo) = parse_bits(bits, ln)?;
                            let (first, last) = match val.split_once("..=") {
                                Some((a, b)) => (parse_num(a, ln)?, parse_num(b, ln)?),
                                None => {
                                    let v = parse_num(val, ln)?;
                                    (v, v)
                                }
                            };
                            let limit = ((1u64 << (hi - lo + 1)) - 1) as u32;
                            if first > last || last > limit {
                                return err(ln, format!("match value out of range for {bits}"));
                            }
                            group.matches.push(FieldMatch {
                                hi,
                                lo,
                                first,
                                last,
                                line: ln,
                            });
                        }
                        "field" | "sfield" => {
                            let Some((n, bits)) = rest.split_once('=') else {
                                return err(ln, format!("expected `{word} NAME = HI:LO`"));
                            };
                            let name = parse_name(n, ln)?;
                            let (hi, lo) = parse_bits(bits, ln)?;
                            group.bindings.push(if word == "field" {
                                Binding::Field { name, hi, lo }
                            } else {
                                Binding::SField { name, hi, lo }
                            });
                        }
                        "try" | "let" => {
                            let Some((n, expr)) = rest.split_once('=') else {
                                return err(ln, format!("expected `{word} NAME = EXPR`"));
                            };
                            let name = parse_name(n, ln)?;
                            let expr = expr.trim().to_string();
                            if expr.is_empty() {
                                return err(ln, "empty expression");
                            }
                            group.bindings.push(if word == "try" {
                                Binding::Try { name, expr }
                            } else {
                                Binding::Let { name, expr }
                            });
                        }
                        "emit" => group.emits.push(rest.to_string()),
                        "class" => group.class = parse_name(rest, ln)?,
                        "len" => group.len = Some(parse_num(rest, ln)?),
                        _ => unreachable!(),
                    }
                }
                other => return err(ln, format!("unknown directive {other:?}")),
            }
        }

        let Some(name) = name else {
            return err(0, "missing `isa` directive");
        };
        let Some(mode) = mode else {
            return err(0, "missing `mode` directive");
        };
        if groups.is_empty() {
            return err(0, "no groups");
        }
        Ok(Spec {
            name,
            mode,
            prelude,
            groups,
        })
    }
}

/// Capacity of the core IR's per-instruction op list; emission templates
/// beyond this would overflow `OpList` at runtime, so the generator
/// rejects them statically.
pub const MAX_OPS_PER_INSN: usize = 4;

const INSN_CLASSES: &[&str] = &["Alu", "Mem", "Branch", "System", "Nop"];

/// True if `text` references `name` as a standalone identifier.
fn uses_ident(text: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = text[from..].find(name) {
        let at = from + rel;
        let pre = text[..at].chars().next_back();
        let post = text[at + name.len()..].chars().next();
        let is_ident = |c: Option<char>| c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !is_ident(pre) && !is_ident(post) {
            return true;
        }
        from = at + name.len();
    }
    false
}

fn hex(v: u32) -> String {
    if v < 10 {
        format!("{v}")
    } else {
        format!("{v:#x}")
    }
}

/// Generated-file marker; the first line of every `decode_gen.rs`.
pub const GENERATED_MARKER: &str = "// @generated by simbench-isa-spec";

struct Gen<'a> {
    spec: &'a Spec,
    out: String,
}

/// The dispatch field (hi, lo) for groups of byte-length `len` (only
/// `half16_32` varies by length).
fn dispatch_bits(mode: Mode, len: u32) -> (u32, u32) {
    match mode {
        Mode::Fixed32 => (31, 28),
        Mode::ByteVar => (7, 0),
        Mode::Half16_32 => {
            if len == 4 {
                (6, 2)
            } else {
                (15, 13)
            }
        }
    }
}

impl Group {
    /// Split this group's matches into (dispatch value range, residual
    /// matches).
    fn dispatch(&self, mode: Mode) -> Result<((u32, u32), Vec<&FieldMatch>), SpecError> {
        let len = self.len.unwrap_or(4);
        let (hi, lo) = dispatch_bits(mode, len);
        let mut key = None;
        let mut residual = Vec::new();
        for m in &self.matches {
            if (m.hi, m.lo) == (hi, lo) {
                if key.is_some() {
                    return err(m.line, "duplicate dispatch match");
                }
                key = Some((m.first, m.last));
            } else {
                if m.first != m.last {
                    return err(m.line, "ranges are only allowed on the dispatch field");
                }
                residual.push(m);
            }
        }
        match key {
            Some(k) => Ok((k, residual)),
            None => err(
                self.line,
                format!(
                    "group {:?} has no match on the dispatch field [{hi}:{lo}]",
                    self.name
                ),
            ),
        }
    }

    fn validate(&self, mode: Mode) -> Result<(), SpecError> {
        if self.emits.is_empty() || self.emits.len() > MAX_OPS_PER_INSN {
            return err(
                self.line,
                format!(
                    "group {:?} must emit 1..={MAX_OPS_PER_INSN} ops, has {}",
                    self.name,
                    self.emits.len()
                ),
            );
        }
        if !INSN_CLASSES.contains(&self.class.as_str()) {
            return err(
                self.line,
                format!(
                    "group {:?}: bad or missing class {:?}",
                    self.name, self.class
                ),
            );
        }
        match (mode, self.len) {
            (Mode::Fixed32, None | Some(4)) => {}
            (Mode::Fixed32, Some(n)) => {
                return err(self.line, format!("fixed32 group with len {n}"));
            }
            (Mode::ByteVar, Some(1..=8)) => {}
            (Mode::Half16_32, Some(2 | 4)) => {}
            _ => {
                return err(
                    self.line,
                    format!("group {:?}: missing or invalid `len`", self.name),
                );
            }
        }
        // Every binding must be used by a later binding or an emit, and
        // names must be unique and not collide with generated locals.
        let reserved = ["w", "pc", "next", "opc", "bytes", "len", "h0", "word"];
        for (i, b) in self.bindings.iter().enumerate() {
            let name = b.name();
            if reserved.contains(&name) {
                return err(self.line, format!("binding {name:?} shadows a builtin"));
            }
            let mut used = false;
            for later in &self.bindings[i + 1..] {
                if later.name() == name {
                    return err(self.line, format!("duplicate binding {name:?}"));
                }
                if let Binding::Try { expr, .. } | Binding::Let { expr, .. } = later {
                    used = used || uses_ident(expr, name);
                }
            }
            used = used || self.emits.iter().any(|e| uses_ident(e, name));
            if !used {
                return err(
                    self.line,
                    format!("group {:?}: binding {name:?} is never used", self.name),
                );
            }
        }
        Ok(())
    }

    /// True if any binding expression or emit template references `name`.
    fn references(&self, name: &str) -> bool {
        self.bindings.iter().any(|b| match b {
            Binding::Try { expr, .. } | Binding::Let { expr, .. } => uses_ident(expr, name),
            _ => false,
        }) || self.emits.iter().any(|e| uses_ident(e, name))
    }

    fn has_sfield(&self) -> bool {
        self.bindings
            .iter()
            .any(|b| matches!(b, Binding::SField { .. }))
    }
}

impl Gen<'_> {
    fn push(&mut self, s: &str) {
        self.out.push_str(s);
        self.out.push('\n');
    }

    /// `u32`-valued extraction expression for bits `[hi:lo]` of the
    /// window `w` (whose width depends on the mode).
    fn extract(&self, hi: u32, lo: u32) -> String {
        let width = hi - lo + 1;
        let w64 = self.spec.mode == Mode::ByteVar;
        let shifted = if lo == 0 {
            "w".to_string()
        } else {
            format!("(w >> {lo})")
        };
        let full = if w64 { 64 } else { 32 };
        if lo + width == full && lo == 0 {
            return if w64 { "w as u32".to_string() } else { shifted };
        }
        if lo + width == full {
            // Top-aligned field: the shift already dropped the low
            // bits, so no mask (and no parens) is needed.
            return if w64 {
                format!("{shifted} as u32")
            } else {
                format!("w >> {lo}")
            };
        }
        let mask = ((1u64 << width) - 1) as u32;
        if w64 {
            format!("({shifted} & {mask:#x}) as u32")
        } else {
            format!("{shifted} & {mask:#x}")
        }
    }

    /// Residual mask/value condition for one non-dispatch match.
    fn condition(&self, m: &FieldMatch) -> String {
        format!("{} == {}", self.extract(m.hi, m.lo), hex(m.first))
    }

    /// The body of one group: bindings, then `Ok(Decoded::new(..))`.
    /// `tail` is true when the group ends its arm (no `return`).
    fn group_body(&mut self, g: &Group, tail: bool) -> Result<(), SpecError> {
        let len = g.len.unwrap_or(4);
        if g.references("next") {
            self.push(&format!("let next = pc.wrapping_add({len});"));
        }
        for b in &g.bindings {
            let line = match b {
                Binding::Field { name, hi, lo } => {
                    format!("let {name} = {};", self.extract(*hi, *lo))
                }
                Binding::SField { name, hi, lo } => {
                    format!(
                        "let {name} = sext({}, {});",
                        self.extract(*hi, *lo),
                        hi - lo + 1
                    )
                }
                Binding::Try { name, expr } => {
                    format!("let {name} = {expr}.ok_or(DecodeError {{ pc }})?;")
                }
                Binding::Let { name, expr } => format!("let {name} = {expr};"),
            };
            self.push(&line);
        }
        let ops = g
            .emits
            .iter()
            .map(|e| format!("Op::{e}"))
            .collect::<Vec<_>>()
            .join(", ");
        let ret = if tail { "" } else { "return " };
        let semi = if tail { "" } else { ";" };
        self.push(&format!(
            "{ret}Ok(Decoded::new({len}, [{ops}], InsnClass::{})){semi}",
            g.class
        ));
        Ok(())
    }

    /// One dispatch-match arm holding `groups` (same dispatch value
    /// range, spec order). Residual-free groups must come last; earlier
    /// groups guard with their residual tests and `return`.
    fn bucket_arm(&mut self, pattern: &str, groups: &[&Group]) -> Result<(), SpecError> {
        self.push(&format!("{pattern} => {{"));
        for (i, g) in groups.iter().enumerate() {
            let (_, residual) = g.dispatch(self.spec.mode)?;
            let last = i == groups.len() - 1;
            self.push(&format!("// {}", g.name));
            if residual.is_empty() {
                if !last {
                    return err(
                        g.line,
                        format!("group {:?} shadows later groups in its arm", g.name),
                    );
                }
                self.group_body(g, true)?;
            } else {
                let cond = residual
                    .iter()
                    .map(|m| self.condition(m))
                    .collect::<Vec<_>>()
                    .join(" && ");
                self.push(&format!("if {cond} {{"));
                self.group_body(g, false)?;
                self.push("}");
                if last {
                    self.push("Err(DecodeError { pc })");
                }
            }
        }
        self.push("}");
        Ok(())
    }

    /// Emit the `match` over the dispatch field for `groups` (all the
    /// groups of one length class, for `half16_32`; all groups
    /// otherwise). Buckets keep spec order; their value ranges must be
    /// disjoint.
    fn dispatch_match(&mut self, scrutinee: &str, groups: &[&Group]) -> Result<(), SpecError> {
        let mut buckets: Vec<((u32, u32), Vec<&Group>)> = Vec::new();
        for g in groups {
            let (key, _) = g.dispatch(self.spec.mode)?;
            match buckets.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(g),
                None => {
                    if let Some((k, _)) = buckets
                        .iter()
                        .find(|((f, l), _)| key.0 <= *l && *f <= key.1)
                    {
                        return err(
                            g.line,
                            format!(
                                "group {:?}: dispatch {:?} overlaps earlier bucket {k:?}",
                                g.name, key
                            ),
                        );
                    }
                    buckets.push((key, vec![g]));
                }
            }
        }
        self.push(&format!("match {scrutinee} {{"));
        for ((first, last), groups) in &buckets {
            let pattern = if first == last {
                hex(*first)
            } else {
                format!("{}..={}", hex(*first), hex(*last))
            };
            self.bucket_arm(&pattern, groups)?;
        }
        self.push("_ => Err(DecodeError { pc }),");
        self.push("}");
        Ok(())
    }

    fn finish_imports(mut self) -> String {
        // Assemble the final file: header, imports (filtered to what the
        // body uses), preludes, then the body generated so far.
        let spec = self.spec;
        let body = std::mem::take(&mut self.out);
        let mut head = String::new();
        let mut push = |s: &str| {
            head.push_str(s);
            head.push('\n');
        };
        push(&format!(
            "{GENERATED_MARKER} from spec/{}.isa — do not edit by hand.",
            spec.name
        ));
        push("// Regenerate with: cargo run -p simbench-isa-spec --bin specgen");
        push(&format!(
            "//! Generated `{}` decoder (see `spec/{}.isa`).",
            spec.name, spec.name
        ));
        push("");
        let ir_names = [
            "AluOp",
            "Cond",
            "DecodeError",
            "Decoded",
            "InsnClass",
            "LinkKind",
            "MemSize",
            "Op",
            "Operand",
            "RetKind",
        ];
        let used: Vec<&str> = ir_names
            .iter()
            .copied()
            .filter(|n| uses_ident(&body, n))
            .collect();
        push(&format!("use simbench_core::ir::{{{}}};", used.join(", ")));
        for p in &spec.prelude {
            push(p);
        }
        push("");
        head.push_str(&body);
        head
    }

    fn sext_helper(&mut self) {
        self.push("#[inline]");
        self.push("const fn sext(value: u32, bits: u32) -> i32 {");
        self.push("let shift = 32 - bits;");
        self.push("((value << shift) as i32) >> shift");
        self.push("}");
        self.push("");
    }
}

/// Generate the decoder module source for `spec` (unformatted; run the
/// output through `rustfmt` before committing).
///
/// # Errors
///
/// [`SpecError`] on semantic problems: bad classes, unused bindings,
/// overlapping dispatch buckets, shadowed groups, missing lengths.
pub fn generate(spec: &Spec) -> Result<String, SpecError> {
    for g in &spec.groups {
        g.validate(spec.mode)?;
        g.dispatch(spec.mode)?; // surface dispatch errors early
    }
    let mut gen = Gen {
        spec,
        out: String::new(),
    };
    if spec.groups.iter().any(Group::has_sfield) {
        gen.sext_helper();
    }
    match spec.mode {
        Mode::Fixed32 => {
            gen.push("/// Decode the 32-bit word at `pc`.");
            gen.push("///");
            gen.push("/// # Errors");
            gen.push("///");
            gen.push("/// [`DecodeError`] for words outside every encoding group.");
            gen.push("pub fn decode(word: u32, pc: u32) -> Result<Decoded, DecodeError> {");
            gen.push("let w = word;");
            let groups: Vec<&Group> = spec.groups.iter().collect();
            gen.dispatch_match("w >> 28", &groups)?;
            gen.push("}");
        }
        Mode::ByteVar => {
            generate_bytevar_len(&mut gen)?;
            gen.push("/// Decode one instruction starting at `bytes[0]` (the byte at `pc`).");
            gen.push("///");
            gen.push("/// # Errors");
            gen.push("///");
            gen.push("/// [`DecodeError`] for invalid opcodes or a buffer shorter than");
            gen.push("/// the instruction (callers retry with more bytes).");
            gen.push("pub fn decode(bytes: &[u8], pc: u32) -> Result<Decoded, DecodeError> {");
            gen.push("let opc = match bytes.first() {");
            gen.push("Some(&b) => b,");
            gen.push("None => return Err(DecodeError { pc }),");
            gen.push("};");
            gen.push("let len = match insn_len(opc) {");
            gen.push("Some(len) => len,");
            gen.push("None => return Err(DecodeError { pc }),");
            gen.push("};");
            gen.push("if bytes.len() < len {");
            gen.push("return Err(DecodeError { pc });");
            gen.push("}");
            gen.push("let w = window(bytes, len);");
            let groups: Vec<&Group> = spec.groups.iter().collect();
            gen.dispatch_match("opc", &groups)?;
            gen.push("}");
            gen.push("");
            gen.push("/// Little-endian instruction window: byte `k` at bits `[8k+7:8k]`.");
            gen.push("#[inline]");
            gen.push("fn window(bytes: &[u8], len: usize) -> u64 {");
            gen.push("let mut w = 0u64;");
            gen.push("let mut i = 0;");
            gen.push("while i < len {");
            gen.push("w |= (bytes[i] as u64) << (8 * i);");
            gen.push("i += 1;");
            gen.push("}");
            gen.push("w");
            gen.push("}");
        }
        Mode::Half16_32 => {
            gen.push("/// Total byte length of the instruction whose first halfword is");
            gen.push("/// `h0`: 4 when the low two bits are `0b11`, else 2. Total — every");
            gen.push("/// halfword has a defined length (decode may still reject it).");
            gen.push("pub const fn insn_len(h0: u16) -> usize {");
            gen.push("if h0 & 3 == 3 {");
            gen.push("4");
            gen.push("} else {");
            gen.push("2");
            gen.push("}");
            gen.push("}");
            gen.push("");
            gen.push("/// Decode one instruction starting at `bytes[0]` (the byte at `pc`).");
            gen.push("///");
            gen.push("/// # Errors");
            gen.push("///");
            gen.push("/// [`DecodeError`] for invalid encodings or a buffer shorter than");
            gen.push("/// the instruction (callers retry with more bytes).");
            gen.push("pub fn decode(bytes: &[u8], pc: u32) -> Result<Decoded, DecodeError> {");
            gen.push("if bytes.len() < 2 {");
            gen.push("return Err(DecodeError { pc });");
            gen.push("}");
            gen.push("let h0 = u16::from_le_bytes([bytes[0], bytes[1]]);");
            gen.push("let len = insn_len(h0);");
            gen.push("if bytes.len() < len {");
            gen.push("return Err(DecodeError { pc });");
            gen.push("}");
            gen.push("if len == 4 {");
            gen.push("let w = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);");
            let wide: Vec<&Group> = spec.groups.iter().filter(|g| g.len == Some(4)).collect();
            gen.dispatch_match("(w >> 2) & 0x1f", &wide)?;
            gen.push("} else {");
            gen.push("let w = h0 as u32;");
            let narrow: Vec<&Group> = spec.groups.iter().filter(|g| g.len == Some(2)).collect();
            gen.dispatch_match("(w >> 13) & 0x7", &narrow)?;
            gen.push("}");
            gen.push("}");
        }
    }
    Ok(gen.finish_imports())
}

/// Build the `bytevar` length table: walk all 256 first-byte values,
/// take each one's bucket length, and emit run-length-compressed match
/// arms.
fn generate_bytevar_len(gen: &mut Gen<'_>) -> Result<(), SpecError> {
    let spec = gen.spec;
    let mut lens = [None::<u32>; 256];
    for g in &spec.groups {
        let ((first, last), _) = g.dispatch(spec.mode)?;
        let len = g.len.unwrap_or(0);
        for opc in first..=last {
            match lens[opc as usize] {
                None => lens[opc as usize] = Some(len),
                Some(prev) if prev == len => {}
                Some(prev) => {
                    return err(
                        g.line,
                        format!(
                            "group {:?}: opcode {opc:#x} has conflicting lengths {prev} and {len}",
                            g.name
                        ),
                    );
                }
            }
        }
    }
    gen.push("/// Total byte length of the instruction whose first byte is `opc`,");
    gen.push("/// or `None` if no instruction starts with that byte. `Some` does");
    gen.push("/// not promise the instruction decodes — later bytes can still be");
    gen.push("/// rejected — only that the first byte fixes the length.");
    gen.push("pub const fn insn_len(opc: u8) -> Option<usize> {");
    gen.push("match opc {");
    let mut opc = 0usize;
    while opc < 256 {
        let Some(len) = lens[opc] else {
            opc += 1;
            continue;
        };
        let start = opc;
        while opc < 256 && lens[opc] == Some(len) {
            opc += 1;
        }
        let end = opc - 1;
        let pattern = if start == end {
            format!("{start:#04x}")
        } else {
            format!("{start:#04x}..={end:#04x}")
        };
        gen.push(&format!("{pattern} => Some({len}),"));
    }
    gen.push("_ => None,");
    gen.push("}");
    gen.push("}");
    gen.push("");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "
# A two-group toy ISA.
isa toy
mode fixed32

group udf
  match 31:28 = 0x0
  emit Udf
  class System

group mov
  match 31:28 = 0x3
  field rd = 23:20
  field imm = 15:0
  emit Alu { op: AluOp::Mov, rd: rd as u8, rn: 0, src: Operand::Imm(imm), set_flags: false }
  class Alu
";

    #[test]
    fn parses_and_generates() {
        let spec = Spec::parse(TINY).unwrap();
        assert_eq!(spec.name, "toy");
        assert_eq!(spec.mode, Mode::Fixed32);
        assert_eq!(spec.groups.len(), 2);
        let out = generate(&spec).unwrap();
        assert!(out.starts_with(GENERATED_MARKER));
        assert!(out.contains("pub fn decode(word: u32, pc: u32)"));
        assert!(out.contains("match w >> 28"));
        assert!(out.contains("let rd = (w >> 20) & 0xf;"));
        // Only referenced IR names are imported.
        assert!(out.contains("use simbench_core::ir::"));
        assert!(!out.contains("MemSize"));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = Spec::parse(TINY).unwrap();
        assert_eq!(generate(&spec).unwrap(), generate(&spec).unwrap());
    }

    #[test]
    fn unused_binding_is_rejected() {
        let text = TINY.replace("field imm = 15:0", "field imm = 15:0\n  field junk = 7:4");
        let spec = Spec::parse(&text).unwrap();
        let e = generate(&spec).unwrap_err();
        assert!(e.msg.contains("junk"), "{e}");
    }

    #[test]
    fn overlapping_dispatch_is_rejected() {
        let text = "
isa t
mode bytevar
group a
  match 7:0 = 0x10..=0x1F
  len 2
  emit Nop
  class Nop
group b
  match 7:0 = 0x1F
  len 2
  emit Halt
  class System
";
        let spec = Spec::parse(text).unwrap();
        let e = generate(&spec).unwrap_err();
        assert!(e.msg.contains("overlaps"), "{e}");
    }

    #[test]
    fn conflicting_lengths_are_rejected() {
        let text = "
isa t
mode bytevar
group a
  match 7:0 = 0x10
  match 15:8 = 0
  len 2
  emit Nop
  class Nop
group b
  match 7:0 = 0x10
  len 4
  emit Halt
  class System
";
        let spec = Spec::parse(text).unwrap();
        let e = generate(&spec).unwrap_err();
        assert!(e.msg.contains("conflicting lengths"), "{e}");
    }

    #[test]
    fn shadowing_group_is_rejected() {
        // Residual-free group before another group in the same bucket.
        let text = "
isa t
mode fixed32
group a
  match 31:28 = 0x9
  emit Nop
  class Nop
group b
  match 31:28 = 0x9
  match 27:24 = 1
  emit Halt
  class System
";
        let spec = Spec::parse(text).unwrap();
        let e = generate(&spec).unwrap_err();
        assert!(e.msg.contains("shadows"), "{e}");
    }

    #[test]
    fn bytevar_length_table_compresses_runs() {
        let text = "
isa t
mode bytevar
group a
  match 7:0 = 0x00..=0x03
  len 1
  emit Nop
  class Nop
group b
  match 7:0 = 0x04
  len 1
  emit Halt
  class System
group c
  match 7:0 = 0x10
  len 2
  field v = 15:8
  emit Svc(v as u16)
  class System
";
        let spec = Spec::parse(text).unwrap();
        let out = generate(&spec).unwrap();
        assert!(out.contains("0x00..=0x04 => Some(1),"), "{out}");
        assert!(out.contains("0x10 => Some(2),"), "{out}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = Spec::parse("isa t\nmode fixed32\nmatch 3:0 = 1\n").unwrap_err();
        assert_eq!(e.line, 3);
        let e = Spec::parse("isa t\nmode warp9\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn sign_extended_fields_emit_sext() {
        let text = "
isa t
mode fixed32
group b
  match 31:28 = 0x6
  sfield off = 23:0
  emit Branch { target: next.wrapping_add((off << 2) as u32) }
  class Branch
";
        let spec = Spec::parse(text).unwrap();
        let out = generate(&spec).unwrap();
        assert!(out.contains("const fn sext"), "{out}");
        assert!(out.contains("let off = sext(w & 0xffffff, 24);"), "{out}");
        assert!(out.contains("let next = pc.wrapping_add(4);"), "{out}");
    }
}

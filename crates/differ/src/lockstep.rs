//! Checkpointed lockstep execution of one guest image on two engines.
//!
//! Both engines boot their own [`Machine`] from the same image. One
//! engine *leads*: it runs to the next checkpoint's retired-instruction
//! target and reports where it actually stopped (the DBT retires whole
//! translation blocks, so it may overshoot a target; every other engine
//! stops exactly). The other engine then *follows* to the leader's
//! exact count, and the two architectural digests are compared. On a
//! mismatch the divergence is bisected — fresh boot, run to the probe
//! count, compare — down to the first leader-stoppable instruction
//! count at which the states differ, and the full named state diff is
//! reported there.
//!
//! Chunking a run into repeated `Engine::run` calls is architecturally
//! equivalent to one long run: engines keep no architectural state
//! outside the `Machine` and re-derive their caches on entry, and all
//! engines check interrupts and limits at instruction (or block)
//! boundaries, which is exactly where the chunk seams fall.
//!
//! ## Interrupt-delivery granularity
//!
//! The engines intentionally model different interrupt-delivery
//! granularities (the paper's Fig 4 row: the DBT delivers at block
//! boundaries, everything else per instruction). When a workload
//! raises external interrupts across such a pair, *intermediate*
//! states are not comparable — the same handler instructions retire at
//! different positions in the stream — so the differ compares only the
//! quiesced final state, and a residual mismatch confined to the
//! exception banking registers (`sys.saved_pc` / `sys.saved_status`,
//! which durably record *where* the last interrupt landed) is waived
//! as a modeled difference rather than reported as a bug. Everything
//! else — registers, flags, privilege, the rest of the system state
//! and all of RAM — must still match exactly.

use simbench_campaign::EngineKind;
use simbench_core::digest::{StateDelta, StateDigest};
use simbench_core::engine::{Engine, ExitReason, RunLimits, RunOutcome};
use simbench_core::image::GuestImage;
use simbench_core::isa::Isa;
use simbench_core::machine::Machine;
use simbench_dbt::Dbt;
use simbench_detailed::Detailed;
use simbench_interp::Interp;
use simbench_obs::Counter;
use simbench_platform::Platform;
use simbench_virt::Virt;

static OBS_RUNS: Counter = Counter::new("differ.lockstep_runs");
static OBS_CHECKPOINTS: Counter = Counter::new("differ.checkpoints");
static OBS_MISMATCHES: Counter = Counter::new("differ.mismatches");
static OBS_BISECT_PROBES: Counter = Counter::new("differ.bisect_probes");
static OBS_IRQ_WAIVED: Counter = Counter::new("differ.irq_timing_waived");

/// Differ tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct DifferConfig {
    /// Retired-instruction budget per lockstep run. Runs that neither
    /// halt nor diverge within the budget count as agreement over the
    /// compared prefix.
    pub max_insns: u64,
    /// Intermediate digest comparisons to aim for (at least 1). Pairs
    /// that cannot synchronize mid-run fall back to a single final
    /// comparison regardless.
    pub checkpoints: u32,
    /// Campaign scale divisor used when assembling suite/app workload
    /// images (fuzz programs ignore it).
    pub scale: u64,
}

impl Default for DifferConfig {
    fn default() -> Self {
        DifferConfig {
            max_insns: 20_000_000,
            checkpoints: 8,
            scale: 20_000,
        }
    }
}

/// One engine's role description for [`lockstep_with`].
pub struct DifferEngine<F> {
    /// Display id (e.g. `interp`, `dbt@v2.5`).
    pub label: String,
    /// Construct a fresh engine. The lockstep pass builds one engine
    /// per side; every bisection probe builds its own so each probe is
    /// a single uninterrupted run from boot.
    pub make: F,
    /// Whether the engine stops at exactly `max_insns` retired
    /// instructions. Per-instruction engines do; the block-granular
    /// DBT may overshoot to the end of the current translation block
    /// and deliver interrupts only at block boundaries.
    pub insn_granular: bool,
}

/// The first point where two engines' architectural states differ.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Retired-instruction count of the first divergent state (the
    /// smallest leader-stoppable count at which digests differ).
    pub first_bad: u64,
    /// Exit reason of engine A's run to that point.
    pub exit_a: ExitReason,
    /// Exit reason of engine B's run to that point.
    pub exit_b: ExitReason,
    /// Instructions engine A retired.
    pub retired_a: u64,
    /// Instructions engine B retired.
    pub retired_b: u64,
    /// Engine A's state digest there.
    pub digest_a: StateDigest,
    /// Engine B's state digest there.
    pub digest_b: StateDigest,
    /// Named state deltas (A vs B), RAM deltas capped.
    pub deltas: Vec<StateDelta>,
}

/// Outcome of one lockstep comparison.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// All compared states matched.
    Agree {
        /// True when the only differences were the exception banking
        /// registers under mixed interrupt-delivery granularity (see
        /// the module docs) — agreement modulo a modeled difference.
        waived_irq_banking: bool,
    },
    /// The engines produced different architectural states.
    Diverged(Divergence),
    /// The pair could not be meaningfully compared (an engine refused
    /// the workload, or two block-granular engines never reached a
    /// common instruction boundary).
    Inconclusive(String),
}

/// Result of one lockstep comparison, renderable for the CLI.
#[derive(Debug, Clone)]
pub struct Report {
    /// What ran (workload id or fuzz program label).
    pub subject: String,
    /// Engine A's display id.
    pub engine_a: String,
    /// Engine B's display id.
    pub engine_b: String,
    /// Retired instructions covered by the comparison.
    pub insns_compared: u64,
    /// Digest comparisons performed.
    pub checkpoints: u32,
    /// The verdict.
    pub verdict: Verdict,
}

impl Report {
    /// True when the engines agreed (waived modeled differences count
    /// as agreement).
    pub fn agree(&self) -> bool {
        matches!(self.verdict, Verdict::Agree { .. })
    }

    /// Human-readable report; divergences include the full state diff.
    pub fn render(&self) -> String {
        let head = format!(
            "differ: {} vs {} on {}",
            self.engine_a, self.engine_b, self.subject
        );
        match &self.verdict {
            Verdict::Agree { waived_irq_banking } => format!(
                "{head} — agree ({} insns, {} checkpoint(s){})\n",
                self.insns_compared,
                self.checkpoints,
                if *waived_irq_banking {
                    ", irq banking waived"
                } else {
                    ""
                }
            ),
            Verdict::Inconclusive(why) => format!("{head} — INCONCLUSIVE: {why}\n"),
            Verdict::Diverged(d) => {
                let mut out = format!("{head} — DIVERGED at instruction {}\n", d.first_bad);
                out.push_str(&format!(
                    "  exits: {} ({} retired) vs {} ({} retired)\n",
                    d.exit_a, d.retired_a, d.exit_b, d.retired_b
                ));
                out.push_str(&format!("  digest A: {}\n", d.digest_a));
                out.push_str(&format!("  digest B: {}\n", d.digest_b));
                if d.deltas.is_empty() {
                    out.push_str("  state deltas: none (exit reasons differ)\n");
                } else {
                    out.push_str("  state deltas (A vs B):\n");
                    for delta in &d.deltas {
                        out.push_str(&format!("    {delta}\n"));
                    }
                }
                out
            }
        }
    }
}

/// The campaign's engine selector, made runnable behind one type.
enum AnyEngine<I: Isa> {
    Dbt(Box<Dbt<I>>),
    Interp(Interp<I>),
    Detailed(Box<Detailed<I>>),
    Virt(Virt<I>),
}

impl<I: Isa> AnyEngine<I> {
    fn new(kind: EngineKind) -> Self {
        match kind {
            EngineKind::Dbt(profile) => AnyEngine::Dbt(Box::new(Dbt::with_profile(profile))),
            EngineKind::Interp => AnyEngine::Interp(Interp::new()),
            // Full device models, unlike the campaign's Fig 7 cell: the
            // differ checks semantics, not the paper's footnote about
            // Gem5's missing devices.
            EngineKind::Detailed => AnyEngine::Detailed(Box::new(Detailed::new())),
            EngineKind::Virt => AnyEngine::Virt(Virt::kvm()),
            EngineKind::Native => AnyEngine::Virt(Virt::native()),
        }
    }
}

impl<I: Isa> Engine<I, Platform> for AnyEngine<I> {
    fn info(&self) -> simbench_core::engine::EngineInfo {
        match self {
            AnyEngine::Dbt(e) => Engine::<I, Platform>::info(e.as_ref()),
            AnyEngine::Interp(e) => Engine::<I, Platform>::info(e),
            AnyEngine::Detailed(e) => Engine::<I, Platform>::info(e.as_ref()),
            AnyEngine::Virt(e) => Engine::<I, Platform>::info(e),
        }
    }

    fn run(&mut self, m: &mut Machine<I, Platform>, limits: &RunLimits) -> RunOutcome {
        match self {
            AnyEngine::Dbt(e) => e.run(m, limits),
            AnyEngine::Interp(e) => e.run(m, limits),
            AnyEngine::Detailed(e) => e.run(m, limits),
            AnyEngine::Virt(e) => e.run(m, limits),
        }
    }
}

/// Whether an engine kind stops at exact retired-instruction counts
/// (everything but the block-granular DBT does).
fn insn_granular(kind: EngineKind) -> bool {
    !matches!(kind, EngineKind::Dbt(_))
}

/// Run `image` on both engines of a campaign pair in checkpointed
/// lockstep. `subject` labels the report.
pub fn lockstep<I: Isa>(
    image: &GuestImage,
    kind_a: EngineKind,
    kind_b: EngineKind,
    cfg: &DifferConfig,
    subject: &str,
) -> Report {
    lockstep_with::<I, _, _, _, _>(
        image,
        DifferEngine {
            label: kind_a.id(),
            make: move || AnyEngine::<I>::new(kind_a),
            insn_granular: insn_granular(kind_a),
        },
        DifferEngine {
            label: kind_b.id(),
            make: move || AnyEngine::<I>::new(kind_b),
            insn_granular: insn_granular(kind_b),
        },
        cfg,
        subject,
    )
}

/// Fields whose divergence is a modeled interrupt-delivery difference,
/// not a bug, when the pair mixes delivery granularities (module docs).
fn irq_banking_field(field: &str) -> bool {
    field == "sys.saved_pc" || field == "sys.saved_status"
}

/// Boot a fresh machine and run a fresh engine once to `budget`.
fn probe<I: Isa, E, F>(
    make: &F,
    image: &GuestImage,
    budget: u64,
) -> (Machine<I, Platform>, RunOutcome)
where
    E: Engine<I, Platform>,
    F: Fn() -> E,
{
    let mut m = Machine::<I, Platform>::boot(image, Platform::new());
    let out = make().run(&mut m, &RunLimits::insns(budget));
    (m, out)
}

/// Exit reasons agree for lockstep purposes (`Unsupported` is handled
/// before this is asked).
fn exits_agree(a: ExitReason, b: ExitReason) -> bool {
    matches!(
        (a, b),
        (ExitReason::Halted, ExitReason::Halted) | (ExitReason::InsnLimit, ExitReason::InsnLimit)
    )
}

/// Generic lockstep core: compare any two engine factories. Public so
/// tests (and future engines) can put a deliberately broken engine in
/// front of the checker without going through [`EngineKind`].
pub fn lockstep_with<I, EA, EB, FA, FB>(
    image: &GuestImage,
    a: DifferEngine<FA>,
    b: DifferEngine<FB>,
    cfg: &DifferConfig,
    subject: &str,
) -> Report
where
    I: Isa,
    EA: Engine<I, Platform>,
    EB: Engine<I, Platform>,
    FA: Fn() -> EA,
    FB: Fn() -> EB,
{
    let _span = simbench_obs::span!("differ.lockstep");
    OBS_RUNS.add(1);
    let report = |insns, checkpoints, verdict| Report {
        subject: subject.to_string(),
        engine_a: a.label.clone(),
        engine_b: b.label.clone(),
        insns_compared: insns,
        checkpoints,
        verdict,
    };

    // Roles: a block-granular engine must lead (it cannot follow to an
    // exact count); between two exact engines A leads by convention.
    let a_leads = a.insn_granular || !b.insn_granular;
    // A pair of exact engines can synchronize (and so bisect) at every
    // instruction; a mixed pair only at the leader's block boundaries;
    // two block-granular engines only where both happen to stop.
    let exact_pair = a.insn_granular && b.insn_granular;
    let mixed_pair = a.insn_granular != b.insn_granular;

    // A mixed pair also *delivers interrupts* at different points, so
    // intermediate states are incomparable once an IRQ fires; compare
    // only the quiesced final state then. IRQ usage is only known
    // after running, so mixed pairs get one final checkpoint up front.
    let checkpoints = if exact_pair {
        cfg.checkpoints.max(1)
    } else {
        1
    };
    let step = (cfg.max_insns / u64::from(checkpoints)).max(1);

    let mut m_lead = Machine::<I, Platform>::boot(image, Platform::new());
    let mut m_follow = Machine::<I, Platform>::boot(image, Platform::new());
    // One engine per side for the whole lockstep pass: chunk seams are
    // instruction boundaries, so resuming the same engine is the same
    // execution (only bisection probes re-run from boot).
    let mut engine_a = (a.make)();
    let mut engine_b = (b.make)();
    let mut lead_total: u64 = 0;
    let mut follow_total: u64 = 0;
    let mut irqs_delivered: u64 = 0;
    let mut compared: u32 = 0;
    let mut last_sync: u64 = 0;

    macro_rules! lead_run {
        ($limits:expr) => {
            if a_leads {
                engine_a.run(&mut m_lead, $limits)
            } else {
                engine_b.run(&mut m_lead, $limits)
            }
        };
    }
    macro_rules! follow_run {
        ($limits:expr) => {
            if a_leads {
                engine_b.run(&mut m_follow, $limits)
            } else {
                engine_a.run(&mut m_follow, $limits)
            }
        };
    }

    loop {
        let target = (lead_total + step).min(cfg.max_insns);
        let out_lead = lead_run!(&RunLimits::insns(target - lead_total));
        lead_total += out_lead.counters.instructions;
        irqs_delivered += out_lead.counters.irqs_delivered;
        if let ExitReason::Unsupported(what) = out_lead.exit {
            return report(
                lead_total,
                compared,
                Verdict::Inconclusive(format!("leader cannot run this workload: {what}")),
            );
        }

        let out_follow = follow_run!(&RunLimits::insns(lead_total - follow_total));
        follow_total += out_follow.counters.instructions;
        irqs_delivered += out_follow.counters.irqs_delivered;
        if let ExitReason::Unsupported(what) = out_follow.exit {
            return report(
                follow_total,
                compared,
                Verdict::Inconclusive(format!("follower cannot run this workload: {what}")),
            );
        }
        if follow_total != lead_total
            && !matches!(out_follow.exit, ExitReason::Halted)
            && !matches!(out_lead.exit, ExitReason::Halted)
        {
            // Only possible when the follower is block-granular too:
            // neither engine can stop at the other's boundary.
            return report(
                lead_total,
                compared,
                Verdict::Inconclusive(
                    "block-granular pair never reached a common instruction boundary".to_string(),
                ),
            );
        }

        compared += 1;
        OBS_CHECKPOINTS.add(1);
        let (digest_lead, digest_follow) = (m_lead.state_digest(), m_follow.state_digest());
        let exits_ok = exits_agree(out_lead.exit, out_follow.exit);

        if digest_lead != digest_follow || !exits_ok {
            OBS_MISMATCHES.add(1);
            // Mixed-granularity IRQ waiver: at the quiesced final
            // state, a mismatch confined to the exception banking
            // registers is a modeled delivery-timing difference.
            if mixed_pair && irqs_delivered > 0 {
                let deltas = if a_leads {
                    m_lead.state_diff(&m_follow)
                } else {
                    m_follow.state_diff(&m_lead)
                };
                let essential: Vec<StateDelta> = deltas
                    .iter()
                    .filter(|d| !irq_banking_field(&d.field))
                    .cloned()
                    .collect();
                if essential.is_empty() && exits_agree(out_lead.exit, out_follow.exit) {
                    OBS_IRQ_WAIVED.add(1);
                    return report(
                        lead_total,
                        compared,
                        Verdict::Agree {
                            waived_irq_banking: true,
                        },
                    );
                }
                // IRQs were in play, so no earlier state is comparable:
                // report the final divergence without bisection.
                let (exit_a, exit_b, retired_a, retired_b, digest_a, digest_b) = if a_leads {
                    (
                        out_lead.exit,
                        out_follow.exit,
                        lead_total,
                        follow_total,
                        digest_lead,
                        digest_follow,
                    )
                } else {
                    (
                        out_follow.exit,
                        out_lead.exit,
                        follow_total,
                        lead_total,
                        digest_follow,
                        digest_lead,
                    )
                };
                return report(
                    lead_total,
                    compared,
                    Verdict::Diverged(Divergence {
                        first_bad: lead_total,
                        exit_a,
                        exit_b,
                        retired_a,
                        retired_b,
                        digest_a,
                        digest_b,
                        deltas: if essential.is_empty() {
                            deltas
                        } else {
                            essential
                        },
                    }),
                );
            }
            let div = bisect::<I, _, _, _, _>(image, &a, &b, a_leads, last_sync, lead_total);
            return report(lead_total, compared, Verdict::Diverged(div));
        }

        if matches!(out_lead.exit, ExitReason::Halted) || lead_total >= cfg.max_insns {
            return report(
                lead_total,
                compared,
                Verdict::Agree {
                    waived_irq_banking: false,
                },
            );
        }
        last_sync = lead_total;
    }
}

/// Narrow a divergence known to lie in `(lo, hi]` (leader counts,
/// states agree at `lo`, disagree at `hi`) to the first
/// leader-stoppable count where the digests differ, then produce the
/// full diff there. Every probe is a fresh boot-and-run, so bisection
/// is sound for any deterministic engine.
fn bisect<I, EA, EB, FA, FB>(
    image: &GuestImage,
    a: &DifferEngine<FA>,
    b: &DifferEngine<FB>,
    a_leads: bool,
    mut lo: u64,
    mut hi: u64,
) -> Divergence
where
    I: Isa,
    EA: Engine<I, Platform>,
    EB: Engine<I, Platform>,
    FA: Fn() -> EA,
    FB: Fn() -> EB,
{
    let _span = simbench_obs::span!("differ.bisect");
    let states_at = |n: u64| {
        OBS_BISECT_PROBES.add(2);
        let (m_lead, out_lead) = if a_leads {
            probe::<I, _, _>(&a.make, image, n)
        } else {
            probe::<I, _, _>(&b.make, image, n)
        };
        let stopped = out_lead.counters.instructions;
        let (m_follow, out_follow) = if a_leads {
            probe::<I, _, _>(&b.make, image, stopped)
        } else {
            probe::<I, _, _>(&a.make, image, stopped)
        };
        (m_lead, out_lead, m_follow, out_follow, stopped)
    };

    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let (m_lead, out_lead, m_follow, out_follow, stopped) = states_at(mid);
        if stopped >= hi {
            // The leader cannot stop inside (lo, hi): the whole gap is
            // one translation block. `hi` is the first stoppable count.
            break;
        }
        let agree = exits_agree(out_lead.exit, out_follow.exit)
            && m_lead.state_digest() == m_follow.state_digest();
        if agree {
            lo = stopped;
        } else {
            hi = stopped;
        }
    }

    let (m_lead, out_lead, m_follow, out_follow, _) = states_at(hi);
    let (m_a, m_b, out_a, out_b) = if a_leads {
        (&m_lead, &m_follow, &out_lead, &out_follow)
    } else {
        (&m_follow, &m_lead, &out_follow, &out_lead)
    };
    Divergence {
        first_bad: hi,
        exit_a: out_a.exit,
        exit_b: out_b.exit,
        retired_a: out_a.counters.instructions,
        retired_b: out_b.counters.instructions,
        digest_a: m_a.state_digest(),
        digest_b: m_b.state_digest(),
        deltas: m_a.state_diff(m_b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_core::asm::{PReg, PortableAsm};
    use simbench_core::ir::{AluOp, Cond};
    use simbench_isa_armlet::{Armlet, ArmletAsm};

    /// Flat ALU loop retiring `2 + 4*passes + 1` instructions, then halt.
    fn loop_image(passes: u32) -> GuestImage {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, 0);
        a.mov_imm(PReg::B, passes);
        let top = a.new_label();
        a.bind(top);
        a.alu_ri(AluOp::Add, PReg::A, PReg::A, 3);
        a.alu_ri(AluOp::Sub, PReg::B, PReg::B, 1);
        a.cmp_ri(PReg::B, 0);
        a.b_cond(Cond::Ne, top);
        a.halt();
        a.finish(0x8000)
    }

    fn interp_side(label: &str) -> DifferEngine<impl Fn() -> Interp<Armlet>> {
        DifferEngine {
            label: label.to_string(),
            make: Interp::<Armlet>::new,
            insn_granular: true,
        }
    }

    /// An interpreter that flips a bit in `r3` the first time its
    /// cumulative retired count crosses `trip` — a stand-in for an
    /// engine with a bug that manifests mid-run.
    struct Broken {
        inner: Interp<Armlet>,
        trip: u64,
        total: u64,
    }

    impl Engine<Armlet, Platform> for Broken {
        fn info(&self) -> simbench_core::engine::EngineInfo {
            Engine::<Armlet, Platform>::info(&self.inner)
        }

        fn run(&mut self, m: &mut Machine<Armlet, Platform>, limits: &RunLimits) -> RunOutcome {
            let out = self.inner.run(m, limits);
            let before = self.total;
            self.total += out.counters.instructions;
            if before < self.trip && self.total >= self.trip {
                m.cpu.regs[3] ^= 0x10;
            }
            out
        }
    }

    #[test]
    fn identical_engines_agree_across_checkpoints() {
        let image = loop_image(2_000); // 8003 retired instructions
        let cfg = DifferConfig {
            max_insns: 10_000,
            checkpoints: 4,
            scale: 20_000,
        };
        let report = lockstep_with::<Armlet, _, _, _, _>(
            &image,
            interp_side("interp"),
            interp_side("interp"),
            &cfg,
            "loop",
        );
        assert!(report.agree(), "{}", report.render());
        assert_eq!(report.insns_compared, 8_003);
        assert_eq!(report.checkpoints, 4, "2500/5000/7500/halt");
    }

    #[test]
    fn broken_engine_bisected_to_first_divergent_instruction() {
        let image = loop_image(2_000); // 8003 retired instructions
        let trip = 3_137;
        let cfg = DifferConfig {
            max_insns: 10_000,
            checkpoints: 4,
            scale: 20_000,
        };
        let report = lockstep_with::<Armlet, _, _, _, _>(
            &image,
            interp_side("interp"),
            DifferEngine {
                label: "broken".to_string(),
                make: move || Broken {
                    inner: Interp::new(),
                    trip,
                    total: 0,
                },
                insn_granular: true,
            },
            &cfg,
            "loop",
        );
        // The mismatch surfaces at the 5000-instruction checkpoint;
        // bisection must pin it to the corrupting instruction count.
        let Verdict::Diverged(d) = &report.verdict else {
            panic!("expected divergence, got: {}", report.render());
        };
        assert_eq!(d.first_bad, trip, "{}", report.render());
        assert!(
            d.deltas.iter().any(|delta| delta.field == "r3"),
            "diff names the corrupted register: {}",
            report.render()
        );
        assert_eq!(d.deltas.len(), 1, "only r3 differs");
        assert!(report.render().contains("DIVERGED at instruction 3137"));
    }

    #[test]
    fn campaign_pair_agrees_on_flat_loop() {
        let image = loop_image(500);
        let cfg = DifferConfig {
            max_insns: 10_000,
            checkpoints: 3,
            scale: 20_000,
        };
        for kind in [
            EngineKind::Dbt(simbench_dbt::VersionProfile::latest()),
            EngineKind::Detailed,
            EngineKind::Virt,
            EngineKind::Native,
        ] {
            let report = lockstep::<Armlet>(&image, EngineKind::Interp, kind, &cfg, "loop");
            assert!(report.agree(), "{}", report.render());
        }
    }
}

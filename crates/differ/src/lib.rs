//! # simbench-differ
//!
//! Cross-engine differential testing: run the same guest binary on two
//! engines in checkpointed lockstep, compare architectural state
//! digests ([`Machine::state_digest`]), and on a mismatch bisect to
//! the first divergent instruction with a full named state diff.
//!
//! The paper's methodology rests on every simulator computing the same
//! architectural result for the same binary — timing differs, events
//! differ, state must not. This crate turns that assumption into a
//! checkable oracle: any engine can be validated against the reference
//! interpreter over the whole benchmark suite (`check_workload`) or
//! over seeded random programs (`fuzz_pair`) that stress the
//! operations simulators disagree on — control flow, self-modifying
//! code, coprocessor accesses, MMIO and external interrupts.
//!
//! ## Example
//!
//! ```
//! use simbench_campaign::{EngineKind, Guest, Workload};
//! use simbench_differ::{check_workload, DifferConfig};
//! use simbench_suite::Benchmark;
//!
//! let cfg = DifferConfig { max_insns: 200_000, ..Default::default() };
//! let report = check_workload(
//!     Guest::Armlet,
//!     Workload::Suite(Benchmark::Syscall),
//!     EngineKind::Interp,
//!     EngineKind::Native,
//!     &cfg,
//! )
//! .expect("syscall exists on armlet");
//! assert!(report.agree(), "{}", report.render());
//! ```
//!
//! [`Machine::state_digest`]: simbench_core::machine::Machine::state_digest

mod fuzz;
mod lockstep;

pub use fuzz::{
    fuzz_program, generate, generate_straight_line, program_seed, straight_line_program, Rng,
};
pub use lockstep::{
    lockstep, lockstep_with, DifferConfig, DifferEngine, Divergence, Report, Verdict,
};

use std::sync::Arc;

use simbench_campaign::registry::{dispatch_guest, GuestSpec, GuestVisitor};
use simbench_campaign::{measure, EngineKind, Guest, Workload};
use simbench_core::image::GuestImage;

/// Visitor running [`lockstep`] against the guest's concrete ISA — the
/// one per-guest dispatch the whole crate needs.
struct Lockstep<'a> {
    image: Arc<GuestImage>,
    engine_a: EngineKind,
    engine_b: EngineKind,
    cfg: &'a DifferConfig,
    subject: String,
}

impl GuestVisitor for Lockstep<'_> {
    type Out = Report;
    fn visit<G: GuestSpec>(self) -> Report {
        lockstep::<G::Isa>(
            &self.image,
            self.engine_a,
            self.engine_b,
            self.cfg,
            &self.subject,
        )
    }
}

/// Lockstep-compare one campaign workload on an engine pair. `None`
/// when the workload does not exist on the guest architecture (the
/// same cells the campaign leaves as matrix holes).
pub fn check_workload(
    guest: Guest,
    workload: Workload,
    engine_a: EngineKind,
    engine_b: EngineKind,
    cfg: &DifferConfig,
) -> Option<Report> {
    let image = measure::workload_image(guest, workload, cfg.scale)?;
    let subject = format!("{}/{}", guest.isa_name(), workload.id());
    Some(dispatch_guest(
        guest,
        Lockstep {
            image,
            engine_a,
            engine_b,
            cfg,
            subject,
        },
    ))
}

/// Lockstep-compare `programs` seeded random programs on an engine
/// pair. Program `k` runs from `program_seed(seed, k)`, so a failing
/// report names a binary reproducible in isolation.
///
/// Interrupt-aware: if [`simbench_obs::shutdown`] reports SIGINT or
/// SIGTERM, the sweep stops before the next program and returns the
/// comparisons completed so far (prefix of the deterministic program
/// sequence — program `k`'s report is identical either way).
pub fn fuzz_pair(
    guest: Guest,
    engine_a: EngineKind,
    engine_b: EngineKind,
    seed: u64,
    programs: u32,
    cfg: &DifferConfig,
) -> Vec<Report> {
    (0..programs)
        .take_while(|_| !simbench_obs::shutdown::interrupted())
        .map(|k| {
            let pseed = program_seed(seed, k);
            let subject = format!("{}/fuzz:{seed:#x}[{k}]", guest.isa_name());
            let image = Arc::new(generate(guest, pseed));
            dispatch_guest(
                guest,
                Lockstep {
                    image,
                    engine_a,
                    engine_b,
                    cfg,
                    subject,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_suite::ArmletSupport;

    #[test]
    fn fuzz_programs_are_deterministic_and_seed_sensitive() {
        let s = ArmletSupport::new();
        assert_eq!(fuzz_program(&s, 0xDEAD_BEEF), fuzz_program(&s, 0xDEAD_BEEF));
        assert_ne!(fuzz_program(&s, 0xDEAD_BEEF), fuzz_program(&s, 0xDEAD_BEF0));
        assert_ne!(program_seed(7, 0), program_seed(7, 1));
    }

    #[test]
    fn fuzzed_programs_agree_across_engines_both_guests() {
        let cfg = DifferConfig {
            max_insns: 2_000_000,
            checkpoints: 4,
            scale: 20_000,
        };
        for guest in Guest::ALL {
            for engine in [
                EngineKind::Dbt(simbench_dbt::VersionProfile::latest()),
                EngineKind::Native,
                EngineKind::Detailed,
            ] {
                for report in fuzz_pair(guest, EngineKind::Interp, engine, 0x5EED, 3, &cfg) {
                    assert!(report.agree(), "{}", report.render());
                }
            }
        }
    }

    #[test]
    fn workload_matrix_holes_return_none() {
        use simbench_suite::Benchmark;
        // Petix has no non-privileged access mode; the campaign leaves
        // that cell empty and the differ must mirror the hole.
        let cfg = DifferConfig::default();
        let report = check_workload(
            Guest::Petix,
            Workload::Suite(Benchmark::NonprivAccess),
            EngineKind::Interp,
            EngineKind::Native,
            &cfg,
        );
        assert!(report.is_none());
    }
}

//! Seeded random guest programs for differential fuzzing.
//!
//! Programs are generated once against the portable assembler +
//! support-package interface (the same boundary the benchmark suite
//! uses), so one generator covers both guest architectures. The
//! instruction mix is weighted toward the operations the paper shows
//! simulators disagree on: control flow, self-modifying code stores,
//! coprocessor accesses, MMIO traffic and external interrupts — with
//! ALU/memory filler between them.
//!
//! Every program is deterministic and terminating by construction:
//!
//! * the body is a bounded counted loop of forward-only control flow,
//! * loads and stores stay inside the mapped scratch window (plus the
//!   deliberately unmapped fault address, whose handler returns),
//! * the host-clock platform timer is never touched — its value is the
//!   one nondeterministic input on the platform and would make digests
//!   incomparable across engines,
//! * a drain epilogue gives block-granular engines interrupt-delivery
//!   boundaries and then scrubs the handler-clobbered registers, so a
//!   quiesced final state is comparable across delivery granularities
//!   (modulo the banked `saved_pc`/`saved_status`, which the lockstep
//!   checker waives for mixed pairs).

use simbench_campaign::registry::{dispatch_guest, GuestSpec, GuestVisitor};
use simbench_campaign::Guest;
use simbench_core::asm::{PReg, PortableAsm};
use simbench_core::image::GuestImage;
use simbench_core::ir::{AluOp, Cond};
use simbench_obs::Counter;
use simbench_platform::devices::INTC_TRIGGER;
use simbench_suite::support::{emit_counted_loop, emit_phase_mark};
use simbench_suite::{BootSpec, HandlerKind, Handlers, Support};

static OBS_FUZZ_PROGRAMS: Counter = Counter::new("differ.fuzz_programs");

/// Deterministic xorshift64* generator — no external crates, identical
/// streams on every host.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded generator (a zero seed is remapped; xorshift has a zero
    /// fixed point).
    pub fn new(seed: u64) -> Self {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Derive the per-program seed `index` from a campaign seed, so program
/// k is reproducible in isolation (`--fuzz SEED` + the program index in
/// the report names the exact binary).
pub fn program_seed(seed: u64, index: u32) -> u64 {
    // splitmix64 finalizer over seed+index: decorrelates consecutive
    // indices far better than seed^index would.
    let mut z = seed.wrapping_add(u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// ALU operations safe at any operand values.
const ALU_OPS: [AluOp; 8] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Orr,
    AluOp::Eor,
    AluOp::Lsl,
    AluOp::Lsr,
    AluOp::Ror,
];

/// Conditions drawn for generated branches.
const CONDS: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Gt, Cond::Le];

/// Data registers the generator mutates freely. The IRQ handler
/// clobbers `D` and `E` (the suite-wide contract: IRQ-driven kernels
/// keep them dead), so with interrupts enabled the mainline may not
/// carry values in them — engines delivering at different granularities
/// would clobber at different points. `C` is the loop counter, `F` is
/// address scratch and the SMC landing register (clobbered only
/// deterministically, by generated code), `Sp`/`Lr` serve calls and
/// exception frames.
const DATA_REGS: [PReg; 2] = [PReg::A, PReg::B];

/// Handler-preserved address scratch for loads, stores, MMIO and TLB
/// maintenance.
const ADDR: PReg = PReg::F;

/// Bytes of the mapped scratch window at `layout.data` the generator
/// loads and stores within (spans multiple pages on purpose). The page
/// is selected into the base register; the instruction displacement
/// stays inside one page, within armlet's signed-12-bit encoding.
const DATA_WINDOW: u32 = 8 << 10;

/// Guest page size (both architectures use 4 KiB pages).
const PAGE: u32 = 4 << 10;

/// Build the seeded random program for a guest architecture.
///
/// This is the one public entry point shared by the differ and the
/// static analyzer: both tools dispatch through it, so the same
/// `(guest, seed)` pair names the same binary everywhere — a fuzz
/// divergence report and a static-analysis artifact about program `k`
/// of campaign seed `S` are talking about identical bytes.
pub fn generate(guest: Guest, seed: u64) -> GuestImage {
    struct Gen(u64);
    impl GuestVisitor for Gen {
        type Out = GuestImage;
        fn visit<G: GuestSpec>(self) -> GuestImage {
            fuzz_program(&G::Support::default(), self.0)
        }
    }
    dispatch_guest(guest, Gen(seed))
}

/// Straight-line variant of [`generate`]: the same weighted step menu,
/// but with no counted loop and no interrupt delivery, so control flow
/// is acyclic (forward branches and calls only) and every execution
/// retires a statically determined event profile. This is the input
/// class on which the analyzer's static counter prediction is provably
/// exact, and the generator the exactness proptest draws from.
pub fn generate_straight_line(guest: Guest, seed: u64) -> GuestImage {
    struct Gen(u64);
    impl GuestVisitor for Gen {
        type Out = GuestImage;
        fn visit<G: GuestSpec>(self) -> GuestImage {
            straight_line_program(&G::Support::default(), self.0)
        }
    }
    dispatch_guest(guest, Gen(seed))
}

/// Generate one random bootable program for a support package.
///
/// The image boots like a benchmark (vectors, page tables, MMU on,
/// IRQ line 0 unmasked with an acknowledge-and-return handler), runs a
/// random kernel inside a counted loop, drains pending interrupts,
/// scrubs handler-clobbered registers and halts.
pub fn fuzz_program<S: Support>(s: &S, seed: u64) -> GuestImage {
    OBS_FUZZ_PROGRAMS.add(1);
    let mut rng = Rng::new(seed);
    let spec = BootSpec {
        handlers: Handlers {
            irq: HandlerKind::AckIrqEret,
            ..Handlers::default()
        },
        enable_irqs: true,
    };
    s.build(spec, |a, s, layout| {
        // A callable one-word function whose first word is rewritten by
        // SMC stores in the body (the Small/Large Blocks idiom).
        let smc_func = a.new_label();
        let body_start = a.new_label();
        a.b(body_start);
        a.align(16);
        a.bind(smc_func);
        a.word(a.smc_nop_word());
        a.ret();

        a.align(16);
        a.bind(body_start);
        for r in DATA_REGS {
            a.mov_imm(r, rng.next_u64() as u32);
        }
        emit_phase_mark(a, layout, 1);
        let iterations = 2 + rng.below(4) as u32;
        let steps = 24 + rng.below(40) as u32;
        // The step menu is drawn once per program (not per loop pass):
        // the loop re-executes one random kernel, which is what gives
        // SMC rewrites and TLB maintenance something cached to kill.
        let mut menu = Vec::new();
        for _ in 0..steps {
            menu.push(rng.next_u64());
        }
        emit_counted_loop(a, iterations, |a| {
            for &draw in &menu {
                let mut r = Rng::new(draw);
                emit_step(a, s, layout, &mut r, smc_func);
            }
        });
        emit_phase_mark(a, layout, 2);
        // Drain: give block-granular engines interrupt boundaries to
        // deliver any still-pending IRQ at (branches end translation
        // blocks), then scrub every register a handler may clobber so
        // delivery timing cannot leak into the final register file.
        for _ in 0..4 {
            let next = a.new_label();
            a.b(next);
            a.bind(next);
        }
        a.mov_imm(PReg::D, 0);
        a.mov_imm(PReg::E, 0);
        a.mov_imm(PReg::F, 0);
        a.mov_imm(PReg::Lr, 0);
        a.halt();
    })
}

/// Generate one straight-line program for a support package: the same
/// step menu as [`fuzz_program`], emitted once in sequence with no
/// enclosing loop, interrupts left masked (the INTC step may pend a
/// line nothing delivers), and default resume-at-next-instruction
/// handlers for the synchronous-exception steps.
pub fn straight_line_program<S: Support>(s: &S, seed: u64) -> GuestImage {
    let mut rng = Rng::new(seed);
    s.build(BootSpec::default(), |a, s, layout| {
        let smc_func = a.new_label();
        let body_start = a.new_label();
        a.b(body_start);
        a.align(16);
        a.bind(smc_func);
        a.word(a.smc_nop_word());
        a.ret();

        a.align(16);
        a.bind(body_start);
        for r in DATA_REGS {
            a.mov_imm(r, rng.next_u64() as u32);
        }
        let steps = 24 + rng.below(40) as u32;
        for _ in 0..steps {
            let mut r = Rng::new(rng.next_u64());
            emit_step(a, s, layout, &mut r, smc_func);
        }
        a.halt();
    })
}

/// Emit one random step of the program body.
fn emit_step<S: Support>(
    a: &mut S::Asm,
    s: &S,
    layout: &simbench_suite::Layout,
    rng: &mut Rng,
    smc_func: simbench_core::asm::Label,
) {
    let reg = |rng: &mut Rng| DATA_REGS[rng.below(DATA_REGS.len() as u64) as usize];
    // Armlet displacements are simm12 (±2047): pick a 2 KiB-aligned
    // base across the window and a word offset within those 2 KiB, so
    // accesses still land on every page of the window.
    let data_page = |rng: &mut Rng| {
        layout.data + rng.below(u64::from(DATA_WINDOW / (PAGE / 2))) as u32 * (PAGE / 2)
    };
    let data_off = |rng: &mut Rng| (rng.below(u64::from(PAGE / 2) / 4) * 4) as i32;
    match rng.below(100) {
        // ALU filler.
        0..=29 => {
            let op = ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize];
            let (rd, rn) = (reg(rng), reg(rng));
            if rng.below(2) == 0 {
                a.alu_ri(op, rd, rn, rng.below(4096) as u32);
            } else {
                let mut rm = reg(rng);
                // Petix two-address lowering cannot express rd == rm
                // for non-commutative ops; redraw rm portably.
                let commutative = matches!(op, AluOp::Add | AluOp::And | AluOp::Orr | AluOp::Eor);
                if rm == rd && !commutative {
                    rm = *DATA_REGS.iter().find(|&&r| r != rd).unwrap();
                }
                a.alu_rr(op, rd, rn, rm);
            }
        }
        // Flag-setting compare + forward conditional branch over a
        // short random filler (taken and untaken paths both exercised).
        30..=44 => {
            if rng.below(2) == 0 {
                a.cmp_ri(reg(rng), rng.below(4096) as u32);
            } else {
                let (rn, rm) = (reg(rng), reg(rng));
                a.cmp_rr(rn, rm);
            }
            let skip = a.new_label();
            a.b_cond(CONDS[rng.below(CONDS.len() as u64) as usize], skip);
            for _ in 0..=rng.below(3) {
                a.alu_ri(AluOp::Eor, reg(rng), reg(rng), rng.below(4096) as u32);
            }
            a.bind(skip);
        }
        // Loads and stores in the mapped scratch window.
        45..=59 => {
            a.mov_imm(ADDR, data_page(rng));
            let off = data_off(rng);
            match rng.below(3) {
                0 => a.store(reg(rng), ADDR, off),
                1 => a.load(reg(rng), ADDR, off),
                _ => a.store8(reg(rng), ADDR, off),
            }
        }
        // Self-modifying code: rewrite the callable's first word with
        // an iteration-dependent valid encoding, then execute it. `B`
        // carries the encoding (handler-preserved; the sequence spans
        // several interruptible instruction boundaries).
        60..=69 => {
            a.emit_smc_word(PReg::B, PReg::C);
            a.mov_label(ADDR, smc_func);
            a.store(PReg::B, ADDR, 0);
            a.call(smc_func);
        }
        // MMIO: read the safe device's ID register or write the UART.
        70..=77 => {
            if rng.below(2) == 0 {
                a.mov_imm(ADDR, layout.safedev);
                a.load(reg(rng), ADDR, 0);
            } else {
                a.mov_imm(ADDR, layout.uart);
                a.store8(reg(rng), ADDR, 0);
            }
        }
        // External interrupt: pend line 0 (unmasked at boot); the
        // handler acknowledges. The platform timer is never read — it
        // exposes the host clock, the one nondeterministic device.
        78..=83 => {
            a.mov_imm(ADDR, layout.intc);
            a.mov_imm(PReg::A, 1);
            a.store(PReg::A, ADDR, INTC_TRIGGER as i32);
        }
        // Coprocessor access.
        84..=89 => s.emit_safe_coproc_read(a, reg(rng)),
        // Synchronous exceptions: syscall, undefined instruction, and
        // a data-access fault whose handler resumes at the next insn.
        90..=92 => a.svc(rng.below(64) as u16),
        93..=94 => a.udf(),
        95 => {
            a.mov_imm(ADDR, layout.unmapped);
            a.load(reg(rng), ADDR, 0);
        }
        // Non-privileged access where the architecture has one (emits
        // nothing on petix, exactly like the suite benchmark).
        96 => {
            a.mov_imm(ADDR, data_page(rng));
            s.emit_nonpriv_load(a, reg(rng), ADDR, data_off(rng));
        }
        // TLB maintenance.
        97..=98 => {
            a.mov_imm(ADDR, layout.data + rng.below(u64::from(DATA_WINDOW)) as u32);
            s.emit_tlb_inv_page(a, ADDR);
        }
        _ => s.emit_tlb_flush(a, ADDR),
    }
}

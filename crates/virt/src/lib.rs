//! # simbench-virt
//!
//! A hardware-assisted-virtualization cost-model engine — the QEMU-KVM
//! analogue of the paper's evaluation — plus a `native` configuration
//! standing in for the bare-metal hardware rows of Fig 7 (see the
//! substitution notes in `DESIGN.md`).
//!
//! Guest code executes on a *direct* fast path: instructions are decoded
//! once per physical page and cached (the hardware's decoder), and
//! address translation uses a large, cheap "hardware TLB". Sensitive
//! operations — MMIO, coprocessor accesses, undefined instructions,
//! interrupt injection — trigger simulated **VM exits** with a
//! configurable latency, reproducing the trap-and-emulate costs the
//! paper highlights for the External Software Interrupt and Memory
//! Mapped Device benchmarks. The `native` configuration runs the same
//! engine with zero exit cost.

use std::collections::HashMap;
use std::marker::PhantomData;
use std::rc::Rc;
use std::time::Instant;

use simbench_core::bus::{Bus, BusEvent};
use simbench_core::cpu::{CpuState, Flags};
use simbench_core::engine::{Engine, EngineInfo, ExitReason, PhaseTracker, RunLimits, RunOutcome};
use simbench_core::events::Counters;
use simbench_core::exec::{step_op, ExecCtx, OpOutcome, Trap};
use simbench_core::fault::{AccessKind, CopFault, ExcInfo, ExceptionKind, FaultKind, MemFault};
use simbench_core::ir::{Decoded, MemSize, Op, MAX_OPS_PER_INSN};
use simbench_core::isa::{CopEffect, Isa};
use simbench_core::machine::Machine;
use simbench_core::page_of;
use simbench_core::tlb::DirectTlb;

/// Main-loop iterations between wall-clock checks. Iterations, not
/// retired instructions: IRQ-delivery and prefetch-abort iterations
/// retire nothing, and a storm of them must still honor `--wall-limit`.
const WALL_CHECK_PERIOD: u64 = 0x2_0000;

/// Configuration of the virtualization layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtConfig {
    /// Engine display name.
    pub name: &'static str,
    /// Simulated cost of one VM exit, in nanoseconds (busy-waited, the
    /// honest stand-in for a world switch we cannot perform).
    pub exit_cost_ns: u32,
    /// MMIO accesses exit to the hypervisor.
    pub mmio_exits: bool,
    /// Coprocessor accesses exit to the hypervisor.
    pub coproc_exits: bool,
    /// Undefined instructions exit (the paper's "Hypercall" row).
    pub undef_exits: bool,
    /// Interrupt injection exits.
    pub irq_exits: bool,
}

impl VirtConfig {
    /// KVM-like: traps cost ~1.5 µs.
    pub fn kvm() -> Self {
        VirtConfig {
            name: "virt",
            exit_cost_ns: 1500,
            mmio_exits: true,
            coproc_exits: true,
            undef_exits: true,
            irq_exits: true,
        }
    }

    /// Native hardware stand-in: the same direct execution path with
    /// zero exit cost.
    pub fn native() -> Self {
        VirtConfig {
            name: "native",
            exit_cost_ns: 0,
            mmio_exits: false,
            coproc_exits: false,
            undef_exits: false,
            irq_exits: false,
        }
    }
}

/// Pre-decoded instructions for one physical page, indexed by byte
/// offset (the hardware front-end's decoded-instruction cache).
#[derive(Debug)]
struct PageCode {
    slots: Vec<Option<Rc<Decoded>>>,
}

impl Default for PageCode {
    fn default() -> Self {
        PageCode {
            slots: vec![None; 4096],
        }
    }
}

/// The virtualization / native engine.
#[derive(Debug)]
pub struct Virt<I: Isa> {
    cfg: VirtConfig,
    /// "Hardware" TLB: large and cheap.
    tlb: DirectTlb,
    /// Per-physical-page decoded-instruction cache (the hardware
    /// front-end; invalidated on writes like a coherent icache).
    pages: HashMap<u32, PageCode>,
    _isa: PhantomData<I>,
}

impl<I: Isa> Virt<I> {
    /// A KVM-configured engine.
    pub fn kvm() -> Self {
        Self::with_config(VirtConfig::kvm())
    }

    /// A native-configured engine.
    pub fn native() -> Self {
        Self::with_config(VirtConfig::native())
    }

    /// An engine with an explicit configuration.
    pub fn with_config(cfg: VirtConfig) -> Self {
        Virt {
            cfg,
            tlb: DirectTlb::new(4096),
            pages: HashMap::new(),
            _isa: PhantomData,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &VirtConfig {
        &self.cfg
    }
}

/// Busy-wait approximating one VM exit's world-switch latency.
#[inline]
fn spin_exit(cost_ns: u32) {
    if cost_ns == 0 {
        return;
    }
    let t0 = Instant::now();
    while (t0.elapsed().as_nanos() as u32) < cost_ns {
        std::hint::spin_loop();
    }
}

/// Fixed-capacity set of physical pages whose cached decodes one
/// instruction's op list dirtied. Each op performs at most one store,
/// so [`MAX_OPS_PER_INSN`] bounds the set — no heap, and no page is
/// lost when a single op list stores into several code-holding pages.
#[derive(Debug, Clone, Copy, Default)]
struct DirtyCodePages {
    pages: [u32; MAX_OPS_PER_INSN],
    len: usize,
}

impl DirtyCodePages {
    fn push(&mut self, ppage: u32) {
        if !self.as_slice().contains(&ppage) {
            self.pages[self.len] = ppage;
            self.len += 1;
        }
    }

    fn as_slice(&self) -> &[u32] {
        &self.pages[..self.len]
    }
}

struct Ctx<'a, I: Isa, B: Bus> {
    cpu: &'a mut CpuState,
    sys: &'a mut I::Sys,
    bus: &'a mut B,
    tlb: &'a mut DirectTlb,
    counters: &'a mut Counters,
    cfg: VirtConfig,
    phase_mark: Option<u8>,
    /// Physical pages whose decoded instructions a store dirtied.
    code_write: DirtyCodePages,
    /// Pages with cached decodes (read-only coherency check).
    code_pages: &'a HashMap<u32, PageCode>,
}

impl<I: Isa, B: Bus> Ctx<'_, I, B> {
    fn vm_exit(&mut self) {
        self.counters.vm_exits += 1;
        spin_exit(self.cfg.exit_cost_ns);
    }

    fn translate_data(
        &mut self,
        va: u32,
        size: MemSize,
        access: AccessKind,
        nonpriv: bool,
    ) -> Result<u32, MemFault> {
        if !size.aligned(va) {
            return Err(MemFault {
                addr: va,
                access,
                kind: FaultKind::Unaligned,
            });
        }
        if !I::mmu_enabled(self.sys) {
            return Ok(va);
        }
        let vpage = page_of(va);
        let entry = match self.tlb.lookup(vpage) {
            Some(e) => {
                self.counters.tlb_hits += 1;
                e
            }
            None => {
                self.counters.tlb_misses += 1;
                let e = I::walk(self.sys, self.bus, va).map_err(|mut f| {
                    f.access = access;
                    f
                })?;
                self.tlb.insert(e);
                e
            }
        };
        entry.check(va, access, self.cpu.level.is_kernel(), nonpriv)
    }
}

impl<I: Isa, B: Bus> ExecCtx for Ctx<'_, I, B> {
    fn reg(&self, r: u8) -> u32 {
        self.cpu.regs[r as usize]
    }
    fn set_reg(&mut self, r: u8, v: u32) {
        self.cpu.regs[r as usize] = v;
    }
    fn flags(&self) -> Flags {
        self.cpu.flags
    }
    fn set_flags(&mut self, f: Flags) {
        self.cpu.flags = f;
    }
    fn privileged(&self) -> bool {
        self.cpu.level.is_kernel()
    }

    fn read(&mut self, va: u32, size: MemSize, nonpriv: bool) -> Result<u32, MemFault> {
        self.counters.mem_reads += 1;
        if nonpriv {
            self.counters.nonpriv_accesses += 1;
        }
        let pa = self.translate_data(va, size, AccessKind::Read, nonpriv)?;
        if self.bus.is_mmio(pa) {
            self.counters.mmio_accesses += 1;
            if self.cfg.mmio_exits {
                self.vm_exit();
            }
        }
        self.bus.read(pa, size).map_err(|mut f| {
            f.addr = va;
            f
        })
    }

    fn write(&mut self, va: u32, val: u32, size: MemSize, nonpriv: bool) -> Result<(), MemFault> {
        self.counters.mem_writes += 1;
        if nonpriv {
            self.counters.nonpriv_accesses += 1;
        }
        let pa = self.translate_data(va, size, AccessKind::Write, nonpriv)?;
        if self.bus.is_mmio(pa) {
            self.counters.mmio_accesses += 1;
            if self.cfg.mmio_exits {
                self.vm_exit();
            }
        }
        match self.bus.write(pa, val, size) {
            Ok(Some(BusEvent::PhaseMark(m))) => self.phase_mark = Some(m),
            Ok(_) => {}
            Err(mut f) => {
                f.addr = va;
                return Err(f);
            }
        }
        // Instruction-cache coherency: dirty pages with cached decodes.
        let ppage = page_of(pa);
        if self.code_pages.contains_key(&ppage) {
            self.code_write.push(ppage);
        }
        Ok(())
    }

    fn cop_read(&mut self, cp: u8, reg: u8) -> Result<u32, CopFault> {
        self.counters.coproc_accesses += 1;
        if self.cfg.coproc_exits {
            self.vm_exit();
        }
        I::cop_read(self.cpu, self.sys, cp, reg)
    }

    fn cop_write(&mut self, cp: u8, reg: u8, val: u32) -> Result<(), CopFault> {
        self.counters.coproc_accesses += 1;
        if self.cfg.coproc_exits {
            self.vm_exit();
        }
        match I::cop_write(self.cpu, self.sys, cp, reg, val)? {
            CopEffect::None => {}
            CopEffect::TlbInvPage(va) => {
                self.counters.tlb_invalidate_page += 1;
                self.tlb.invalidate_page(page_of(va));
            }
            CopEffect::TlbFlush => {
                self.counters.tlb_flushes += 1;
                self.tlb.flush();
            }
            CopEffect::ContextChanged => self.tlb.flush(),
        }
        Ok(())
    }
}

impl<I: Isa> Virt<I> {
    /// Translate a fetch and return the decoded instruction at `pc`,
    /// decoding and caching the page slot on first touch.
    fn fetch<B: Bus>(
        &mut self,
        cpu: &CpuState,
        sys: &mut I::Sys,
        bus: &mut B,
        counters: &mut Counters,
        pc: u32,
    ) -> Result<Rc<Decoded>, MemFault> {
        let pa = if !I::mmu_enabled(sys) {
            pc
        } else {
            let vpage = page_of(pc);
            let entry = match self.tlb.lookup(vpage) {
                Some(e) => {
                    counters.tlb_hits += 1;
                    e
                }
                None => {
                    counters.tlb_misses += 1;
                    let e = I::walk(sys, bus, pc).map_err(|mut f| {
                        f.access = AccessKind::Execute;
                        f
                    })?;
                    self.tlb.insert(e);
                    e
                }
            };
            entry.check(pc, AccessKind::Execute, cpu.level.is_kernel(), false)?
        };
        let ppage = page_of(pa);
        let off = (pa & 0xFFF) as usize;
        if let Some(Some(d)) = self.pages.get(&ppage).map(|p| &p.slots[off]) {
            return Ok(Rc::clone(d));
        }
        // Decode from RAM (instruction fetch from MMIO is a bus error).
        let ram = bus.ram();
        if pa as usize >= ram.len() {
            return Err(MemFault {
                addr: pc,
                access: AccessKind::Execute,
                kind: FaultKind::BusError,
            });
        }
        let end = ((pa as usize) + I::MAX_INSN_BYTES).min(ram.len());
        let bytes = &ram[pa as usize..end];
        let decoded = match I::decode(bytes, pc) {
            Ok(d) => d,
            Err(_) => Decoded::new(
                I::MAX_INSN_BYTES as u8,
                [Op::Udf],
                simbench_core::ir::InsnClass::System,
            ),
        };
        let rc = Rc::new(decoded);
        self.pages.entry(ppage).or_default().slots[off] = Some(Rc::clone(&rc));
        Ok(rc)
    }
}

impl<I: Isa, B: Bus> Engine<I, B> for Virt<I> {
    fn info(&self) -> EngineInfo {
        if self.cfg.exit_cost_ns == 0 && !self.cfg.mmio_exits {
            EngineInfo {
                name: "native",
                execution_model: "Direct",
                memory_access: "Direct",
                code_generation: "None",
                control_flow_inter: "Direct",
                control_flow_intra: "Direct",
                interrupts: "Direct",
                sync_exceptions: "Direct",
                undef_insn: "Direct",
            }
        } else {
            EngineInfo {
                name: "virt",
                execution_model: "Direct",
                memory_access: "Direct",
                code_generation: "None",
                control_flow_inter: "Direct",
                control_flow_intra: "Direct",
                interrupts: "Via Emulation Layer",
                sync_exceptions: "Direct",
                undef_insn: "Hypercall",
            }
        }
    }

    fn run(&mut self, m: &mut Machine<I, B>, limits: &RunLimits) -> RunOutcome {
        let t0 = Instant::now();
        let mut counters = Counters::default();
        let mut phase = PhaseTracker::new();
        self.tlb.flush();
        self.pages.clear();

        let mut iters: u64 = 0;
        let exit = 'outer: loop {
            if counters.instructions >= limits.max_insns {
                break ExitReason::InsnLimit;
            }
            if let Some(wall) = limits.wall_limit {
                if iters.is_multiple_of(WALL_CHECK_PERIOD) && t0.elapsed() >= wall {
                    break ExitReason::WallLimit;
                }
            }
            iters += 1;

            if m.cpu.irq_enabled && m.bus.irq_pending() {
                counters.irqs_delivered += 1;
                if self.cfg.irq_exits {
                    counters.vm_exits += 1;
                    spin_exit(self.cfg.exit_cost_ns);
                }
                let resume = m.cpu.pc;
                let vec = I::enter_exception(
                    &mut m.cpu,
                    &mut m.sys,
                    ExceptionKind::Irq,
                    ExcInfo::default(),
                    resume,
                );
                m.cpu.pc = vec;
                continue;
            }

            let pc = m.cpu.pc;
            let decoded = match self.fetch(&m.cpu, &mut m.sys, &mut m.bus, &mut counters, pc) {
                Ok(d) => d,
                Err(f) => {
                    counters.insn_faults += 1;
                    let vec = I::enter_exception(
                        &mut m.cpu,
                        &mut m.sys,
                        ExceptionKind::PrefetchAbort,
                        ExcInfo::from_fault(f),
                        pc,
                    );
                    m.cpu.pc = vec;
                    continue;
                }
            };

            counters.instructions += 1;
            let next_pc = pc.wrapping_add(decoded.len as u32);
            let mut ctx = Ctx::<I, B> {
                cpu: &mut m.cpu,
                sys: &mut m.sys,
                bus: &mut m.bus,
                tlb: &mut self.tlb,
                counters: &mut counters,
                cfg: self.cfg,
                phase_mark: None,
                code_write: DirtyCodePages::default(),
                code_pages: &self.pages,
            };

            let mut new_pc = next_pc;
            let mut trap: Option<Trap> = None;
            for op in &decoded.ops {
                ctx.counters.uops += 1;
                match step_op(&mut ctx, op) {
                    OpOutcome::Next => {}
                    OpOutcome::Jump { target, flavor } => {
                        simbench_interp::count_branch(ctx.counters, pc, target, flavor);
                        new_pc = target;
                        break;
                    }
                    OpOutcome::Trap(t) => {
                        trap = Some(t);
                        break;
                    }
                    OpOutcome::Halt => break 'outer ExitReason::Halted,
                }
            }
            let mark = ctx.phase_mark.take();
            let dirty = ctx.code_write;

            for &ppage in dirty.as_slice() {
                counters.code_invalidations += 1;
                self.pages.remove(&ppage);
            }

            match trap {
                None => m.cpu.pc = new_pc,
                Some(Trap::Eret) => m.cpu.pc = I::leave_exception(&mut m.cpu, &mut m.sys),
                Some(Trap::Syscall(n)) => {
                    counters.syscalls += 1;
                    let vec = I::enter_exception(
                        &mut m.cpu,
                        &mut m.sys,
                        ExceptionKind::Syscall,
                        ExcInfo::syscall(n),
                        next_pc,
                    );
                    m.cpu.pc = vec;
                }
                Some(Trap::Undef) => {
                    counters.undef_insns += 1;
                    if self.cfg.undef_exits {
                        counters.vm_exits += 1;
                        spin_exit(self.cfg.exit_cost_ns);
                    }
                    let vec = I::enter_exception(
                        &mut m.cpu,
                        &mut m.sys,
                        ExceptionKind::Undef,
                        ExcInfo::default(),
                        next_pc,
                    );
                    m.cpu.pc = vec;
                }
                Some(Trap::DataFault(f)) => {
                    counters.data_faults += 1;
                    let vec = I::enter_exception(
                        &mut m.cpu,
                        &mut m.sys,
                        ExceptionKind::DataAbort,
                        ExcInfo::from_fault(f),
                        next_pc,
                    );
                    m.cpu.pc = vec;
                }
            }

            if let Some(mark) = mark {
                phase.on_mark(mark, &counters);
            }
        };

        RunOutcome {
            exit,
            wall: t0.elapsed(),
            counters,
            kernel: phase.into_kernel(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_core::asm::{PReg, PortableAsm};
    use simbench_core::bus::FlatRam;
    use simbench_core::ir::AluOp;
    use simbench_isa_armlet::{Armlet, ArmletAsm};

    fn run_native(asm: ArmletAsm, entry: u32) -> (Machine<Armlet, FlatRam>, RunOutcome) {
        let img = asm.finish(entry);
        let mut m = Machine::<Armlet, _>::boot(&img, FlatRam::new(1 << 20));
        let mut e = Virt::<Armlet>::native();
        let out = e.run(&mut m, &RunLimits::insns(10_000_000));
        (m, out)
    }

    #[test]
    fn computes_correctly() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, 6);
        a.alu_ri(AluOp::Mul, PReg::A, PReg::A, 7);
        a.halt();
        let (m, out) = run_native(a, 0x8000);
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(m.cpu.regs[0], 42);
        assert_eq!(out.counters.vm_exits, 0, "native never exits");
    }

    #[test]
    fn kvm_exits_on_undef() {
        let mut a = ArmletAsm::new();
        a.org(0);
        let h = a.new_label();
        a.b(h);
        a.org(0x100);
        a.bind(h);
        a.eret();
        a.org(0x8000);
        a.udf();
        a.halt();
        let img = a.finish(0x8000);
        let mut m = Machine::<Armlet, _>::boot(&img, FlatRam::new(1 << 20));
        let cfg = VirtConfig {
            exit_cost_ns: 0,
            ..VirtConfig::kvm()
        };
        let mut e = Virt::<Armlet>::with_config(cfg);
        let out = e.run(&mut m, &RunLimits::insns(1000));
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(out.counters.vm_exits, 1);
        assert_eq!(out.counters.undef_insns, 1);
    }

    #[test]
    fn decode_cache_invalidated_by_smc() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        let slot = a.new_label();
        a.mov_label(PReg::A, slot);
        a.mov_imm(PReg::B, 0x3030_0000 | 9); // movw r3, #9
        a.store(PReg::B, PReg::A, 0);
        a.bind(slot);
        a.mov_imm(PReg::D, 1);
        a.halt();
        let (m, out) = run_native(a, 0x8000);
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(m.cpu.regs[3], 9, "rewritten instruction executed");
        assert!(out.counters.code_invalidations >= 1);
    }

    #[test]
    fn non_retiring_storm_honors_wall_limit() {
        use simbench_isa_armlet::sys::{cp14, cp15, CP_BANK, CP_SYS};
        use simbench_platform::devices::{INTC_ENABLE, INTC_TRIGGER};
        use simbench_platform::{Platform, INTC_BASE};
        use std::time::Duration;
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, INTC_BASE + INTC_ENABLE);
        a.mov_imm(PReg::B, 1);
        a.store(PReg::B, PReg::A, 0);
        a.mov_imm(PReg::A, INTC_BASE + INTC_TRIGGER);
        a.store(PReg::B, PReg::A, 0);
        // Vector table beyond RAM: the IRQ handler can never fetch, so
        // delivery degenerates into a prefetch-abort storm in which no
        // iteration retires an instruction.
        a.mov_imm(PReg::C, 0x0800_0000);
        a.mcr(CP_SYS, cp15::VBAR, PReg::C);
        a.mcr(CP_BANK, cp14::IRQ_CTL, PReg::B);
        a.nop();
        a.halt();
        let img = a.finish(0x8000);
        let mut m = Machine::<Armlet, _>::boot(&img, Platform::with_ram(1 << 20));
        let mut e = Virt::<Armlet>::native();
        let out = e.run(
            &mut m,
            &RunLimits {
                max_insns: u64::MAX,
                wall_limit: Some(Duration::from_millis(30)),
            },
        );
        assert_eq!(out.exit, ExitReason::WallLimit);
        assert_eq!(out.counters.irqs_delivered, 1);
        assert!(out.counters.insn_faults > 0, "abort storm was spinning");
    }

    #[test]
    fn fetch_path_counts_tlb_hits() {
        use simbench_isa_armlet::sys::{cp15, CP_SYS};
        use simbench_isa_armlet::{Access, TableBuilder};
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, 0x0010_0000);
        a.mcr(CP_SYS, cp15::TTBR, PReg::A);
        a.mov_imm(PReg::B, 1);
        a.mcr(CP_SYS, cp15::SCTLR, PReg::B); // MMU on
        a.nop();
        a.nop();
        a.nop();
        a.halt();
        let mut img = a.finish(0x8000);
        let mut tb = TableBuilder::new(0x0010_0000);
        tb.map_section(0, 0, Access::KernelOnly);
        let (load_at, blob) = tb.into_blob();
        img.push_section(load_at, blob);
        let mut m = Machine::<Armlet, _>::boot(&img, FlatRam::new(1 << 21));
        let mut e = Virt::<Armlet>::native();
        let out = e.run(&mut m, &RunLimits::insns(1000));
        assert_eq!(out.exit, ExitReason::Halted);
        // No loads or stores after the MMU comes on, so every TLB probe
        // below comes from the fetch path.
        assert_eq!(out.counters.mem_reads, 0);
        assert_eq!(out.counters.mem_writes, 0);
        assert!(out.counters.tlb_misses >= 1, "first fetch walks");
        assert!(out.counters.tlb_hits >= 2, "later fetches hit the TLB");
    }

    #[test]
    fn smc_in_one_op_list_dirties_both_pages() {
        use simbench_core::events::Counters;
        use simbench_core::ir::MemSize;
        // Two physical pages hold cached decodes; one instruction's op
        // list stores into both. Both must be queued for invalidation —
        // the old single-slot tracker kept only the last.
        let mut pages: HashMap<u32, PageCode> = HashMap::new();
        pages.insert(0x10, PageCode::default());
        pages.insert(0x11, PageCode::default());
        let mut cpu = CpuState::at_reset(0);
        let mut sys = simbench_isa_armlet::ArmletSys::default();
        let mut bus = FlatRam::new(1 << 20);
        let mut tlb = DirectTlb::new(16);
        let mut counters = Counters::default();
        let mut ctx = Ctx::<Armlet, _> {
            cpu: &mut cpu,
            sys: &mut sys,
            bus: &mut bus,
            tlb: &mut tlb,
            counters: &mut counters,
            cfg: VirtConfig::native(),
            phase_mark: None,
            code_write: DirtyCodePages::default(),
            code_pages: &pages,
        };
        ctx.write(0x10_004, 0xAA, MemSize::B4, false).unwrap();
        ctx.write(0x11_008, 0xBB, MemSize::B4, false).unwrap();
        // A repeat store must not grow the set past its capacity bound.
        ctx.write(0x10_00C, 0xCC, MemSize::B4, false).unwrap();
        let dirty = ctx.code_write;
        assert!(dirty.as_slice().contains(&0x10), "first page kept");
        assert!(dirty.as_slice().contains(&0x11), "second page kept");
        assert_eq!(dirty.as_slice().len(), 2, "set deduplicates");
    }

    #[test]
    fn spin_exit_zero_is_free() {
        let t0 = Instant::now();
        for _ in 0..1000 {
            spin_exit(0);
        }
        assert!(t0.elapsed().as_micros() < 1000);
    }

    #[test]
    fn spin_exit_waits() {
        let t0 = Instant::now();
        spin_exit(50_000); // 50 µs
        assert!(t0.elapsed().as_nanos() >= 50_000);
    }
}

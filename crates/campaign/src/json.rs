//! Minimal JSON reading and writing.
//!
//! The container has no serde, so campaign persistence hand-rolls the
//! small JSON subset it needs: objects, arrays, strings, finite numbers,
//! booleans, and null. The writer always emits valid JSON; the parser
//! accepts standard JSON (string escapes included) and rejects trailing
//! garbage.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (campaign counters stay well below 2^53, where
    /// f64 is exact).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object. BTreeMap keeps key order deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric content as u64 (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Array content.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object content.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Escape and quote a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float so it parses back exactly and never prints as
/// `NaN`/`inf` (both become `0`, which JSON requires).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // {:?} prints the shortest representation that round-trips.
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through byte-wise.
                let s = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[s..*pos]).map_err(|e| format!("bad utf8: {e}"))?,
                );
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -1.5e2 ").unwrap(), Value::Num(-150.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::Str("a\nb".to_string()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn quote_roundtrip() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\tnewline\n",
            "unicode µ±",
            "back\\slash",
        ] {
            let parsed = parse(&quote(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn num_roundtrip() {
        for v in [0.0, 1.5, 1e-9, 123456789.0, 0.1 + 0.2] {
            let parsed = parse(&num(v)).unwrap();
            assert_eq!(parsed.as_f64(), Some(v));
        }
        assert_eq!(num(f64::NAN), "0");
    }

    #[test]
    fn u64_exactness_within_2_53() {
        let big = (1u64 << 53) - 1;
        let parsed = parse(&format!("{big}")).unwrap();
        assert_eq!(parsed.as_u64(), Some(big));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}

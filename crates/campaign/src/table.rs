//! Minimal fixed-width text-table rendering for campaign and harness
//! output. (Moved here from `simbench-harness` so the campaign CLI and
//! the figure renderers share one implementation; the harness re-exports
//! it.)

/// A simple text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned markdown-compatible text.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, width) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:<width$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }
}

/// Format seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 0.001 {
        format!("{:.3}", s)
    } else {
        format!("{:.6}", s)
    }
}

/// Format a speedup ratio.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.3}")
}

/// Format an operation density (scientific for tiny values, fixed
/// otherwise — matching the paper's Fig 3 style).
pub fn fmt_density(d: f64) -> String {
    if d == 0.0 {
        "0".to_string()
    } else if d < 0.001 {
        format!("{d:.2E}")
    } else {
        format!("{d:.3}")
    }
}

/// Format an iteration count like the paper (100K, 25M, ...).
pub fn fmt_iters(n: u64) -> String {
    if n.is_multiple_of(1_000_000) && n >= 1_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n.is_multiple_of(1_000) && n >= 1_000 {
        format!("{}K", n / 1_000)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "2"]);
        let s = t.render();
        assert!(s.contains("| name      | value |"));
        assert!(s.contains("| long-name | 2     |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_iters(100_000), "100K");
        assert_eq!(fmt_iters(25_000_000), "25M");
        assert_eq!(fmt_iters(123), "123");
        assert_eq!(fmt_density(0.0), "0");
        assert_eq!(fmt_density(0.5), "0.500");
        assert!(fmt_density(8.49e-7).contains('E'));
        assert_eq!(fmt_secs(2.5), "2.50");
        assert_eq!(fmt_ratio(1.0), "1.000");
    }
}

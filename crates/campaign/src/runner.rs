//! Parallel campaign execution: a work-stealing worker pool over the
//! expanded job list.
//!
//! Every job owns its `Machine` and engine (see `measure`), so jobs
//! share no mutable state and the pool needs no synchronization beyond
//! the queues themselves. Jobs are dealt round-robin into per-worker
//! deques; a worker pops from the front of its own deque and, when
//! empty, steals from the back of a victim's. Because no job spawns new
//! work, "all deques empty" is a complete termination condition.
//!
//! Counters are architectural and engines are deterministic, so a
//! campaign's counter results are identical whatever the worker count —
//! the concurrency tests in `tests/campaign.rs` assert exactly that.
//! Only wall-clock fields vary run to run.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use simbench_core::engine::ExitReason;

use crate::measure::{run_app, run_suite_bench, Config, Sample};
use crate::result::{CampaignResult, CellStatus};
use crate::spec::{CampaignSpec, Job, Shard, Workload};
use crate::stats::stats;

/// Execution options.
#[derive(Debug, Clone)]
pub struct RunnerOpts {
    /// Worker threads. 1 executes jobs inline on the calling thread in
    /// deterministic expansion order.
    pub jobs: usize,
    /// Print per-job progress to stderr.
    pub verbose: bool,
}

impl Default for RunnerOpts {
    fn default() -> Self {
        RunnerOpts {
            jobs: 1,
            verbose: false,
        }
    }
}

impl RunnerOpts {
    /// Serial, quiet.
    pub fn serial() -> Self {
        RunnerOpts::default()
    }

    /// A given worker count, quiet.
    pub fn with_jobs(jobs: usize) -> Self {
        RunnerOpts {
            jobs: jobs.max(1),
            ..Default::default()
        }
    }
}

/// What one executed job produced: `Err` carries a panic message,
/// `Ok(None)` means the workload is absent on the ISA.
type RepOutcome = Result<Option<Sample>, String>;

/// Outcome of one job: the job identity plus its sample.
struct JobOutcome {
    cell_index: usize,
    rep: u32,
    sample: RepOutcome,
}

fn execute(job: &Job, cfg: &Config) -> RepOutcome {
    let key = job.key;
    catch_unwind(AssertUnwindSafe(|| match key.workload {
        Workload::Suite(bench) => run_suite_bench(key.guest, key.engine, bench, cfg),
        Workload::App(app) => Some(run_app(key.guest, key.engine, app, cfg)),
    }))
    .map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "engine panicked".to_string());
        format!("panic: {msg}")
    })
}

/// Run a campaign and aggregate per-cell results.
pub fn run(spec: &CampaignSpec, opts: &RunnerOpts) -> CampaignResult {
    run_shard(spec, opts, None)
}

/// Run one shard of a campaign (the whole matrix when `shard` is
/// `None`). The result keeps the full cell layout: cells owned by
/// other shards are recorded as [`CellStatus::Skipped`] and carry the
/// shard metadata needed for [`crate::merge::merge`] to recombine
/// shards into a result counter-identical to an unsharded run.
pub fn run_shard(spec: &CampaignSpec, opts: &RunnerOpts, shard: Option<Shard>) -> CampaignResult {
    let t0 = Instant::now();
    let jobs = spec.expand_shard(shard);
    let cfg = spec.config();
    let workers = opts.jobs.max(1).min(jobs.len().max(1));

    let outcomes: Vec<JobOutcome> = if workers <= 1 {
        jobs.iter()
            .map(|job| {
                let outcome = JobOutcome {
                    cell_index: job.cell_index,
                    rep: job.rep,
                    sample: execute(job, &cfg),
                };
                if opts.verbose {
                    eprintln!(
                        "[campaign] {}/{} {} rep {}",
                        job.key.guest.isa_name(),
                        job.key.engine.id(),
                        job.key.workload.id(),
                        job.rep,
                    );
                }
                outcome
            })
            .collect()
    } else {
        run_stealing(&jobs, &cfg, workers, opts.verbose)
    };

    // Record the worker count that actually executed, not the request.
    finalize(spec, workers, shard, outcomes, t0.elapsed().as_secs_f64())
}

/// The work-stealing pool used when more than one worker is requested.
fn run_stealing(jobs: &[Job], cfg: &Config, workers: usize, verbose: bool) -> Vec<JobOutcome> {
    // Deal jobs round-robin so each deque starts with an even slice of
    // the matrix (neighbouring jobs tend to have similar cost).
    let queues: Vec<Mutex<VecDeque<Job>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.iter().enumerate() {
        queues[i % workers].lock().unwrap().push_back(*job);
    }
    let done = AtomicUsize::new(0);
    let total = jobs.len();
    let (tx, rx) = mpsc::channel::<JobOutcome>();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            let done = &done;
            scope.spawn(move || loop {
                // Own queue first (front), then steal from victims (back).
                let job = queues[me].lock().unwrap().pop_front().or_else(|| {
                    (1..workers).find_map(|d| queues[(me + d) % workers].lock().unwrap().pop_back())
                });
                let Some(job) = job else { break };
                let outcome = JobOutcome {
                    cell_index: job.cell_index,
                    rep: job.rep,
                    sample: execute(&job, cfg),
                };
                if verbose {
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    eprintln!(
                        "[campaign {n}/{total}] {}/{} {} rep {} (worker {me})",
                        job.key.guest.isa_name(),
                        job.key.engine.id(),
                        job.key.workload.id(),
                        job.rep,
                    );
                }
                // The receiver outlives the scope; send cannot fail.
                tx.send(outcome).unwrap();
            });
        }
        drop(tx);
    });
    rx.into_iter().collect()
}

/// Fold job outcomes into the deterministic per-cell result layout.
fn finalize(
    spec: &CampaignSpec,
    jobs: usize,
    shard: Option<Shard>,
    outcomes: Vec<JobOutcome>,
    wall_secs: f64,
) -> CampaignResult {
    let reps = spec.reps.max(1) as usize;
    let mut result = CampaignResult::empty_for(spec, jobs);
    result.shard = shard;
    let keys = spec.cells();
    // Per cell: one slot per repetition, filled in any completion order.
    let mut slots: Vec<Vec<Option<RepOutcome>>> = vec![vec![None; reps]; result.cells.len()];
    for o in outcomes {
        slots[o.cell_index][o.rep as usize] = Some(o.sample);
    }

    for (cell_index, ((cell, reps_slots), key)) in
        result.cells.iter_mut().zip(slots).zip(keys).enumerate()
    {
        let mut samples: Vec<Sample> = Vec::new();
        let mut failure: Option<CellStatus> = None;
        let mut measured = false;
        for slot in reps_slots.into_iter().flatten() {
            measured = true;
            match slot {
                Err(panic_msg) => {
                    failure.get_or_insert(CellStatus::Failed(panic_msg));
                }
                Ok(None) => {} // workload absent on this ISA
                Ok(Some(sample)) => {
                    match sample.exit {
                        // Only halted repetitions contribute the
                        // iteration count: an aborted sample's count
                        // must not leak into the persisted result.
                        ExitReason::Halted => {
                            cell.iterations = sample.iterations;
                            samples.push(sample);
                        }
                        ExitReason::Unsupported(what) => {
                            failure.get_or_insert(CellStatus::Unsupported(what.to_string()));
                        }
                        other => {
                            failure.get_or_insert(CellStatus::Failed(other.to_string()));
                        }
                    }
                }
            }
        }
        if !measured {
            // No job was expanded for this cell: it belongs to another
            // shard, or the workload is not on the ISA.
            cell.status = match shard {
                Some(s) if !s.owns(cell_index) => CellStatus::Skipped,
                _ => CellStatus::NotOnIsa,
            };
            continue;
        }
        // Unsupported/Failed takes precedence so partial timings are
        // never mistaken for a clean cell.
        if let Some(status) = failure {
            cell.status = status;
            continue;
        }
        if samples.is_empty() {
            cell.status = CellStatus::NotOnIsa;
            continue;
        }
        cell.status = CellStatus::Ok;
        cell.seconds = samples.iter().map(|s| s.seconds).collect();
        cell.stats = stats(&cell.seconds);
        cell.counters = samples[0].counters;
        cell.counters_consistent = samples.iter().all(|s| s.counters == samples[0].counters);
        cell.tested_ops = key.workload.tested_ops(&cell.counters);
        if !cell.counters_consistent {
            // Keep every repetition's profile: the divergence itself is
            // the evidence an engine-determinism bug needs.
            cell.counter_variants = samples.iter().map(|s| s.counters).collect();
        }
    }

    result.wall_secs = wall_secs;
    result.created_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{EngineKind, Guest};
    use simbench_suite::Benchmark;
    use std::time::Duration;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".to_string(),
            guests: vec![Guest::Armlet, Guest::Petix],
            engines: vec![EngineKind::Interp, EngineKind::Native],
            workloads: vec![
                Workload::Suite(Benchmark::Syscall),
                Workload::Suite(Benchmark::NonprivAccess),
            ],
            scale: u64::MAX, // clamp to the 16-iteration floor
            reps: 2,
            wall_limit: Some(Duration::from_secs(60)),
        }
    }

    #[test]
    fn serial_run_fills_cells() {
        let result = run(&tiny_spec(), &RunnerOpts::serial());
        assert_eq!(result.cells.len(), 8);
        let ok = result
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Ok)
            .count();
        // Nonprivileged Access is absent on petix (2 engines).
        assert_eq!(ok, 6);
        let absent = result
            .cell("petix", "interp", "suite:Nonprivileged Access")
            .unwrap();
        assert_eq!(absent.status, CellStatus::NotOnIsa);
        let ok_cell = result
            .cell("armlet", "interp", "suite:System Call")
            .unwrap();
        assert_eq!(ok_cell.seconds.len(), 2);
        assert!(ok_cell.counters.syscalls >= 16);
        assert!(ok_cell.counters_consistent);
        assert!(ok_cell.counter_variants.is_empty());
        assert_eq!(ok_cell.tested_ops, Some(ok_cell.counters.syscalls));
        assert!(ok_cell.stats.is_some());
    }

    #[test]
    fn unsupported_detailed_cell_is_flagged() {
        let spec = CampaignSpec {
            name: "unsupported".to_string(),
            guests: vec![Guest::Armlet],
            engines: vec![EngineKind::Detailed],
            workloads: vec![Workload::Suite(Benchmark::MmioDevice)],
            scale: u64::MAX,
            reps: 1,
            wall_limit: Some(Duration::from_secs(60)),
        };
        let result = run(&spec, &RunnerOpts::serial());
        assert!(matches!(result.cells[0].status, CellStatus::Unsupported(_)));
        assert!(result.cells[0].stats.is_none());
        // An aborted cell must not leak a sample's iteration count into
        // the persisted result: only halted repetitions record it.
        assert_eq!(result.cells[0].iterations, 0);
    }

    #[test]
    fn wall_limited_cell_records_no_iterations() {
        // A sub-measurable wall limit aborts every repetition, so the
        // cell fails and its iteration count stays unrecorded.
        let spec = CampaignSpec {
            name: "walled".to_string(),
            guests: vec![Guest::Armlet],
            engines: vec![EngineKind::Interp],
            workloads: vec![Workload::Suite(Benchmark::MemHot)],
            scale: 1, // full paper iteration counts: plenty to outlast the limit
            reps: 1,
            wall_limit: Some(Duration::from_nanos(1)),
        };
        let result = run(&spec, &RunnerOpts::serial());
        assert!(
            matches!(result.cells[0].status, CellStatus::Failed(_)),
            "{:?}",
            result.cells[0].status
        );
        assert_eq!(result.cells[0].iterations, 0);
        assert!(result.cells[0].seconds.is_empty());
    }

    #[test]
    fn shard_run_skips_unowned_cells_and_carries_metadata() {
        let spec = tiny_spec();
        let shard = Shard::new(2, 2).unwrap();
        let result = run_shard(&spec, &RunnerOpts::serial(), Some(shard));
        assert_eq!(result.shard, Some(shard));
        assert_eq!(result.cells.len(), 8, "shards keep the full cell layout");
        for (i, cell) in result.cells.iter().enumerate() {
            if shard.owns(i) {
                assert_ne!(cell.status, CellStatus::Skipped, "cell {i}");
            } else {
                assert_eq!(cell.status, CellStatus::Skipped, "cell {i}");
                assert!(cell.seconds.is_empty());
                assert!(cell.stats.is_none());
            }
        }
        // An unsharded run has no shard metadata and no skipped cells.
        let whole = run(&spec, &RunnerOpts::serial());
        assert_eq!(whole.shard, None);
        assert!(whole.cells.iter().all(|c| c.status != CellStatus::Skipped));
    }
}

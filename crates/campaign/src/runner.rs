//! Parallel campaign execution: a completion-driven worker pool over
//! the expanded job list.
//!
//! Every job owns its `Machine` and engine (see `measure`), so jobs
//! share no mutable state; workers draw from one shared queue (job
//! execution dwarfs the critical section, so a fancier distribution
//! could not change anything observable).
//!
//! The pool is *completion-driven*: finishing a repetition can spawn
//! the cell's next one. In adaptive mode ([`CampaignSpec::precision`])
//! each cell launches `min_reps` repetitions up front; when the last
//! in-flight repetition of a cell completes, the scheduler evaluates
//! the cell's relative CI half-width and either marks it converged,
//! stops at `max_reps`, or re-enqueues one more repetition. "Queue
//! empty" is therefore not a termination condition — a worker may only
//! exit when the queue is empty *and* nothing is in flight, since any
//! in-flight job can still enqueue work. A condvar wakes idle workers
//! when either condition changes.
//!
//! Counters are architectural and engines are deterministic, so a
//! campaign's counter results are identical whatever the worker count
//! *and* whatever the per-cell repetition count — an adaptive run is
//! counter-identical to a fixed-reps run of the same matrix. The
//! concurrency tests in `tests/campaign.rs` assert exactly that. Only
//! wall-clock fields (and, in adaptive mode, `reps_run`) vary run to
//! run.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use simbench_core::engine::ExitReason;

use crate::measure::{run_app, run_suite_bench, Config, Sample};
use crate::result::{CampaignResult, CellStatus, StopReason};
use crate::spec::{CampaignSpec, CellKey, Job, PrecisionTarget, Shard, Workload};
use crate::stats::stats;

/// Execution options.
#[derive(Debug, Clone)]
pub struct RunnerOpts {
    /// Worker threads. 1 executes jobs inline on the calling thread in
    /// deterministic expansion order.
    pub jobs: usize,
    /// Print per-job progress to stderr.
    pub verbose: bool,
}

impl Default for RunnerOpts {
    fn default() -> Self {
        RunnerOpts {
            jobs: 1,
            verbose: false,
        }
    }
}

impl RunnerOpts {
    /// Serial, quiet.
    pub fn serial() -> Self {
        RunnerOpts::default()
    }

    /// A given worker count, quiet.
    pub fn with_jobs(jobs: usize) -> Self {
        RunnerOpts {
            jobs: jobs.max(1),
            ..Default::default()
        }
    }
}

/// What one executed job produced: `Err` carries a panic message,
/// `Ok(None)` means the workload is absent on the ISA.
type RepOutcome = Result<Option<Sample>, String>;

/// Outcome of one job: the job identity plus its sample.
struct JobOutcome {
    cell_index: usize,
    rep: u32,
    sample: RepOutcome,
}

/// Call `f` with the cell's identity as progress-record borrows. The
/// id strings are only built when progress emission is on, so the off
/// path is one relaxed load and never allocates.
fn with_cell_id(key: &CellKey, f: impl FnOnce(simbench_obs::progress::CellId<'_>)) {
    if simbench_obs::progress::mode() == simbench_obs::ProgressMode::Off {
        return;
    }
    let engine = key.engine.id();
    let workload = key.workload.id();
    f(simbench_obs::progress::CellId {
        guest: key.guest.isa_name(),
        engine: &engine,
        workload: &workload,
    });
}

/// Emit the cell's terminal progress record from its scheduler state.
fn progress_finish(key: &CellKey, cell: &CellSched) {
    let status = if cell.absent {
        "not_on_isa"
    } else if cell.terminal {
        "failed"
    } else {
        "ok"
    };
    let reps = cell.completed;
    with_cell_id(key, |id| {
        simbench_obs::progress::cell_finish(id, status, reps);
    });
}

fn execute(job: &Job, cfg: &Config) -> RepOutcome {
    let _obs = simbench_obs::span!("campaign.repetition");
    if job.rep == 0 {
        with_cell_id(&job.key, simbench_obs::progress::cell_start);
    }
    let key = job.key;
    catch_unwind(AssertUnwindSafe(|| match key.workload {
        Workload::Suite(bench) => run_suite_bench(key.guest, key.engine, bench, cfg),
        Workload::App(app) => Some(run_app(key.guest, key.engine, app, cfg)),
    }))
    .map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "engine panicked".to_string());
        format!("panic: {msg}")
    })
}

/// Per-cell scheduler bookkeeping: how many repetitions were launched
/// and completed, the timings gathered so far, and the stop decision.
struct CellSched {
    launched: u32,
    completed: u32,
    /// Halted repetitions' timings, in completion order — convergence
    /// is evaluated on the multiset, so completion order is irrelevant.
    seconds: Vec<f64>,
    /// A repetition failed (panic, limit, unsupported) or the workload
    /// is absent: never launch further repetitions for this cell.
    terminal: bool,
    /// The workload is absent on the ISA (a flavour of `terminal` the
    /// progress stream reports distinctly).
    absent: bool,
    stop: Option<StopReason>,
}

impl CellSched {
    fn new() -> CellSched {
        CellSched {
            launched: 0,
            completed: 0,
            seconds: Vec::new(),
            terminal: false,
            absent: false,
            stop: None,
        }
    }
}

/// Record one completed repetition and decide the cell's next step:
/// `Some(job)` re-enqueues the cell's next repetition, `None` means the
/// cell is finished (converged, at its bound, fixed-mode, failed) or
/// still has repetitions in flight.
///
/// In adaptive mode the decision is only taken when the last in-flight
/// repetition of the cell completes, so convergence is always evaluated
/// on a complete set — a straggler can never be orphaned by an earlier
/// "converged" verdict.
fn on_complete(
    cells: &mut [CellSched],
    precision: Option<PrecisionTarget>,
    outcome: &JobOutcome,
    job: &Job,
) -> Option<Job> {
    let cell = &mut cells[outcome.cell_index];
    cell.completed += 1;
    match &outcome.sample {
        Ok(Some(sample)) if sample.exit == ExitReason::Halted => {
            cell.seconds.push(sample.seconds);
            static OBS_REP_WALL: simbench_obs::Histogram =
                simbench_obs::Histogram::new("campaign.rep_wall_ns");
            OBS_REP_WALL.observe((sample.seconds * 1e9) as u64);
        }
        // Panics, limit/unsupported exits and absent workloads are
        // terminal: burning the repetition budget on a cell that cannot
        // produce a clean measurement would only slow the campaign.
        Ok(None) => {
            cell.terminal = true;
            cell.absent = true;
        }
        _ => cell.terminal = true,
    }
    let Some(p) = precision else {
        // Fixed mode: all repetitions were launched up front.
        if cell.completed == cell.launched {
            progress_finish(&job.key, cell);
        }
        return None;
    };
    if cell.terminal || cell.completed < cell.launched {
        if cell.terminal && cell.completed == cell.launched {
            progress_finish(&job.key, cell);
        }
        return None;
    }
    let rci = stats(&cell.seconds).and_then(|s| s.rel_ci95());
    if rci.is_some_and(|r| r <= p.target_rci) {
        cell.stop = Some(StopReason::Converged);
        let (reps, rci) = (cell.completed, rci.unwrap_or(0.0));
        with_cell_id(&job.key, |id| {
            simbench_obs::progress::cell_converge(id, reps, rci);
        });
        progress_finish(&job.key, cell);
        return None;
    }
    if cell.launched >= p.max_reps {
        cell.stop = Some(StopReason::MaxReps);
        progress_finish(&job.key, cell);
        return None;
    }
    static OBS_REENQUEUES: simbench_obs::Counter =
        simbench_obs::Counter::new("campaign.adaptive_reenqueues");
    OBS_REENQUEUES.add(1);
    simbench_obs::event!("campaign.reenqueue");
    let rep = cell.launched;
    cell.launched += 1;
    Some(Job {
        cell_index: outcome.cell_index,
        rep,
        key: job.key,
    })
}

/// Run a campaign and aggregate per-cell results.
pub fn run(spec: &CampaignSpec, opts: &RunnerOpts) -> CampaignResult {
    run_shard(spec, opts, None)
}

/// Run one shard of a campaign (the whole matrix when `shard` is
/// `None`). The result keeps the full cell layout: cells owned by
/// other shards are recorded as [`CellStatus::Skipped`] and carry the
/// shard metadata needed for [`crate::merge::merge`] to recombine
/// shards into a result counter-identical to an unsharded run.
pub fn run_shard(spec: &CampaignSpec, opts: &RunnerOpts, shard: Option<Shard>) -> CampaignResult {
    let t0 = Instant::now();
    let jobs = {
        let _obs = simbench_obs::span!("campaign.expand");
        spec.expand_shard(shard)
    };
    let cfg = spec.config();
    let workers = opts.jobs.max(1).min(jobs.len().max(1));

    let mut cells: Vec<CellSched> = (0..spec.cells().len()).map(|_| CellSched::new()).collect();
    for job in &jobs {
        cells[job.cell_index].launched += 1;
    }

    let outcomes = if workers <= 1 {
        run_serial(&jobs, &cfg, spec.precision, &mut cells, opts.verbose)
    } else {
        run_pool(
            &jobs,
            &cfg,
            spec.precision,
            &mut cells,
            workers,
            opts.verbose,
        )
    };

    // Record the worker count that actually executed, not the request.
    let _obs = simbench_obs::span!("campaign.stats");
    finalize(
        spec,
        workers,
        shard,
        outcomes,
        &cells,
        t0.elapsed().as_secs_f64(),
    )
}

/// The serial path: jobs execute inline on the calling thread in
/// deterministic expansion order; an adaptive re-enqueue lands at the
/// back of the same queue.
fn run_serial(
    jobs: &[Job],
    cfg: &Config,
    precision: Option<PrecisionTarget>,
    cells: &mut [CellSched],
    verbose: bool,
) -> Vec<JobOutcome> {
    let mut queue: VecDeque<Job> = jobs.iter().copied().collect();
    let mut outcomes = Vec::new();
    while let Some(job) = queue.pop_front() {
        let outcome = JobOutcome {
            cell_index: job.cell_index,
            rep: job.rep,
            sample: execute(&job, cfg),
        };
        if verbose || simbench_obs::log::enabled(simbench_obs::log::LEVEL_DEBUG) {
            eprintln!(
                "[campaign] {}/{} {} rep {}",
                job.key.guest.isa_name(),
                job.key.engine.id(),
                job.key.workload.id(),
                job.rep,
            );
        }
        if let Some(next) = on_complete(cells, precision, &outcome, &job) {
            queue.push_back(next);
        }
        outcomes.push(outcome);
    }
    outcomes
}

/// Shared state of the worker pool: the job queue plus the completion
/// bookkeeping, under one lock so the "queue empty and nothing in
/// flight" termination test is atomic. One shared queue, not
/// per-worker deques: every transition serializes on this lock anyway
/// (job execution dwarfs the critical section), so distribution policy
/// could not change anything observable.
struct PoolState {
    queue: VecDeque<Job>,
    in_flight: usize,
    done: usize,
    outcomes: Vec<JobOutcome>,
}

/// The worker pool used when more than one worker is requested.
fn run_pool(
    jobs: &[Job],
    cfg: &Config,
    precision: Option<PrecisionTarget>,
    cells: &mut [CellSched],
    workers: usize,
    verbose: bool,
) -> Vec<JobOutcome> {
    let state = Mutex::new(PoolState {
        queue: jobs.iter().copied().collect(),
        in_flight: 0,
        done: 0,
        outcomes: Vec::with_capacity(jobs.len()),
    });
    let wakeup = Condvar::new();
    let cells = Mutex::new(cells);
    let total = jobs.len();
    let more = if precision.is_some() { "+" } else { "" };

    std::thread::scope(|scope| {
        for me in 0..workers {
            let state = &state;
            let wakeup = &wakeup;
            let cells = &cells;
            scope.spawn(move || loop {
                // An empty queue is not termination while jobs are in
                // flight: any of them can enqueue a repetition.
                let job = {
                    let mut st = state.lock().unwrap();
                    loop {
                        if let Some(job) = st.queue.pop_front() {
                            st.in_flight += 1;
                            break Some(job);
                        }
                        if st.in_flight == 0 {
                            break None;
                        }
                        st = wakeup.wait(st).unwrap();
                    }
                };
                let Some(job) = job else {
                    // Fully drained: wake any workers still parked on
                    // the condvar so they observe termination too.
                    wakeup.notify_all();
                    break;
                };
                let outcome = JobOutcome {
                    cell_index: job.cell_index,
                    rep: job.rep,
                    sample: execute(&job, cfg),
                };
                let next = on_complete(&mut cells.lock().unwrap(), precision, &outcome, &job);
                let mut st = state.lock().unwrap();
                st.in_flight -= 1;
                st.done += 1;
                if verbose || simbench_obs::log::enabled(simbench_obs::log::LEVEL_DEBUG) {
                    // In adaptive mode the initial job count is only a
                    // floor — convergence decides the real total — so
                    // the denominator carries a trailing '+'.
                    eprintln!(
                        "[campaign {}/{total}{more}] {}/{} {} rep {} (worker {me})",
                        st.done,
                        job.key.guest.isa_name(),
                        job.key.engine.id(),
                        job.key.workload.id(),
                        job.rep,
                    );
                }
                if let Some(next) = next {
                    st.queue.push_back(next);
                }
                st.outcomes.push(outcome);
                drop(st);
                // New work appeared or in_flight dropped: both matter
                // to parked workers.
                wakeup.notify_all();
            });
        }
    });
    state.into_inner().unwrap().outcomes
}

/// Fold job outcomes into the deterministic per-cell result layout.
fn finalize(
    spec: &CampaignSpec,
    jobs: usize,
    shard: Option<Shard>,
    outcomes: Vec<JobOutcome>,
    sched: &[CellSched],
    wall_secs: f64,
) -> CampaignResult {
    let mut result = CampaignResult::empty_for(spec, jobs);
    result.shard = shard;
    let keys = spec.cells();
    // Per cell: one slot per launched repetition, filled in any
    // completion order so `seconds` stays in repetition order.
    let mut slots: Vec<Vec<Option<RepOutcome>>> = sched
        .iter()
        .map(|c| vec![None; c.launched as usize])
        .collect();
    for o in outcomes {
        slots[o.cell_index][o.rep as usize] = Some(o.sample);
    }

    for (cell_index, (((cell, reps_slots), key), cs)) in result
        .cells
        .iter_mut()
        .zip(slots)
        .zip(keys)
        .zip(sched)
        .enumerate()
    {
        let mut samples: Vec<Sample> = Vec::new();
        let mut failure: Option<CellStatus> = None;
        let mut measured = false;
        for slot in reps_slots.into_iter().flatten() {
            measured = true;
            cell.reps_run += 1;
            match slot {
                Err(panic_msg) => {
                    failure.get_or_insert(CellStatus::Failed(panic_msg));
                }
                Ok(None) => {} // workload absent on this ISA
                Ok(Some(sample)) => {
                    match sample.exit {
                        // Only halted repetitions contribute the
                        // iteration count: an aborted sample's count
                        // must not leak into the persisted result.
                        ExitReason::Halted => {
                            cell.iterations = sample.iterations;
                            samples.push(sample);
                        }
                        ExitReason::Unsupported(what) => {
                            failure.get_or_insert(CellStatus::Unsupported(what.to_string()));
                        }
                        other => {
                            failure.get_or_insert(CellStatus::Failed(other.to_string()));
                        }
                    }
                }
            }
        }
        if !measured {
            // No job was expanded for this cell: it belongs to another
            // shard, or the workload is not on the ISA.
            cell.status = match shard {
                Some(s) if !s.owns(cell_index) => CellStatus::Skipped,
                _ => CellStatus::NotOnIsa,
            };
            continue;
        }
        // Unsupported/Failed takes precedence so partial timings are
        // never mistaken for a clean cell.
        if let Some(status) = failure {
            cell.status = status;
            continue;
        }
        if samples.is_empty() {
            cell.status = CellStatus::NotOnIsa;
            continue;
        }
        cell.status = CellStatus::Ok;
        // A truthful stop reason for every clean cell: fixed-mode cells
        // ran exactly the spec'd count; adaptive cells carry the
        // scheduler's verdict. An Ok adaptive cell always reached a
        // decision point, so a missing verdict is a scheduler bug —
        // recorded as the conservative MaxReps, never as Converged.
        cell.stop_reason = Some(match spec.precision {
            None => StopReason::Fixed,
            Some(_) => {
                debug_assert!(cs.stop.is_some(), "Ok adaptive cell without a verdict");
                cs.stop.unwrap_or(StopReason::MaxReps)
            }
        });
        cell.seconds = samples.iter().map(|s| s.seconds).collect();
        cell.stats = stats(&cell.seconds);
        cell.counters = samples[0].counters;
        cell.counters_consistent = samples.iter().all(|s| s.counters == samples[0].counters);
        cell.tested_ops = key.workload.tested_ops(&cell.counters);
        if !cell.counters_consistent {
            // Keep every repetition's profile: the divergence itself is
            // the evidence an engine-determinism bug needs.
            cell.counter_variants = samples.iter().map(|s| s.counters).collect();
        }
    }

    result.wall_secs = wall_secs;
    result.created_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{EngineKind, Guest};
    use simbench_suite::Benchmark;
    use std::time::Duration;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".to_string(),
            guests: vec![Guest::Armlet, Guest::Petix],
            engines: vec![EngineKind::Interp, EngineKind::Native],
            workloads: vec![
                Workload::Suite(Benchmark::Syscall),
                Workload::Suite(Benchmark::NonprivAccess),
            ],
            scale: u64::MAX, // clamp to the 16-iteration floor
            reps: 2,
            precision: None,
            wall_limit: Some(Duration::from_secs(60)),
        }
    }

    #[test]
    fn serial_run_fills_cells() {
        let result = run(&tiny_spec(), &RunnerOpts::serial());
        assert_eq!(result.cells.len(), 8);
        let ok = result
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Ok)
            .count();
        // Nonprivileged Access is absent on petix (2 engines).
        assert_eq!(ok, 6);
        let absent = result
            .cell("petix", "interp", "suite:Nonprivileged Access")
            .unwrap();
        assert_eq!(absent.status, CellStatus::NotOnIsa);
        assert_eq!(absent.reps_run, 0);
        assert_eq!(absent.stop_reason, None);
        let ok_cell = result
            .cell("armlet", "interp", "suite:System Call")
            .unwrap();
        assert_eq!(ok_cell.seconds.len(), 2);
        assert_eq!(ok_cell.reps_run, 2);
        assert_eq!(ok_cell.stop_reason, Some(StopReason::Fixed));
        assert!(ok_cell.counters.syscalls >= 16);
        assert!(ok_cell.counters_consistent);
        assert!(ok_cell.counter_variants.is_empty());
        assert_eq!(ok_cell.tested_ops, Some(ok_cell.counters.syscalls));
        assert!(ok_cell.stats.is_some());
    }

    #[test]
    fn unsupported_detailed_cell_is_flagged() {
        let spec = CampaignSpec {
            name: "unsupported".to_string(),
            guests: vec![Guest::Armlet],
            engines: vec![EngineKind::Detailed],
            workloads: vec![Workload::Suite(Benchmark::MmioDevice)],
            scale: u64::MAX,
            reps: 1,
            precision: None,
            wall_limit: Some(Duration::from_secs(60)),
        };
        let result = run(&spec, &RunnerOpts::serial());
        assert!(matches!(result.cells[0].status, CellStatus::Unsupported(_)));
        assert!(result.cells[0].stats.is_none());
        assert_eq!(result.cells[0].stop_reason, None);
        // An aborted cell must not leak a sample's iteration count into
        // the persisted result: only halted repetitions record it.
        assert_eq!(result.cells[0].iterations, 0);
    }

    #[test]
    fn wall_limited_cell_records_no_iterations() {
        // A sub-measurable wall limit aborts every repetition, so the
        // cell fails and its iteration count stays unrecorded.
        let spec = CampaignSpec {
            name: "walled".to_string(),
            guests: vec![Guest::Armlet],
            engines: vec![EngineKind::Interp],
            workloads: vec![Workload::Suite(Benchmark::MemHot)],
            scale: 1, // full paper iteration counts: plenty to outlast the limit
            reps: 1,
            precision: None,
            wall_limit: Some(Duration::from_nanos(1)),
        };
        let result = run(&spec, &RunnerOpts::serial());
        assert!(
            matches!(result.cells[0].status, CellStatus::Failed(_)),
            "{:?}",
            result.cells[0].status
        );
        assert_eq!(result.cells[0].iterations, 0);
        assert!(result.cells[0].seconds.is_empty());
    }

    #[test]
    fn shard_run_skips_unowned_cells_and_carries_metadata() {
        let spec = tiny_spec();
        let shard = Shard::new(2, 2).unwrap();
        let result = run_shard(&spec, &RunnerOpts::serial(), Some(shard));
        assert_eq!(result.shard, Some(shard));
        assert_eq!(result.cells.len(), 8, "shards keep the full cell layout");
        for (i, cell) in result.cells.iter().enumerate() {
            if shard.owns(i) {
                assert_ne!(cell.status, CellStatus::Skipped, "cell {i}");
            } else {
                assert_eq!(cell.status, CellStatus::Skipped, "cell {i}");
                assert!(cell.seconds.is_empty());
                assert!(cell.stats.is_none());
                assert_eq!(cell.reps_run, 0);
            }
        }
        // An unsharded run has no shard metadata and no skipped cells.
        let whole = run(&spec, &RunnerOpts::serial());
        assert_eq!(whole.shard, None);
        assert!(whole.cells.iter().all(|c| c.status != CellStatus::Skipped));
    }

    fn adaptive_spec(target_rci: f64, min_reps: u32, max_reps: u32) -> CampaignSpec {
        CampaignSpec {
            precision: Some(PrecisionTarget::new(target_rci, min_reps, max_reps).unwrap()),
            ..tiny_spec()
        }
    }

    #[test]
    fn adaptive_cells_report_reps_in_bounds_with_truthful_reasons() {
        for opts in [RunnerOpts::serial(), RunnerOpts::with_jobs(4)] {
            // A loose target cells hit at min_reps, and a tight one
            // that drives cells to the bound unless a quantized clock
            // hands back literally identical timings (zero spread is
            // the only way under 1e-12). Real timings are noisy, so
            // the asserts check *truthfulness* of each verdict rather
            // than a clock-dependent exact outcome.
            for target in [1e12, 1e-12] {
                let spec = adaptive_spec(target, 2, 4);
                let result = run_shard(&spec, &opts, None);
                for cell in result.cells.iter().filter(|c| c.status == CellStatus::Ok) {
                    let id = format!("{}/{} {}", cell.guest, cell.engine, cell.workload);
                    assert!(
                        (2..=4).contains(&cell.reps_run),
                        "{id}: reps_run {}",
                        cell.reps_run
                    );
                    assert_eq!(cell.seconds.len(), cell.reps_run as usize);
                    let rel = cell.stats.and_then(|s| s.rel_ci95());
                    match cell.stop_reason {
                        Some(StopReason::Converged) => {
                            assert!(
                                rel.is_some_and(|r| r <= target),
                                "{id}: converged verdict but rci {rel:?} > {target}"
                            );
                        }
                        Some(StopReason::MaxReps) => {
                            assert_eq!(cell.reps_run, 4, "{id}: max_reps means the bound ran");
                            assert!(
                                rel.is_none_or(|r| r > target),
                                "{id}: max_reps verdict but rci {rel:?} met {target}"
                            );
                        }
                        other => panic!("{id}: adaptive cell reported {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn adaptive_run_is_counter_identical_to_fixed() {
        let fixed = run(&tiny_spec(), &RunnerOpts::serial());
        let adaptive = run(&adaptive_spec(0.5, 2, 5), &RunnerOpts::with_jobs(3));
        for (a, f) in adaptive.cells.iter().zip(&fixed.cells) {
            assert_eq!(
                a.status, f.status,
                "{}/{} {}",
                a.guest, a.engine, a.workload
            );
            assert_eq!(a.counters, f.counters);
            assert_eq!(a.iterations, f.iterations);
            assert_eq!(a.tested_ops, f.tested_ops);
        }
    }

    #[test]
    fn adaptive_failing_cell_stops_without_burning_the_budget() {
        // Every repetition aborts on the 1ns wall limit: the scheduler
        // must mark the cell terminal after the initial min_reps batch
        // instead of re-enqueueing toward max_reps.
        let spec = CampaignSpec {
            name: "walled-adaptive".to_string(),
            guests: vec![Guest::Armlet],
            engines: vec![EngineKind::Interp],
            workloads: vec![Workload::Suite(Benchmark::MemHot)],
            scale: 1,
            reps: 1,
            precision: Some(PrecisionTarget::new(0.2, 2, 50).unwrap()),
            wall_limit: Some(Duration::from_nanos(1)),
        };
        let result = run(&spec, &RunnerOpts::serial());
        assert!(matches!(result.cells[0].status, CellStatus::Failed(_)));
        assert_eq!(result.cells[0].reps_run, 2, "only the initial batch ran");
        assert_eq!(result.cells[0].stop_reason, None);
    }

    #[test]
    fn on_complete_waits_for_stragglers_before_deciding() {
        // Two reps in flight; the first completion must not trigger a
        // convergence decision while the second is still out.
        let p = Some(PrecisionTarget::new(1e12, 2, 4).unwrap());
        let mut cells = vec![CellSched::new()];
        cells[0].launched = 2;
        let key = tiny_spec().cells()[0];
        let job = |rep| Job {
            cell_index: 0,
            rep,
            key,
        };
        let halted = |secs: f64| JobOutcome {
            cell_index: 0,
            rep: 0,
            sample: Ok(Some(Sample {
                seconds: secs,
                counters: Default::default(),
                exit: ExitReason::Halted,
                iterations: 16,
            })),
        };
        assert!(on_complete(&mut cells, p, &halted(1.0), &job(0)).is_none());
        assert_eq!(cells[0].stop, None, "decision deferred to the straggler");
        assert!(on_complete(&mut cells, p, &halted(1.1), &job(1)).is_none());
        assert_eq!(cells[0].stop, Some(StopReason::Converged));
    }

    #[test]
    fn on_complete_re_enqueues_until_the_bound_then_stops() {
        // Injected noisy samples make the unreachable-target path
        // deterministic (the e2e runs above can't promise real clock
        // spread): each decision re-enqueues exactly one repetition
        // until max_reps, then the verdict is MaxReps.
        let p = Some(PrecisionTarget::new(1e-12, 2, 4).unwrap());
        let mut cells = vec![CellSched::new()];
        cells[0].launched = 2;
        let key = tiny_spec().cells()[0];
        let job = |rep| Job {
            cell_index: 0,
            rep,
            key,
        };
        let halted = |rep: u32, secs: f64| JobOutcome {
            cell_index: 0,
            rep,
            sample: Ok(Some(Sample {
                seconds: secs,
                counters: Default::default(),
                exit: ExitReason::Halted,
                iterations: 16,
            })),
        };
        assert!(on_complete(&mut cells, p, &halted(0, 1.0), &job(0)).is_none());
        let next = on_complete(&mut cells, p, &halted(1, 2.0), &job(1)).expect("re-enqueue");
        assert_eq!((next.cell_index, next.rep), (0, 2));
        let next = on_complete(&mut cells, p, &halted(2, 3.0), &next).expect("re-enqueue");
        assert_eq!(next.rep, 3);
        assert_eq!(cells[0].stop, None);
        assert!(
            on_complete(&mut cells, p, &halted(3, 4.0), &next).is_none(),
            "the bound is hard"
        );
        assert_eq!(cells[0].stop, Some(StopReason::MaxReps));
        assert_eq!(cells[0].launched, 4);
    }
}

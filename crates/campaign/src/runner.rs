//! Parallel campaign execution: a completion-driven worker pool over
//! the expanded job list, hardened against every failure mode the
//! failpoint harness can inject.
//!
//! Every job owns its `Machine` and engine (see `measure`), so jobs
//! share no mutable state; workers draw from one shared queue (job
//! execution dwarfs the critical section, so a fancier distribution
//! could not change anything observable).
//!
//! The pool is *completion-driven*: finishing a repetition can spawn
//! the cell's next one. In adaptive mode ([`CampaignSpec::precision`])
//! each cell launches `min_reps` repetitions up front; when the last
//! in-flight repetition of a cell completes, the scheduler evaluates
//! the cell's relative CI half-width and either marks it converged,
//! stops at `max_reps`, or re-enqueues one more repetition. "Queue
//! empty" is therefore not a termination condition — a worker may only
//! exit when the queue is empty *and* nothing is in flight, since any
//! in-flight job can still enqueue work. A condvar wakes idle workers
//! when either condition changes.
//!
//! # Fault isolation
//!
//! Each repetition runs under `catch_unwind` with an optional per-cell
//! watchdog ([`RunnerOpts::cell_timeout`]) and bounded retry with
//! exponential backoff ([`RunnerOpts::retries`]). A repetition that
//! still panics once retries are exhausted turns its cell
//! [`CellStatus::Quarantined`] — payload and attempt count recorded —
//! while the rest of the matrix keeps running; a hung repetition turns
//! it [`CellStatus::TimedOut`]. SIGINT/SIGTERM
//! ([`simbench_obs::shutdown`]) drains the queue at the next job
//! boundary: in-flight repetitions finish, unstarted cells are marked
//! failed-interrupted (never silently dropped), and the caller
//! persists the partial artifact. With [`RunnerOpts::journal`] set,
//! every completed repetition and finished cell is appended fsync'd to
//! a write-ahead journal, and [`run_shard_resumed`] re-runs only the
//! cells the journal does not prove finished.
//!
//! Counters are architectural and engines are deterministic, so a
//! campaign's counter results are identical whatever the worker count
//! *and* whatever the per-cell repetition count — an adaptive run is
//! counter-identical to a fixed-reps run of the same matrix, and a
//! resumed run is counter-identical to an uninterrupted one. The
//! concurrency tests in `tests/campaign.rs` assert exactly that. Only
//! wall-clock fields (and, in adaptive mode, `reps_run`) vary run to
//! run.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use simbench_core::engine::ExitReason;

use crate::failpoint;
use crate::journal::Journal;
use crate::measure::{run_app, run_suite_bench, Config, Sample};
use crate::result::{CampaignResult, CellResult, CellStatus, StopReason};
use crate::spec::{CampaignSpec, CellKey, Job, PrecisionTarget, Shard, Workload};
use crate::stats::stats;

/// Execution options.
#[derive(Debug, Clone, Default)]
pub struct RunnerOpts {
    /// Worker threads. 0/1 execute jobs inline on the calling thread in
    /// deterministic expansion order.
    pub jobs: usize,
    /// Print per-job progress to stderr.
    pub verbose: bool,
    /// Per-repetition wall watchdog: an attempt still running after
    /// this long is abandoned (its thread is detached) and counts as
    /// [`CellStatus::TimedOut`]. `None` runs attempts inline with no
    /// watchdog and no extra thread.
    pub cell_timeout: Option<Duration>,
    /// Bounded retry for transiently-failing repetitions: a panicking,
    /// hanging or transiently-erroring attempt is re-run up to this
    /// many times (exponential backoff) before the failure is recorded.
    /// Deterministic failures (unsupported features, wall-limit aborts,
    /// absent workloads) are never retried.
    pub retries: u32,
    /// Write-ahead journal to append per-repetition and per-cell
    /// records to (see [`crate::journal`]).
    pub journal: Option<Arc<Journal>>,
}

impl RunnerOpts {
    /// Serial, quiet.
    pub fn serial() -> Self {
        RunnerOpts {
            jobs: 1,
            ..Default::default()
        }
    }

    /// A given worker count, quiet.
    pub fn with_jobs(jobs: usize) -> Self {
        RunnerOpts {
            jobs: jobs.max(1),
            ..Default::default()
        }
    }
}

/// What one repetition execution (after retries) produced. One value
/// exists per repetition outcome, so the size spread between `Done`
/// and the failure variants costs nothing that matters.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum RepResult {
    /// The measurement ran to an exit; `None` means the workload is
    /// absent on the ISA.
    Done(Option<Sample>),
    /// Every attempt panicked; the last payload is recorded and the
    /// cell is quarantined.
    Panicked(String),
    /// Every attempt failed transiently (injected or environmental —
    /// never from the deterministic engine paths).
    Transient(String),
    /// Every attempt outlived the watchdog.
    TimedOut(String),
}

/// Outcome of one job: the job identity, its result, and how many
/// executions (1 + retries actually used) it took.
struct JobOutcome {
    cell_index: usize,
    rep: u32,
    attempts: u32,
    sample: RepResult,
}

/// Call `f` with the cell's identity as progress-record borrows. The
/// id strings are only built when progress emission is on, so the off
/// path is one relaxed load and never allocates.
fn with_cell_id(key: &CellKey, f: impl FnOnce(simbench_obs::progress::CellId<'_>)) {
    if simbench_obs::progress::mode() == simbench_obs::ProgressMode::Off {
        return;
    }
    let engine = key.engine.id();
    let workload = key.workload.id();
    f(simbench_obs::progress::CellId {
        guest: key.guest.isa_name(),
        engine: &engine,
        workload: &workload,
    });
}

/// Emit the cell's terminal progress record from its scheduler state.
fn progress_finish(key: &CellKey, cell: &CellSched) {
    let any = |f: fn(&RepResult) -> bool| cell.slots.iter().flatten().any(f);
    let status = if cell.absent {
        "not_on_isa"
    } else if !cell.terminal {
        "ok"
    } else if any(|s| matches!(s, RepResult::Panicked(_))) {
        "quarantined"
    } else if any(|s| matches!(s, RepResult::TimedOut(_))) {
        "timed_out"
    } else {
        "failed"
    };
    let reps = cell.completed;
    with_cell_id(key, |id| {
        simbench_obs::progress::cell_finish(id, status, reps);
    });
}

static OBS_REP_PANICS: simbench_obs::Counter = simbench_obs::Counter::new("campaign.rep_panics");
static OBS_REP_TIMEOUTS: simbench_obs::Counter =
    simbench_obs::Counter::new("campaign.rep_timeouts");
static OBS_RETRIES: simbench_obs::Counter = simbench_obs::Counter::new("campaign.retries");

/// Execute one repetition with retry/backoff. Returns the final result
/// and the number of attempts it took.
fn execute(job: &Job, cfg: &Config, opts: &RunnerOpts) -> (RepResult, u32) {
    let _obs = simbench_obs::span!("campaign.repetition");
    if job.rep == 0 {
        with_cell_id(&job.key, simbench_obs::progress::cell_start);
    }
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let result = execute_attempt(job, cfg, opts.cell_timeout);
        match &result {
            RepResult::Panicked(_) => OBS_REP_PANICS.add(1),
            RepResult::TimedOut(_) => OBS_REP_TIMEOUTS.add(1),
            _ => {}
        }
        let retryable = matches!(
            result,
            RepResult::Panicked(_) | RepResult::Transient(_) | RepResult::TimedOut(_)
        );
        if !retryable || attempts > opts.retries || simbench_obs::shutdown::interrupted() {
            return (result, attempts);
        }
        OBS_RETRIES.add(1);
        simbench_obs::event!("campaign.retry");
        simbench_obs::info!(
            "[campaign] {}/{} {} rep {}: attempt {attempts} failed, retrying",
            job.key.guest.isa_name(),
            job.key.engine.id(),
            job.key.workload.id(),
            job.rep,
        );
        std::thread::sleep(backoff(attempts));
    }
}

/// Exponential backoff before retry `attempts + 1`: 20 ms, 40 ms, ...
/// capped at 640 ms. Transient failures are usually resource pressure;
/// hammering makes them worse.
fn backoff(attempts: u32) -> Duration {
    Duration::from_millis(20u64 << (attempts - 1).min(5))
}

/// One attempt, optionally under the wall watchdog. With a timeout the
/// attempt runs on its own thread so a hang can be abandoned — the
/// stuck thread is detached, not killed (Rust has no safe thread kill),
/// so a truly wedged engine leaks one parked thread until process
/// exit. Without a timeout the attempt runs inline: zero extra cost.
fn execute_attempt(job: &Job, cfg: &Config, timeout: Option<Duration>) -> RepResult {
    let Some(limit) = timeout else {
        return execute_inline(job, cfg);
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let (job, cfg) = (*job, *cfg);
    let spawned = std::thread::Builder::new()
        .name("campaign-rep".to_string())
        .spawn(move || {
            // The receiver may be long gone on timeout; a failed send
            // just drops the late result.
            let _ = tx.send(execute_inline(&job, &cfg));
        });
    if let Err(e) = spawned {
        return RepResult::Transient(format!("spawning watchdogged repetition: {e}"));
    }
    match rx.recv_timeout(limit) {
        Ok(result) => result,
        Err(_) => RepResult::TimedOut(format!("exceeded {}s cell timeout", limit.as_secs_f64())),
    }
}

/// Run the measurement under `catch_unwind` so a panicking engine
/// quarantines its cell instead of aborting the campaign. The
/// `measure.rep` / `measure.finish` failpoints fire inside the guarded
/// region: injected panics and hangs take exactly the path real ones
/// do.
fn execute_inline(job: &Job, cfg: &Config) -> RepResult {
    let key = job.key;
    let run = || -> Result<Option<Sample>, String> {
        failpoint::fire("measure.rep")?;
        let sample = match key.workload {
            Workload::Suite(bench) => run_suite_bench(key.guest, key.engine, bench, cfg),
            Workload::App(app) => Some(run_app(key.guest, key.engine, app, cfg)),
        };
        failpoint::fire("measure.finish")?;
        Ok(sample)
    };
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(Ok(sample)) => RepResult::Done(sample),
        Ok(Err(transient)) => RepResult::Transient(transient),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "engine panicked".to_string());
            RepResult::Panicked(msg)
        }
    }
}

/// Short journal tag for a repetition outcome.
fn outcome_tag(sample: &RepResult) -> String {
    match sample {
        RepResult::Done(Some(s)) if s.exit == ExitReason::Halted => "ok".to_string(),
        RepResult::Done(Some(s)) => format!("aborted:{}", s.exit),
        RepResult::Done(None) => "absent".to_string(),
        RepResult::Panicked(msg) => format!("panic:{msg}"),
        RepResult::Transient(msg) => format!("transient:{msg}"),
        RepResult::TimedOut(why) => format!("timeout:{why}"),
    }
}

/// Per-cell scheduler bookkeeping: how many repetitions were launched
/// and completed, every repetition's outcome (slotted by rep so
/// completion order is irrelevant), and the stop decision.
struct CellSched {
    launched: u32,
    completed: u32,
    /// Total executions including retries, summed over repetitions.
    attempts: u32,
    /// Halted repetitions' timings, in completion order — convergence
    /// is evaluated on the multiset, so completion order is irrelevant.
    seconds: Vec<f64>,
    /// Outcome of each completed repetition, indexed by rep number.
    slots: Vec<Option<RepResult>>,
    /// A repetition failed (panic, timeout, limit, unsupported) or the
    /// workload is absent: never launch further repetitions.
    terminal: bool,
    /// The workload is absent on the ISA (a flavour of `terminal` the
    /// progress stream reports distinctly).
    absent: bool,
    /// The cell reached its finish decision (all launched repetitions
    /// accounted for). Cells with `launched > 0` but `!finished` at
    /// shutdown were interrupted.
    finished: bool,
    stop: Option<StopReason>,
}

impl CellSched {
    fn new() -> CellSched {
        CellSched {
            launched: 0,
            completed: 0,
            attempts: 0,
            seconds: Vec::new(),
            slots: Vec::new(),
            terminal: false,
            absent: false,
            finished: false,
            stop: None,
        }
    }
}

/// Mark a cell finished and emit its terminal progress record.
fn finish(key: &CellKey, cell: &mut CellSched) {
    cell.finished = true;
    progress_finish(key, cell);
}

/// Record one completed repetition and decide the cell's next step:
/// `Some(job)` re-enqueues the cell's next repetition, `None` means the
/// cell is finished (converged, at its bound, fixed-mode, failed) or
/// still has repetitions in flight. The cell's `finished` flag flips
/// exactly when the last repetition is accounted for — the caller
/// journals the finished cell on that transition.
///
/// In adaptive mode the decision is only taken when the last in-flight
/// repetition of the cell completes, so convergence is always evaluated
/// on a complete set — a straggler can never be orphaned by an earlier
/// "converged" verdict.
fn on_complete(
    cells: &mut [CellSched],
    precision: Option<PrecisionTarget>,
    outcome: JobOutcome,
    job: &Job,
) -> Option<Job> {
    let cell = &mut cells[outcome.cell_index];
    cell.completed += 1;
    cell.attempts += outcome.attempts;
    match &outcome.sample {
        RepResult::Done(Some(sample)) if sample.exit == ExitReason::Halted => {
            cell.seconds.push(sample.seconds);
            static OBS_REP_WALL: simbench_obs::Histogram =
                simbench_obs::Histogram::new("campaign.rep_wall_ns");
            OBS_REP_WALL.observe((sample.seconds * 1e9) as u64);
        }
        // Exhausted-retry failures, limit/unsupported exits and absent
        // workloads are terminal: burning the repetition budget on a
        // cell that cannot produce a clean measurement would only slow
        // the campaign.
        RepResult::Done(None) => {
            cell.terminal = true;
            cell.absent = true;
        }
        RepResult::Done(Some(_))
        | RepResult::Panicked(_)
        | RepResult::Transient(_)
        | RepResult::TimedOut(_) => cell.terminal = true,
    }
    let rep = outcome.rep as usize;
    if cell.slots.len() <= rep {
        cell.slots.resize_with(rep + 1, || None);
    }
    cell.slots[rep] = Some(outcome.sample);
    let Some(p) = precision else {
        // Fixed mode: all repetitions were launched up front.
        if cell.completed == cell.launched {
            finish(&job.key, cell);
        }
        return None;
    };
    if cell.terminal || cell.completed < cell.launched {
        if cell.terminal && cell.completed == cell.launched {
            finish(&job.key, cell);
        }
        return None;
    }
    let rci = stats(&cell.seconds).and_then(|s| s.rel_ci95());
    if rci.is_some_and(|r| r <= p.target_rci) {
        cell.stop = Some(StopReason::Converged);
        let (reps, rci) = (cell.completed, rci.unwrap_or(0.0));
        with_cell_id(&job.key, |id| {
            simbench_obs::progress::cell_converge(id, reps, rci);
        });
        finish(&job.key, cell);
        return None;
    }
    if cell.launched >= p.max_reps {
        cell.stop = Some(StopReason::MaxReps);
        finish(&job.key, cell);
        return None;
    }
    static OBS_REENQUEUES: simbench_obs::Counter =
        simbench_obs::Counter::new("campaign.adaptive_reenqueues");
    OBS_REENQUEUES.add(1);
    simbench_obs::event!("campaign.reenqueue");
    let rep = cell.launched;
    cell.launched += 1;
    Some(Job {
        cell_index: outcome.cell_index,
        rep,
        key: job.key,
    })
}

/// Run a campaign and aggregate per-cell results.
pub fn run(spec: &CampaignSpec, opts: &RunnerOpts) -> CampaignResult {
    run_shard(spec, opts, None)
}

/// Run one shard of a campaign (the whole matrix when `shard` is
/// `None`). The result keeps the full cell layout: cells owned by
/// other shards are recorded as [`CellStatus::Skipped`] and carry the
/// shard metadata needed for [`crate::merge::merge`] to recombine
/// shards into a result counter-identical to an unsharded run.
pub fn run_shard(spec: &CampaignSpec, opts: &RunnerOpts, shard: Option<Shard>) -> CampaignResult {
    run_inner(spec, opts, shard, &[])
}

/// [`run_shard`] resuming from a replayed journal: cells in `done`
/// (index + finished record, from [`crate::journal::replay`]) are
/// copied into the result verbatim and only the remainder is measured.
/// Counters are deterministic, so the resumed result is counter-exact
/// against an uninterrupted run of the same spec.
pub fn run_shard_resumed(
    spec: &CampaignSpec,
    opts: &RunnerOpts,
    shard: Option<Shard>,
    done: &[(usize, CellResult)],
) -> CampaignResult {
    run_inner(spec, opts, shard, done)
}

fn run_inner(
    spec: &CampaignSpec,
    opts: &RunnerOpts,
    shard: Option<Shard>,
    done: &[(usize, CellResult)],
) -> CampaignResult {
    let t0 = Instant::now();
    let mut jobs = {
        let _obs = simbench_obs::span!("campaign.expand");
        spec.expand_shard(shard)
    };
    if !done.is_empty() {
        let done_set: std::collections::HashSet<usize> = done.iter().map(|&(i, _)| i).collect();
        jobs.retain(|j| !done_set.contains(&j.cell_index));
    }
    let cfg = spec.config();
    let workers = opts.jobs.max(1).min(jobs.len().max(1));

    let mut cells: Vec<CellSched> = (0..spec.cells().len()).map(|_| CellSched::new()).collect();
    for job in &jobs {
        cells[job.cell_index].launched += 1;
    }

    if workers <= 1 {
        run_serial(&jobs, &cfg, spec.precision, &mut cells, opts);
    } else {
        run_pool(&jobs, &cfg, spec.precision, &mut cells, workers, opts);
    }

    // Record the worker count that actually executed, not the request.
    let _obs = simbench_obs::span!("campaign.stats");
    let interrupted = simbench_obs::shutdown::interrupted();
    let mut result = finalize(
        spec,
        workers,
        shard,
        &cells,
        t0.elapsed().as_secs_f64(),
        interrupted,
    );
    for (index, cell) in done {
        // Journal-proven cells replace the skeletons finalize left for
        // their (never-launched) indices.
        result.cells[*index] = cell.clone();
    }
    if let Some(journal) = &opts.journal {
        result.journal = Some(journal.dir().display().to_string());
    }
    result
}

/// Handle one executed job on the calling thread: journal the
/// repetition, fold it into the scheduler state, journal the cell if
/// this repetition finished it, and return any re-enqueued job.
fn absorb(
    cells: &mut [CellSched],
    precision: Option<PrecisionTarget>,
    outcome: JobOutcome,
    job: &Job,
    journal: Option<&Journal>,
) -> Option<Job> {
    if let Some(journal) = journal {
        journal.record_rep(
            job.cell_index,
            job.rep,
            outcome.attempts,
            &outcome_tag(&outcome.sample),
        );
    }
    let next = on_complete(cells, precision, outcome, job);
    let cell = &cells[job.cell_index];
    if cell.finished {
        if let Some(journal) = journal {
            journal.record_cell(job.cell_index, &finalize_cell(&job.key, cell, precision));
        }
    }
    next
}

/// The serial path: jobs execute inline on the calling thread in
/// deterministic expansion order; an adaptive re-enqueue lands at the
/// back of the same queue. An interrupt stops before the next job.
fn run_serial(
    jobs: &[Job],
    cfg: &Config,
    precision: Option<PrecisionTarget>,
    cells: &mut [CellSched],
    opts: &RunnerOpts,
) {
    let mut queue: VecDeque<Job> = jobs.iter().copied().collect();
    while let Some(job) = queue.pop_front() {
        if simbench_obs::shutdown::interrupted() {
            break;
        }
        let (sample, attempts) = execute(&job, cfg, opts);
        let outcome = JobOutcome {
            cell_index: job.cell_index,
            rep: job.rep,
            attempts,
            sample,
        };
        if opts.verbose || simbench_obs::log::enabled(simbench_obs::log::LEVEL_DEBUG) {
            eprintln!(
                "[campaign] {}/{} {} rep {}",
                job.key.guest.isa_name(),
                job.key.engine.id(),
                job.key.workload.id(),
                job.rep,
            );
        }
        if let Some(next) = absorb(cells, precision, outcome, &job, opts.journal.as_deref()) {
            queue.push_back(next);
        }
    }
}

/// Shared state of the worker pool: the job queue plus the completion
/// bookkeeping, under one lock so the "queue empty and nothing in
/// flight" termination test is atomic. One shared queue, not
/// per-worker deques: every transition serializes on this lock anyway
/// (job execution dwarfs the critical section), so distribution policy
/// could not change anything observable.
struct PoolState {
    queue: VecDeque<Job>,
    in_flight: usize,
    done: usize,
}

/// The worker pool used when more than one worker is requested.
fn run_pool(
    jobs: &[Job],
    cfg: &Config,
    precision: Option<PrecisionTarget>,
    cells: &mut [CellSched],
    workers: usize,
    opts: &RunnerOpts,
) {
    let state = Mutex::new(PoolState {
        queue: jobs.iter().copied().collect(),
        in_flight: 0,
        done: 0,
    });
    let wakeup = Condvar::new();
    let cells = Mutex::new(cells);
    let total = jobs.len();
    let more = if precision.is_some() { "+" } else { "" };

    std::thread::scope(|scope| {
        for me in 0..workers {
            let state = &state;
            let wakeup = &wakeup;
            let cells = &cells;
            scope.spawn(move || loop {
                // An empty queue is not termination while jobs are in
                // flight: any of them can enqueue a repetition.
                let job = {
                    let mut st = state.lock().unwrap();
                    loop {
                        if simbench_obs::shutdown::interrupted() {
                            // Graceful drain: nothing new starts, the
                            // in-flight repetitions finish and are
                            // recorded, finalize marks the rest.
                            st.queue.clear();
                        }
                        if let Some(job) = st.queue.pop_front() {
                            st.in_flight += 1;
                            break Some(job);
                        }
                        if st.in_flight == 0 {
                            break None;
                        }
                        st = wakeup.wait(st).unwrap();
                    }
                };
                let Some(job) = job else {
                    // Fully drained: wake any workers still parked on
                    // the condvar so they observe termination too.
                    wakeup.notify_all();
                    break;
                };
                let (sample, attempts) = execute(&job, cfg, opts);
                let outcome = JobOutcome {
                    cell_index: job.cell_index,
                    rep: job.rep,
                    attempts,
                    sample,
                };
                let next = absorb(
                    &mut cells.lock().unwrap(),
                    precision,
                    outcome,
                    &job,
                    opts.journal.as_deref(),
                );
                let mut st = state.lock().unwrap();
                st.in_flight -= 1;
                st.done += 1;
                if opts.verbose || simbench_obs::log::enabled(simbench_obs::log::LEVEL_DEBUG) {
                    // In adaptive mode the initial job count is only a
                    // floor — convergence decides the real total — so
                    // the denominator carries a trailing '+'.
                    eprintln!(
                        "[campaign {}/{total}{more}] {}/{} {} rep {} (worker {me})",
                        st.done,
                        job.key.guest.isa_name(),
                        job.key.engine.id(),
                        job.key.workload.id(),
                        job.rep,
                    );
                }
                if let Some(next) = next {
                    st.queue.push_back(next);
                }
                drop(st);
                // New work appeared or in_flight dropped: both matter
                // to parked workers.
                wakeup.notify_all();
            });
        }
    });
}

/// Build one cell's persisted record from its scheduler state. Shared
/// between the journal (cells are journaled the moment they finish)
/// and [`finalize`] (the same fold at campaign end), so a replayed
/// journal cell is byte-identical to the cell an uninterrupted run
/// would have persisted.
fn finalize_cell(key: &CellKey, cs: &CellSched, precision: Option<PrecisionTarget>) -> CellResult {
    let mut cell = CellResult::skeleton(key);
    cell.attempts = cs.attempts;
    let mut samples: Vec<&Sample> = Vec::new();
    let mut failure: Option<CellStatus> = None;
    // Iterate slots in repetition order so `seconds` is deterministic
    // and the first failure (by rep, not by completion time) wins.
    for slot in cs.slots.iter().flatten() {
        cell.reps_run += 1;
        match slot {
            RepResult::Panicked(payload) => {
                failure.get_or_insert(CellStatus::Quarantined(payload.clone()));
            }
            RepResult::Transient(msg) => {
                failure.get_or_insert(CellStatus::Failed(msg.clone()));
            }
            RepResult::TimedOut(why) => {
                failure.get_or_insert(CellStatus::TimedOut(why.clone()));
            }
            RepResult::Done(None) => {} // workload absent on this ISA
            RepResult::Done(Some(sample)) => {
                match sample.exit {
                    // Only halted repetitions contribute the iteration
                    // count: an aborted sample's count must not leak
                    // into the persisted result.
                    ExitReason::Halted => {
                        cell.iterations = sample.iterations;
                        samples.push(sample);
                    }
                    ExitReason::Unsupported(what) => {
                        failure.get_or_insert(CellStatus::Unsupported(what.to_string()));
                    }
                    ref other => {
                        failure.get_or_insert(CellStatus::Failed(other.to_string()));
                    }
                }
            }
        }
    }
    // Failures take precedence so partial timings are never mistaken
    // for a clean cell.
    if let Some(status) = failure {
        cell.status = status;
        return cell;
    }
    if samples.is_empty() {
        cell.status = CellStatus::NotOnIsa;
        return cell;
    }
    cell.status = CellStatus::Ok;
    // A truthful stop reason for every clean cell: fixed-mode cells
    // ran exactly the spec'd count; adaptive cells carry the
    // scheduler's verdict. An Ok adaptive cell always reached a
    // decision point, so a missing verdict is a scheduler bug —
    // recorded as the conservative MaxReps, never as Converged.
    cell.stop_reason = Some(match precision {
        None => StopReason::Fixed,
        Some(_) => {
            debug_assert!(cs.stop.is_some(), "Ok adaptive cell without a verdict");
            cs.stop.unwrap_or(StopReason::MaxReps)
        }
    });
    cell.seconds = samples.iter().map(|s| s.seconds).collect();
    cell.stats = stats(&cell.seconds);
    cell.counters = samples[0].counters;
    cell.counters_consistent = samples.iter().all(|s| s.counters == samples[0].counters);
    cell.tested_ops = key.workload.tested_ops(&cell.counters);
    if !cell.counters_consistent {
        // Keep every repetition's profile: the divergence itself is
        // the evidence an engine-determinism bug needs.
        cell.counter_variants = samples.iter().map(|s| s.counters).collect();
    }
    cell
}

/// Fold scheduler state into the deterministic per-cell result layout.
fn finalize(
    spec: &CampaignSpec,
    jobs: usize,
    shard: Option<Shard>,
    sched: &[CellSched],
    wall_secs: f64,
    interrupted: bool,
) -> CampaignResult {
    let mut result = CampaignResult::empty_for(spec, jobs);
    result.shard = shard;
    let keys = spec.cells();

    for (cell_index, ((cell, key), cs)) in result.cells.iter_mut().zip(&keys).zip(sched).enumerate()
    {
        if cs.completed == 0 {
            // No repetition finished here: the cell belongs to another
            // shard, the workload is not on the ISA, or an interrupt
            // drained its jobs before any could run. Interrupted cells
            // are recorded as failed — a partial artifact must name
            // its holes, never pass them off as absent workloads.
            cell.status = match shard {
                Some(s) if !s.owns(cell_index) => CellStatus::Skipped,
                _ if cs.launched > 0 && interrupted => {
                    CellStatus::Failed("interrupted".to_string())
                }
                _ => CellStatus::NotOnIsa,
            };
            continue;
        }
        if interrupted && !cs.finished {
            // Some repetitions ran, the rest were drained: the partial
            // timings must not masquerade as a clean cell.
            cell.reps_run = cs.completed;
            cell.attempts = cs.attempts;
            cell.status = CellStatus::Failed("interrupted".to_string());
            continue;
        }
        *cell = finalize_cell(key, cs, spec.precision);
    }

    result.wall_secs = wall_secs;
    result.created_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{EngineKind, Guest};
    use simbench_suite::Benchmark;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".to_string(),
            guests: vec![Guest::Armlet, Guest::Petix],
            engines: vec![EngineKind::Interp, EngineKind::Native],
            workloads: vec![
                Workload::Suite(Benchmark::Syscall),
                Workload::Suite(Benchmark::NonprivAccess),
            ],
            scale: u64::MAX, // clamp to the 16-iteration floor
            reps: 2,
            precision: None,
            wall_limit: Some(Duration::from_secs(60)),
        }
    }

    #[test]
    fn serial_run_fills_cells() {
        // Serialize with failpoint-arming tests: an armed
        // process-global failpoint must never hit a clean-run test.
        let _fp = failpoint::test_guard();
        let result = run(&tiny_spec(), &RunnerOpts::serial());
        assert_eq!(result.cells.len(), 8);
        let ok = result
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Ok)
            .count();
        // Nonprivileged Access is absent on petix (2 engines).
        assert_eq!(ok, 6);
        let absent = result
            .cell("petix", "interp", "suite:Nonprivileged Access")
            .unwrap();
        assert_eq!(absent.status, CellStatus::NotOnIsa);
        assert_eq!(absent.reps_run, 0);
        assert_eq!(absent.stop_reason, None);
        let ok_cell = result
            .cell("armlet", "interp", "suite:System Call")
            .unwrap();
        assert_eq!(ok_cell.seconds.len(), 2);
        assert_eq!(ok_cell.reps_run, 2);
        assert_eq!(ok_cell.attempts, 2, "no retries on a clean run");
        assert_eq!(ok_cell.stop_reason, Some(StopReason::Fixed));
        assert!(ok_cell.counters.syscalls >= 16);
        assert!(ok_cell.counters_consistent);
        assert!(ok_cell.counter_variants.is_empty());
        assert_eq!(ok_cell.tested_ops, Some(ok_cell.counters.syscalls));
        assert!(ok_cell.stats.is_some());
    }

    #[test]
    fn unsupported_detailed_cell_is_flagged() {
        // Serialize with failpoint-arming tests: an armed
        // process-global failpoint must never hit a clean-run test.
        let _fp = failpoint::test_guard();
        let spec = CampaignSpec {
            name: "unsupported".to_string(),
            guests: vec![Guest::Armlet],
            engines: vec![EngineKind::Detailed],
            workloads: vec![Workload::Suite(Benchmark::MmioDevice)],
            scale: u64::MAX,
            reps: 1,
            precision: None,
            wall_limit: Some(Duration::from_secs(60)),
        };
        let result = run(&spec, &RunnerOpts::serial());
        assert!(matches!(result.cells[0].status, CellStatus::Unsupported(_)));
        assert!(result.cells[0].stats.is_none());
        assert_eq!(result.cells[0].stop_reason, None);
        // An aborted cell must not leak a sample's iteration count into
        // the persisted result: only halted repetitions record it.
        assert_eq!(result.cells[0].iterations, 0);
    }

    #[test]
    fn wall_limited_cell_records_no_iterations() {
        // Serialize with failpoint-arming tests: an armed
        // process-global failpoint must never hit a clean-run test.
        let _fp = failpoint::test_guard();
        // A sub-measurable wall limit aborts every repetition, so the
        // cell fails and its iteration count stays unrecorded.
        let spec = CampaignSpec {
            name: "walled".to_string(),
            guests: vec![Guest::Armlet],
            engines: vec![EngineKind::Interp],
            workloads: vec![Workload::Suite(Benchmark::MemHot)],
            scale: 1, // full paper iteration counts: plenty to outlast the limit
            reps: 1,
            precision: None,
            wall_limit: Some(Duration::from_nanos(1)),
        };
        let result = run(&spec, &RunnerOpts::serial());
        assert!(
            matches!(result.cells[0].status, CellStatus::Failed(_)),
            "{:?}",
            result.cells[0].status
        );
        assert_eq!(result.cells[0].iterations, 0);
        assert!(result.cells[0].seconds.is_empty());
    }

    #[test]
    fn shard_run_skips_unowned_cells_and_carries_metadata() {
        // Serialize with failpoint-arming tests: an armed
        // process-global failpoint must never hit a clean-run test.
        let _fp = failpoint::test_guard();
        let spec = tiny_spec();
        let shard = Shard::new(2, 2).unwrap();
        let result = run_shard(&spec, &RunnerOpts::serial(), Some(shard));
        assert_eq!(result.shard, Some(shard));
        assert_eq!(result.cells.len(), 8, "shards keep the full cell layout");
        for (i, cell) in result.cells.iter().enumerate() {
            if shard.owns(i) {
                assert_ne!(cell.status, CellStatus::Skipped, "cell {i}");
            } else {
                assert_eq!(cell.status, CellStatus::Skipped, "cell {i}");
                assert!(cell.seconds.is_empty());
                assert!(cell.stats.is_none());
                assert_eq!(cell.reps_run, 0);
            }
        }
        // An unsharded run has no shard metadata and no skipped cells.
        let whole = run(&spec, &RunnerOpts::serial());
        assert_eq!(whole.shard, None);
        assert!(whole.cells.iter().all(|c| c.status != CellStatus::Skipped));
    }

    fn adaptive_spec(target_rci: f64, min_reps: u32, max_reps: u32) -> CampaignSpec {
        CampaignSpec {
            precision: Some(PrecisionTarget::new(target_rci, min_reps, max_reps).unwrap()),
            ..tiny_spec()
        }
    }

    #[test]
    fn adaptive_cells_report_reps_in_bounds_with_truthful_reasons() {
        // Serialize with failpoint-arming tests: an armed
        // process-global failpoint must never hit a clean-run test.
        let _fp = failpoint::test_guard();
        for opts in [RunnerOpts::serial(), RunnerOpts::with_jobs(4)] {
            // A loose target cells hit at min_reps, and a tight one
            // that drives cells to the bound unless a quantized clock
            // hands back literally identical timings (zero spread is
            // the only way under 1e-12). Real timings are noisy, so
            // the asserts check *truthfulness* of each verdict rather
            // than a clock-dependent exact outcome.
            for target in [1e12, 1e-12] {
                let spec = adaptive_spec(target, 2, 4);
                let result = run_shard(&spec, &opts, None);
                for cell in result.cells.iter().filter(|c| c.status == CellStatus::Ok) {
                    let id = format!("{}/{} {}", cell.guest, cell.engine, cell.workload);
                    assert!(
                        (2..=4).contains(&cell.reps_run),
                        "{id}: reps_run {}",
                        cell.reps_run
                    );
                    assert_eq!(cell.seconds.len(), cell.reps_run as usize);
                    let rel = cell.stats.and_then(|s| s.rel_ci95());
                    match cell.stop_reason {
                        Some(StopReason::Converged) => {
                            assert!(
                                rel.is_some_and(|r| r <= target),
                                "{id}: converged verdict but rci {rel:?} > {target}"
                            );
                        }
                        Some(StopReason::MaxReps) => {
                            assert_eq!(cell.reps_run, 4, "{id}: max_reps means the bound ran");
                            assert!(
                                rel.is_none_or(|r| r > target),
                                "{id}: max_reps verdict but rci {rel:?} met {target}"
                            );
                        }
                        other => panic!("{id}: adaptive cell reported {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn adaptive_run_is_counter_identical_to_fixed() {
        // Serialize with failpoint-arming tests: an armed
        // process-global failpoint must never hit a clean-run test.
        let _fp = failpoint::test_guard();
        let fixed = run(&tiny_spec(), &RunnerOpts::serial());
        let adaptive = run(&adaptive_spec(0.5, 2, 5), &RunnerOpts::with_jobs(3));
        for (a, f) in adaptive.cells.iter().zip(&fixed.cells) {
            assert_eq!(
                a.status, f.status,
                "{}/{} {}",
                a.guest, a.engine, a.workload
            );
            assert_eq!(a.counters, f.counters);
            assert_eq!(a.iterations, f.iterations);
            assert_eq!(a.tested_ops, f.tested_ops);
        }
    }

    #[test]
    fn adaptive_failing_cell_stops_without_burning_the_budget() {
        // Serialize with failpoint-arming tests: an armed
        // process-global failpoint must never hit a clean-run test.
        let _fp = failpoint::test_guard();
        // Every repetition aborts on the 1ns wall limit: the scheduler
        // must mark the cell terminal after the initial min_reps batch
        // instead of re-enqueueing toward max_reps.
        let spec = CampaignSpec {
            name: "walled-adaptive".to_string(),
            guests: vec![Guest::Armlet],
            engines: vec![EngineKind::Interp],
            workloads: vec![Workload::Suite(Benchmark::MemHot)],
            scale: 1,
            reps: 1,
            precision: Some(PrecisionTarget::new(0.2, 2, 50).unwrap()),
            wall_limit: Some(Duration::from_nanos(1)),
        };
        let result = run(&spec, &RunnerOpts::serial());
        assert!(matches!(result.cells[0].status, CellStatus::Failed(_)));
        assert_eq!(result.cells[0].reps_run, 2, "only the initial batch ran");
        assert_eq!(result.cells[0].stop_reason, None);
    }

    fn halted_outcome(rep: u32, secs: f64) -> JobOutcome {
        JobOutcome {
            cell_index: 0,
            rep,
            attempts: 1,
            sample: RepResult::Done(Some(Sample {
                seconds: secs,
                counters: Default::default(),
                exit: ExitReason::Halted,
                iterations: 16,
            })),
        }
    }

    #[test]
    fn on_complete_waits_for_stragglers_before_deciding() {
        // Two reps in flight; the first completion must not trigger a
        // convergence decision while the second is still out.
        let p = Some(PrecisionTarget::new(1e12, 2, 4).unwrap());
        let mut cells = vec![CellSched::new()];
        cells[0].launched = 2;
        let key = tiny_spec().cells()[0];
        let job = |rep| Job {
            cell_index: 0,
            rep,
            key,
        };
        assert!(on_complete(&mut cells, p, halted_outcome(0, 1.0), &job(0)).is_none());
        assert_eq!(cells[0].stop, None, "decision deferred to the straggler");
        assert!(!cells[0].finished);
        assert!(on_complete(&mut cells, p, halted_outcome(1, 1.1), &job(1)).is_none());
        assert_eq!(cells[0].stop, Some(StopReason::Converged));
        assert!(cells[0].finished);
    }

    #[test]
    fn on_complete_re_enqueues_until_the_bound_then_stops() {
        // Injected noisy samples make the unreachable-target path
        // deterministic (the e2e runs above can't promise real clock
        // spread): each decision re-enqueues exactly one repetition
        // until max_reps, then the verdict is MaxReps.
        let p = Some(PrecisionTarget::new(1e-12, 2, 4).unwrap());
        let mut cells = vec![CellSched::new()];
        cells[0].launched = 2;
        let key = tiny_spec().cells()[0];
        let job = |rep| Job {
            cell_index: 0,
            rep,
            key,
        };
        assert!(on_complete(&mut cells, p, halted_outcome(0, 1.0), &job(0)).is_none());
        let next = on_complete(&mut cells, p, halted_outcome(1, 2.0), &job(1)).expect("re-enqueue");
        assert_eq!((next.cell_index, next.rep), (0, 2));
        let next = on_complete(&mut cells, p, halted_outcome(2, 3.0), &next).expect("re-enqueue");
        assert_eq!(next.rep, 3);
        assert_eq!(cells[0].stop, None);
        assert!(
            on_complete(&mut cells, p, halted_outcome(3, 4.0), &next).is_none(),
            "the bound is hard"
        );
        assert_eq!(cells[0].stop, Some(StopReason::MaxReps));
        assert_eq!(cells[0].launched, 4);
    }

    #[test]
    fn injected_panic_quarantines_one_cell_and_spares_the_rest() {
        let _fp = failpoint::test_guard();
        failpoint::arm("measure.rep=1*panic(injected quarantine test)").unwrap();
        let result = run(&tiny_spec(), &RunnerOpts::serial());
        failpoint::disarm_all();
        let quarantined: Vec<_> = result
            .cells
            .iter()
            .filter(|c| matches!(c.status, CellStatus::Quarantined(_)))
            .collect();
        assert_eq!(quarantined.len(), 1, "exactly one cell quarantines");
        assert_eq!(
            quarantined[0].status,
            CellStatus::Quarantined("injected quarantine test".to_string()),
            "the panic payload is recorded"
        );
        assert!(quarantined[0].stats.is_none());
        assert_eq!(quarantined[0].stop_reason, None);
        // The rest of the matrix completed exactly as a clean run does.
        let clean = run(&tiny_spec(), &RunnerOpts::serial());
        for (c, r) in clean.cells.iter().zip(&result.cells) {
            if matches!(r.status, CellStatus::Quarantined(_)) {
                continue;
            }
            assert_eq!(
                c.status, r.status,
                "{}/{} {}",
                c.guest, c.engine, c.workload
            );
            assert_eq!(c.counters, r.counters);
        }
    }

    #[test]
    fn transient_failures_are_retried_and_attempts_recorded() {
        let _fp = failpoint::test_guard();
        failpoint::arm("measure.rep=2*err(injected transient)").unwrap();
        let opts = RunnerOpts {
            retries: 3,
            ..RunnerOpts::serial()
        };
        let spec = CampaignSpec {
            guests: vec![Guest::Armlet],
            engines: vec![EngineKind::Interp],
            workloads: vec![Workload::Suite(Benchmark::Syscall)],
            ..tiny_spec()
        };
        let result = run(&spec, &opts);
        failpoint::disarm_all();
        let cell = &result.cells[0];
        assert_eq!(cell.status, CellStatus::Ok, "retries recovered the cell");
        assert_eq!(cell.reps_run, 2);
        // Rep 0 burned the two injected failures: 3 executions for it,
        // 1 for rep 1.
        assert_eq!(cell.attempts, 4, "true execution count recorded");
        // The persisted form round-trips the attempts field.
        let parsed = CampaignResult::from_json(&result.to_json()).unwrap();
        assert_eq!(parsed.cells[0].attempts, 4);
        assert_eq!(parsed.cells[0].reps_run, 2);
    }

    #[test]
    fn exhausted_retries_fail_the_cell_truthfully() {
        let _fp = failpoint::test_guard();
        failpoint::arm("measure.rep=err(persistent failure)").unwrap();
        let opts = RunnerOpts {
            retries: 1,
            ..RunnerOpts::serial()
        };
        let spec = CampaignSpec {
            guests: vec![Guest::Armlet],
            engines: vec![EngineKind::Interp],
            workloads: vec![Workload::Suite(Benchmark::Syscall)],
            reps: 1,
            ..tiny_spec()
        };
        let result = run(&spec, &opts);
        failpoint::disarm_all();
        let cell = &result.cells[0];
        assert_eq!(
            cell.status,
            CellStatus::Failed("persistent failure".to_string())
        );
        assert_eq!(cell.reps_run, 1);
        assert_eq!(cell.attempts, 2, "initial execution plus one retry");
    }

    #[test]
    fn watchdog_times_out_a_hung_repetition() {
        let _fp = failpoint::test_guard();
        failpoint::arm("measure.rep=hang(60000)").unwrap();
        let opts = RunnerOpts {
            cell_timeout: Some(Duration::from_millis(50)),
            ..RunnerOpts::serial()
        };
        let spec = CampaignSpec {
            guests: vec![Guest::Armlet],
            engines: vec![EngineKind::Interp],
            workloads: vec![Workload::Suite(Benchmark::Syscall)],
            reps: 1,
            ..tiny_spec()
        };
        let t0 = Instant::now();
        let result = run(&spec, &opts);
        failpoint::disarm_all();
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "the watchdog, not the hang, must bound the wall time"
        );
        let cell = &result.cells[0];
        assert!(
            matches!(cell.status, CellStatus::TimedOut(_)),
            "{:?}",
            cell.status
        );
        assert!(cell.stats.is_none());
    }

    #[test]
    fn watchdogged_clean_run_matches_inline_counters() {
        // Serialize with failpoint-arming tests: an armed
        // process-global failpoint must never hit a clean-run test.
        let _fp = failpoint::test_guard();
        // The watchdog thread must be measurement-transparent.
        let opts = RunnerOpts {
            cell_timeout: Some(Duration::from_secs(120)),
            ..RunnerOpts::serial()
        };
        let guarded = run(&tiny_spec(), &opts);
        let inline = run(&tiny_spec(), &RunnerOpts::serial());
        for (g, i) in guarded.cells.iter().zip(&inline.cells) {
            assert_eq!(
                g.status, i.status,
                "{}/{} {}",
                g.guest, g.engine, g.workload
            );
            assert_eq!(g.counters, i.counters);
        }
    }

    #[test]
    fn interrupted_finalize_marks_unfinished_cells_failed() {
        let spec = tiny_spec();
        let keys = spec.cells();
        let mut sched: Vec<CellSched> = (0..keys.len()).map(|_| CellSched::new()).collect();
        // Cell 0 finished cleanly before the interrupt.
        sched[0].launched = 2;
        sched[0].completed = 2;
        sched[0].attempts = 2;
        sched[0].finished = true;
        for rep in 0..2 {
            let RepResult::Done(s) = halted_outcome(rep, 0.5).sample else {
                unreachable!()
            };
            sched[0].seconds.push(0.5);
            sched[0].slots.push(Some(RepResult::Done(s)));
        }
        // Cell 1 completed one of two reps; cells 2.. never started.
        sched[1].launched = 2;
        sched[1].completed = 1;
        sched[1].attempts = 1;
        let RepResult::Done(s) = halted_outcome(0, 0.5).sample else {
            unreachable!()
        };
        sched[1].slots.push(Some(RepResult::Done(s)));
        for cs in sched.iter_mut().skip(2) {
            cs.launched = 2;
        }
        let result = finalize(&spec, 1, None, &sched, 1.0, true);
        assert_eq!(result.cells[0].status, CellStatus::Ok, "finished survives");
        assert_eq!(
            result.cells[1].status,
            CellStatus::Failed("interrupted".to_string()),
            "partial timings never fake a clean cell"
        );
        assert_eq!(result.cells[1].reps_run, 1);
        for cell in &result.cells[2..] {
            assert_eq!(
                cell.status,
                CellStatus::Failed("interrupted".to_string()),
                "unstarted cells are named, not passed off as absent"
            );
        }
    }
}

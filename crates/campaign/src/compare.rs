//! Baseline comparison and regression detection.
//!
//! Cells are matched across two [`CampaignResult`]s by their
//! (guest, engine, workload) identity. Two comparison modes exist:
//!
//! * [`compare`] — the *timing* path: the metric is each cell's
//!   geometric-mean seconds over kept repetitions, and a cell whose
//!   ratio `current / baseline` exceeds `1 + threshold` is flagged as a
//!   regression, below `1 / (1 + threshold)` as an improvement.
//!   Wall-clock is machine- and load-dependent, so this path always
//!   needs a tolerance band.
//! * [`compare_counters`] — the *architectural* path: cells are
//!   compared on their event profiles (instruction, operation and
//!   fault counts), which are deterministic across hosts and worker
//!   counts. The default tolerance is exactly zero: any differing
//!   counter flags the cell.

use simbench_core::events::Counters;

use crate::result::{CampaignResult, CellResult, CellStatus};
use crate::table::{fmt_ratio, fmt_secs, Table};

/// Classification of one cell's movement against the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Slower than baseline beyond the threshold.
    Regressed,
    /// Faster than baseline beyond the threshold.
    Improved,
    /// Within the threshold band.
    Unchanged,
    /// Present now, absent (or not Ok) in the baseline.
    Added,
    /// Ok in the baseline, no longer part of the current matrix.
    Removed,
    /// Ok in the baseline but Failed/Unsupported now — the cell stopped
    /// completing at all. Fails the gate like a regression.
    Broke,
}

/// One compared cell.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Guest id.
    pub guest: String,
    /// Engine id.
    pub engine: String,
    /// Workload id.
    pub workload: String,
    /// Baseline geomean seconds (`None` when Added).
    pub base: Option<f64>,
    /// Current geomean seconds (`None` when Removed).
    pub current: Option<f64>,
    /// `current / base` when both exist.
    pub ratio: Option<f64>,
    /// Classification.
    pub verdict: Verdict,
}

/// A full comparison report.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Relative slowdown tolerated before a cell is flagged.
    pub threshold: f64,
    /// Every compared cell in current-result order, then removed cells.
    pub deltas: Vec<Delta>,
}

impl Comparison {
    /// The flagged regressions.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regressed)
            .collect()
    }

    /// The flagged improvements.
    pub fn improvements(&self) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Improved)
            .collect()
    }

    /// Cells that completed in the baseline but fail now.
    pub fn broken(&self) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Broke)
            .collect()
    }

    /// True when no cell regressed or broke.
    pub fn clean(&self) -> bool {
        self.regressions().is_empty() && self.broken().is_empty()
    }

    /// Render a human-readable report: a summary line, the regression
    /// and improvement tables, and coverage changes.
    pub fn render(&self) -> String {
        let regressions = self.regressions();
        let improvements = self.improvements();
        let broken = self.broken();
        let added = self
            .deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Added)
            .count();
        let removed = self
            .deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Removed)
            .count();
        let compared = self.deltas.iter().filter(|d| d.ratio.is_some()).count();
        let mut out = format!(
            "campaign compare — {compared} cells compared, threshold {:.0}%\n\
             {} regressions, {} broken, {} improvements, {added} added, {removed} removed\n",
            self.threshold * 100.0,
            regressions.len(),
            broken.len(),
            improvements.len(),
        );
        let section = |title: &str, rows: &[&Delta]| -> String {
            if rows.is_empty() {
                return String::new();
            }
            let mut table = Table::new([
                "guest", "engine", "workload", "baseline", "current", "ratio",
            ]);
            for d in rows {
                table.row([
                    d.guest.clone(),
                    d.engine.clone(),
                    d.workload.clone(),
                    d.base.map(fmt_secs).unwrap_or_else(|| "-".to_string()),
                    d.current.map(fmt_secs).unwrap_or_else(|| "-".to_string()),
                    d.ratio.map(fmt_ratio).unwrap_or_else(|| "-".to_string()),
                ]);
            }
            format!("\n{title}\n{}", table.render())
        };
        out.push_str(&section(
            "REGRESSIONS (current slower than baseline)",
            &regressions,
        ));
        out.push_str(&section(
            "BROKEN (completed in baseline, fails now)",
            &broken,
        ));
        out.push_str(&section("improvements", &improvements));
        out.push_str(&coverage_section(self.deltas.iter().map(|d| {
            (
                d.guest.as_str(),
                d.engine.as_str(),
                d.workload.as_str(),
                d.verdict,
            )
        })));
        out
    }
}

/// The "coverage changes" section shared by both report flavours:
/// added/removed cells as a (guest, engine, workload, change) table.
/// Empty when no cell was added or removed.
fn coverage_section<'a>(
    deltas: impl Iterator<Item = (&'a str, &'a str, &'a str, Verdict)>,
) -> String {
    let mut table = Table::new(["guest", "engine", "workload", "change"]);
    let mut any = false;
    for (guest, engine, workload, verdict) in deltas {
        let change = match verdict {
            Verdict::Added => "added",
            Verdict::Removed => "removed",
            _ => continue,
        };
        any = true;
        table.row([
            guest.to_string(),
            engine.to_string(),
            workload.to_string(),
            change.to_string(),
        ]);
    }
    if any {
        format!("\ncoverage changes\n{}", table.render())
    } else {
        String::new()
    }
}

// ---------------------------------------------------------------------------
// Counter-exact comparison.
// ---------------------------------------------------------------------------

/// One counter whose value moved between baseline and current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterDiff {
    /// Counter name (a [`Counters`] field).
    pub name: &'static str,
    /// Baseline value.
    pub base: u64,
    /// Current value.
    pub current: u64,
}

/// One cell compared on its event profile.
#[derive(Debug, Clone)]
pub struct CounterDelta {
    /// Guest id.
    pub guest: String,
    /// Engine id.
    pub engine: String,
    /// Workload id.
    pub workload: String,
    /// Classification. [`Verdict::Regressed`] means the profile moved
    /// beyond the tolerance (counters have no faster/slower direction,
    /// so there is no `Improved` on this path).
    pub verdict: Verdict,
    /// The counters that differ, in declaration order. Empty unless the
    /// verdict is `Regressed`.
    pub diffs: Vec<CounterDiff>,
}

/// A full counter-exact comparison report.
#[derive(Debug, Clone)]
pub struct CounterComparison {
    /// Relative per-counter drift tolerated before a cell is flagged
    /// (0 = exact equality required).
    pub tolerance: f64,
    /// Every compared cell in current-result order, then removed cells.
    pub deltas: Vec<CounterDelta>,
}

impl CounterComparison {
    /// Cells whose event profile moved beyond the tolerance.
    pub fn changed(&self) -> Vec<&CounterDelta> {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regressed)
            .collect()
    }

    /// Cells that completed in the baseline but fail now.
    pub fn broken(&self) -> Vec<&CounterDelta> {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Broke)
            .collect()
    }

    /// True when no cell changed or broke.
    pub fn clean(&self) -> bool {
        self.changed().is_empty() && self.broken().is_empty()
    }

    /// Render a human-readable report: a summary line, one row per
    /// differing counter, and coverage changes.
    pub fn render(&self) -> String {
        let changed = self.changed();
        let broken = self.broken();
        let added = self
            .deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Added)
            .count();
        let removed = self
            .deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Removed)
            .count();
        let compared = self
            .deltas
            .iter()
            .filter(|d| matches!(d.verdict, Verdict::Regressed | Verdict::Unchanged))
            .count();
        let mut out = format!(
            "campaign compare --counters — {compared} cells compared, tolerance {}\n\
             {} changed, {} broken, {added} added, {removed} removed\n",
            if self.tolerance == 0.0 {
                "exact".to_string()
            } else {
                format!("{:.1}%", self.tolerance * 100.0)
            },
            changed.len(),
            broken.len(),
        );
        if !changed.is_empty() {
            let mut table = Table::new([
                "guest", "engine", "workload", "counter", "baseline", "current",
            ]);
            for d in &changed {
                for diff in &d.diffs {
                    table.row([
                        d.guest.clone(),
                        d.engine.clone(),
                        d.workload.clone(),
                        diff.name.to_string(),
                        diff.base.to_string(),
                        diff.current.to_string(),
                    ]);
                }
            }
            out.push_str(&format!(
                "\nCHANGED (event profile differs from baseline)\n{}",
                table.render()
            ));
        }
        if !broken.is_empty() {
            let mut table = Table::new(["guest", "engine", "workload"]);
            for d in &broken {
                table.row([d.guest.clone(), d.engine.clone(), d.workload.clone()]);
            }
            out.push_str(&format!(
                "\nBROKEN (completed in baseline, fails now)\n{}",
                table.render()
            ));
        }
        out.push_str(&coverage_section(self.deltas.iter().map(|d| {
            (
                d.guest.as_str(),
                d.engine.as_str(),
                d.workload.as_str(),
                d.verdict,
            )
        })));
        out
    }
}

/// The counters that differ beyond a relative tolerance. With
/// `tolerance == 0.0` this is exact field-wise inequality.
fn counter_diffs(base: &Counters, current: &Counters, tolerance: f64) -> Vec<CounterDiff> {
    base.rows()
        .into_iter()
        .zip(current.rows())
        .filter(|((_, b), (_, c))| {
            b != c && (c.abs_diff(*b) as f64) > tolerance * (*b.max(c) as f64)
        })
        .map(|((name, b), (_, c))| CounterDiff {
            name,
            base: b,
            current: c,
        })
        .collect()
}

/// Compare a current campaign against a stored baseline on event
/// profiles. Counters are architectural — identical across hosts and
/// `--jobs` settings — so the default `tolerance` of zero is the right
/// gate almost everywhere; a non-zero tolerance admits relative drift
/// per counter.
pub fn compare_counters(
    baseline: &CampaignResult,
    current: &CampaignResult,
    tolerance: f64,
) -> CounterComparison {
    assert!(
        (0.0..f64::INFINITY).contains(&tolerance),
        "tolerance must be a non-negative fraction"
    );
    let ok = |cell: &CellResult| cell.status == CellStatus::Ok;
    let mut deltas = Vec::new();
    for cell in &current.cells {
        let base_cell = baseline.cell(&cell.guest, &cell.engine, &cell.workload);
        let (verdict, diffs) = match (base_cell.filter(|b| ok(b)), ok(cell)) {
            (Some(base), true) => {
                let diffs = counter_diffs(&base.counters, &cell.counters, tolerance);
                if diffs.is_empty() {
                    (Verdict::Unchanged, diffs)
                } else {
                    (Verdict::Regressed, diffs)
                }
            }
            (None, true) => (Verdict::Added, Vec::new()),
            (Some(_), false) => match cell.status {
                // Deliberately unmeasured cells (matrix hole, or a cell
                // owned by another shard of a partial result) are
                // coverage changes, not breakage.
                CellStatus::NotOnIsa | CellStatus::Skipped => (Verdict::Removed, Vec::new()),
                _ => (Verdict::Broke, Vec::new()),
            },
            (None, false) => continue,
        };
        deltas.push(CounterDelta {
            guest: cell.guest.clone(),
            engine: cell.engine.clone(),
            workload: cell.workload.clone(),
            verdict,
            diffs,
        });
    }
    for cell in &baseline.cells {
        if ok(cell)
            && current
                .cell(&cell.guest, &cell.engine, &cell.workload)
                .is_none()
        {
            deltas.push(CounterDelta {
                guest: cell.guest.clone(),
                engine: cell.engine.clone(),
                workload: cell.workload.clone(),
                verdict: Verdict::Removed,
                diffs: Vec::new(),
            });
        }
    }
    CounterComparison { tolerance, deltas }
}

fn metric(cell: &crate::result::CellResult) -> Option<f64> {
    if cell.status == CellStatus::Ok {
        cell.metric()
    } else {
        None
    }
}

/// Compare a current campaign against a stored baseline.
pub fn compare(baseline: &CampaignResult, current: &CampaignResult, threshold: f64) -> Comparison {
    assert!(threshold > 0.0, "threshold must be positive");
    let mut deltas = Vec::new();
    for cell in &current.cells {
        let base_cell = baseline.cell(&cell.guest, &cell.engine, &cell.workload);
        let cur = metric(cell);
        let base = base_cell.and_then(metric);
        let (ratio, verdict) = match (base, cur) {
            (Some(b), Some(c)) => {
                let r = c / b.max(1e-12);
                let v = if r > 1.0 + threshold {
                    Verdict::Regressed
                } else if r < 1.0 / (1.0 + threshold) {
                    Verdict::Improved
                } else {
                    Verdict::Unchanged
                };
                (Some(r), v)
            }
            (None, Some(_)) => (None, Verdict::Added),
            // Ok in the baseline but not measurable now: a cell that
            // stopped completing (wall limit, panic, lost capability)
            // is the worst kind of regression and must fail the gate,
            // not disappear into "coverage changes". Deliberately
            // unmeasured cells (matrix holes, other shards' cells) stay
            // coverage changes — as does an Ok cell whose timings were
            // all invalid (e.g. a coarse clock reading 0.0s): it still
            // completes, it just has nothing for the *timing* path to
            // compare, so it must not masquerade as broken.
            (Some(_), None) => match cell.status {
                CellStatus::NotOnIsa | CellStatus::Skipped | CellStatus::Ok => {
                    (None, Verdict::Removed)
                }
                _ => (None, Verdict::Broke),
            },
            // Neither side has a clean measurement (e.g. both
            // unsupported): nothing to say.
            (None, None) => continue,
        };
        deltas.push(Delta {
            guest: cell.guest.clone(),
            engine: cell.engine.clone(),
            workload: cell.workload.clone(),
            base,
            current: cur,
            ratio,
            verdict,
        });
    }
    // Baseline cells that disappeared entirely from the current result.
    for cell in &baseline.cells {
        if current
            .cell(&cell.guest, &cell.engine, &cell.workload)
            .is_none()
        {
            if let Some(b) = metric(cell) {
                deltas.push(Delta {
                    guest: cell.guest.clone(),
                    engine: cell.engine.clone(),
                    workload: cell.workload.clone(),
                    base: Some(b),
                    current: None,
                    ratio: None,
                    verdict: Verdict::Removed,
                });
            }
        }
    }
    Comparison { threshold, deltas }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{CellResult, SCHEMA};
    use crate::stats::stats;
    use simbench_core::events::Counters;

    fn result_with(cells: Vec<(&str, &str, &str, Vec<f64>)>) -> CampaignResult {
        CampaignResult {
            schema: SCHEMA.to_string(),
            name: "t".to_string(),
            scale: 1000,
            reps: 1,
            precision: None,
            jobs: 1,
            shard: None,
            wall_secs: 0.0,
            created_unix: 0,
            telemetry: None,
            journal: None,
            cells: cells
                .into_iter()
                .map(|(g, e, w, secs)| CellResult {
                    guest: g.to_string(),
                    engine: e.to_string(),
                    workload: w.to_string(),
                    category: None,
                    iterations: 16,
                    status: CellStatus::Ok,
                    reps_run: secs.len() as u32,
                    attempts: secs.len() as u32,
                    stop_reason: Some(crate::result::StopReason::Fixed),
                    stats: stats(&secs),
                    seconds: secs,
                    counters: Counters {
                        instructions: 1000,
                        syscalls: 16,
                        ..Default::default()
                    },
                    counters_consistent: true,
                    tested_ops: Some(16),
                    counter_variants: Vec::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn flags_slowdown_beyond_threshold() {
        let base = result_with(vec![
            ("armlet", "interp", "suite:System Call", vec![1.0]),
            ("armlet", "interp", "suite:Hot Memory Access", vec![2.0]),
        ]);
        let mut cur = base.clone();
        cur.cells[0].seconds = vec![1.5];
        cur.cells[0].stats = stats(&[1.5]);
        let cmp = compare(&base, &cur, 0.25);
        assert!(!cmp.clean());
        let regs = cmp.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].workload, "suite:System Call");
        assert!((regs[0].ratio.unwrap() - 1.5).abs() < 1e-9);
        assert!(cmp.render().contains("REGRESSIONS"));
    }

    #[test]
    fn cell_that_stops_completing_fails_the_gate() {
        let base = result_with(vec![("armlet", "interp", "suite:System Call", vec![1.0])]);
        let mut cur = base.clone();
        cur.cells[0].status = CellStatus::Failed("wall-clock limit reached".to_string());
        cur.cells[0].stats = None;
        cur.cells[0].seconds.clear();
        let cmp = compare(&base, &cur, 0.25);
        assert!(
            !cmp.clean(),
            "a cell that stopped completing must fail the gate"
        );
        assert_eq!(cmp.broken().len(), 1);
        assert!(cmp.regressions().is_empty());
        assert!(cmp.render().contains("BROKEN"));
        // A cell dropped from the matrix (not-on-ISA) stays a coverage
        // change, not a failure.
        cur.cells[0].status = CellStatus::NotOnIsa;
        let cmp = compare(&base, &cur, 0.25);
        assert!(cmp.clean());
        assert_eq!(cmp.deltas[0].verdict, Verdict::Removed);
    }

    #[test]
    fn telemetry_blocks_are_ignored_by_both_paths() {
        // Telemetry is observational (wall-clock flavoured, machine
        // dependent): two results that differ only in their telemetry
        // snapshot compare identical on both the timing and the
        // counter-exact path.
        let base = result_with(vec![("armlet", "interp", "suite:System Call", vec![1.0])]);
        let mut cur = base.clone();
        cur.telemetry = Some(crate::result::Telemetry {
            counters: vec![("dbt.translations".to_string(), 999)],
            histograms: Vec::new(),
        });
        assert!(compare(&base, &cur, 0.25).clean());
        let counters = compare_counters(&base, &cur, 0.0);
        assert!(counters.clean(), "{}", counters.render());
        assert!(counters.changed().is_empty());
    }

    #[test]
    fn within_band_is_clean() {
        let base = result_with(vec![("armlet", "interp", "suite:System Call", vec![1.0])]);
        let mut cur = base.clone();
        cur.cells[0].seconds = vec![1.1];
        cur.cells[0].stats = stats(&[1.1]);
        let cmp = compare(&base, &cur, 0.25);
        assert!(cmp.clean());
        assert_eq!(cmp.deltas[0].verdict, Verdict::Unchanged);
    }

    #[test]
    fn improvement_flagged_symmetrically() {
        let base = result_with(vec![("armlet", "interp", "suite:System Call", vec![2.0])]);
        let mut cur = base.clone();
        cur.cells[0].seconds = vec![1.0];
        cur.cells[0].stats = stats(&[1.0]);
        let cmp = compare(&base, &cur, 0.25);
        assert!(cmp.clean());
        assert_eq!(cmp.improvements().len(), 1);
    }

    #[test]
    fn counters_equal_is_clean_and_timing_is_ignored() {
        let base = result_with(vec![("armlet", "interp", "suite:System Call", vec![1.0])]);
        let mut cur = base.clone();
        // A 10× wall-clock slowdown is invisible to the counters path.
        cur.cells[0].seconds = vec![10.0];
        cur.cells[0].stats = stats(&[10.0]);
        let cmp = compare_counters(&base, &cur, 0.0);
        assert!(cmp.clean());
        assert_eq!(cmp.deltas[0].verdict, Verdict::Unchanged);
    }

    #[test]
    fn any_counter_drift_is_flagged_at_zero_tolerance() {
        let base = result_with(vec![("armlet", "interp", "suite:System Call", vec![1.0])]);
        let mut cur = base.clone();
        cur.cells[0].counters.instructions += 1;
        let cmp = compare_counters(&base, &cur, 0.0);
        assert!(!cmp.clean());
        let changed = cmp.changed();
        assert_eq!(changed.len(), 1);
        assert_eq!(
            changed[0].diffs,
            vec![CounterDiff {
                name: "instructions",
                base: 1000,
                current: 1001,
            }]
        );
        assert!(cmp.render().contains("CHANGED"));
        // The same drift is admitted under a 1% tolerance.
        assert!(compare_counters(&base, &cur, 0.01).clean());
    }

    #[test]
    fn counters_path_flags_broken_and_coverage_like_timing_path() {
        let base = result_with(vec![
            ("armlet", "interp", "suite:System Call", vec![1.0]),
            ("armlet", "native", "suite:System Call", vec![1.0]),
        ]);
        let mut cur = base.clone();
        cur.cells[0].status = CellStatus::Failed("wall-clock limit reached".to_string());
        cur.cells.remove(1);
        cur.cells.push(
            result_with(vec![("petix", "interp", "suite:System Call", vec![1.0])]).cells[0].clone(),
        );
        let cmp = compare_counters(&base, &cur, 0.0);
        assert!(!cmp.clean());
        assert_eq!(cmp.broken().len(), 1);
        let verdicts: Vec<Verdict> = cmp.deltas.iter().map(|d| d.verdict).collect();
        assert!(verdicts.contains(&Verdict::Added));
        assert!(verdicts.contains(&Verdict::Removed));
        assert!(cmp.render().contains("BROKEN"));
    }

    #[test]
    fn quarantined_and_timed_out_cells_fail_both_gates() {
        // Fault-isolated cells are broken coverage, never silent holes:
        // a cell the baseline measured that now quarantines (panicked
        // engine) or times out (hung engine) must fail the counters
        // gate AND the timing gate, exactly like Failed does — and
        // unlike NotOnIsa/Skipped, which stay coverage changes.
        let base = result_with(vec![
            ("armlet", "interp", "suite:System Call", vec![1.0]),
            ("armlet", "native", "suite:System Call", vec![1.0]),
        ]);
        let mut cur = base.clone();
        cur.cells[0].status = CellStatus::Quarantined("engine panicked".to_string());
        cur.cells[1].status = CellStatus::TimedOut("exceeded 30s cell timeout".to_string());
        for cell in &mut cur.cells {
            cell.stats = None;
            cell.seconds.clear();
        }
        let counters = compare_counters(&base, &cur, 0.0);
        assert!(!counters.clean());
        assert_eq!(counters.broken().len(), 2);
        assert!(counters.deltas.iter().all(|d| d.verdict == Verdict::Broke));
        let timing = compare(&base, &cur, 0.25);
        assert!(!timing.clean());
        assert_eq!(timing.broken().len(), 2);
        assert!(timing.render().contains("BROKEN"));
    }

    #[test]
    fn ok_cell_with_no_valid_timings_is_not_broken() {
        // All-invalid timings (e.g. a coarse clock reading 0.0s) leave
        // an Ok cell with no stats. The timing path loses its metric —
        // a coverage change — while the counters path still compares
        // the event profile exactly.
        let base = result_with(vec![("armlet", "interp", "suite:System Call", vec![1.0])]);
        let mut cur = base.clone();
        cur.cells[0].seconds = vec![0.0];
        cur.cells[0].stats = stats(&[0.0]);
        assert!(cur.cells[0].stats.is_none());
        let cmp = compare(&base, &cur, 0.25);
        assert!(cmp.clean(), "a completing cell must not read as broken");
        assert!(cmp.broken().is_empty());
        assert_eq!(cmp.deltas[0].verdict, Verdict::Removed);
        assert!(compare_counters(&base, &cur, 0.0).clean());
    }

    #[test]
    fn skipped_cells_are_coverage_changes_not_breakage() {
        // A raw shard result compared against a whole-matrix baseline:
        // the cells owned by other shards are skipped, which must read
        // as reduced coverage, not as cells that stopped completing.
        let base = result_with(vec![
            ("armlet", "interp", "suite:System Call", vec![1.0]),
            ("armlet", "interp", "suite:Hot Memory Access", vec![1.0]),
        ]);
        let mut cur = base.clone();
        cur.cells[1].status = CellStatus::Skipped;
        cur.cells[1].stats = None;
        cur.cells[1].seconds.clear();
        let cmp = compare(&base, &cur, 0.25);
        assert!(cmp.clean(), "skipped must not fail the timing gate");
        assert_eq!(cmp.deltas[1].verdict, Verdict::Removed);
        let cmp = compare_counters(&base, &cur, 0.0);
        assert!(cmp.clean(), "skipped must not fail the counters gate");
        assert!(cmp.broken().is_empty());
    }

    #[test]
    fn added_and_removed_cells() {
        let base = result_with(vec![("armlet", "interp", "suite:System Call", vec![1.0])]);
        let cur = result_with(vec![(
            "armlet",
            "dbt@v2.5.0-rc2",
            "suite:System Call",
            vec![1.0],
        )]);
        let cmp = compare(&base, &cur, 0.25);
        assert!(cmp.clean());
        let verdicts: Vec<Verdict> = cmp.deltas.iter().map(|d| d.verdict).collect();
        assert!(verdicts.contains(&Verdict::Added));
        assert!(verdicts.contains(&Verdict::Removed));
        assert!(cmp.render().contains("coverage changes"));
    }
}

//! Sample statistics for campaign cells: robust location/spread
//! estimates, confidence intervals, and outlier rejection.
//!
//! Confidence intervals use Student-t critical values, not the normal
//! approximation: campaigns run 2–10 repetitions per cell, and at those
//! sample sizes the 1.96 normal quantile understates the interval badly
//! (the two-sided 95% critical value at n = 3 is 4.303). An adaptive
//! repetition controller that stops "when the CI is tight" would stop
//! far too early on normal-approximation intervals.

/// Summary statistics over one cell's repetition timings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Samples kept after invalidity and outlier rejection.
    pub n: usize,
    /// Samples rejected because they cannot be real timings
    /// (non-positive or non-finite). Kept separate from `outliers` so a
    /// cell full of zero timings (a broken clock) is distinguishable
    /// from a noisy one.
    pub rejected_invalid: usize,
    /// Valid samples rejected by the MAD outlier pass.
    /// `n + rejected_invalid + outliers` equals the input length.
    pub outliers: usize,
    /// Minimum of kept samples.
    pub min: f64,
    /// Maximum of kept samples.
    pub max: f64,
    /// Arithmetic mean of kept samples.
    pub mean: f64,
    /// Median of kept samples.
    pub median: f64,
    /// Sample standard deviation (0 when n < 2).
    pub stddev: f64,
    /// Geometric mean of kept samples.
    pub geomean: f64,
    /// Half-width of the 95% confidence interval on the mean, using the
    /// Student-t critical value for `n - 1` degrees of freedom (0 when
    /// n < 2).
    pub ci95: f64,
}

impl Stats {
    /// Samples rejected for any reason.
    pub fn rejected(&self) -> usize {
        self.rejected_invalid + self.outliers
    }

    /// Relative CI half-width `ci95 / median` — the convergence metric
    /// of the adaptive repetition controller. `None` when `n < 2`: a
    /// single sample has no measurable spread, and a fabricated 0 would
    /// make the controller stop before it has seen any variance.
    pub fn rel_ci95(&self) -> Option<f64> {
        if self.n >= 2 {
            Some(self.ci95 / self.median)
        } else {
            None
        }
    }
}

/// Two-sided 95% Student-t critical values for 1–30 degrees of freedom.
/// Beyond 30 the t distribution is close enough to normal that 1.96
/// serves.
const T_CRITICAL_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The two-sided 95% Student-t critical value for `df` degrees of
/// freedom (table for df 1–30, the normal 1.96 beyond). `df == 0` has
/// no defined interval; callers never ask (ci95 is 0 when n < 2), but
/// the table's df = 1 value is returned as the conservative answer.
pub fn t_critical_95(df: usize) -> f64 {
    match df {
        0 => T_CRITICAL_95[0],
        1..=30 => T_CRITICAL_95[df - 1],
        _ => 1.96,
    }
}

/// Geometric mean.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Indices of samples that survive modified-z-score outlier rejection
/// (|x - median| > 3.5 · 1.4826 · MAD). With fewer than four samples
/// everything is kept: there is not enough data to call anything an
/// outlier.
fn kept_indices(samples: &[f64]) -> Vec<usize> {
    if samples.len() < 4 {
        return (0..samples.len()).collect();
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let med = median_of_sorted(&sorted);
    let mut devs: Vec<f64> = samples.iter().map(|&x| (x - med).abs()).collect();
    devs.sort_by(f64::total_cmp);
    let mad = median_of_sorted(&devs);
    if mad == 0.0 {
        return (0..samples.len()).collect();
    }
    let cutoff = 3.5 * 1.4826 * mad;
    (0..samples.len())
        .filter(|&i| (samples[i] - med).abs() <= cutoff)
        .collect()
}

/// Compute [`Stats`] over timing samples. Samples that are not
/// positive finite numbers cannot be real timings: they are rejected
/// (and counted in `rejected_invalid`) *before* MAD outlier rejection,
/// never clamped to a fabricated value — a zero or negative entry must
/// not drag `geomean`/`min`/`mean` toward an invented floor. Returns
/// `None` when no valid sample remains (including the empty slice).
pub fn stats(samples: &[f64]) -> Option<Stats> {
    let valid: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if valid.is_empty() {
        return None;
    }
    let kept_idx = kept_indices(&valid);
    let kept: Vec<f64> = kept_idx.iter().map(|&i| valid[i]).collect();
    let n = kept.len();
    let mut sorted = kept.clone();
    sorted.sort_by(f64::total_cmp);
    let mean = kept.iter().sum::<f64>() / n as f64;
    let stddev = if n >= 2 {
        (kept.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64).sqrt()
    } else {
        0.0
    };
    Some(Stats {
        n,
        rejected_invalid: samples.len() - valid.len(),
        outliers: valid.len() - n,
        min: sorted[0],
        max: *sorted.last().unwrap(),
        mean,
        median: median_of_sorted(&sorted),
        stddev,
        geomean: geomean(&kept),
        ci95: if n >= 2 {
            t_critical_95(n - 1) * stddev / (n as f64).sqrt()
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn single_sample() {
        let s = stats(&[2.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.rejected(), 0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.rel_ci95(), None, "one sample has no measurable spread");
    }

    #[test]
    fn empty_is_none() {
        assert!(stats(&[]).is_none());
    }

    #[test]
    fn t_critical_table() {
        assert_eq!(t_critical_95(1), 12.706);
        assert_eq!(t_critical_95(2), 4.303);
        assert_eq!(t_critical_95(30), 2.042);
        assert_eq!(t_critical_95(31), 1.96);
        assert_eq!(t_critical_95(1000), 1.96);
        assert_eq!(t_critical_95(0), 12.706, "df 0 answers conservatively");
        // The table is monotonically decreasing toward the normal value.
        for df in 1..40 {
            assert!(t_critical_95(df + 1) <= t_critical_95(df), "df {df}");
            assert!(t_critical_95(df) >= 1.96);
        }
    }

    #[test]
    fn ci95_at_n3_uses_student_t_not_normal() {
        // The two-sided 95% critical value at n = 3 (df = 2) is 4.303;
        // the normal approximation's 1.96 would understate the interval
        // by more than half.
        let samples = [1.0, 1.2, 0.8];
        let s = stats(&samples).unwrap();
        assert_eq!(s.n, 3);
        let expected = 4.303 * s.stddev / (3f64).sqrt();
        assert!(
            (s.ci95 - expected).abs() < 1e-12,
            "ci95 {} != t-based {expected}",
            s.ci95
        );
        let normal = 1.96 * s.stddev / (3f64).sqrt();
        assert!(s.ci95 > 2.0 * normal, "t interval must dwarf 1.96-based");
    }

    #[test]
    fn rel_ci95_is_ci_over_median() {
        let s = stats(&[1.0, 1.2, 0.8]).unwrap();
        let rel = s.rel_ci95().unwrap();
        assert!((rel - s.ci95 / s.median).abs() < 1e-15);
        assert!(rel > 0.0);
    }

    #[test]
    fn non_positive_samples_are_rejected_not_clamped() {
        // A zero timing must not survive as a fabricated 1e-12 floor
        // that drags geomean/min toward zero.
        let s = stats(&[1.0, 1.1, 0.0, 0.9, 1.05]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.rejected_invalid, 1);
        assert_eq!(s.outliers, 0);
        assert!(s.min >= 0.9);
        assert!(s.geomean > 0.9, "geomean {} was dragged down", s.geomean);
        let s = stats(&[-3.0, 2.0]).unwrap();
        assert_eq!((s.n, s.rejected_invalid, s.outliers), (1, 1, 0));
        assert_eq!(s.min, 2.0);
    }

    #[test]
    fn non_finite_samples_are_rejected() {
        let s = stats(&[1.0, f64::NAN, f64::INFINITY, 1.2]).unwrap();
        assert_eq!((s.n, s.rejected_invalid), (2, 2));
        assert!(s.mean.is_finite());
    }

    #[test]
    fn all_invalid_yields_none_never_a_fabricated_value() {
        assert!(stats(&[0.0]).is_none());
        assert!(stats(&[-1.0, 0.0, f64::NAN]).is_none());
    }

    #[test]
    fn invalid_rejection_happens_before_outlier_rejection() {
        // Four zeros + four tight samples: with clamping, the zeros
        // would form their own cluster and distort the MAD; with
        // rejection, the four real samples all survive.
        let s = stats(&[0.0, 0.0, 0.0, 0.0, 1.0, 1.01, 0.99, 1.02]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.rejected_invalid, 4);
        assert_eq!(s.outliers, 0);
        assert!((s.median - 1.0).abs() < 0.05);
    }

    #[test]
    fn median_even_and_odd() {
        let s = stats(&[1.0, 3.0]).unwrap();
        assert_eq!(s.median, 2.0);
        let s = stats(&[1.0, 100.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.rejected(), 0, "n<4 keeps everything");
    }

    #[test]
    fn outlier_rejected_and_counted_separately_from_invalid() {
        // Nine tight samples and one wild one.
        let mut v = vec![1.0, 1.01, 0.99, 1.02, 0.98, 1.0, 1.01, 0.99, 1.0];
        v.push(50.0);
        let s = stats(&v).unwrap();
        assert_eq!(s.outliers, 1);
        assert_eq!(s.rejected_invalid, 0);
        assert_eq!(s.n, 9);
        assert!(s.max < 2.0);
        // The same data plus a zero timing: the zero lands in
        // rejected_invalid, the wild sample stays an outlier — a broken
        // clock and a noisy cell are different diagnoses.
        v.push(0.0);
        let s = stats(&v).unwrap();
        assert_eq!((s.n, s.rejected_invalid, s.outliers), (9, 1, 1));
    }

    #[test]
    fn identical_samples_keep_all() {
        let s = stats(&[2.0; 8]).unwrap();
        assert_eq!(s.n, 8);
        assert_eq!(s.rejected(), 0);
        assert_eq!(s.stddev, 0.0);
        assert!((s.geomean - 2.0).abs() < 1e-12);
        assert_eq!(s.rel_ci95(), Some(0.0));
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = stats(&[1.0, 1.2, 0.8]).unwrap();
        let many: Vec<f64> = (0..30)
            .map(|i| {
                if i % 3 == 0 {
                    1.0
                } else if i % 3 == 1 {
                    1.2
                } else {
                    0.8
                }
            })
            .collect();
        let many = stats(&many).unwrap();
        assert!(many.ci95 < few.ci95);
    }
}

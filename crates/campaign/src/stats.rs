//! Sample statistics for campaign cells: robust location/spread
//! estimates, confidence intervals, and outlier rejection.

/// Summary statistics over one cell's repetition timings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Samples kept after invalidity and outlier rejection.
    pub n: usize,
    /// Samples rejected — invalid (non-positive or non-finite) plus
    /// MAD outliers. `n + rejected` equals the input length.
    pub rejected: usize,
    /// Minimum of kept samples.
    pub min: f64,
    /// Maximum of kept samples.
    pub max: f64,
    /// Arithmetic mean of kept samples.
    pub mean: f64,
    /// Median of kept samples.
    pub median: f64,
    /// Sample standard deviation (0 when n < 2).
    pub stddev: f64,
    /// Geometric mean of kept samples.
    pub geomean: f64,
    /// Half-width of the 95% confidence interval on the mean
    /// (normal approximation; 0 when n < 2).
    pub ci95: f64,
}

/// Geometric mean.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Indices of samples that survive modified-z-score outlier rejection
/// (|x - median| > 3.5 · 1.4826 · MAD). With fewer than four samples
/// everything is kept: there is not enough data to call anything an
/// outlier.
fn kept_indices(samples: &[f64]) -> Vec<usize> {
    if samples.len() < 4 {
        return (0..samples.len()).collect();
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let med = median_of_sorted(&sorted);
    let mut devs: Vec<f64> = samples.iter().map(|&x| (x - med).abs()).collect();
    devs.sort_by(f64::total_cmp);
    let mad = median_of_sorted(&devs);
    if mad == 0.0 {
        return (0..samples.len()).collect();
    }
    let cutoff = 3.5 * 1.4826 * mad;
    (0..samples.len())
        .filter(|&i| (samples[i] - med).abs() <= cutoff)
        .collect()
}

/// Compute [`Stats`] over timing samples. Samples that are not
/// positive finite numbers cannot be real timings: they are rejected
/// (and counted in `rejected`) *before* MAD outlier rejection, never
/// clamped to a fabricated value — a zero or negative entry must not
/// drag `geomean`/`min`/`mean` toward an invented floor. Returns
/// `None` when no valid sample remains (including the empty slice).
pub fn stats(samples: &[f64]) -> Option<Stats> {
    let valid: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if valid.is_empty() {
        return None;
    }
    let kept_idx = kept_indices(&valid);
    let kept: Vec<f64> = kept_idx.iter().map(|&i| valid[i]).collect();
    let n = kept.len();
    let mut sorted = kept.clone();
    sorted.sort_by(f64::total_cmp);
    let mean = kept.iter().sum::<f64>() / n as f64;
    let stddev = if n >= 2 {
        (kept.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64).sqrt()
    } else {
        0.0
    };
    Some(Stats {
        n,
        rejected: samples.len() - n,
        min: sorted[0],
        max: *sorted.last().unwrap(),
        mean,
        median: median_of_sorted(&sorted),
        stddev,
        geomean: geomean(&kept),
        ci95: if n >= 2 {
            1.96 * stddev / (n as f64).sqrt()
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn single_sample() {
        let s = stats(&[2.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn empty_is_none() {
        assert!(stats(&[]).is_none());
    }

    #[test]
    fn non_positive_samples_are_rejected_not_clamped() {
        // A zero timing must not survive as a fabricated 1e-12 floor
        // that drags geomean/min toward zero.
        let s = stats(&[1.0, 1.1, 0.0, 0.9, 1.05]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.rejected, 1);
        assert!(s.min >= 0.9);
        assert!(s.geomean > 0.9, "geomean {} was dragged down", s.geomean);
        let s = stats(&[-3.0, 2.0]).unwrap();
        assert_eq!((s.n, s.rejected), (1, 1));
        assert_eq!(s.min, 2.0);
    }

    #[test]
    fn non_finite_samples_are_rejected() {
        let s = stats(&[1.0, f64::NAN, f64::INFINITY, 1.2]).unwrap();
        assert_eq!((s.n, s.rejected), (2, 2));
        assert!(s.mean.is_finite());
    }

    #[test]
    fn all_invalid_yields_none_never_a_fabricated_value() {
        assert!(stats(&[0.0]).is_none());
        assert!(stats(&[-1.0, 0.0, f64::NAN]).is_none());
    }

    #[test]
    fn invalid_rejection_happens_before_outlier_rejection() {
        // Four zeros + four tight samples: with clamping, the zeros
        // would form their own cluster and distort the MAD; with
        // rejection, the four real samples all survive.
        let s = stats(&[0.0, 0.0, 0.0, 0.0, 1.0, 1.01, 0.99, 1.02]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.rejected, 4);
        assert!((s.median - 1.0).abs() < 0.05);
    }

    #[test]
    fn median_even_and_odd() {
        let s = stats(&[1.0, 3.0]).unwrap();
        assert_eq!(s.median, 2.0);
        let s = stats(&[1.0, 100.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.rejected, 0, "n<4 keeps everything");
    }

    #[test]
    fn outlier_rejected() {
        // Nine tight samples and one wild one.
        let mut v = vec![1.0, 1.01, 0.99, 1.02, 0.98, 1.0, 1.01, 0.99, 1.0];
        v.push(50.0);
        let s = stats(&v).unwrap();
        assert_eq!(s.rejected, 1);
        assert_eq!(s.n, 9);
        assert!(s.max < 2.0);
    }

    #[test]
    fn identical_samples_keep_all() {
        let s = stats(&[2.0; 8]).unwrap();
        assert_eq!(s.n, 8);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.stddev, 0.0);
        assert!((s.geomean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = stats(&[1.0, 1.2, 0.8]).unwrap();
        let many: Vec<f64> = (0..30)
            .map(|i| {
                if i % 3 == 0 {
                    1.0
                } else if i % 3 == 1 {
                    1.2
                } else {
                    0.8
                }
            })
            .collect();
        let many = stats(&many).unwrap();
        assert!(many.ci95 < few.ci95);
    }
}

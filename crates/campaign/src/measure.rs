//! Single-measurement primitives: which guest, which engine, one run.
//!
//! These moved here from `simbench-harness` so the campaign runner is
//! the one place that executes simulations; the harness re-exports them
//! for backwards compatibility. Every run constructs its own
//! [`Machine`] and engine, so measurements are independent and safe to
//! execute concurrently.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use simbench_apps::{build_app, App};
use simbench_core::engine::{Engine, ExitReason, RunLimits, RunOutcome};
use simbench_core::events::Counters;
use simbench_core::image::GuestImage;
use simbench_core::isa::Isa;
use simbench_core::machine::Machine;
use simbench_dbt::{Dbt, VersionProfile};
use simbench_detailed::Detailed;
use simbench_interp::Interp;
use simbench_platform::Platform;
use simbench_suite::{build, Benchmark};
use simbench_virt::Virt;

use crate::registry::{dispatch_guest, GuestSpec, GuestVisitor};

/// Guest architecture selector. Per-guest metadata and concrete types
/// hang off the [`crate::registry`], not off matches on this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Guest {
    /// ARM-like guest.
    Armlet,
    /// x86-like guest.
    Petix,
    /// RISC-V-like guest (mixed 16/32-bit instructions).
    Riscle,
}

impl Guest {
    /// All guests, in registry-table order.
    pub const ALL: [Guest; 3] = [Guest::Armlet, Guest::Petix, Guest::Riscle];

    /// Display name ("armlet (ARM-like)" etc.), from the registry table.
    pub fn name(self) -> &'static str {
        crate::registry::info(self).display
    }

    /// ISA name used by `Benchmark::supported_on` and as the stable id
    /// in persisted campaign results, from the registry table.
    pub fn isa_name(self) -> &'static str {
        crate::registry::info(self).isa_name
    }

    /// Inverse of [`Guest::isa_name`].
    pub fn by_isa_name(name: &str) -> Option<Guest> {
        crate::registry::GUESTS
            .iter()
            .find(|i| i.isa_name == name)
            .map(|i| i.guest)
    }
}

/// Engine selector, matching the five columns of Fig 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The DBT engine at a version profile (QEMU-DBT analogue).
    Dbt(VersionProfile),
    /// Fast interpreter (SimIt-ARM analogue).
    Interp,
    /// Detailed timing interpreter (Gem5 analogue).
    Detailed,
    /// Hardware-assisted virtualization (QEMU-KVM analogue).
    Virt,
    /// Bare-metal stand-in (zero-exit-cost direct execution).
    Native,
}

impl EngineKind {
    /// The five Fig 7 columns, newest DBT profile.
    pub fn fig7_columns() -> [EngineKind; 5] {
        [
            EngineKind::Dbt(VersionProfile::latest()),
            EngineKind::Interp,
            EngineKind::Detailed,
            EngineKind::Virt,
            EngineKind::Native,
        ]
    }

    /// One `Dbt` entry per benchmarked QEMU version profile, oldest
    /// first — the engine axis of every version-sweep figure.
    pub fn all_dbt_versions() -> Vec<EngineKind> {
        simbench_dbt::QEMU_VERSIONS
            .iter()
            .map(|v| EngineKind::Dbt(*v))
            .collect()
    }

    /// Column header.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Dbt(_) => "dbt (QEMU)",
            EngineKind::Interp => "interp (SimIt)",
            EngineKind::Detailed => "detailed (Gem5)",
            EngineKind::Virt => "virt (KVM)",
            EngineKind::Native => "native (HW)",
        }
    }

    /// Stable id used in persisted campaign results and on the CLI:
    /// `dbt@<version>`, `interp`, `detailed`, `virt`, `native`.
    pub fn id(self) -> String {
        match self {
            EngineKind::Dbt(v) => format!("dbt@{}", v.name),
            EngineKind::Interp => "interp".to_string(),
            EngineKind::Detailed => "detailed".to_string(),
            EngineKind::Virt => "virt".to_string(),
            EngineKind::Native => "native".to_string(),
        }
    }

    /// Inverse of [`EngineKind::id`]. Bare `dbt` resolves to the latest
    /// version profile.
    pub fn by_id(id: &str) -> Option<EngineKind> {
        match id {
            "interp" => Some(EngineKind::Interp),
            "detailed" => Some(EngineKind::Detailed),
            "virt" => Some(EngineKind::Virt),
            "native" => Some(EngineKind::Native),
            "dbt" => Some(EngineKind::Dbt(VersionProfile::latest())),
            _ => id
                .strip_prefix("dbt@")
                .and_then(VersionProfile::by_name)
                .map(EngineKind::Dbt),
        }
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Wall-clock time of the timed kernel phase.
    pub seconds: f64,
    /// Events retired during the kernel phase.
    pub counters: Counters,
    /// Why the run ended.
    pub exit: ExitReason,
    /// Iterations the guest executed.
    pub iterations: u32,
}

impl Sample {
    /// True when the run completed normally.
    pub fn ok(&self) -> bool {
        self.exit == ExitReason::Halted
    }
}

/// Measurement configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Iteration divisor applied to the paper's Fig 3 counts (and app
    /// defaults). 1 reproduces the paper's full counts; the default keeps
    /// a full `all` run to a few minutes on a laptop.
    pub scale: u64,
    /// Safety limits per run.
    pub limits: RunLimits,
    /// Worker threads for campaign execution (1 = serial).
    pub jobs: usize,
    /// Repetitions per matrix cell.
    pub reps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: 2000,
            limits: RunLimits {
                max_insns: u64::MAX,
                wall_limit: Some(Duration::from_secs(120)),
            },
            jobs: 1,
            reps: 1,
        }
    }
}

impl Config {
    /// A configuration with the given scale divisor.
    pub fn with_scale(scale: u64) -> Self {
        Config {
            scale,
            ..Default::default()
        }
    }

    /// Same configuration with a worker count.
    pub fn with_jobs(self, jobs: usize) -> Self {
        Config {
            jobs: jobs.max(1),
            ..self
        }
    }
}

/// Identity of one assembled guest image: workload × iteration count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ImageKey {
    Suite(Guest, Benchmark, u32),
    App(Guest, App, u32),
}

/// Process-wide cache of assembled guest images.
///
/// Repetitions (and adaptive re-enqueues) of a cell measure the *same*
/// guest binary, so re-running the assembler for every repetition only
/// adds untimed per-rep overhead — the campaign should spend its wall
/// clock simulating, not assembling. Images are immutable once built
/// (`Machine::boot` copies them into guest RAM), so one `Arc` per
/// (guest, workload, iterations) is shared by every repetition and
/// worker thread. The cache is bounded by the campaign matrix: one
/// entry per distinct cell workload.
fn image_cache() -> &'static Mutex<HashMap<ImageKey, Arc<GuestImage>>> {
    static CACHE: OnceLock<Mutex<HashMap<ImageKey, Arc<GuestImage>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Fetch or build the image for `key`. `None` when the workload does
/// not exist on the guest architecture. Building happens outside the
/// lock; a racing duplicate build keeps the first inserted image so
/// all repetitions still share one copy.
///
/// The cache must survive mutex poisoning: a quarantined (panicked)
/// repetition may have held this lock, and the map only ever holds
/// fully-built immutable images behind `Arc`s — there is no
/// half-mutated state a poison flag could be protecting — so the rest
/// of the campaign keeps using it rather than unwinding on `unwrap`.
fn cached_image(
    key: ImageKey,
    build: impl FnOnce() -> Option<GuestImage>,
) -> Option<Arc<GuestImage>> {
    static OBS_HITS: simbench_obs::Counter =
        simbench_obs::Counter::new("campaign.image_cache_hits");
    static OBS_MISSES: simbench_obs::Counter =
        simbench_obs::Counter::new("campaign.image_cache_misses");
    let unpoison = std::sync::PoisonError::into_inner;
    if let Some(img) = image_cache().lock().unwrap_or_else(unpoison).get(&key) {
        OBS_HITS.add(1);
        return Some(Arc::clone(img));
    }
    OBS_MISSES.add(1);
    let img = Arc::new(build()?);
    let mut cache = image_cache().lock().unwrap_or_else(unpoison);
    Some(Arc::clone(cache.entry(key).or_insert(img)))
}

/// Fetch or build the assembled image for one workload at a campaign
/// scale, sharing the process-wide cache with the campaign runner.
/// `None` when the workload does not exist on the guest architecture.
///
/// This is the image a campaign cell of the same (guest, workload,
/// scale) measures, which is what makes it the right input for
/// cross-engine differential checking: the differ and the campaign
/// disagree about nothing but which engines run the bytes.
pub fn workload_image(
    guest: Guest,
    workload: crate::spec::Workload,
    scale: u64,
) -> Option<Arc<GuestImage>> {
    struct BuildImage {
        workload: crate::spec::Workload,
        scale: u64,
    }
    impl GuestVisitor for BuildImage {
        type Out = Option<Arc<GuestImage>>;
        fn visit<G: GuestSpec>(self) -> Self::Out {
            match self.workload {
                crate::spec::Workload::Suite(bench) => {
                    let iters = bench.scaled_iterations(self.scale);
                    let key = ImageKey::Suite(G::GUEST, bench, iters);
                    cached_image(key, || build(&G::Support::default(), bench, iters))
                }
                crate::spec::Workload::App(app) => {
                    let iters = app.scaled_iterations(app_scale_divisor(self.scale));
                    let key = ImageKey::App(G::GUEST, app, iters);
                    cached_image(key, || Some(build_app(&G::Support::default(), app, iters)))
                }
            }
        }
    }
    dispatch_guest(guest, BuildImage { workload, scale })
}

fn run_image_on<I: Isa>(engine: EngineKind, image: &GuestImage, limits: &RunLimits) -> RunOutcome {
    let mut m = Machine::<I, Platform>::boot(image, Platform::new());
    match engine {
        EngineKind::Dbt(profile) => Dbt::<I>::with_profile(profile).run(&mut m, limits),
        EngineKind::Interp => Interp::<I>::new().run(&mut m, limits),
        EngineKind::Detailed => {
            // Mirror the paper's Fig 7 footnote: Gem5 lacks device models
            // for the interrupt controller and the safe MMIO device.
            let pages = [
                simbench_platform::INTC_BASE >> 12,
                simbench_platform::SAFEDEV_BASE >> 12,
            ];
            Detailed::<I>::new()
                .with_unimplemented_pages(&pages)
                .run(&mut m, limits)
        }
        EngineKind::Virt => Virt::<I>::kvm().run(&mut m, limits),
        EngineKind::Native => Virt::<I>::native().run(&mut m, limits),
    }
}

fn sample_from(out: RunOutcome, iterations: u32) -> Sample {
    Sample {
        seconds: out.kernel_wall().as_secs_f64(),
        counters: out.kernel_counters(),
        exit: out.exit,
        iterations,
    }
}

/// Run one suite benchmark. `None` when the benchmark does not exist on
/// the guest architecture (Nonprivileged Access on petix).
pub fn run_suite_bench(
    guest: Guest,
    engine: EngineKind,
    bench: Benchmark,
    cfg: &Config,
) -> Option<Sample> {
    struct RunBench {
        engine: EngineKind,
        bench: Benchmark,
        iters: u32,
        limits: RunLimits,
    }
    impl GuestVisitor for RunBench {
        type Out = Option<RunOutcome>;
        fn visit<G: GuestSpec>(self) -> Self::Out {
            let key = ImageKey::Suite(G::GUEST, self.bench, self.iters);
            let image = cached_image(key, || {
                build(&G::Support::default(), self.bench, self.iters)
            })?;
            Some(run_image_on::<G::Isa>(self.engine, &image, &self.limits))
        }
    }
    let iters = bench.scaled_iterations(cfg.scale);
    let out = dispatch_guest(
        guest,
        RunBench {
            engine,
            bench,
            iters,
            limits: cfg.limits,
        },
    )?;
    Some(sample_from(out, iters))
}

/// The iteration divisor apps run at for a campaign scale. Apps use a
/// gentler divisor than the micro-benchmarks (the paper's point is
/// that they are large relative to them), but the mapping must stay
/// *monotonic*: `scale / 50` truncates to 0 for `scale < 50`, which
/// `scaled_iterations` silently rescues to divisor 1 — so asking for
/// more scaling (`--scale 10`) ran apps at full paper iteration
/// counts, 40× more work than `--scale 50`. `div_ceil` keeps the same
/// divisor at every multiple of 50 while never letting a smaller scale
/// yield more app work.
fn app_scale_divisor(scale: u64) -> u64 {
    scale.div_ceil(50)
}

/// Run one synthetic application.
pub fn run_app(guest: Guest, engine: EngineKind, app: App, cfg: &Config) -> Sample {
    struct RunApp {
        engine: EngineKind,
        app: App,
        iters: u32,
        limits: RunLimits,
    }
    impl GuestVisitor for RunApp {
        type Out = RunOutcome;
        fn visit<G: GuestSpec>(self) -> Self::Out {
            let key = ImageKey::App(G::GUEST, self.app, self.iters);
            let image = cached_image(key, || {
                Some(build_app(&G::Support::default(), self.app, self.iters))
            })
            .expect("apps exist on every guest");
            run_image_on::<G::Isa>(self.engine, &image, &self.limits)
        }
    }
    let iters = app.scaled_iterations(app_scale_divisor(cfg.scale));
    let out = dispatch_guest(
        guest,
        RunApp {
            engine,
            app,
            iters,
            limits: cfg.limits,
        },
    );
    sample_from(out, iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_suite::{ArmletSupport, PetixSupport};

    #[test]
    fn engine_ids_roundtrip() {
        for engine in EngineKind::fig7_columns() {
            assert_eq!(EngineKind::by_id(&engine.id()), Some(engine));
        }
        for v in simbench_dbt::QEMU_VERSIONS {
            let e = EngineKind::Dbt(*v);
            assert_eq!(EngineKind::by_id(&e.id()), Some(e));
        }
        assert_eq!(
            EngineKind::by_id("dbt"),
            Some(EngineKind::Dbt(VersionProfile::latest()))
        );
        assert_eq!(EngineKind::by_id("dbt@v0.0.0"), None);
        assert_eq!(EngineKind::by_id("qemu"), None);
    }

    #[test]
    fn guest_ids_roundtrip() {
        for g in Guest::ALL {
            assert_eq!(Guest::by_isa_name(g.isa_name()), Some(g));
        }
        assert_eq!(Guest::by_isa_name("mips"), None);
    }

    #[test]
    fn app_scaling_is_monotonic_in_scale() {
        // The old `scale / 50` divisor truncated to 0 below 50, so
        // `--scale 10` ran apps at *full* paper iteration counts — 40×
        // more work than `--scale 50`. Smaller scale must never mean
        // more app work.
        for app in App::ALL {
            let mut prev = app.scaled_iterations(app_scale_divisor(1));
            for scale in [2, 10, 25, 49, 50, 51, 99, 100, 1000, 20_000, 1_000_000] {
                let iters = app.scaled_iterations(app_scale_divisor(scale));
                assert!(
                    iters <= prev,
                    "{}: scale {scale} yields {iters} iterations, more than a \
                     smaller scale's {prev}",
                    app.name()
                );
                prev = iters;
            }
            // The regression case called out in the issue, explicitly.
            assert!(
                app.scaled_iterations(app_scale_divisor(10))
                    <= app.scaled_iterations(app_scale_divisor(50))
            );
        }
        // Multiples of 50 keep their historical divisor, so existing
        // campaign baselines (scale 20000 → divisor 400) are unchanged.
        assert_eq!(app_scale_divisor(50), 1);
        assert_eq!(app_scale_divisor(100), 2);
        assert_eq!(app_scale_divisor(20_000), 400);
        // Below 50 the divisor floors at 1 instead of collapsing to the
        // rescued-zero full-work path.
        assert_eq!(app_scale_divisor(1), 1);
        assert_eq!(app_scale_divisor(49), 1);
        assert_eq!(app_scale_divisor(51), 2);
    }

    #[test]
    fn image_cache_survives_mutex_poisoning() {
        // A quarantined repetition can panic while holding the cache
        // lock; subsequent cells must keep measuring, not unwind on a
        // poisoned `unwrap`. Poison the real process-wide cache, then
        // measure through it.
        let cache = image_cache();
        let _ = std::panic::catch_unwind(|| {
            let _guard = cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            panic!("poison the image cache");
        });
        let key = ImageKey::Suite(Guest::Armlet, Benchmark::Syscall, 32);
        let img = cached_image(key, || build(&ArmletSupport::new(), Benchmark::Syscall, 32));
        assert!(img.is_some(), "poisoned cache must keep serving images");
        let again = cached_image(key, || panic!("second fetch must hit the cache"));
        assert!(
            Arc::ptr_eq(&img.unwrap(), &again.unwrap()),
            "hits keep sharing one assembly after poisoning"
        );
    }

    #[test]
    fn image_cache_shares_one_assembly_per_cell() {
        let key = ImageKey::Suite(Guest::Armlet, Benchmark::Syscall, 64);
        let a = cached_image(key, || build(&ArmletSupport::new(), Benchmark::Syscall, 64)).unwrap();
        let b = cached_image(key, || panic!("second fetch must hit the cache")).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repetitions share one assembly");
        // Workloads absent on the guest stay absent (nothing is cached).
        let absent = ImageKey::Suite(Guest::Petix, Benchmark::NonprivAccess, 64);
        assert!(cached_image(absent, || build(
            &PetixSupport::new(),
            Benchmark::NonprivAccess,
            64
        ))
        .is_none());
    }

    #[test]
    fn smoke_syscall_on_all_engines() {
        let cfg = Config {
            scale: 1_000_000,
            ..Default::default()
        };
        for engine in EngineKind::fig7_columns() {
            let s = run_suite_bench(Guest::Armlet, engine, Benchmark::Syscall, &cfg).unwrap();
            assert!(s.ok(), "{engine:?}: {:?}", s.exit);
            assert!(s.counters.syscalls >= 16);
        }
    }
}

//! Persisted campaign results: a versioned JSON schema with one record
//! per matrix cell, carrying raw repetition timings, aggregate
//! statistics, and the deterministic per-cell event profile.
//!
//! The current schema string is `simbench-campaign/v6`, which adds the
//! fault-tolerance fields: two new cell statuses (`quarantined:<panic
//! payload>` for cells whose measurement panicked and was isolated
//! under `catch_unwind`, and `timed_out:<why>` for cells the per-cell
//! watchdog killed), an optional per-cell `attempts` count (total
//! repetition executions including watchdog/retry re-runs; written only
//! when it differs from `reps_run`, so clean runs are byte-identical to
//! v5 modulo the schema line), and an optional top-level `journal`
//! string echoing the write-ahead journal directory the campaign
//! appended to (`campaign run --journal DIR`).
//!
//! Readers accept the `v5` layout (identical but for the new optional
//! fields; stored statistics and stop reasons are kept verbatim), the
//! `v4` layout (additionally no `telemetry` block; also trusted
//! verbatim), the `v3` layout (whose stats are recomputed from the raw
//! per-repetition timings, upgrading the old normal-approximation
//! `ci95` to Student-t in the process), the `v2` layout (which
//! additionally lacked shard metadata), and the `v1` layout (which
//! also lacked `tested_ops` / `counter_variants`), migrating them on
//! load; anything else is rejected with a typed [`LoadError`] rather
//! than guessed at, so future layout changes bump the version and add
//! an explicit migration.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use simbench_core::events::Counters;

use crate::json::{self, Value};
use crate::spec::{CampaignSpec, CellKey, PrecisionTarget, Shard, Workload};
use crate::stats::Stats;

/// Schema identifier written to every result file.
pub const SCHEMA: &str = "simbench-campaign/v6";

/// The previous schema identifier (no fault-tolerance fields: no
/// `quarantined` / `timed_out` statuses, no `attempts`, no `journal`
/// echo), still accepted on load with statistics and stop reasons
/// trusted verbatim — the new fields are strictly additive, so a v5
/// document is a valid v6 document under the old schema string.
pub const SCHEMA_V5: &str = "simbench-campaign/v5";

/// The v4 schema identifier (additionally no `telemetry` block), still
/// accepted on load. Unlike pre-v4 versions its statistics and stop
/// reasons are trusted verbatim — v4 files may be adaptive runs whose
/// `converged` / `max_reps` verdicts a recompute could not recover.
pub const SCHEMA_V4: &str = "simbench-campaign/v4";

/// The v3 schema identifier (no adaptive-measurement fields,
/// normal-approximation CIs, a single `rejected` count), still accepted
/// on load and migrated to the current layout.
pub const SCHEMA_V3: &str = "simbench-campaign/v3";

/// The v2 schema identifier (additionally: no shard metadata, no
/// `skipped` status), still accepted on load and migrated.
pub const SCHEMA_V2: &str = "simbench-campaign/v2";

/// The original schema identifier, still accepted on load and migrated
/// to the current layout.
pub const SCHEMA_V1: &str = "simbench-campaign/v1";

/// Why a campaign result failed to load. Every malformed input maps to
/// a variant — loading never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The file could not be read.
    Io(String),
    /// The text is not well-formed JSON.
    Json(String),
    /// The document declares a schema this reader does not know.
    Schema {
        /// The schema string found in the document.
        found: String,
    },
    /// The document is valid JSON with a known schema but violates the
    /// campaign layout (missing or mistyped fields, unknown counters).
    Malformed(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "{e}"),
            LoadError::Json(e) => write!(f, "invalid JSON: {e}"),
            LoadError::Schema { found } => write!(
                f,
                "unsupported schema {found:?} (expected {SCHEMA:?}, {SCHEMA_V5:?}, \
                 {SCHEMA_V4:?}, {SCHEMA_V3:?}, {SCHEMA_V2:?} or {SCHEMA_V1:?})"
            ),
            LoadError::Malformed(e) => write!(f, "malformed campaign result: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Terminal state of one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellStatus {
    /// All repetitions halted normally.
    Ok,
    /// The workload does not exist on the guest architecture
    /// (Fig 7's `-`).
    NotOnIsa,
    /// The engine lacks a required feature (Fig 7's `-†`).
    Unsupported(String),
    /// A repetition ended abnormally (instruction/wall limit).
    Failed(String),
    /// The cell belongs to a different shard of a sharded run and was
    /// deliberately not measured here. Only partial (shard) results
    /// contain skipped cells; merging resolves them.
    Skipped,
    /// The cell's measurement panicked on every attempt; the panic was
    /// isolated under `catch_unwind` and the payload recorded here.
    /// The rest of the matrix kept running.
    Quarantined(String),
    /// Every attempt outlived the per-cell watchdog (`--cell-timeout`)
    /// and was abandoned.
    TimedOut(String),
}

impl CellStatus {
    /// True for the statuses that mean "this cell was supposed to be
    /// measured here and was not measured cleanly" — broken coverage
    /// that comparisons must surface, never a silent hole.
    pub fn is_broken(&self) -> bool {
        matches!(
            self,
            CellStatus::Failed(_)
                | CellStatus::Unsupported(_)
                | CellStatus::Quarantined(_)
                | CellStatus::TimedOut(_)
        )
    }

    fn to_json_string(&self) -> String {
        match self {
            CellStatus::Ok => "ok".to_string(),
            CellStatus::NotOnIsa => "not-on-isa".to_string(),
            CellStatus::Unsupported(why) => format!("unsupported:{why}"),
            CellStatus::Failed(why) => format!("failed:{why}"),
            CellStatus::Skipped => "skipped".to_string(),
            CellStatus::Quarantined(payload) => format!("quarantined:{payload}"),
            CellStatus::TimedOut(why) => format!("timed_out:{why}"),
        }
    }

    fn from_json_string(s: &str) -> CellStatus {
        match s {
            "ok" => CellStatus::Ok,
            "not-on-isa" => CellStatus::NotOnIsa,
            "skipped" => CellStatus::Skipped,
            _ => {
                if let Some(why) = s.strip_prefix("unsupported:") {
                    CellStatus::Unsupported(why.to_string())
                } else if let Some(why) = s.strip_prefix("failed:") {
                    CellStatus::Failed(why.to_string())
                } else if let Some(payload) = s.strip_prefix("quarantined:") {
                    CellStatus::Quarantined(payload.to_string())
                } else if let Some(why) = s.strip_prefix("timed_out:") {
                    CellStatus::TimedOut(why.to_string())
                } else {
                    CellStatus::Failed(format!("unknown status {s}"))
                }
            }
        }
    }
}

/// Why a cell stopped measuring repetitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Adaptive mode: the relative CI half-width reached the target.
    Converged,
    /// Adaptive mode: the cell hit `max_reps` without converging.
    MaxReps,
    /// Fixed mode: the spec'd repetition count ran, no convergence
    /// criterion was in play.
    Fixed,
}

impl StopReason {
    fn as_json_str(self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::MaxReps => "max_reps",
            StopReason::Fixed => "fixed",
        }
    }

    fn from_json_str(s: &str) -> Result<StopReason, String> {
        match s {
            "converged" => Ok(StopReason::Converged),
            "max_reps" => Ok(StopReason::MaxReps),
            "fixed" => Ok(StopReason::Fixed),
            other => Err(format!("unknown stop_reason {other:?}")),
        }
    }
}

/// One measured matrix cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Guest id (`armlet` / `petix`).
    pub guest: String,
    /// Engine id (`dbt@v2.5.0-rc2`, `interp`, ...).
    pub engine: String,
    /// Workload id (`suite:System Call`, `app:mcf-like`).
    pub workload: String,
    /// Benchmark category name for suite workloads.
    pub category: Option<String>,
    /// Guest iterations each repetition executed.
    pub iterations: u32,
    /// Terminal state.
    pub status: CellStatus,
    /// Repetitions that actually executed for this cell. Equal to the
    /// spec's count in fixed mode; in `[min_reps, max_reps]` for
    /// adaptive cells. 0 for unmeasured (skipped / not-on-ISA) cells.
    pub reps_run: u32,
    /// Total repetition executions including watchdog/retry re-runs.
    /// Equal to `reps_run` when nothing was retried (the common case;
    /// the JSON field is elided then), strictly greater when `--retries`
    /// re-ran a panicking / hung / transiently-failing repetition.
    pub attempts: u32,
    /// Why repetitions stopped. `Some` exactly for `Ok` cells; failed
    /// and unmeasured cells have no truthful stop verdict.
    pub stop_reason: Option<StopReason>,
    /// Kernel-phase seconds, one entry per repetition, in rep order.
    pub seconds: Vec<f64>,
    /// Statistics over `seconds` (present when status is `Ok`).
    pub stats: Option<Stats>,
    /// Kernel-phase event counters of the first repetition. Counters
    /// are architectural and deterministic, so one copy suffices.
    pub counters: Counters,
    /// Whether every repetition produced identical counters. `false`
    /// flags an engine determinism bug worth investigating.
    pub counters_consistent: bool,
    /// Count of the workload's tested operation in the event profile
    /// (Fig 3's density numerator). `None` for apps and unmeasured
    /// cells; persisted so result files stay self-describing even if
    /// the benchmark → counter mapping evolves.
    pub tested_ops: Option<u64>,
    /// Per-repetition event profiles, recorded only when the
    /// repetitions disagree (`counters_consistent == false`) so the
    /// determinism bug is diagnosable from the stored file alone.
    pub counter_variants: Vec<Counters>,
}

impl CellResult {
    /// Representative time for comparisons: the geometric mean of kept
    /// repetitions (`None` unless the cell completed).
    pub fn metric(&self) -> Option<f64> {
        self.stats.as_ref().map(|s| s.geomean)
    }

    /// Unmeasured skeleton for a cell key: identity filled in, status
    /// `NotOnIsa`, everything else empty. The runner fills it.
    pub(crate) fn skeleton(key: &CellKey) -> CellResult {
        CellResult {
            guest: key.guest.isa_name().to_string(),
            engine: key.engine.id(),
            workload: key.workload.id(),
            category: key.workload.category().map(str::to_string),
            iterations: 0,
            status: CellStatus::NotOnIsa,
            reps_run: 0,
            attempts: 0,
            stop_reason: None,
            seconds: Vec::new(),
            stats: None,
            counters: Counters::default(),
            counters_consistent: true,
            tested_ops: None,
            counter_variants: Vec::new(),
        }
    }
}

/// Engine-telemetry snapshot persisted alongside a campaign: named
/// monotonic counters and sparse log₂-bucket histograms (`(bucket,
/// count)` pairs, bucket = bit length of the value). Present only when
/// the campaign ran with telemetry enabled; purely observational, so
/// comparisons ignore it and merges drop it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// `(name, value)` per counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, nonzero log₂ buckets)` per histogram, name-sorted.
    pub histograms: Vec<(String, Vec<(u32, u64)>)>,
}

impl Telemetry {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

impl From<simbench_obs::metrics::Snapshot> for Telemetry {
    fn from(snap: simbench_obs::metrics::Snapshot) -> Telemetry {
        Telemetry {
            counters: snap.counters,
            histograms: snap.histograms,
        }
    }
}

/// A completed campaign: spec echo plus every cell.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Schema identifier (always [`SCHEMA`] for in-memory values).
    pub schema: String,
    /// Campaign name from the spec.
    pub name: String,
    /// Iteration divisor the campaign ran at.
    pub scale: u64,
    /// Repetitions per cell (fixed mode; the floor in adaptive mode is
    /// `precision.min_reps`).
    pub reps: u32,
    /// The adaptive repetition target the campaign ran under, `None`
    /// for fixed-reps campaigns.
    pub precision: Option<PrecisionTarget>,
    /// Worker threads the campaign ran with.
    pub jobs: usize,
    /// When this is one shard of a sharded campaign: which slice of the
    /// matrix it measured. `None` for whole-matrix and merged results.
    pub shard: Option<Shard>,
    /// Write-ahead journal directory the campaign appended to
    /// (`campaign run --journal DIR`), echoed for provenance. `None`
    /// for unjournaled runs, pre-v6 files and merged results.
    pub journal: Option<String>,
    /// Wall-clock seconds for the whole campaign.
    pub wall_secs: f64,
    /// Seconds since the Unix epoch when the campaign finished.
    pub created_unix: u64,
    /// Engine-telemetry snapshot, when the campaign ran with telemetry
    /// enabled. `None` for plain runs, pre-v5 files and merged results.
    pub telemetry: Option<Telemetry>,
    /// One record per matrix cell, in spec cell order.
    pub cells: Vec<CellResult>,
}

impl CampaignResult {
    /// Look up a cell by ids.
    pub fn cell(&self, guest: &str, engine: &str, workload: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.guest == guest && c.engine == engine && c.workload == workload)
    }

    /// Serialize to the versioned JSON format (pretty-printed, one cell
    /// per line block, deterministic field order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json::quote(&self.schema));
        let _ = writeln!(out, "  \"name\": {},", json::quote(&self.name));
        let _ = writeln!(out, "  \"scale\": {},", self.scale);
        let _ = writeln!(out, "  \"reps\": {},", self.reps);
        if let Some(p) = self.precision {
            let _ = writeln!(
                out,
                "  \"precision\": {{\"target_rci\": {}, \"min_reps\": {}, \"max_reps\": {}}},",
                json::num(p.target_rci),
                p.min_reps,
                p.max_reps
            );
        }
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        if let Some(shard) = self.shard {
            let _ = writeln!(
                out,
                "  \"shard\": {{\"index\": {}, \"count\": {}}},",
                shard.index, shard.count
            );
        }
        if let Some(dir) = &self.journal {
            let _ = writeln!(out, "  \"journal\": {},", json::quote(dir));
        }
        let _ = writeln!(out, "  \"wall_secs\": {},", json::num(self.wall_secs));
        let _ = writeln!(out, "  \"created_unix\": {},", self.created_unix);
        if let Some(t) = self.telemetry.as_ref().filter(|t| !t.is_empty()) {
            out.push_str("  \"telemetry\": {\n");
            let counters: Vec<String> = t
                .counters
                .iter()
                .map(|(name, v)| format!("{}: {v}", json::quote(name)))
                .collect();
            let _ = writeln!(out, "    \"counters\": {{{}}},", counters.join(", "));
            let hists: Vec<String> = t
                .histograms
                .iter()
                .map(|(name, buckets)| {
                    let pairs: Vec<String> =
                        buckets.iter().map(|(b, c)| format!("[{b}, {c}]")).collect();
                    format!("{}: [{}]", json::quote(name), pairs.join(", "))
                })
                .collect();
            let _ = writeln!(out, "    \"histograms\": {{{}}}", hists.join(", "));
            out.push_str("  },\n");
        }
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&cell_json(cell));
            out.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse the versioned JSON format. Accepts the current `v6` layout
    /// and migrates `v5`, `v4`, `v3`, `v2` and `v1` files in place.
    /// `v5` and `v4` documents differ only by missing optional fields,
    /// so their stored statistics and stop reasons are kept verbatim —
    /// recomputing would clobber adaptive verdicts (`converged` /
    /// `max_reps`) that cannot be recovered from the timings. Migration
    /// of every pre-`v4` document recomputes each Ok cell's statistics
    /// from its raw per-repetition timings — upgrading the stored
    /// normal-approximation `ci95` to Student-t and splitting the old
    /// `rejected` count into `rejected_invalid` / `outliers` — and
    /// fills `reps_run` from the timing count with a `fixed` stop
    /// reason (pre-`v4` campaigns were always fixed-reps). `v1`
    /// additionally recomputes `tested_ops` from the stored event
    /// profile. Any other schema is a typed error.
    pub fn from_json(text: &str) -> Result<CampaignResult, LoadError> {
        let root = json::parse(text).map_err(LoadError::Json)?;
        let schema = root
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| LoadError::Malformed("missing string \"schema\"".to_string()))?
            .to_string();
        if ![
            SCHEMA, SCHEMA_V5, SCHEMA_V4, SCHEMA_V3, SCHEMA_V2, SCHEMA_V1,
        ]
        .contains(&schema.as_str())
        {
            return Err(LoadError::Schema { found: schema });
        }
        let malformed = LoadError::Malformed;
        let str_field = |key: &str| -> Result<String, LoadError> {
            root.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| malformed(format!("missing string \"{key}\"")))
        };
        let u64_field = |key: &str| -> Result<u64, LoadError> {
            root.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| malformed(format!("missing integer \"{key}\"")))
        };
        let mut cells = Vec::new();
        for (i, cv) in root
            .get("cells")
            .and_then(Value::as_arr)
            .ok_or_else(|| malformed("missing \"cells\" array".to_string()))?
            .iter()
            .enumerate()
        {
            let mut cell = parse_cell(cv).map_err(|e| malformed(format!("cell {i}: {e}")))?;
            if schema != SCHEMA && schema != SCHEMA_V5 && schema != SCHEMA_V4 {
                // Pre-v4 migration: the raw timings are stored, so the
                // statistics are recomputed rather than trusted — the
                // old files carry normal-approximation CIs and a lumped
                // `rejected` count that v4 retired. v4/v5 files are
                // exempt: their stats are already current and their
                // adaptive stop reasons must survive the round-trip.
                cell.stats = crate::stats::stats(&cell.seconds);
                if cell.status == CellStatus::Ok {
                    cell.reps_run = cell.seconds.len() as u32;
                    // Pre-v6 runs never retried, so every repetition
                    // was exactly one execution.
                    cell.attempts = cell.reps_run;
                    cell.stop_reason = Some(StopReason::Fixed);
                }
            }
            if schema == SCHEMA_V1 && cell.status == CellStatus::Ok {
                // v1 predates `tested_ops`: recompute it from the stored
                // event profile and the workload's counter mapping.
                cell.tested_ops =
                    Workload::by_id(&cell.workload).and_then(|w| w.tested_ops(&cell.counters));
            }
            cells.push(cell);
        }
        let shard = match root.get("shard") {
            None => None,
            Some(v) => {
                let idx = v
                    .get("index")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| malformed("shard: missing integer \"index\"".to_string()))?;
                let count = v
                    .get("count")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| malformed("shard: missing integer \"count\"".to_string()))?;
                // Reject before narrowing: an oversized value must not
                // wrap into a plausible-looking shard identity.
                if idx > u64::from(u32::MAX) || count > u64::from(u32::MAX) {
                    return Err(malformed(format!(
                        "shard: index {idx}/count {count} out of range"
                    )));
                }
                Some(
                    Shard::new(idx as u32, count as u32)
                        .map_err(|e| malformed(format!("shard: {e}")))?,
                )
            }
        };
        let precision = match root.get("precision") {
            None => None,
            Some(v) => {
                let target_rci = v.get("target_rci").and_then(Value::as_f64).ok_or_else(|| {
                    malformed("precision: missing number \"target_rci\"".to_string())
                })?;
                let reps_field = |key: &str| -> Result<u32, LoadError> {
                    let n = v.get(key).and_then(Value::as_u64).ok_or_else(|| {
                        malformed(format!("precision: missing integer \"{key}\""))
                    })?;
                    u32::try_from(n)
                        .map_err(|_| malformed(format!("precision: {key} {n} out of range")))
                };
                Some(
                    PrecisionTarget::new(
                        target_rci,
                        reps_field("min_reps")?,
                        reps_field("max_reps")?,
                    )
                    .map_err(|e| malformed(format!("precision: {e}")))?,
                )
            }
        };
        let telemetry = match root.get("telemetry") {
            None => None,
            Some(v) => Some(parse_telemetry(v).map_err(|e| malformed(format!("telemetry: {e}")))?),
        };
        Ok(CampaignResult {
            // Migrated results are current-schema in memory, so saving a
            // loaded v1..v5 file produces a v6 file.
            schema: SCHEMA.to_string(),
            name: str_field("name")?,
            scale: u64_field("scale")?,
            reps: u64_field("reps")? as u32,
            precision,
            jobs: u64_field("jobs")? as usize,
            shard,
            journal: match root.get("journal") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| malformed("\"journal\" not a string".to_string()))?,
                ),
            },
            wall_secs: root.get("wall_secs").and_then(Value::as_f64).unwrap_or(0.0),
            created_unix: u64_field("created_unix").unwrap_or(0),
            telemetry,
            cells,
        })
    }

    /// Write to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<CampaignResult, LoadError> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| LoadError::Io(format!("{}: {e}", path.as_ref().display())))?;
        CampaignResult::from_json(&text)
    }

    /// Skeleton result for a spec, before any job has finished.
    pub(crate) fn empty_for(spec: &CampaignSpec, jobs: usize) -> CampaignResult {
        let cells = spec
            .cells()
            .into_iter()
            .map(|key| CellResult::skeleton(&key))
            .collect();
        CampaignResult {
            schema: SCHEMA.to_string(),
            name: spec.name.clone(),
            scale: spec.scale,
            reps: spec.reps.max(1),
            precision: spec.precision,
            jobs,
            shard: None,
            journal: None,
            wall_secs: 0.0,
            created_unix: 0,
            telemetry: None,
            cells,
        }
    }
}

/// Parse a persisted `telemetry` block. Counter values must be
/// integers; histogram entries must be `[bucket, count]` pairs.
/// `BTreeMap` iteration keeps both lists name-sorted.
fn parse_telemetry(v: &Value) -> Result<Telemetry, String> {
    let m = v.as_obj().ok_or("not an object")?;
    let mut t = Telemetry::default();
    if let Some(counters) = m.get("counters") {
        let obj = counters.as_obj().ok_or("\"counters\" not an object")?;
        for (name, v) in obj {
            let v = v.as_u64().ok_or(format!("counter {name} not an integer"))?;
            t.counters.push((name.clone(), v));
        }
    }
    if let Some(hists) = m.get("histograms") {
        let obj = hists.as_obj().ok_or("\"histograms\" not an object")?;
        for (name, v) in obj {
            let arr = v.as_arr().ok_or(format!("histogram {name} not an array"))?;
            let mut buckets = Vec::with_capacity(arr.len());
            for pair in arr {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or(format!("histogram {name}: bucket not a [b, n] pair"))?;
                let b = pair[0]
                    .as_u64()
                    .filter(|&b| b < simbench_obs::metrics::HISTOGRAM_BUCKETS as u64)
                    .ok_or(format!("histogram {name}: bad bucket index"))?;
                let n = pair[1]
                    .as_u64()
                    .ok_or(format!("histogram {name}: bad bucket count"))?;
                buckets.push((b as u32, n));
            }
            t.histograms.push((name.clone(), buckets));
        }
    }
    Ok(t)
}

/// One cell rendered as a single-line JSON object — the cell layout of
/// [`CampaignResult::to_json`], shared with the write-ahead journal so
/// a journaled cell is byte-identical to its persisted form.
pub(crate) fn cell_json(cell: &CellResult) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"guest\": {}, ", json::quote(&cell.guest));
    let _ = write!(out, "\"engine\": {}, ", json::quote(&cell.engine));
    let _ = write!(out, "\"workload\": {}, ", json::quote(&cell.workload));
    if let Some(cat) = &cell.category {
        let _ = write!(out, "\"category\": {}, ", json::quote(cat));
    }
    let _ = write!(out, "\"iterations\": {}, ", cell.iterations);
    let _ = write!(
        out,
        "\"status\": {}, ",
        json::quote(&cell.status.to_json_string())
    );
    if cell.reps_run > 0 {
        let _ = write!(out, "\"reps_run\": {}, ", cell.reps_run);
    }
    if cell.attempts != cell.reps_run {
        let _ = write!(out, "\"attempts\": {}, ", cell.attempts);
    }
    if let Some(reason) = cell.stop_reason {
        let _ = write!(out, "\"stop_reason\": \"{}\", ", reason.as_json_str());
    }
    let secs: Vec<String> = cell.seconds.iter().map(|&s| json::num(s)).collect();
    let _ = write!(out, "\"seconds\": [{}]", secs.join(", "));
    if let Some(s) = &cell.stats {
        let _ = write!(
            out,
            ", \"stats\": {{\"n\": {}, \"rejected_invalid\": {}, \"outliers\": {}, \
             \"min\": {}, \"max\": {}, \"mean\": {}, \"median\": {}, \"stddev\": {}, \
             \"geomean\": {}, \"ci95\": {}}}",
            s.n,
            s.rejected_invalid,
            s.outliers,
            json::num(s.min),
            json::num(s.max),
            json::num(s.mean),
            json::num(s.median),
            json::num(s.stddev),
            json::num(s.geomean),
            json::num(s.ci95),
        );
    }
    if !cell.counters_consistent {
        out.push_str(", \"counters_consistent\": false");
    }
    if let Some(obj) = counters_obj(&cell.counters) {
        let _ = write!(out, ", \"counters\": {obj}");
    }
    if let Some(ops) = cell.tested_ops {
        let _ = write!(out, ", \"tested_ops\": {ops}");
    }
    if !cell.counter_variants.is_empty() {
        let variants: Vec<String> = cell
            .counter_variants
            .iter()
            .map(|c| counters_obj(c).unwrap_or_else(|| "{}".to_string()))
            .collect();
        let _ = write!(out, ", \"counter_variants\": [{}]", variants.join(", "));
    }
    out.push('}');
    out
}

pub(crate) fn parse_cell(cv: &Value) -> Result<CellResult, String> {
    let s = |key: &str| -> Result<String, String> {
        cv.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or(format!("missing \"{key}\""))
    };
    let seconds: Vec<f64> = match cv.get("seconds").and_then(Value::as_arr) {
        None => Vec::new(),
        Some(arr) => arr
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or("non-numeric entry in \"seconds\"".to_string())
            })
            .collect::<Result<_, _>>()?,
    };
    let stats = cv.get("stats").and_then(Value::as_obj).map(|m| {
        let f = |k: &str| m.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        let u = |k: &str| m.get(k).and_then(Value::as_u64).unwrap_or(0) as usize;
        Stats {
            n: u("n"),
            // Pre-v4 documents carry a single lumped "rejected" count;
            // the caller recomputes their stats from the raw timings,
            // so this parse only needs the v4 fields.
            rejected_invalid: u("rejected_invalid"),
            outliers: u("outliers"),
            min: f("min"),
            max: f("max"),
            mean: f("mean"),
            median: f("median"),
            stddev: f("stddev"),
            geomean: f("geomean"),
            ci95: f("ci95"),
        }
    });
    let counters = match cv.get("counters") {
        None => Counters::default(),
        Some(v) => parse_counters(v)?,
    };
    let mut counter_variants = Vec::new();
    if let Some(arr) = cv.get("counter_variants").and_then(Value::as_arr) {
        for (i, v) in arr.iter().enumerate() {
            counter_variants.push(parse_counters(v).map_err(|e| format!("variant {i}: {e}"))?);
        }
    }
    Ok(CellResult {
        guest: s("guest")?,
        engine: s("engine")?,
        workload: s("workload")?,
        category: cv
            .get("category")
            .and_then(Value::as_str)
            .map(str::to_string),
        iterations: cv.get("iterations").and_then(Value::as_u64).unwrap_or(0) as u32,
        status: CellStatus::from_json_string(&s("status")?),
        reps_run: cv.get("reps_run").and_then(Value::as_u64).unwrap_or(0) as u32,
        attempts: {
            // Elided whenever equal to reps_run, so default to that.
            let reps_run = cv.get("reps_run").and_then(Value::as_u64).unwrap_or(0) as u32;
            cv.get("attempts")
                .and_then(Value::as_u64)
                .map(|a| a as u32)
                .unwrap_or(reps_run)
        },
        stop_reason: match cv.get("stop_reason") {
            None => None,
            Some(v) => {
                let raw = v.as_str().ok_or("\"stop_reason\" not a string")?;
                Some(StopReason::from_json_str(raw)?)
            }
        },
        seconds,
        stats,
        counters,
        counters_consistent: cv
            .get("counters_consistent")
            .map(|v| v == &Value::Bool(true))
            .unwrap_or(true),
        tested_ops: match cv.get("tested_ops") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or("\"tested_ops\" not an integer")?),
        },
        counter_variants,
    })
}

/// Sparse JSON encoding of an event profile: nonzero counters only, in
/// declaration order. `None` when every counter is zero.
fn counters_obj(c: &Counters) -> Option<String> {
    let nonzero: Vec<(&str, u64)> = c.rows().into_iter().filter(|(_, v)| *v != 0).collect();
    if nonzero.is_empty() {
        return None;
    }
    let mut out = String::from("{");
    for (j, (name, v)) in nonzero.iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json::quote(name), v);
    }
    out.push('}');
    Some(out)
}

/// Inverse of [`counters_obj`]: rebuild a [`Counters`] from a sparse
/// JSON object. Unknown counter names are errors, not silent drops.
fn parse_counters(v: &Value) -> Result<Counters, String> {
    let m = v.as_obj().ok_or("counters not an object")?;
    let mut counters = Counters::default();
    for (name, v) in m {
        let v = v.as_u64().ok_or(format!("counter {name} not an integer"))?;
        set_counter(&mut counters, name, v)?;
    }
    Ok(counters)
}

fn set_counter(c: &mut Counters, name: &str, v: u64) -> Result<(), String> {
    // Rebuild field-by-field from the serialized name/value rows.
    let slot = match name {
        "instructions" => &mut c.instructions,
        "uops" => &mut c.uops,
        "branch_intra_direct" => &mut c.branch_intra_direct,
        "branch_inter_direct" => &mut c.branch_inter_direct,
        "branch_intra_indirect" => &mut c.branch_intra_indirect,
        "branch_inter_indirect" => &mut c.branch_inter_indirect,
        "data_faults" => &mut c.data_faults,
        "insn_faults" => &mut c.insn_faults,
        "undef_insns" => &mut c.undef_insns,
        "syscalls" => &mut c.syscalls,
        "irqs_delivered" => &mut c.irqs_delivered,
        "mmio_accesses" => &mut c.mmio_accesses,
        "coproc_accesses" => &mut c.coproc_accesses,
        "mem_reads" => &mut c.mem_reads,
        "mem_writes" => &mut c.mem_writes,
        "tlb_hits" => &mut c.tlb_hits,
        "tlb_misses" => &mut c.tlb_misses,
        "tlb_invalidate_page" => &mut c.tlb_invalidate_page,
        "tlb_flushes" => &mut c.tlb_flushes,
        "nonpriv_accesses" => &mut c.nonpriv_accesses,
        "code_invalidations" => &mut c.code_invalidations,
        "blocks_translated" => &mut c.blocks_translated,
        "block_cache_hits" => &mut c.block_cache_hits,
        "block_chain_follows" => &mut c.block_chain_follows,
        "vm_exits" => &mut c.vm_exits,
        _ => return Err(format!("unknown counter {name}")),
    };
    *slot = v;
    Ok(())
}

/// Group cells by a key, preserving first-seen order of groups.
pub fn group_by<K: Ord + Clone>(
    cells: &[CellResult],
    key: impl Fn(&CellResult) -> K,
) -> Vec<(K, Vec<&CellResult>)> {
    let mut order: Vec<K> = Vec::new();
    let mut map: BTreeMap<K, Vec<&CellResult>> = BTreeMap::new();
    for cell in cells {
        let k = key(cell);
        if !map.contains_key(&k) {
            order.push(k.clone());
        }
        map.entry(k).or_default().push(cell);
    }
    order
        .into_iter()
        .map(|k| {
            let v = map.remove(&k).unwrap();
            (k, v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> CampaignResult {
        CampaignResult {
            schema: SCHEMA.to_string(),
            name: "demo".to_string(),
            scale: 20_000,
            reps: 2,
            precision: None,
            jobs: 4,
            shard: None,
            journal: None,
            wall_secs: 1.25,
            created_unix: 1_700_000_000,
            telemetry: None,
            cells: vec![
                CellResult {
                    guest: "armlet".to_string(),
                    engine: "dbt@v2.5.0-rc2".to_string(),
                    workload: "suite:System Call".to_string(),
                    category: Some("Exception Handling".to_string()),
                    iterations: 2500,
                    status: CellStatus::Ok,
                    reps_run: 2,
                    attempts: 2,
                    stop_reason: Some(StopReason::Fixed),
                    seconds: vec![0.011, 0.0105],
                    stats: crate::stats::stats(&[0.011, 0.0105]),
                    counters: Counters {
                        instructions: 30000,
                        syscalls: 2500,
                        ..Default::default()
                    },
                    counters_consistent: true,
                    tested_ops: Some(2500),
                    counter_variants: Vec::new(),
                },
                CellResult {
                    guest: "petix".to_string(),
                    engine: "detailed".to_string(),
                    workload: "suite:Memory Mapped Device".to_string(),
                    category: Some("I/O".to_string()),
                    iterations: 100,
                    status: CellStatus::Unsupported("intc device model".to_string()),
                    reps_run: 1,
                    attempts: 1,
                    stop_reason: None,
                    seconds: vec![],
                    stats: None,
                    counters: Counters::default(),
                    counters_consistent: true,
                    tested_ops: None,
                    counter_variants: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let r = demo();
        let parsed = CampaignResult::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.name, r.name);
        assert_eq!(parsed.scale, r.scale);
        assert_eq!(parsed.reps, r.reps);
        assert_eq!(parsed.jobs, r.jobs);
        assert_eq!(parsed.created_unix, r.created_unix);
        assert_eq!(parsed.cells.len(), r.cells.len());
        let (a, b) = (&parsed.cells[0], &r.cells[0]);
        assert_eq!(a.guest, b.guest);
        assert_eq!(a.engine, b.engine);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.category, b.category);
        assert_eq!(a.status, b.status);
        assert_eq!(a.seconds, b.seconds);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.tested_ops, b.tested_ops);
        assert_eq!(a.reps_run, 2);
        assert_eq!(a.stop_reason, Some(StopReason::Fixed));
        assert_eq!(a.stats.unwrap().geomean, b.stats.unwrap().geomean);
        assert_eq!(parsed.cells[1].status, r.cells[1].status);
        assert_eq!(parsed.cells[1].tested_ops, None);
        assert_eq!(parsed.cells[1].reps_run, 1);
        assert_eq!(parsed.cells[1].stop_reason, None);
    }

    #[test]
    fn precision_and_stop_reasons_round_trip() {
        let mut r = demo();
        r.precision = Some(PrecisionTarget::new(0.2, 2, 8).unwrap());
        r.cells[0].reps_run = 5;
        r.cells[0].attempts = 5; // clean run: attempts tracks reps and is elided
        r.cells[0].stop_reason = Some(StopReason::Converged);
        let text = r.to_json();
        assert!(
            text.contains("\"precision\": {\"target_rci\": 0.2, \"min_reps\": 2, \"max_reps\": 8}"),
            "{text}"
        );
        assert!(text.contains("\"reps_run\": 5, \"stop_reason\": \"converged\""));
        let parsed = CampaignResult::from_json(&text).unwrap();
        assert_eq!(parsed.precision, r.precision);
        assert_eq!(parsed.cells[0].reps_run, 5);
        assert_eq!(parsed.cells[0].stop_reason, Some(StopReason::Converged));
        // Fixed-reps results carry no precision key at all.
        assert!(!demo().to_json().contains("\"precision\""));
        // max_reps round-trips too.
        r.cells[0].stop_reason = Some(StopReason::MaxReps);
        let parsed = CampaignResult::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.cells[0].stop_reason, Some(StopReason::MaxReps));
    }

    #[test]
    fn malformed_precision_and_stop_reason_are_typed_errors() {
        let mut r = demo();
        r.precision = Some(PrecisionTarget::new(0.2, 2, 8).unwrap());
        let good = r.to_json();
        for (from, to) in [
            ("\"target_rci\": 0.2", "\"target_rci\": -1"),
            ("\"min_reps\": 2", "\"min_reps\": 1"),
            ("\"max_reps\": 8", "\"max_reps\": 1"),
            ("\"target_rci\": 0.2, ", ""),
        ] {
            let err = CampaignResult::from_json(&good.replace(from, to)).unwrap_err();
            assert!(
                matches!(err, LoadError::Malformed(_)),
                "{from} -> {to}: {err}"
            );
            assert!(err.to_string().contains("precision"), "{err}");
        }
        let err = CampaignResult::from_json(
            &good.replace("\"stop_reason\": \"fixed\"", "\"stop_reason\": \"tired\""),
        )
        .unwrap_err();
        assert!(err.to_string().contains("stop_reason"), "{err}");
    }

    #[test]
    fn stats_split_rejection_counts_round_trip() {
        let mut r = demo();
        // One invalid timing and one outlier among the repetitions.
        r.cells[0].seconds = vec![
            0.011, 0.0105, 0.0, 0.0109, 0.9, 0.0111, 0.0107, 0.0108, 0.0110, 0.0106,
        ];
        r.cells[0].stats = crate::stats::stats(&r.cells[0].seconds);
        r.cells[0].reps_run = 10;
        let s = r.cells[0].stats.unwrap();
        assert_eq!((s.rejected_invalid, s.outliers), (1, 1));
        let text = r.to_json();
        assert!(
            text.contains("\"rejected_invalid\": 1, \"outliers\": 1"),
            "{text}"
        );
        let parsed = CampaignResult::from_json(&text).unwrap();
        assert_eq!(parsed.cells[0].stats.unwrap(), s);
    }

    #[test]
    fn counter_variants_round_trip() {
        let mut r = demo();
        r.cells[0].counters_consistent = false;
        r.cells[0].counter_variants = vec![
            r.cells[0].counters,
            Counters {
                instructions: 30001,
                syscalls: 2500,
                ..Default::default()
            },
        ];
        let parsed = CampaignResult::from_json(&r.to_json()).unwrap();
        assert!(!parsed.cells[0].counters_consistent);
        assert_eq!(
            parsed.cells[0].counter_variants,
            r.cells[0].counter_variants
        );
    }

    #[test]
    fn shard_metadata_and_skipped_cells_round_trip() {
        let mut r = demo();
        r.shard = Some(Shard { index: 2, count: 3 });
        r.cells[1].status = CellStatus::Skipped;
        let text = r.to_json();
        assert!(text.contains("\"shard\": {\"index\": 2, \"count\": 3}"));
        assert!(text.contains("\"status\": \"skipped\""));
        let parsed = CampaignResult::from_json(&text).unwrap();
        assert_eq!(parsed.shard, Some(Shard { index: 2, count: 3 }));
        assert_eq!(parsed.cells[1].status, CellStatus::Skipped);
        // Whole-matrix results carry no shard key at all.
        assert!(!demo().to_json().contains("\"shard\""));
    }

    #[test]
    fn malformed_shard_metadata_is_a_typed_error() {
        let mut r = demo();
        r.shard = Some(Shard { index: 1, count: 2 });
        let text = r.to_json().replace(
            "{\"index\": 1, \"count\": 2}",
            "{\"index\": 5, \"count\": 2}",
        );
        let err = CampaignResult::from_json(&text).unwrap_err();
        assert!(matches!(err, LoadError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("shard"), "{err}");
        let text = r
            .to_json()
            .replace("{\"index\": 1, \"count\": 2}", "{\"count\": 2}");
        let err = CampaignResult::from_json(&text).unwrap_err();
        assert!(err.to_string().contains("index"), "{err}");
        // An index beyond u32 must be rejected, not wrapped into a
        // plausible small shard identity (4294967297 % 2^32 == 1).
        let text = r.to_json().replace(
            "{\"index\": 1, \"count\": 2}",
            "{\"index\": 4294967297, \"count\": 4294967298}",
        );
        let err = CampaignResult::from_json(&text).unwrap_err();
        assert!(matches!(err, LoadError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn v2_files_migrate_on_load() {
        // A v2 document is the current layout minus shard support.
        let text = demo().to_json().replace(SCHEMA, SCHEMA_V2);
        let parsed = CampaignResult::from_json(&text).unwrap();
        assert_eq!(parsed.schema, SCHEMA);
        assert_eq!(parsed.shard, None);
        assert_eq!(parsed.cells[0].tested_ops, Some(2500));
        assert!(parsed.to_json().contains(SCHEMA));
    }

    #[test]
    fn v1_files_migrate_on_load() {
        // A v1 document: no tested_ops, no counter_variants.
        let text = demo()
            .to_json()
            .replace(SCHEMA, SCHEMA_V1)
            .replace(", \"tested_ops\": 2500", "");
        let parsed = CampaignResult::from_json(&text).unwrap();
        // Migration normalizes the in-memory schema and recomputes the
        // tested-op count from the stored event profile.
        assert_eq!(parsed.schema, SCHEMA);
        assert_eq!(parsed.cells[0].tested_ops, Some(2500));
        assert_eq!(parsed.cells[1].tested_ops, None);
        assert!(parsed.to_json().contains(SCHEMA));
    }

    #[test]
    fn rejects_malformed_seconds() {
        // A corrupted timing entry must fail the load, not silently
        // shrink the sample set under an unchanged stats block.
        let text = demo().to_json().replace("[0.011, 0.0105]", "[0.011, null]");
        let err = CampaignResult::from_json(&text).unwrap_err();
        assert!(matches!(err, LoadError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("seconds"), "{err}");
    }

    #[test]
    fn rejects_wrong_schema() {
        let text = demo().to_json().replace(SCHEMA, "simbench-campaign/v0");
        let err = CampaignResult::from_json(&text).unwrap_err();
        assert_eq!(
            err,
            LoadError::Schema {
                found: "simbench-campaign/v0".to_string()
            }
        );
        assert!(err.to_string().contains("unsupported schema"), "{err}");
    }

    #[test]
    fn cell_lookup() {
        let r = demo();
        assert!(r
            .cell("armlet", "dbt@v2.5.0-rc2", "suite:System Call")
            .is_some());
        assert!(r.cell("armlet", "interp", "suite:System Call").is_none());
    }

    #[test]
    fn group_by_keeps_order() {
        let r = demo();
        let groups = group_by(&r.cells, |c| c.guest.clone());
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "armlet");
        assert_eq!(groups[1].0, "petix");
    }

    fn demo_telemetry() -> Telemetry {
        Telemetry {
            counters: vec![
                ("campaign.image_cache_hits".to_string(), 6),
                ("dbt.translations".to_string(), 123),
            ],
            histograms: vec![("dbt.block_steps".to_string(), vec![(0, 2), (3, 5), (11, 1)])],
        }
    }

    #[test]
    fn telemetry_round_trips() {
        let mut r = demo();
        r.telemetry = Some(demo_telemetry());
        let text = r.to_json();
        assert!(
            text.contains(
                "\"counters\": {\"campaign.image_cache_hits\": 6, \"dbt.translations\": 123}"
            ),
            "{text}"
        );
        assert!(
            text.contains("\"histograms\": {\"dbt.block_steps\": [[0, 2], [3, 5], [11, 1]]}"),
            "{text}"
        );
        let parsed = CampaignResult::from_json(&text).unwrap();
        assert_eq!(parsed.telemetry, Some(demo_telemetry()));
        // Plain runs and empty snapshots carry no telemetry key at all.
        assert!(!demo().to_json().contains("\"telemetry\""));
        let mut empty = demo();
        empty.telemetry = Some(Telemetry::default());
        assert!(!empty.to_json().contains("\"telemetry\""));
        assert_eq!(
            CampaignResult::from_json(&demo().to_json())
                .unwrap()
                .telemetry,
            None
        );
    }

    #[test]
    fn malformed_telemetry_is_a_typed_error() {
        let mut r = demo();
        r.telemetry = Some(demo_telemetry());
        let good = r.to_json();
        for (from, to) in [
            (
                "\"dbt.translations\": 123",
                "\"dbt.translations\": \"lots\"",
            ),
            ("[3, 5]", "[3]"),
            ("[11, 1]", "[65, 1]"),
        ] {
            let err = CampaignResult::from_json(&good.replace(from, to)).unwrap_err();
            assert!(
                matches!(err, LoadError::Malformed(_)),
                "{from} -> {to}: {err}"
            );
            assert!(err.to_string().contains("telemetry"), "{err}");
        }
    }

    #[test]
    fn v4_files_migrate_without_recomputing_verdicts() {
        // A v4 document is the current layout minus telemetry. Its
        // adaptive stop reasons and stored stats must survive verbatim:
        // a recompute would turn `converged` into `fixed`.
        let mut r = demo();
        r.precision = Some(PrecisionTarget::new(0.2, 2, 8).unwrap());
        r.cells[0].stop_reason = Some(StopReason::Converged);
        let text = r.to_json().replace(SCHEMA, SCHEMA_V4);
        assert!(text.contains(SCHEMA_V4));
        let parsed = CampaignResult::from_json(&text).unwrap();
        assert_eq!(parsed.schema, SCHEMA);
        assert_eq!(parsed.cells[0].stop_reason, Some(StopReason::Converged));
        assert_eq!(
            parsed.cells[0].stats.unwrap(),
            r.cells[0].stats.unwrap(),
            "v4 stats are trusted, not recomputed"
        );
        assert_eq!(parsed.telemetry, None);
        assert!(parsed.to_json().contains(SCHEMA));
    }

    #[test]
    fn v5_files_migrate_without_recomputing_verdicts() {
        // A v5 document is the current layout minus the fault-tolerance
        // fields; like v4, its stats and stop reasons survive verbatim.
        let mut r = demo();
        r.precision = Some(PrecisionTarget::new(0.2, 2, 8).unwrap());
        r.cells[0].stop_reason = Some(StopReason::Converged);
        let text = r.to_json().replace(SCHEMA, SCHEMA_V5);
        let parsed = CampaignResult::from_json(&text).unwrap();
        assert_eq!(parsed.schema, SCHEMA);
        assert_eq!(parsed.cells[0].stop_reason, Some(StopReason::Converged));
        assert_eq!(
            parsed.cells[0].stats.unwrap(),
            r.cells[0].stats.unwrap(),
            "v5 stats are trusted, not recomputed"
        );
        assert!(parsed.to_json().contains(SCHEMA));
    }

    #[test]
    fn quarantined_and_timed_out_statuses_round_trip() {
        let mut r = demo();
        r.cells[0].status = CellStatus::Quarantined("index out of bounds".to_string());
        r.cells[0].stop_reason = None;
        r.cells[1].status = CellStatus::TimedOut("exceeded 30s cell timeout".to_string());
        let text = r.to_json();
        assert!(
            text.contains("\"status\": \"quarantined:index out of bounds\""),
            "{text}"
        );
        assert!(
            text.contains("\"status\": \"timed_out:exceeded 30s cell timeout\""),
            "{text}"
        );
        let parsed = CampaignResult::from_json(&text).unwrap();
        assert_eq!(parsed.cells[0].status, r.cells[0].status);
        assert_eq!(parsed.cells[1].status, r.cells[1].status);
        assert!(parsed.cells[0].status.is_broken());
        assert!(parsed.cells[1].status.is_broken());
        assert!(!CellStatus::Ok.is_broken());
        assert!(!CellStatus::Skipped.is_broken());
        assert!(!CellStatus::NotOnIsa.is_broken());
    }

    #[test]
    fn attempts_round_trip_and_elide_when_equal() {
        // The common case — no retries — writes no attempts key at all,
        // so clean results stay byte-compatible with v5 cell layouts.
        let clean = demo().to_json();
        assert!(!clean.contains("\"attempts\""), "{clean}");
        let parsed = CampaignResult::from_json(&clean).unwrap();
        assert_eq!(parsed.cells[0].attempts, parsed.cells[0].reps_run);
        // A retried cell records the true execution count.
        let mut r = demo();
        r.cells[0].attempts = 5;
        let text = r.to_json();
        assert!(
            text.contains("\"reps_run\": 2, \"attempts\": 5, "),
            "{text}"
        );
        let parsed = CampaignResult::from_json(&text).unwrap();
        assert_eq!(parsed.cells[0].attempts, 5);
        assert_eq!(parsed.cells[0].reps_run, 2);
    }

    #[test]
    fn journal_echo_round_trips() {
        let mut r = demo();
        r.journal = Some("/tmp/campaign-journal".to_string());
        let text = r.to_json();
        assert!(
            text.contains("\"journal\": \"/tmp/campaign-journal\""),
            "{text}"
        );
        let parsed = CampaignResult::from_json(&text).unwrap();
        assert_eq!(parsed.journal, r.journal);
        // Unjournaled runs carry no journal key at all.
        assert!(!demo().to_json().contains("\"journal\""));
        // A mistyped journal is a typed error, not a silent drop.
        let err =
            CampaignResult::from_json(&text.replace("\"/tmp/campaign-journal\"", "7")).unwrap_err();
        assert!(matches!(err, LoadError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("journal"), "{err}");
    }
}

//! # simbench-campaign
//!
//! The measurement-campaign subsystem: the paper's methodology is a
//! measurement *matrix* — every micro-benchmark on every simulator,
//! version and guest ISA — and this crate turns that matrix into a
//! first-class, parallel, persistent object:
//!
//! * [`spec`] — declarative [`CampaignSpec`] (guests × engines ×
//!   workloads × scale × repetitions) expanded into independent jobs;
//! * [`runner`] — a work-stealing worker pool executing jobs
//!   concurrently; each job owns its `Machine` and engine, so results
//!   are identical at any `--jobs` count (timings aside);
//! * [`stats`] — per-cell statistics: min/median/mean/geomean, stddev,
//!   95% confidence intervals, MAD outlier rejection;
//! * [`result`] — the versioned `simbench-campaign/v2` JSON schema
//!   (per-cell event profiles with `tested_ops` and, for
//!   non-deterministic cells, per-repetition `counter_variants`) with
//!   load/save, a `v1` reader-side migration, typed [`LoadError`]s and
//!   deterministic cell ordering;
//! * [`compare`] — regression detection against a stored baseline: the
//!   noisy timing path (`ratio > 1 + threshold` ⇒ flagged) and the
//!   machine-independent counter-exact path
//!   ([`compare_counters`], zero tolerance by default);
//! * [`measure`] — the single-run primitives (guest/engine selection,
//!   one benchmark or app execution), re-exported by the harness;
//! * [`table`] — fixed-width text tables shared with the harness.
//!
//! The figure drivers in `simbench-harness` are thin renderers over
//! [`CampaignResult`]s produced here, and the `simbench-harness
//! campaign run|compare|list` subcommands expose the subsystem on the
//! command line.
//!
//! ## Example
//!
//! ```
//! use simbench_campaign::{run, CampaignSpec, RunnerOpts, Workload};
//! use simbench_campaign::measure::{EngineKind, Guest};
//! use simbench_suite::Benchmark;
//!
//! let spec = CampaignSpec {
//!     name: "example".to_string(),
//!     guests: vec![Guest::Armlet],
//!     engines: vec![EngineKind::Interp],
//!     workloads: vec![Workload::Suite(Benchmark::Syscall)],
//!     scale: 1_000_000,
//!     reps: 2,
//!     wall_limit_secs: Some(60),
//! };
//! let result = run(&spec, &RunnerOpts::with_jobs(2));
//! let cell = result.cell("armlet", "interp", "suite:System Call").unwrap();
//! assert!(cell.counters.syscalls >= 16);
//! let json = result.to_json();
//! assert!(json.contains("simbench-campaign/v2"));
//! ```

pub mod compare;
pub mod json;
pub mod measure;
pub mod result;
pub mod runner;
pub mod spec;
pub mod stats;
pub mod table;

pub use compare::{
    compare, compare_counters, Comparison, CounterComparison, CounterDelta, CounterDiff, Delta,
    Verdict,
};
pub use measure::{run_app, run_suite_bench, Config, EngineKind, Guest, Sample};
pub use result::{CampaignResult, CellResult, CellStatus, LoadError, SCHEMA, SCHEMA_V1};
pub use runner::{run, RunnerOpts};
pub use spec::{CampaignSpec, CellKey, Job, Workload};
pub use stats::{geomean, stats, Stats};

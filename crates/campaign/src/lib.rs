//! # simbench-campaign
//!
//! The measurement-campaign subsystem: the paper's methodology is a
//! measurement *matrix* — every micro-benchmark on every simulator,
//! version and guest ISA — and this crate turns that matrix into a
//! first-class, parallel, persistent object:
//!
//! * [`spec`] — declarative [`CampaignSpec`] (guests × engines ×
//!   workloads × scale × repetitions) expanded into independent jobs;
//! * [`runner`] — a completion-driven worker pool
//!   executing jobs concurrently; each job owns its `Machine` and
//!   engine, so results are identical at any `--jobs` count (timings
//!   aside). With a [`PrecisionTarget`] on the spec, each cell starts
//!   at `min_reps` repetitions and the pool re-enqueues one repetition
//!   at a time until the cell's relative CI half-width reaches the
//!   target (or `max_reps`). [`run_shard`] executes one cell-complete
//!   slice (`--shard I/N`) of the matrix for process- and
//!   machine-level scale-out;
//! * [`merge`] — recombines a complete set of shard results into one
//!   whole-matrix result, counter-identical to an unsharded run, with
//!   typed [`MergeError`]s for overlapping/missing/mismatched shards;
//! * [`stats`] — per-cell statistics: min/median/mean/geomean, stddev,
//!   Student-t 95% confidence intervals (the normal 1.96 badly
//!   understates the interval at campaign-sized n), MAD outlier
//!   rejection; non-positive or non-finite samples are counted as
//!   `rejected_invalid` — separately from `outliers` — never
//!   fabricated;
//! * [`result`] — the versioned `simbench-campaign/v6` JSON schema
//!   (per-cell event profiles with `tested_ops`, per-repetition
//!   `counter_variants` for non-deterministic cells, shard metadata on
//!   partial results, per-cell `reps_run` / `stop_reason` / `attempts`
//!   for adaptive and retried runs, `quarantined` / `timed_out`
//!   statuses for fault-isolated cells, a `journal` echo on journaled
//!   runs, and an optional `telemetry` block carrying the engine
//!   metrics snapshot of instrumented runs) with load/save, `v1`–`v5`
//!   reader-side migrations, typed [`LoadError`]s and deterministic
//!   cell ordering;
//! * [`compare`] — regression detection against a stored baseline: the
//!   noisy timing path (`ratio > 1 + threshold` ⇒ flagged) and the
//!   machine-independent counter-exact path
//!   ([`compare_counters`], zero tolerance by default);
//! * [`measure`] — the single-run primitives (guest/engine selection,
//!   one benchmark or app execution), re-exported by the harness;
//! * [`journal`] — a write-ahead, fsync-per-record NDJSON cell journal
//!   (`campaign run --journal DIR`): every completed repetition and
//!   finished cell is durable before the campaign moves on, and
//!   [`journal::replay`] + [`run_shard_resumed`] (`--resume DIR`)
//!   re-measure only what the journal does not prove finished —
//!   counter-exact against an uninterrupted run;
//! * [`failpoint`] — an env/flag-armed fault-injection harness
//!   (`SIMBENCH_FAILPOINTS` / `--failpoints`) that injects panics,
//!   hangs, transient errors and mid-write crashes at named sites; the
//!   disarmed check is one relaxed load, so production runs pay
//!   nothing;
//! * [`table`] — fixed-width text tables shared with the harness.
//!
//! The figure drivers in `simbench-harness` are thin renderers over
//! [`CampaignResult`]s produced here, and the `simbench-harness
//! campaign run|compare|list` subcommands expose the subsystem on the
//! command line.
//!
//! ## Example
//!
//! ```
//! use simbench_campaign::{run, CampaignSpec, RunnerOpts, Workload};
//! use simbench_campaign::measure::{EngineKind, Guest};
//! use simbench_suite::Benchmark;
//!
//! let spec = CampaignSpec {
//!     name: "example".to_string(),
//!     guests: vec![Guest::Armlet],
//!     engines: vec![EngineKind::Interp],
//!     workloads: vec![Workload::Suite(Benchmark::Syscall)],
//!     scale: 1_000_000,
//!     reps: 2,
//!     precision: None,
//!     wall_limit: Some(std::time::Duration::from_secs(60)),
//! };
//! let result = run(&spec, &RunnerOpts::with_jobs(2));
//! let cell = result.cell("armlet", "interp", "suite:System Call").unwrap();
//! assert!(cell.counters.syscalls >= 16);
//! let json = result.to_json();
//! assert!(json.contains("simbench-campaign/v6"));
//! ```
//!
//! ## Adaptive example
//!
//! ```
//! use simbench_campaign::{run, CampaignSpec, PrecisionTarget, RunnerOpts, StopReason, Workload};
//! use simbench_campaign::measure::{EngineKind, Guest};
//! use simbench_suite::Benchmark;
//!
//! let spec = CampaignSpec {
//!     name: "adaptive".to_string(),
//!     guests: vec![Guest::Armlet],
//!     engines: vec![EngineKind::Interp],
//!     workloads: vec![Workload::Suite(Benchmark::Syscall)],
//!     scale: 1_000_000,
//!     reps: 1, // ignored: precision drives the repetition count
//!     precision: Some(PrecisionTarget::new(0.25, 2, 8).unwrap()),
//!     wall_limit: Some(std::time::Duration::from_secs(60)),
//! };
//! let result = run(&spec, &RunnerOpts::serial());
//! let cell = result.cell("armlet", "interp", "suite:System Call").unwrap();
//! assert!((2..=8).contains(&cell.reps_run));
//! assert!(matches!(
//!     cell.stop_reason,
//!     Some(StopReason::Converged | StopReason::MaxReps)
//! ));
//! ```
//!
//! ## Sharded example
//!
//! ```
//! use simbench_campaign::{merge, run, run_shard, CampaignSpec, RunnerOpts, Shard, Workload};
//! use simbench_campaign::measure::{EngineKind, Guest};
//! use simbench_suite::Benchmark;
//!
//! let spec = CampaignSpec {
//!     name: "sharded".to_string(),
//!     guests: vec![Guest::Armlet],
//!     engines: vec![EngineKind::Interp, EngineKind::Native],
//!     workloads: vec![Workload::Suite(Benchmark::Syscall)],
//!     scale: 1_000_000,
//!     reps: 1,
//!     precision: None,
//!     wall_limit: Some(std::time::Duration::from_secs(60)),
//! };
//! // Each shard can run in its own process or on its own machine.
//! let parts: Vec<_> = (1..=2)
//!     .map(|i| run_shard(&spec, &RunnerOpts::serial(), Some(Shard::new(i, 2).unwrap())))
//!     .collect();
//! let merged = merge(&parts).unwrap();
//! let whole = run(&spec, &RunnerOpts::serial());
//! for (a, b) in merged.cells.iter().zip(&whole.cells) {
//!     assert_eq!(a.counters, b.counters); // counter-identical
//! }
//! ```

pub mod compare;
pub mod failpoint;
pub mod journal;
pub mod json;
pub mod measure;
pub mod merge;
pub mod registry;
pub mod result;
pub mod runner;
pub mod spec;
pub mod stats;
pub mod table;

pub use compare::{
    compare, compare_counters, Comparison, CounterComparison, CounterDelta, CounterDiff, Delta,
    Verdict,
};
pub use journal::{replay, Journal, Replay, JOURNAL_FILE, JOURNAL_SCHEMA};
pub use measure::{run_app, run_suite_bench, Config, EngineKind, Guest, Sample};
pub use merge::{merge, MergeError};
pub use registry::{dispatch_guest, GuestInfo, GuestSpec, GuestVisitor, GUESTS};
pub use result::{
    CampaignResult, CellResult, CellStatus, LoadError, StopReason, Telemetry, SCHEMA, SCHEMA_V1,
    SCHEMA_V2, SCHEMA_V3, SCHEMA_V4, SCHEMA_V5,
};
pub use runner::{run, run_shard, run_shard_resumed, RunnerOpts};
pub use spec::{CampaignSpec, CellKey, Job, PrecisionTarget, Shard, Workload};
pub use stats::{geomean, stats, t_critical_95, Stats};

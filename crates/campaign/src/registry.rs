//! The guest registry: one table and one dispatch point for everything
//! per-guest.
//!
//! Before this module existed, every tool that worked "for each guest"
//! (the campaign runner, the differ, the fuzzer, the static analyzer)
//! carried its own `match guest` over the concrete ISA and support
//! types, and adding a guest meant finding them all. Now the concrete
//! types appear exactly once, in [`dispatch_guest`], and the metadata
//! (stable persisted id, display name) exactly once, in [`GUESTS`].
//! Adding a guest is: add the enum variant, one [`GuestInfo`] row, one
//! [`GuestSpec`] impl and one `dispatch_guest` arm — the compiler then
//! walks you through the (exhaustive-match) rest.

use simbench_core::isa::Isa;
use simbench_isa_armlet::Armlet;
use simbench_isa_petix::Petix;
use simbench_isa_riscle::Riscle;
use simbench_suite::{ArmletSupport, PetixSupport, RiscleSupport, Support};

use crate::measure::Guest;

/// Static metadata for one guest. The `isa_name` is the stable id used
/// in persisted campaign results and on the CLI; never rename one.
#[derive(Debug, Clone, Copy)]
pub struct GuestInfo {
    /// The enum selector.
    pub guest: Guest,
    /// Stable id (`Isa::NAME`): persisted results, CLI `--guests`.
    pub isa_name: &'static str,
    /// Human-facing display name for table headers and lists.
    pub display: &'static str,
}

/// The guest metadata table, in [`Guest::ALL`] order.
pub const GUESTS: [GuestInfo; 3] = [
    GuestInfo {
        guest: Guest::Armlet,
        isa_name: Armlet::NAME,
        display: "armlet (ARM-like)",
    },
    GuestInfo {
        guest: Guest::Petix,
        isa_name: Petix::NAME,
        display: "petix (x86-like)",
    },
    GuestInfo {
        guest: Guest::Riscle,
        isa_name: Riscle::NAME,
        display: "riscle (RISC-V-like)",
    },
];

/// The metadata row for a guest.
pub fn info(guest: Guest) -> &'static GuestInfo {
    GUESTS
        .iter()
        .find(|i| i.guest == guest)
        .expect("every Guest variant has a GUESTS row")
}

/// The compile-time side of one guest: its ISA and support-package
/// types, tied back to the runtime selector.
pub trait GuestSpec {
    /// The guest's [`Isa`].
    type Isa: Isa;
    /// The guest's suite support package.
    type Support: Support + Default;
    /// The runtime selector this spec implements.
    const GUEST: Guest;
}

/// armlet's [`GuestSpec`].
#[derive(Debug, Clone, Copy)]
pub struct ArmletGuest;
/// petix's [`GuestSpec`].
#[derive(Debug, Clone, Copy)]
pub struct PetixGuest;
/// riscle's [`GuestSpec`].
#[derive(Debug, Clone, Copy)]
pub struct RiscleGuest;

impl GuestSpec for ArmletGuest {
    type Isa = Armlet;
    type Support = ArmletSupport;
    const GUEST: Guest = Guest::Armlet;
}

impl GuestSpec for PetixGuest {
    type Isa = Petix;
    type Support = PetixSupport;
    const GUEST: Guest = Guest::Petix;
}

impl GuestSpec for RiscleGuest {
    type Isa = Riscle;
    type Support = RiscleSupport;
    const GUEST: Guest = Guest::Riscle;
}

/// A computation generic over the guest's compile-time types. Rust
/// closures cannot be generic, so guest-polymorphic call sites are
/// written as small visitor structs carrying their arguments.
pub trait GuestVisitor {
    /// The result type.
    type Out;
    /// Run against a concrete guest.
    fn visit<G: GuestSpec>(self) -> Self::Out;
}

/// Run a [`GuestVisitor`] against the guest a selector names.
///
/// This is the single runtime-to-compile-time bridge: the only place
/// in the workspace where a `Guest` value chooses concrete ISA and
/// support types.
pub fn dispatch_guest<V: GuestVisitor>(guest: Guest, v: V) -> V::Out {
    match guest {
        Guest::Armlet => v.visit::<ArmletGuest>(),
        Guest::Petix => v.visit::<PetixGuest>(),
        Guest::Riscle => v.visit::<RiscleGuest>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_every_guest_exactly_once() {
        assert_eq!(GUESTS.len(), Guest::ALL.len());
        for g in Guest::ALL {
            assert_eq!(info(g).guest, g);
        }
        let mut names: Vec<_> = GUESTS.iter().map(|i| i.isa_name).collect();
        names.dedup();
        assert_eq!(names.len(), GUESTS.len(), "isa names must be unique");
    }

    #[test]
    fn dispatch_reaches_the_matching_spec() {
        struct WhoAmI;
        impl GuestVisitor for WhoAmI {
            type Out = (&'static str, Guest);
            fn visit<G: GuestSpec>(self) -> Self::Out {
                (G::Isa::NAME, G::GUEST)
            }
        }
        for g in Guest::ALL {
            let (name, guest) = dispatch_guest(g, WhoAmI);
            assert_eq!(guest, g);
            assert_eq!(name, g.isa_name());
        }
    }
}

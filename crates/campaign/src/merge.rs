//! Recombining sharded campaign results.
//!
//! A sharded campaign runs `campaign run --shard I/N` once per shard
//! (any process, any machine) and persists N partial results, each
//! carrying the full cell layout with unowned cells marked
//! [`CellStatus::Skipped`] plus `{index, count}` shard metadata.
//! [`merge`] recombines them into one whole-matrix [`CampaignResult`].
//!
//! Because sharding is cell-complete and job execution is
//! deterministic, the merged result is *counter-identical* to an
//! unsharded run of the same spec — `campaign compare --counters`
//! against a whole-matrix run exits 0. The integration tests in
//! `tests/campaign.rs` assert exactly that at several shard counts.
//!
//! Every way a set of files can fail to be a coherent shard set maps to
//! a typed [`MergeError`]: merging never guesses, and the CLI turns
//! these into a distinct exit code so CI can tell "bad shard set" from
//! "usage error".

use crate::result::{CampaignResult, CellResult, CellStatus, SCHEMA};
use crate::spec::Shard;

/// Why a set of results could not be merged. Each variant corresponds
/// to a concrete operator mistake or corrupt input; none are panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No inputs were given.
    Empty,
    /// Input `arg_index` (0-based position in the argument list) has no
    /// shard metadata — it is a whole-matrix or already-merged result.
    NotAShard {
        /// Position in the input list.
        arg_index: usize,
        /// Campaign name of the offending result.
        name: String,
    },
    /// Two inputs declare the same shard index: the same slice was
    /// passed twice (or two different runs were mixed).
    Overlap {
        /// The duplicated shard index.
        index: u32,
    },
    /// The inputs declare fewer shards than their common count: the
    /// listed indices are absent.
    Missing {
        /// Declared shard count.
        count: u32,
        /// Shard indices not present in the inputs.
        missing: Vec<u32>,
    },
    /// Two inputs disagree on a spec-level field (shard count, campaign
    /// name, scale, reps, or the cell matrix itself), so they cannot
    /// come from the same sharded campaign.
    SpecMismatch {
        /// Which field disagrees.
        field: &'static str,
        /// The first input's value.
        expected: String,
        /// The disagreeing input's value.
        found: String,
    },
    /// A cell was measured by a shard that does not own it, or by more
    /// than one shard — the deterministic cell→shard assignment was
    /// violated (hand-edited file, or shards from different layouts).
    CellConflict {
        /// Guest id of the conflicting cell.
        guest: String,
        /// Engine id of the conflicting cell.
        engine: String,
        /// Workload id of the conflicting cell.
        workload: String,
    },
    /// A cell was skipped by every shard, including its owner, so the
    /// merged matrix would have a hole no shard can fill.
    CellUnmeasured {
        /// Guest id of the unmeasured cell.
        guest: String,
        /// Engine id of the unmeasured cell.
        engine: String,
        /// Workload id of the unmeasured cell.
        workload: String,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no shard results to merge"),
            MergeError::NotAShard { arg_index, name } => write!(
                f,
                "input {} (campaign {name:?}) carries no shard metadata — \
                 only results from `campaign run --shard I/N` can be merged",
                arg_index + 1
            ),
            MergeError::Overlap { index } => {
                write!(
                    f,
                    "shard {index} appears more than once (overlapping slices)"
                )
            }
            MergeError::Missing { count, missing } => {
                let list: Vec<String> = missing.iter().map(u32::to_string).collect();
                write!(
                    f,
                    "incomplete shard set: {}/{count} shard(s) missing (index {})",
                    missing.len(),
                    list.join(", ")
                )
            }
            MergeError::SpecMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "shards disagree on {field}: {expected:?} vs {found:?} — \
                 all shards must come from one spec"
            ),
            MergeError::CellConflict {
                guest,
                engine,
                workload,
            } => write!(
                f,
                "cell {guest}/{engine} {workload} was measured by a shard that \
                 does not own it"
            ),
            MergeError::CellUnmeasured {
                guest,
                engine,
                workload,
            } => write!(
                f,
                "cell {guest}/{engine} {workload} was skipped by every shard, \
                 including its owner"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Check that every shard echoes the same spec-level fields and cell
/// matrix as the first one.
fn check_spec_consistency(shards: &[&CampaignResult]) -> Result<(), MergeError> {
    let first = shards[0];
    let mismatch = |field: &'static str, expected: String, found: String| {
        Err(MergeError::SpecMismatch {
            field,
            expected,
            found,
        })
    };
    for other in &shards[1..] {
        if other.name != first.name {
            return mismatch("campaign name", first.name.clone(), other.name.clone());
        }
        if other.scale != first.scale {
            return mismatch("scale", first.scale.to_string(), other.scale.to_string());
        }
        if other.reps != first.reps {
            return mismatch("reps", first.reps.to_string(), other.reps.to_string());
        }
        if other.precision != first.precision {
            // Note this is a *spec* check: shards of one adaptive
            // campaign echo the same target even though their cells
            // legitimately converge at different per-cell rep counts.
            let fmt = |p: &Option<crate::spec::PrecisionTarget>| match p {
                Some(p) => p.to_string(),
                None => "fixed reps".to_string(),
            };
            return mismatch("precision", fmt(&first.precision), fmt(&other.precision));
        }
        if other.cells.len() != first.cells.len() {
            return mismatch(
                "cell count",
                first.cells.len().to_string(),
                other.cells.len().to_string(),
            );
        }
        for (a, b) in first.cells.iter().zip(&other.cells) {
            if (a.guest != b.guest) || (a.engine != b.engine) || (a.workload != b.workload) {
                return mismatch(
                    "cell identity",
                    format!("{}/{} {}", a.guest, a.engine, a.workload),
                    format!("{}/{} {}", b.guest, b.engine, b.workload),
                );
            }
        }
    }
    Ok(())
}

/// Merge a complete set of shard results into one whole-matrix
/// [`CampaignResult`], counter-identical to an unsharded run.
///
/// Inputs may arrive in any order. The merge validates, in order:
/// every input is a shard ([`MergeError::NotAShard`]); all inputs agree
/// on the shard count and spec fields ([`MergeError::SpecMismatch`]);
/// no index repeats ([`MergeError::Overlap`]); all indices `1..=N` are
/// present ([`MergeError::Missing`]); and each cell was measured by
/// exactly its deterministic owner ([`MergeError::CellConflict`] /
/// [`MergeError::CellUnmeasured`]).
///
/// The merged result has no shard metadata; its `jobs` is the sum of
/// the shards' worker counts, its `wall_secs` the maximum across
/// shards (shards run concurrently), and its `created_unix` the latest
/// shard's timestamp.
pub fn merge(shards: &[CampaignResult]) -> Result<CampaignResult, MergeError> {
    if shards.is_empty() {
        return Err(MergeError::Empty);
    }
    // Every input must be a shard, and all must declare the same count.
    let mut infos: Vec<(Shard, &CampaignResult)> = Vec::with_capacity(shards.len());
    for (i, r) in shards.iter().enumerate() {
        let shard = r.shard.ok_or_else(|| MergeError::NotAShard {
            arg_index: i,
            name: r.name.clone(),
        })?;
        infos.push((shard, r));
    }
    let count = infos[0].0.count;
    for (shard, _) in &infos {
        if shard.count != count {
            return Err(MergeError::SpecMismatch {
                field: "shard count",
                expected: count.to_string(),
                found: shard.count.to_string(),
            });
        }
    }
    check_spec_consistency(&infos.iter().map(|(_, r)| *r).collect::<Vec<_>>())?;

    // Index the shards 1..=count, rejecting duplicates and holes.
    let mut by_index: Vec<Option<&CampaignResult>> = vec![None; count as usize];
    for (shard, r) in &infos {
        let slot = &mut by_index[(shard.index - 1) as usize];
        if slot.is_some() {
            return Err(MergeError::Overlap { index: shard.index });
        }
        *slot = Some(r);
    }
    let missing: Vec<u32> = by_index
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(i, _)| i as u32 + 1)
        .collect();
    if !missing.is_empty() {
        return Err(MergeError::Missing { count, missing });
    }
    let by_index: Vec<&CampaignResult> = by_index.into_iter().map(Option::unwrap).collect();

    // Stitch the matrix: cell i comes from its deterministic owner;
    // every other shard must have skipped it.
    let total_cells = by_index[0].cells.len();
    let mut cells: Vec<CellResult> = Vec::with_capacity(total_cells);
    for i in 0..total_cells {
        // Ownership comes from the one authoritative assignment rule in
        // Shard::owner_index — the same rule shard execution used.
        let owner_pos = (Shard::owner_index(i, count) - 1) as usize;
        let owner = by_index[owner_pos];
        let cell = &owner.cells[i];
        if cell.status == CellStatus::Skipped {
            return Err(MergeError::CellUnmeasured {
                guest: cell.guest.clone(),
                engine: cell.engine.clone(),
                workload: cell.workload.clone(),
            });
        }
        for (j, r) in by_index.iter().enumerate() {
            if j != owner_pos && r.cells[i].status != CellStatus::Skipped {
                return Err(MergeError::CellConflict {
                    guest: cell.guest.clone(),
                    engine: cell.engine.clone(),
                    workload: cell.workload.clone(),
                });
            }
        }
        cells.push(cell.clone());
    }

    let first = by_index[0];
    Ok(CampaignResult {
        schema: SCHEMA.to_string(),
        name: first.name.clone(),
        scale: first.scale,
        reps: first.reps,
        precision: first.precision,
        jobs: by_index.iter().map(|r| r.jobs).sum(),
        shard: None,
        wall_secs: by_index.iter().map(|r| r.wall_secs).fold(0.0, f64::max),
        created_unix: by_index.iter().map(|r| r.created_unix).max().unwrap_or(0),
        // Shard telemetry snapshots are process-wide and overlap in
        // unknowable ways; a merged sum would be fiction, so merges
        // carry no telemetry. Likewise each shard journaled to its own
        // directory: the merged whole has no single journal to echo.
        telemetry: None,
        journal: None,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{EngineKind, Guest};
    use crate::runner::{run, run_shard, RunnerOpts};
    use crate::spec::{CampaignSpec, Workload};
    use simbench_suite::Benchmark;
    use std::time::Duration;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "merge-test".to_string(),
            guests: vec![Guest::Armlet, Guest::Petix],
            engines: vec![EngineKind::Interp, EngineKind::Native],
            workloads: vec![
                Workload::Suite(Benchmark::Syscall),
                Workload::Suite(Benchmark::MemHot),
                Workload::Suite(Benchmark::NonprivAccess),
            ],
            scale: u64::MAX, // 16-iteration floor: fast
            reps: 2,
            precision: None,
            wall_limit: Some(Duration::from_secs(60)),
        }
    }

    fn shards(count: u32) -> Vec<CampaignResult> {
        (1..=count)
            .map(|i| {
                run_shard(
                    &spec(),
                    &RunnerOpts::serial(),
                    Some(Shard::new(i, count).unwrap()),
                )
            })
            .collect()
    }

    #[test]
    fn merged_shards_match_the_unsharded_run() {
        let whole = run(&spec(), &RunnerOpts::serial());
        for count in [1u32, 2, 3, 5] {
            let merged = merge(&shards(count)).unwrap();
            assert_eq!(merged.shard, None);
            assert_eq!(merged.cells.len(), whole.cells.len());
            for (a, b) in merged.cells.iter().zip(&whole.cells) {
                assert_eq!(a.guest, b.guest);
                assert_eq!(a.engine, b.engine);
                assert_eq!(a.workload, b.workload);
                assert_eq!(
                    a.status, b.status,
                    "{}/{} {}",
                    a.guest, a.engine, a.workload
                );
                assert_eq!(a.counters, b.counters);
                assert_eq!(a.iterations, b.iterations);
                assert_eq!(a.tested_ops, b.tested_ops);
                assert_eq!(a.seconds.len(), b.seconds.len());
            }
        }
    }

    #[test]
    fn merge_accepts_any_input_order() {
        let mut s = shards(3);
        s.rotate_left(1);
        s.swap(0, 1);
        let merged = merge(&s).unwrap();
        assert!(merged.cells.iter().all(|c| c.status != CellStatus::Skipped));
    }

    #[test]
    fn merge_sums_jobs_and_takes_max_wall() {
        let mut s = shards(2);
        s[0].jobs = 4;
        s[1].jobs = 8;
        s[0].wall_secs = 1.5;
        s[1].wall_secs = 2.5;
        let merged = merge(&s).unwrap();
        assert_eq!(merged.jobs, 12);
        assert_eq!(merged.wall_secs, 2.5);
    }

    #[test]
    fn empty_input_is_rejected() {
        assert_eq!(merge(&[]).unwrap_err(), MergeError::Empty);
    }

    #[test]
    fn whole_matrix_results_are_rejected() {
        let whole = run(&spec(), &RunnerOpts::serial());
        let err = merge(&[whole]).unwrap_err();
        assert!(
            matches!(err, MergeError::NotAShard { arg_index: 0, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("no shard metadata"), "{err}");
    }

    #[test]
    fn duplicate_shards_are_an_overlap() {
        let s = shards(2);
        let err = merge(&[s[0].clone(), s[0].clone()]).unwrap_err();
        assert_eq!(err, MergeError::Overlap { index: 1 });
        assert!(err.to_string().contains("more than once"), "{err}");
    }

    #[test]
    fn missing_shards_are_reported_by_index() {
        let s = shards(3);
        let err = merge(&[s[0].clone(), s[2].clone()]).unwrap_err();
        assert_eq!(
            err,
            MergeError::Missing {
                count: 3,
                missing: vec![2],
            }
        );
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn mismatched_specs_are_rejected() {
        let s2 = shards(2);
        // Shard counts disagree.
        let s3 = shards(3);
        let err = merge(&[s2[0].clone(), s3[1].clone()]).unwrap_err();
        assert!(
            matches!(
                err,
                MergeError::SpecMismatch {
                    field: "shard count",
                    ..
                }
            ),
            "{err}"
        );
        // Same count, different campaign name.
        let mut renamed = s2[1].clone();
        renamed.name = "other".to_string();
        let err = merge(&[s2[0].clone(), renamed]).unwrap_err();
        assert!(
            matches!(
                err,
                MergeError::SpecMismatch {
                    field: "campaign name",
                    ..
                }
            ),
            "{err}"
        );
        // Same count and name, different scale.
        let mut rescaled = s2[1].clone();
        rescaled.scale = 7;
        let err = merge(&[s2[0].clone(), rescaled]).unwrap_err();
        assert!(
            matches!(err, MergeError::SpecMismatch { field: "scale", .. }),
            "{err}"
        );
        // An adaptive shard cannot merge with a fixed-reps shard.
        let mut adaptive = s2[1].clone();
        adaptive.precision = Some(crate::spec::PrecisionTarget::new(0.2, 2, 8).unwrap());
        let err = merge(&[s2[0].clone(), adaptive]).unwrap_err();
        assert!(
            matches!(
                err,
                MergeError::SpecMismatch {
                    field: "precision",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn adaptive_shards_merge_despite_differing_per_cell_rep_counts() {
        // Shards of one adaptive spec echo the same precision target
        // but converge at different reps per cell; the merge must go
        // through on the spec echo, never on per-cell rep counts, and
        // stay counter-identical to an unsharded adaptive run.
        let mut s = spec();
        s.precision = Some(crate::spec::PrecisionTarget::new(1e12, 2, 4).unwrap());
        let parts: Vec<CampaignResult> = (1..=2)
            .map(|i| run_shard(&s, &RunnerOpts::serial(), Some(Shard::new(i, 2).unwrap())))
            .collect();
        let merged = merge(&parts).unwrap();
        assert_eq!(merged.precision, s.precision);
        let whole = run(&s, &RunnerOpts::serial());
        for (a, b) in merged.cells.iter().zip(&whole.cells) {
            assert_eq!(
                a.status, b.status,
                "{}/{} {}",
                a.guest, a.engine, a.workload
            );
            assert_eq!(a.counters, b.counters);
        }
    }

    #[test]
    fn a_cell_measured_by_a_non_owner_is_a_conflict() {
        let mut s = shards(2);
        // Shard 2 illegitimately "measures" a cell shard 1 owns.
        let idx = (0..s[1].cells.len())
            .find(|i| i % 2 == 0)
            .expect("cell owned by shard 1");
        s[1].cells[idx].status = CellStatus::Ok;
        let err = merge(&s).unwrap_err();
        assert!(matches!(err, MergeError::CellConflict { .. }), "{err}");
    }

    #[test]
    fn a_cell_skipped_by_its_owner_is_unmeasured() {
        let mut s = shards(2);
        let idx = (0..s[0].cells.len())
            .find(|i| i % 2 == 0)
            .expect("cell owned by shard 1");
        s[0].cells[idx].status = CellStatus::Skipped;
        let err = merge(&s).unwrap_err();
        assert!(matches!(err, MergeError::CellUnmeasured { .. }), "{err}");
    }

    #[test]
    fn quarantined_and_timed_out_cells_merge_through_as_broken_coverage() {
        // A shard whose owner quarantined or timed out a cell still
        // measured it — the breakage must survive the merge verbatim
        // (for compare to flag as Broke), never read as an unmeasured
        // hole and never be silently replaced by another shard's data.
        let mut s = shards(2);
        let owned_by_1: Vec<usize> = (0..s[0].cells.len())
            .filter(|i| Shard::new(1, 2).unwrap().owns(*i))
            .collect();
        let (q_idx, t_idx) = (owned_by_1[0], owned_by_1[1]);
        s[0].cells[q_idx].status = CellStatus::Quarantined("engine panicked".to_string());
        s[0].cells[q_idx].stats = None;
        s[0].cells[q_idx].seconds.clear();
        s[0].cells[q_idx].attempts = 3;
        s[0].cells[t_idx].status = CellStatus::TimedOut("exceeded 5s cell timeout".to_string());
        let merged = merge(&s).unwrap();
        assert_eq!(
            merged.cells[q_idx].status,
            CellStatus::Quarantined("engine panicked".to_string())
        );
        assert_eq!(merged.cells[q_idx].attempts, 3, "attempt count survives");
        assert_eq!(
            merged.cells[t_idx].status,
            CellStatus::TimedOut("exceeded 5s cell timeout".to_string())
        );
        // And the merged artifact round-trips the broken statuses.
        let parsed = CampaignResult::from_json(&merged.to_json()).unwrap();
        assert!(parsed.cells[q_idx].status.is_broken());
        assert!(parsed.cells[t_idx].status.is_broken());
    }
}
